"""Compare a fresh ``BENCH_engine.json`` against the committed baseline.

Emits a GitHub-flavoured markdown table of current-vs-baseline ratios
for every numeric metric the two files share, so the bench CI job can
append it to ``$GITHUB_STEP_SUMMARY``.  Warn-only by design: the script
always exits 0 — regressions are surfaced, not enforced — because the
bench job runs on shared, noisy runners.

Usage::

    python benchmarks/compare_baseline.py BENCH_engine.json \
        benchmarks/baseline.json [--threshold 0.8]

Metrics whose key marks them as costs (``*_s``, ``*_ms_per_run``,
``*_j``, ``*_accesses_per_lookup``) improve downward; everything else
(pps, speedups, rates) improves upward.  Ratios are always oriented so > 1.0 means "better than
baseline", and rows below ``--threshold`` are flagged.
"""

from __future__ import annotations

import argparse
import json
import sys


def _flatten(prefix: str, obj, out: dict) -> None:
    if isinstance(obj, dict):
        for key, value in sorted(obj.items()):
            _flatten(f"{prefix}.{key}" if prefix else key, value, out)
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix] = float(obj)


def _lower_is_better(key: str) -> bool:
    leaf = key.rsplit(".", 1)[-1]
    return (
        leaf.endswith("_s")
        or leaf.endswith("_ms_per_run")
        or leaf.endswith("_j")
        or leaf.endswith("_accesses_per_lookup")
    )


def compare(current: dict, baseline: dict, threshold: float) -> str:
    cur, base = {}, {}
    _flatten("", current, cur)
    _flatten("", baseline, base)
    shared = sorted(set(cur) & set(base))
    lines = [
        "## Bench vs committed baseline",
        "",
        "| metric | baseline | current | ratio (>1 = better) | |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    flagged = 0
    for key in shared:
        b, c = base[key], cur[key]
        if b == 0 or c == 0:
            ratio = float("nan")
        elif _lower_is_better(key):
            ratio = b / c
        else:
            ratio = c / b
        mark = ""
        if ratio == ratio and ratio < threshold:  # NaN-safe
            mark = ":warning:"
            flagged += 1
        lines.append(
            f"| `{key}` | {b:g} | {c:g} | {ratio:.2f} | {mark} |"
        )
    only_cur = sorted(set(cur) - set(base))
    if only_cur:
        lines += ["", f"New metrics (no baseline yet): "
                      f"{', '.join(f'`{k}`' for k in only_cur)}"]
    only_base = sorted(set(base) - set(cur))
    if only_base:
        lines += ["", f"Baseline metrics missing from this run: "
                      f"{', '.join(f'`{k}`' for k in only_base)}"]
    lines += [
        "",
        f"{len(shared)} shared metrics, {flagged} below the "
        f"{threshold:.0%} warn threshold (informational only).",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh BENCH_engine.json")
    parser.add_argument("baseline", help="committed benchmarks/baseline.json")
    parser.add_argument("--threshold", type=float, default=0.8,
                        help="ratio below which a row is flagged")
    args = parser.parse_args(argv)
    try:
        with open(args.current, encoding="utf-8") as fh:
            current = json.load(fh)
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"baseline comparison skipped: {exc}", file=sys.stderr)
        return 0  # warn-only: never fail the job
    print(compare(current, baseline, args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
