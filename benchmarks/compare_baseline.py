"""Compare a fresh ``BENCH_engine.json`` against the committed baseline.

Emits a GitHub-flavoured markdown table of current-vs-baseline ratios
for every numeric metric the two files share, so the bench CI job can
append it to ``$GITHUB_STEP_SUMMARY``.

Two enforcement tiers:

* **informational metrics** (throughput points, wall-clock seconds) are
  warn-only — flagged below ``--threshold`` but never fail the run,
  because the bench job lives on shared, noisy runners;
* **gated metrics** (:data:`GATED_METRICS` — the speedup/amortisation
  ratios the acceptance gates assert) FAIL the run (exit 1) when they
  regress below ``--fail-threshold`` (default 0.75, i.e. a >25%
  regression) or disappear from the current results entirely.  Ratios
  of ratios are far less runner-sensitive than absolute pps, which is
  what makes a hard gate tenable here.

A third check kind, **monotone** (:data:`MONOTONE_AXES`), looks only at
the *current* results: a metric family recorded along an axis (e.g.
``*_pipeline_pps`` along ``shards_1 -> shards_2 -> shards_4``) must be
non-decreasing along that axis, up to ``--monotone-tolerance`` (default
0.9 — each step may dip at most 10% below its predecessor before the
run fails).  This is the "sharding must not make serving slower" gate:
it catches the inverted-scaling shape no per-metric baseline ratio can
see, because every point can individually beat its baseline while the
axis still slopes downward.

Usage::

    python benchmarks/compare_baseline.py BENCH_engine.json \
        benchmarks/baseline.json [--threshold 0.8] [--fail-threshold 0.75]

Metrics whose key marks them as costs (``*_s``, ``*_ms``,
``*_ms_per_run``, ``*_j``, ``*_accesses_per_lookup``) improve downward;
everything else (pps, speedups, rates) improves upward.  Ratios are
always oriented so > 1.0 means "better than baseline".
"""

from __future__ import annotations

import argparse
import json
import sys

#: Flattened metric keys enforced as hard gates: a >25% regression (or
#: the metric vanishing) fails the comparison instead of warning.
GATED_METRICS = frozenset({
    "flat_kernel_gate.speedup",
    "update_patch.speedup",
    "flowcache.effective_lookup_speedup",
    "fused_lookup.speedup",
    "pipeline_pool.amortisation",
    "stream_overlap.end_to_end_speedup",
    "fault_recovery.retried_throughput_ratio",
    "multi_tenant.aggregate_ratio",
    "stage_graph.overhead_ratio",
})

#: Metric families that must be non-decreasing along an ordered axis of
#: the CURRENT results: (family key, ordered point keys, tolerance
#: floor).  Points absent from the results are skipped (a reduced bench
#: run is not a failure); an inversion beyond the tolerance is.  The
#: per-family floor tightens the CLI ``--monotone-tolerance`` — the
#: effective tolerance is whichever of the two is stricter, so the
#: shards families never regress past 5% step-to-step regardless of the
#: flag.
MONOTONE_AXES = (
    ("flowcache_pipeline_pps", ("shards_1", "shards_2", "shards_4"), 0.95),
    ("persistent_pipeline_pps", ("shards_1", "shards_2", "shards_4"), 0.95),
)


def _flatten(prefix: str, obj, out: dict) -> None:
    if isinstance(obj, dict):
        for key, value in sorted(obj.items()):
            _flatten(f"{prefix}.{key}" if prefix else key, value, out)
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix] = float(obj)


def _lower_is_better(key: str) -> bool:
    leaf = key.rsplit(".", 1)[-1]
    return (
        leaf.endswith("_s")
        or leaf.endswith("_ms")
        or leaf.endswith("_ms_per_run")
        or leaf.endswith("_j")
        or leaf.endswith("_accesses_per_lookup")
    )


def check_monotone(
    current: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """Evaluate :data:`MONOTONE_AXES` against the current results.

    Returns ``(report_lines, failures)``.  Each axis row shows the
    recorded points in order; a step falling below ``tolerance`` times
    its predecessor fails as ``monotone:<family>``.
    """
    cur: dict = {}
    _flatten("", current, cur)
    lines: list[str] = []
    failures: list[str] = []
    for family, points, floor in MONOTONE_AXES:
        eff = max(tolerance, floor)
        series = [
            (p, cur[f"{family}.{p}"])
            for p in points
            if f"{family}.{p}" in cur
        ]
        if len(series) < 2:
            continue
        broken = [
            f"{prev_key} -> {key}"
            for (prev_key, prev), (key, val) in zip(series, series[1:])
            if val < eff * prev
        ]
        shown = ", ".join(f"{key}={val:,.0f}" for key, val in series)
        if broken:
            failures.append(f"monotone:{family}")
            lines.append(
                f"- :x: `{family}` must be non-decreasing along shards "
                f"(tolerance {eff:.0%}): {shown} — inverted at "
                f"{'; '.join(broken)}"
            )
        else:
            lines.append(
                f"- `{family}` non-decreasing along shards: {shown}"
            )
    if lines:
        lines = ["", "### Monotone axes (current run)", ""] + lines
    return lines, failures


def compare(
    current: dict,
    baseline: dict,
    threshold: float,
    fail_threshold: float,
    monotone_tolerance: float = 0.9,
) -> tuple[str, list[str]]:
    """Markdown report plus the list of failed gated metrics."""
    cur, base = {}, {}
    _flatten("", current, cur)
    _flatten("", baseline, base)
    shared = sorted(set(cur) & set(base))
    lines = [
        "## Bench vs committed baseline",
        "",
        "| metric | baseline | current | ratio (>1 = better) | |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    flagged = 0
    failures: list[str] = []
    for key in shared:
        b, c = base[key], cur[key]
        if b == 0 or c == 0:
            ratio = float("nan")
        elif _lower_is_better(key):
            ratio = b / c
        else:
            ratio = c / b
        mark = ""
        gated = key in GATED_METRICS
        if gated and (ratio != ratio or ratio < fail_threshold):
            # A gated metric collapsing to 0 (NaN ratio) is the most
            # extreme regression, not a pass.
            mark = ":x: gated"
            failures.append(key)
        elif gated:
            mark = "gated"
        elif ratio == ratio and ratio < threshold:  # NaN-safe warn
            mark = ":warning:"
            flagged += 1
        lines.append(
            f"| `{key}` | {b:g} | {c:g} | {ratio:.2f} | {mark} |"
        )
    missing_gated = sorted(GATED_METRICS & set(base) - set(cur))
    failures.extend(missing_gated)
    only_cur = sorted(set(cur) - set(base))
    if only_cur:
        lines += ["", f"New metrics (no baseline yet): "
                      f"{', '.join(f'`{k}`' for k in only_cur)}"]
    only_base = sorted(set(base) - set(cur))
    if only_base:
        lines += ["", f"Baseline metrics missing from this run: "
                      f"{', '.join(f'`{k}`' for k in only_base)}"]
    mono_lines, mono_failures = check_monotone(current, monotone_tolerance)
    lines += mono_lines
    failures.extend(mono_failures)
    lines += [
        "",
        f"{len(shared)} shared metrics, {flagged} below the "
        f"{threshold:.0%} warn threshold (informational only).",
    ]
    if failures:
        lines += [
            "",
            f"**FAIL**: gated metric(s) regressed more than "
            f"{1 - fail_threshold:.0%} (or vanished): "
            f"{', '.join(f'`{k}`' for k in sorted(set(failures)))}",
        ]
    return "\n".join(lines), sorted(set(failures))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh BENCH_engine.json")
    parser.add_argument("baseline", help="committed benchmarks/baseline.json")
    parser.add_argument("--threshold", type=float, default=0.8,
                        help="ratio below which a row is flagged (warn)")
    parser.add_argument("--fail-threshold", type=float, default=0.75,
                        help="ratio below which a GATED metric fails the "
                             "comparison")
    parser.add_argument("--monotone-tolerance", type=float, default=0.9,
                        help="noise allowance for the monotone shards "
                             "axes: each step may fall to this fraction "
                             "of its predecessor before failing")
    args = parser.parse_args(argv)
    try:
        with open(args.current, encoding="utf-8") as fh:
            current = json.load(fh)
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"baseline comparison skipped: {exc}", file=sys.stderr)
        return 0  # missing inputs stay non-fatal (fresh checkouts)
    report, failures = compare(
        current, baseline, args.threshold, args.fail_threshold,
        monotone_tolerance=args.monotone_tolerance,
    )
    print(report)
    if failures:
        print(
            f"gated regression(s): {', '.join(failures)}", file=sys.stderr
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
