"""Benchmarks: the engine pipeline, flat-tree kernels, and batch oracles.

Tracks the serving subsystem this repo is growing toward: pipeline
throughput at 1/2/4 shards over the accelerator backend, the compiled
flat-array traversal kernel against the object-walking reference it
replaced, the persistent fork pool against per-run pools, and the
vectorised tuple-space batch lookup against the per-packet scalar loop
(the conformance oracle).

Every measurement lands in ``BENCH_engine.json`` at the repo root (CI
uploads it as a workflow artifact), so the performance trajectory is
tracked across PRs: pps, speedup ratios, and the two hard gates — the
flat kernel's >= 5x over the reference traversal and the persistent
pool's fork-amortisation win.
"""

from __future__ import annotations

import contextlib
import gc
import json
import math
import time
from pathlib import Path

import numpy as np
import pytest

from repro import generate_ruleset, generate_trace
from repro.algorithms import TupleSpaceClassifier, build_hicuts
from repro.algorithms.flat_tree import FlatTree
from repro.algorithms.incremental import IncrementalClassifier
from repro.classbench import generate_update_stream
from repro.core.packet import PacketTrace
from repro.energy import CacheEnergyModel
from repro.engine import (
    CachedClassifier,
    ClassificationPipeline,
    FaultSpec,
    SupervisionPolicy,
    build_backend,
)
from repro.serve import (
    Engine,
    EngineConfig,
    MultiTenantEngine,
    TenantSpec,
    iter_trace_file,
    iter_trace_segments,
)

pytestmark = pytest.mark.bench

#: Perf numbers recorded by the tests in this module; dumped to
#: ``BENCH_engine.json`` when the module finishes.
_PERF: dict = {}

_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


@pytest.fixture(scope="module", autouse=True)
def bench_artifact():
    """Write every recorded measurement to the perf artifact."""
    yield
    if _PERF:
        _ARTIFACT.write_text(json.dumps(_PERF, indent=2, sort_keys=True) + "\n")


def _best_of(fn, repeats: int = 3) -> float:
    """Minimum wall-clock of ``repeats`` calls (damps scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def acl1k_engine_accelerator(acl1k):
    return build_backend("accelerator", acl1k)


@pytest.fixture(scope="module")
def acl1k_tss(acl1k):
    clf = TupleSpaceClassifier(acl1k)
    clf.classify_batch(np.empty((0, 5), dtype=np.uint32))  # warm batch tables
    return clf


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_pipeline_throughput(benchmark, acl1k_engine_accelerator, acl1k_trace, shards):
    """Sharded streaming over the accelerator backend (20k packets)."""
    pipeline = ClassificationPipeline(
        acl1k_engine_accelerator, chunk_size=2048, shards=shards
    )
    res = benchmark(lambda: pipeline.run(acl1k_trace))
    assert res.n_packets == acl1k_trace.n_packets
    assert res.mean_occupancy() is not None


def test_tuple_space_batch(benchmark, acl1k_tss, acl1k_trace):
    """Vectorised TSS batch lookup over the full 20k-packet trace."""
    out = benchmark(lambda: acl1k_tss.classify_batch(acl1k_trace.headers))
    assert out.shape == (acl1k_trace.n_packets,)


def test_tuple_space_scalar_loop(benchmark, acl1k_tss, acl1k_trace):
    """The seed's per-packet loop (small slice; it is the oracle path)."""
    sub = acl1k_trace.headers[:500]
    benchmark(
        lambda: np.asarray([acl1k_tss.classify(row) for row in sub])
    )


def test_tuple_space_speedup_at_least_10x(acl1k_tss, acl1k_trace):
    """Acceptance gate: vectorised batch >= 10x the seed scalar loop on
    the 1k-rule benchmark ruleset."""
    headers = acl1k_trace.headers[:2000]
    t0 = time.perf_counter()
    scalar = np.asarray([acl1k_tss.classify(row) for row in headers])
    t_scalar = time.perf_counter() - t0
    acl1k_tss.classify_batch(headers)  # warm
    t0 = time.perf_counter()
    batch = acl1k_tss.classify_batch(headers)
    t_batch = time.perf_counter() - t0
    assert np.array_equal(scalar, batch)
    speedup = t_scalar / t_batch
    assert speedup >= 10, f"vectorised TSS only {speedup:.1f}x faster"


def test_registry_build_hypercuts(benchmark, acl1k):
    """Backend construction cost through the registry."""
    benchmark(lambda: build_backend("hypercuts", acl1k, binth=30, hw_mode=True))


# ---------------------------------------------------------------------------
# Flat-array traversal kernel vs the object-walking reference
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def acl10k_hw_tree(acl10k):
    """The gate workload's tree: the accelerator's default algorithm
    (modified HyperCuts, one-word leaves)."""
    return build_backend(
        "hypercuts", acl10k, binth=30, spfac=4, hw_mode=True
    ).tree


def test_flat_kernel_speedup_gate(acl10k_hw_tree, acl10k_trace):
    """Acceptance gate: the compiled FlatTree kernel is bit-for-bit
    identical to the reference batch traversal and >= 5x faster on the
    10k-rule / 100k-packet workload."""
    tree = acl10k_hw_tree
    flat = tree.flat  # compiled form (cached on the tree)
    ref = tree.batch_lookup_reference(acl10k_trace)
    got = flat.batch_lookup(acl10k_trace)
    for field in (
        "match", "internal_nodes", "leaf_id", "leaf_size", "match_pos",
        "rules_compared",
    ):
        assert np.array_equal(getattr(ref, field), getattr(got, field)), field
    t_ref = _best_of(lambda: tree.batch_lookup_reference(acl10k_trace))
    t_flat = _best_of(lambda: flat.batch_lookup(acl10k_trace))
    speedup = t_ref / t_flat
    _PERF["flat_kernel_gate"] = {
        "rules": 10_000,
        "packets": acl10k_trace.n_packets,
        "reference_s": round(t_ref, 4),
        "flat_s": round(t_flat, 4),
        "speedup": round(speedup, 2),
        "flat_pps": round(acl10k_trace.n_packets / t_flat),
    }
    assert speedup >= 5, f"flat kernel only {speedup:.1f}x the reference"


@pytest.mark.parametrize("algorithm", ["hicuts", "hypercuts"])
def test_flat_batch_lookup(benchmark, algorithm, acl10k, acl10k_trace):
    """Flat-kernel throughput per tree algorithm (10k rules, hw mode)."""
    tree = build_backend(
        algorithm, acl10k, binth=30, spfac=4, hw_mode=True
    ).tree
    out = benchmark(lambda: tree.batch_lookup(acl10k_trace))
    _PERF.setdefault("flat_pps", {})[algorithm] = round(
        acl10k_trace.n_packets / benchmark.stats.stats.min
    )
    assert out.n_packets == acl10k_trace.n_packets


def test_object_reference_batch_lookup(benchmark, acl10k, acl10k_trace):
    """The replaced per-node-grouping traversal, kept for the trajectory
    comparison (same workload as the flat benchmarks)."""
    tree = build_hicuts(acl10k, binth=30, spfac=4, hw_mode=True)
    benchmark(lambda: tree.batch_lookup_reference(acl10k_trace))


# ---------------------------------------------------------------------------
# Persistent pool vs per-run pools
# ---------------------------------------------------------------------------
def test_persistent_pool_amortises_fork(acl1k_engine_accelerator, acl1k_trace):
    """Acceptance gate: with the pool reused across run() calls (plus
    shared-memory results), repeated runs beat per-run fork pools."""
    clf = acl1k_engine_accelerator
    runs = 5
    fresh = ClassificationPipeline(clf, chunk_size=2048, shards=2)
    if not fresh._fork_available():  # pragma: no cover - non-fork platform
        pytest.skip("fork multiprocessing unavailable")
    fresh.run(acl1k_trace)  # warm lazily-built structures
    t0 = time.perf_counter()
    for _ in range(runs):
        fresh.run(acl1k_trace)
    t_fresh = (time.perf_counter() - t0) / runs
    with ClassificationPipeline(
        clf, chunk_size=2048, shards=2, persistent=True
    ) as pipeline:
        first = pipeline.run(acl1k_trace)  # forks the pool once
        t0 = time.perf_counter()
        for _ in range(runs):
            res = pipeline.run(acl1k_trace)
        t_pers = (time.perf_counter() - t0) / runs
    assert np.array_equal(res.match, first.match)
    win = t_fresh / t_pers
    _PERF["pipeline_pool"] = {
        "runs": runs,
        "fresh_ms_per_run": round(t_fresh * 1e3, 2),
        "persistent_ms_per_run": round(t_pers * 1e3, 2),
        "amortisation": round(win, 2),
        "persistent_pps": round(acl1k_trace.n_packets / t_pers),
    }
    assert win > 1.1, f"persistent pool only {win:.2f}x per-run pools"


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_persistent_pipeline_throughput(
    benchmark, acl1k_engine_accelerator, acl1k_trace, shards
):
    """Sharded streaming at the engine's serving defaults (20k packets).

    Runs ``shard_mode="auto"`` with the >= 64k-packet dispatch target —
    the configuration :class:`~repro.serve.EngineConfig` serves by
    default.  Display-only: the ``persistent_pipeline_pps`` shards axis
    the monotone gate enforces is recorded by
    ``test_pipeline_shards_monotone_gate`` (interleaved rounds), and
    the pool's fork-amortisation win is gated separately by
    ``test_persistent_pool_amortises_fork``.
    """
    with ClassificationPipeline(
        acl1k_engine_accelerator, chunk_size=2048, shards=shards,
        persistent=True, shard_mode="auto", min_chunk_packets=65536,
    ) as pipeline:
        pipeline.run(acl1k_trace)  # fork/warm outside the timed region
        res = benchmark(lambda: pipeline.run(acl1k_trace))
    assert res.n_packets == acl1k_trace.n_packets


# ---------------------------------------------------------------------------
# Fault recovery: the cost of absorbing one worker crash
# ---------------------------------------------------------------------------
def test_fault_recovery_gate(acl1k_engine_accelerator, acl1k):
    """Acceptance gate: a supervised run that absorbs one injected
    worker crash (detect via the exit-code watch, tear the pool down,
    re-fork, whole-dispatch replay) still delivers >= 0.5x the
    fault-free throughput on the same 200k-packet workload,
    bit-identically.  Lands as ``fault_recovery`` in
    ``BENCH_engine.json``; ``retried_throughput_ratio`` is gated by
    ``compare_baseline.py`` (a ratio of same-machine wall clocks, so it
    is runner-insensitive the way the other gated speedups are)."""
    trace = generate_trace(acl1k, 200_000, seed=83)
    policy = SupervisionPolicy(
        fault_policy="retry", max_retries=2,
        backoff_base_s=0.0, backoff_max_s=0.0,
    )
    pipeline = ClassificationPipeline(
        acl1k_engine_accelerator, chunk_size=2048, shards=2,
        shard_mode="processes", policy=policy,
    )
    if not pipeline._fork_available():  # pragma: no cover - non-fork platform
        pytest.skip("fork multiprocessing unavailable")
    want = pipeline.run(trace)  # warm lazily-built structures
    t_free = _best_of(lambda: pipeline.run(trace), repeats=2)
    t_fault = math.inf
    for _ in range(2):
        t0 = time.perf_counter()
        res = pipeline.run(trace, faults=[FaultSpec(kind="crash", chunk=1)])
        t_fault = min(t_fault, time.perf_counter() - t0)
        assert np.array_equal(res.match, want.match)
        assert res.fault.worker_crashes == 1 and res.fault.retries == 1
    ratio = t_free / t_fault
    _PERF["fault_recovery"] = {
        "packets": trace.n_packets,
        "fault_free_pps": round(trace.n_packets / t_free),
        "retried_pps": round(trace.n_packets / t_fault),
        "retried_throughput_ratio": round(ratio, 2),
        "recovery_max_s": round(max(res.fault.recovery_s), 5),
    }
    assert ratio >= 0.5, f"retried run only {ratio:.2f}x fault-free"


# ---------------------------------------------------------------------------
# Flow-cache front-end on a Zipf-skewed trace
# ---------------------------------------------------------------------------
def test_flowcache_zipf_gate(acl1k_tss, acl1k_zipf_trace):
    """Acceptance gate: on a Zipf(1.0) trace the flow cache serves the
    hot flows, cutting effective memory accesses per lookup >= 2x below
    the bare backend (tuple space: 267 worst-case accesses at 1k rules),
    bit-identically.  Hit rate and the hit/miss energy split land in
    ``BENCH_engine.json``."""
    bare = acl1k_tss
    trace = acl1k_zipf_trace
    want = bare.classify_trace(trace)
    cached = CachedClassifier(bare, entries=4096, ways=4)
    got = cached.classify_trace(trace)
    assert np.array_equal(got, want)

    hit_rate = cached.cache.stats.hit_rate
    model = CacheEnergyModel.for_classifier(cached)
    effective = model.effective_accesses_per_lookup(hit_rate)
    speedup = model.effective_lookup_speedup(hit_rate)
    # Deduplicated misses mean the backend only ever sees each flow
    # once: lookups served per backend lookup.
    lookup_reduction = trace.n_packets / cached.cache.stats.misses

    # Wall clock: warm cached pass vs the bare backend on the same trace.
    t_bare = _best_of(lambda: bare.classify_trace(trace))
    t_cached = _best_of(lambda: cached.classify_trace(trace))

    _PERF["flowcache"] = {
        "backend": "tuple_space",
        "entries": cached.cache.entries,
        "ways": cached.cache.ways,
        "flows": 512,
        "zipf_skew": 1.0,
        "packets": trace.n_packets,
        "hit_rate": round(hit_rate, 4),
        "backend_lookup_reduction": round(lookup_reduction, 2),
        "backend_accesses_per_lookup": model.backend_accesses,
        "effective_accesses_per_lookup": round(effective, 3),
        "effective_lookup_speedup": round(speedup, 2),
        "energy_per_packet_j": model.energy_per_packet_j(hit_rate),
        "energy_per_packet_uncached_j": model.uncached_energy_per_packet_j(),
        "bare_s": round(t_bare, 4),
        "cached_s": round(t_cached, 4),
        "wall_speedup": round(t_bare / t_cached, 2),
    }
    assert hit_rate > 0.5, f"Zipf(1.0) hit rate only {hit_rate:.1%}"
    assert speedup >= 2, (
        f"flow cache only cut effective lookups {speedup:.2f}x"
    )


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_cached_pipeline_throughput(
    benchmark, acl1k_engine_accelerator, acl1k_zipf_trace, shards
):
    """Flow-cached streaming at the engine's serving defaults (20k Zipf
    packets): ``shard_mode="auto"`` plus the >= 64k-packet dispatch
    target, so shards engage only when they can win.  Display-only: the
    ``flowcache_pipeline_pps`` shards axis the monotone gate enforces
    is recorded by ``test_pipeline_shards_monotone_gate``."""
    cached = CachedClassifier(
        acl1k_engine_accelerator, entries=4096, ways=4
    )
    pipeline = ClassificationPipeline(
        cached, chunk_size=2048, shards=shards,
        shard_mode="auto", min_chunk_packets=65536,
    )
    res = benchmark(lambda: pipeline.run(acl1k_zipf_trace))
    assert res.cache_hit_rate is not None and res.cache_hit_rate > 0.5


def _interleaved_pps(
    runs: dict, n_packets: int, rounds: int = 25, inner: int = 4
) -> dict:
    """Per-key pps from the minimum wall-clock of ``rounds`` samples,
    each timing ``inner`` back-to-back runs, with the keys sampled
    round-robin inside every round.  Sequential per-key timing lets
    slow machine drift (thermal, background load) land on one shard
    count and fake a scaling inversion; interleaving gives every key
    the same conditions, and the multi-run samples (with the collector
    parked) keep single-digit-millisecond workloads out of the noise
    floor, so the mins are comparable."""
    best = {key: float("inf") for key in runs}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            for key, run in runs.items():
                t0 = time.perf_counter()
                for _ in range(inner):
                    run()
                best[key] = min(best[key], time.perf_counter() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    return {key: round(inner * n_packets / t) for key, t in best.items()}


def test_pipeline_shards_monotone_gate(
    acl1k_engine_accelerator, acl1k_trace, acl1k_zipf_trace
):
    """Acceptance gate: at the engine's serving defaults (auto tier,
    >= 64k-packet dispatch target) adding shards never *costs*
    throughput.  Records the ``persistent_pipeline_pps`` and
    ``flowcache_pipeline_pps`` shards axes that ``compare_baseline.py``
    enforces non-decreasing (0.95 tolerance floor), measured with
    interleaved rounds so the axis shape is drift-insensitive."""
    persistent: dict = {}
    cached_runs: dict = {}
    # One shared cached classifier: per-instance allocation (heap and
    # hardware-cache placement of the flow-cache arrays) shifts the
    # identical workload by a few percent, which would be read as an
    # axis inversion.  Only the shard count may vary between keys.
    cached_clf = CachedClassifier(
        acl1k_engine_accelerator, entries=4096, ways=4
    )
    with contextlib.ExitStack() as stack:
        for shards in (1, 2, 4):
            pipeline = stack.enter_context(ClassificationPipeline(
                acl1k_engine_accelerator, chunk_size=2048, shards=shards,
                persistent=True, shard_mode="auto", min_chunk_packets=65536,
            ))
            pipeline.run(acl1k_trace)  # fork/warm outside the timed rounds
            persistent[f"shards_{shards}"] = (
                lambda p=pipeline: p.run(acl1k_trace)
            )
            cached = ClassificationPipeline(
                cached_clf, chunk_size=2048, shards=shards,
                shard_mode="auto", min_chunk_packets=65536,
            )
            cached.run(acl1k_zipf_trace)  # warm the flow cache
            cached_runs[f"shards_{shards}"] = (
                lambda p=cached: p.run(acl1k_zipf_trace)
            )
        _PERF["persistent_pipeline_pps"] = _interleaved_pps(
            persistent, acl1k_trace.n_packets
        )
        _PERF["flowcache_pipeline_pps"] = _interleaved_pps(
            cached_runs, acl1k_zipf_trace.n_packets
        )
    for family in ("persistent_pipeline_pps", "flowcache_pipeline_pps"):
        series = [_PERF[family][f"shards_{s}"] for s in (1, 2, 4)]
        for prev, cur in zip(series, series[1:]):
            assert cur >= 0.95 * prev, (
                f"{family} inverted along shards: {series}"
            )


def test_fused_lookup_gate(acl1k, acl1k_trace):
    """Acceptance gate: the fused cache->kernel hot path serves the
    miss-heavy random trace >= 1.5x faster than the pre-fusion serving
    path, bit-identically.

    Both sides run the software hypercuts backend behind a 4096-entry
    flow cache on the 20k-packet random trace (low hit rate, so the
    backend kernel dominates — the workload where the hot path matters).
    The *unfused* side is the old serving configuration: 2048-packet
    dispatches, each probing the cache then calling ``classify_batch``
    on the misses (trace wrapper, full per-stage stats).  The *fused*
    side is the new engine default: dispatches coalesced to the >= 64k
    packet target, each probe + compact + single level-synchronous
    ``batch_match`` walk over the misses + scatter + fill in one pass.
    Lands as ``fused_lookup`` in ``BENCH_engine.json`` and is gated by
    ``compare_baseline.py``.
    """
    backend = build_backend("hypercuts", acl1k, binth=30, hw_mode=True)
    trace = acl1k_trace
    unfused = CachedClassifier(backend, entries=4096, ways=4, fused=False)
    fused = CachedClassifier(backend, entries=4096, ways=4)
    old_path = ClassificationPipeline(unfused, chunk_size=2048)
    new_path = ClassificationPipeline(
        fused, chunk_size=2048, min_chunk_packets=65536
    )
    want = old_path.run(trace)  # also warms the unfused cache
    got = new_path.run(trace)  # also warms the fused cache
    # Matches are bit-identical; cache counters differ by design (one
    # coalesced dispatch sees intra-batch repeats as deduplicated
    # misses, where the chunked path hits entries filled by earlier
    # chunks).  Same-grid fused-vs-unfused stat identity is pinned by
    # the fused-path conformance suite.
    assert np.array_equal(want.match, got.match)
    t_unfused = _best_of(lambda: old_path.run(trace))
    t_fused = _best_of(lambda: new_path.run(trace))
    speedup = t_unfused / t_fused
    _PERF["fused_lookup"] = {
        "backend": "hypercuts",
        "rules": len(acl1k),
        "packets": trace.n_packets,
        "entries": 4096,
        "unfused_s": round(t_unfused, 4),
        "fused_s": round(t_fused, 4),
        "speedup": round(speedup, 2),
        "fused_pps": round(trace.n_packets / t_fused),
    }
    assert speedup >= 1.5, f"fused hot path only {speedup:.2f}x"


# ---------------------------------------------------------------------------
# Incremental kernel patching vs full recompilation
# ---------------------------------------------------------------------------
def test_flat_patch_vs_recompile_gate(acl10k):
    """Acceptance gate: a single-rule update on a 10k-rule tree patches
    the compiled kernel >= 3x faster than recompiling it, bit-identically
    (the conformance suite proves the identity; this gates the latency).
    Lands as ``update_patch`` in ``BENCH_engine.json``."""
    inc = IncrementalClassifier(
        acl10k, algorithm="hypercuts", binth=30, spfac=4, hw_mode=True
    )
    tree = inc.tree
    tree.flat  # initial compile outside the timed region
    updates = list(generate_ruleset("acl1", 12, seed=77).rules)
    patch_times = []
    for rule in updates:
        inc.insert(rule)
        t0 = time.perf_counter()
        tree.flat  # applies the row splice
        patch_times.append(time.perf_counter() - t0)
    assert tree.flat_compiles == 1, "update fell back to full recompile"
    assert tree.flat_patches == len(updates)
    t_patch = float(np.median(patch_times))
    t_recompile = _best_of(lambda: FlatTree(tree))
    speedup = t_recompile / t_patch
    _PERF["update_patch"] = {
        "rules": 10_000,
        "updates": len(updates),
        "nodes": len(tree.nodes),
        "patch_ms": round(t_patch * 1e3, 3),
        "recompile_ms": round(t_recompile * 1e3, 3),
        "speedup": round(speedup, 2),
    }
    assert speedup >= 3, f"kernel patch only {speedup:.1f}x a recompile"


def test_update_serving_pipeline(acl1k, acl1k_trace):
    """Live-update serving throughput and apply-latency percentiles:
    an Engine session with an interleaved 64-op churn stream over the
    incremental backend (20k packets)."""
    schedule = generate_update_stream(
        acl1k, 64, acl1k_trace.n_packets, batch_size=8, seed=78
    )
    config = EngineConfig(
        backend="hicuts", updatable=True, chunk_size=2048, binth=30,
    )
    with Engine.open(config, acl1k) as engine:
        t0 = time.perf_counter()
        res = engine.classify(acl1k_trace, updates=schedule)
        elapsed = time.perf_counter() - t0
    assert res.update_ops == 64
    assert res.final_epoch == len(schedule)
    pct = res.update_latency
    assert pct is not None and pct["batches"] == len(schedule)
    _PERF["update_serving"] = {
        "updates": res.update_ops,
        "batches": res.update_batches,
        "packets": res.n_packets,
        "pps": round(res.n_packets / elapsed),
        "latency_p50_ms": round(pct["p50_ms"], 3),
        "latency_p95_ms": round(pct["p95_ms"], 3),
        "latency_p99_ms": round(pct["p99_ms"], 3),
        "latency_max_ms": round(pct["max_ms"], 3),
    }


# ---------------------------------------------------------------------------
# Streamed ingestion vs sequential load-then-run
# ---------------------------------------------------------------------------
def test_stream_overlap_gate(tmp_path, acl1k):
    """Acceptance gate: on a 1M-packet trace file, a streamed Engine
    session (vectorised segment parsing in the ingestion thread,
    classification overlapped on the persistent pool, bounded result
    ring) beats the classic load-then-run pattern >= 1.2x end-to-end,
    bit-identically.  Lands as ``stream_overlap`` in
    ``BENCH_engine.json``."""
    n_packets = 1_000_000
    path = str(tmp_path / "trace1m.txt")
    generate_trace(acl1k, n_packets, seed=81).save(path)
    config = EngineConfig(
        backend="hypercuts", shards=2, persistent=True, chunk_size=8192,
    )
    with Engine.open(config, acl1k) as engine:
        # Warm: fork the pool and compile the flat kernel outside both
        # timed regions (both paths benefit equally).
        engine.classify(generate_trace(acl1k, 20_000, seed=82))

        t0 = time.perf_counter()
        trace = PacketTrace.load(path)  # the pre-serve ingestion path
        t_load = time.perf_counter() - t0
        sequential = engine.classify(trace)
        t_seq = t_load + sequential.elapsed_s

        t0 = time.perf_counter()
        streamed = engine.classify_stream(
            iter_trace_file(path, segment_packets=131_072)
        )
        t_stream = time.perf_counter() - t0

    assert np.array_equal(streamed.match, sequential.match)
    speedup = t_seq / t_stream
    _PERF["stream_overlap"] = {
        "packets": n_packets,
        "segment_packets": 131_072,
        "seq_load_s": round(t_load, 3),
        "seq_classify_s": round(sequential.elapsed_s, 3),
        "seq_total_s": round(t_seq, 3),
        "stream_s": round(t_stream, 3),
        "stream_pps": round(n_packets / t_stream),
        "end_to_end_speedup": round(speedup, 2),
    }
    assert speedup >= 1.2, (
        f"streamed ingestion only {speedup:.2f}x load-then-run"
    )


# ---------------------------------------------------------------------------
# The vectorised linear-search oracle
# ---------------------------------------------------------------------------
def test_oracle_batch_match_speedup(acl1k, acl1k_trace):
    """The chunked (chunk, rule_block) oracle kernel vs the per-packet
    loop it replaced — the slowest tier-1 path before this change."""
    arrays = acl1k.arrays
    sub = acl1k_trace.headers[:2000]
    t0 = time.perf_counter()
    scalar = np.asarray([arrays.first_match(h) for h in sub])
    t_scalar = time.perf_counter() - t0
    arrays.batch_match(sub)  # warm
    t_batch = _best_of(lambda: arrays.batch_match(sub))
    assert np.array_equal(scalar, arrays.batch_match(sub))
    speedup = t_scalar / t_batch
    _PERF["oracle"] = {
        "rules": len(acl1k),
        "packets": len(sub),
        "scalar_s": round(t_scalar, 4),
        "batch_s": round(t_batch, 4),
        "speedup": round(speedup, 2),
    }
    assert speedup >= 2, f"vectorised oracle only {speedup:.1f}x"


# ---------------------------------------------------------------------------
# Stage-graph RX pipeline vs bare classify
# ---------------------------------------------------------------------------
def test_stage_graph_overhead_gate(acl1k, acl1k_zipf_trace):
    """Acceptance gate: the full eight-stage line-card RX graph (parse
    -> drop -> extract -> tcam_prefilter -> flow_cache -> classify ->
    rewrite -> queue_select) serves the Zipf workload at >= 0.5x the
    throughput of a bare flow-cached ``Engine.classify`` on the same
    classifier configuration, with bit-identical verdicts.  Lands as
    ``stage_graph`` in ``BENCH_engine.json``; ``overhead_ratio`` is
    gated by ``compare_baseline.py``."""
    from repro.stages import StageGraph, default_graph

    trace = acl1k_zipf_trace
    overlay = {"backend": "hypercuts", "chunk_size": 4096}
    config = EngineConfig.from_dict({
        **EngineConfig().to_dict(), **overlay,
        "cache_entries": 4096, "cache_ways": 4,
    })
    spec = default_graph(overlay, cache_entries=4096)
    with Engine.open(config, acl1k) as engine:
        want = engine.classify(trace)
        t_bare = _best_of(lambda: engine.classify(trace))
    with StageGraph(spec, acl1k) as graph:
        got = graph.run(trace)
        assert np.array_equal(got.match, want.match)
        t_graph = _best_of(lambda: graph.run(trace))
    ratio = t_bare / t_graph
    _PERF["stage_graph"] = {
        "stages": len(spec.stages),
        "rules": len(acl1k),
        "packets": trace.n_packets,
        "bare_s": round(t_bare, 4),
        "graph_s": round(t_graph, 4),
        "overhead_ratio": round(ratio, 2),
        "graph_pps": round(trace.n_packets / t_graph),
    }
    assert ratio >= 0.5, (
        f"stage graph serves at only {ratio:.2f}x bare classify"
    )


# ---------------------------------------------------------------------------
# Multi-tenant serving vs the single-tenant engine
# ---------------------------------------------------------------------------
def test_multi_tenant_aggregate_gate(acl1k, acl1k_trace):
    """Acceptance gate: eight tenants interleaved through one
    :class:`MultiTenantEngine` sustain >= 0.7x the single-tenant
    aggregate pps on the same workload, every tenant's output is
    bit-identical to an isolated run, and a tenant crashing under the
    ``fail`` policy is quarantined without perturbing its neighbours.
    Lands as ``multi_tenant`` in ``BENCH_engine.json``."""
    n_tenants = 8
    # 20k packets *per tenant*: small enough to serve in a couple of
    # seconds, large enough that the scheduler's per-segment overhead
    # is measured against real serving work, not wall-clock noise.
    per = 20_000
    n_packets = n_tenants * per
    trace = generate_trace(acl1k, n_packets, seed=83)
    config = EngineConfig(backend="hypercuts", chunk_size=2048)
    names = [f"t{i}" for i in range(n_tenants)]
    workloads = dict(zip(names, iter_trace_segments(trace, per)))

    with Engine.open(config, acl1k) as engine:
        engine.classify(trace)  # warm: compile the flat kernel
        t_single = _best_of(lambda: engine.classify(trace))
        isolated = {
            name: engine.classify(seg).match
            for name, seg in workloads.items()
        }
    single_pps = n_packets / t_single

    tenants = [(TenantSpec(name=n, config=config), acl1k) for n in names]
    with MultiTenantEngine.open(tenants) as mte:
        mte.serve(workloads, segment_packets=4096)  # warm
        t_multi = _best_of(
            lambda: mte.serve(workloads, segment_packets=4096)
        )
        report = mte.serve(workloads, segment_packets=4096)
    assert report.n_packets == n_packets
    for tenant in report.tenants:
        assert tenant.fault is None
        assert np.array_equal(tenant.report.match, isolated[tenant.name])
    aggregate_pps = n_packets / t_multi
    ratio = aggregate_pps / single_pps

    # Isolation under fault: the crashing tenant is quarantined, every
    # other tenant's output stays bit-identical.  The chaos tenant runs
    # sharded worker processes (the tier crash faults inject into).
    chaos_config = EngineConfig(
        backend="hypercuts", chunk_size=2048, shards=2,
        shard_mode="processes", min_chunk_packets=0,
    )
    fleet = [(TenantSpec(name="chaos", config=chaos_config), acl1k)] + tenants[1:]
    chaos_workloads = {"chaos": workloads["t0"], **{
        n: workloads[n] for n in names[1:]
    }}
    faults = {"chaos": [FaultSpec(kind="crash", segment=0, chunk=0)]}
    with MultiTenantEngine.open(fleet) as mte:
        chaos_report = mte.serve(
            chaos_workloads, faults=faults, segment_packets=4096
        )
    by_name = {t.name: t for t in chaos_report.tenants}
    assert by_name["chaos"].fault is not None
    survivors = [t for t in chaos_report.tenants if t.name != "chaos"]
    assert all(t.fault is None for t in survivors)
    for tenant in survivors:
        assert np.array_equal(tenant.report.match, isolated[tenant.name])

    _PERF["multi_tenant"] = {
        "tenants": n_tenants,
        "packets": n_packets,
        "single_tenant_pps": round(single_pps),
        "aggregate_pps": round(aggregate_pps),
        "aggregate_ratio": round(ratio, 3),
        "quarantined_survivors": len(survivors),
    }
    assert ratio >= 0.7, (
        f"8-tenant aggregate only {ratio:.2f}x single-tenant throughput"
    )
