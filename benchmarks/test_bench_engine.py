"""Benchmarks: the engine pipeline and the vectorised tuple-space path.

Tracks the serving subsystem this repo is growing toward: pipeline
throughput at 1/2/4 shards over the accelerator backend, plus the
vectorised tuple-space batch lookup against the per-packet scalar loop it
replaced (the conformance oracle).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.algorithms import TupleSpaceClassifier
from repro.engine import ClassificationPipeline, build_backend

pytestmark = pytest.mark.bench


@pytest.fixture(scope="module")
def acl1k_engine_accelerator(acl1k):
    return build_backend("accelerator", acl1k)


@pytest.fixture(scope="module")
def acl1k_tss(acl1k):
    clf = TupleSpaceClassifier(acl1k)
    clf.classify_batch(np.empty((0, 5), dtype=np.uint32))  # warm batch tables
    return clf


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_pipeline_throughput(benchmark, acl1k_engine_accelerator, acl1k_trace, shards):
    """Sharded streaming over the accelerator backend (20k packets)."""
    pipeline = ClassificationPipeline(
        acl1k_engine_accelerator, chunk_size=2048, shards=shards
    )
    res = benchmark(lambda: pipeline.run(acl1k_trace))
    assert res.n_packets == acl1k_trace.n_packets
    assert res.mean_occupancy() is not None


def test_tuple_space_batch(benchmark, acl1k_tss, acl1k_trace):
    """Vectorised TSS batch lookup over the full 20k-packet trace."""
    out = benchmark(lambda: acl1k_tss.classify_batch(acl1k_trace.headers))
    assert out.shape == (acl1k_trace.n_packets,)


def test_tuple_space_scalar_loop(benchmark, acl1k_tss, acl1k_trace):
    """The seed's per-packet loop (small slice; it is the oracle path)."""
    sub = acl1k_trace.headers[:500]
    benchmark(
        lambda: np.asarray([acl1k_tss.classify(row) for row in sub])
    )


def test_tuple_space_speedup_at_least_10x(acl1k_tss, acl1k_trace):
    """Acceptance gate: vectorised batch >= 10x the seed scalar loop on
    the 1k-rule benchmark ruleset."""
    headers = acl1k_trace.headers[:2000]
    t0 = time.perf_counter()
    scalar = np.asarray([acl1k_tss.classify(row) for row in headers])
    t_scalar = time.perf_counter() - t0
    acl1k_tss.classify_batch(headers)  # warm
    t0 = time.perf_counter()
    batch = acl1k_tss.classify_batch(headers)
    t_batch = time.perf_counter() - t0
    assert np.array_equal(scalar, batch)
    speedup = t_scalar / t_batch
    assert speedup >= 10, f"vectorised TSS only {speedup:.1f}x faster"


def test_registry_build_hypercuts(benchmark, acl1k):
    """Backend construction cost through the registry."""
    benchmark(lambda: build_backend("hypercuts", acl1k, binth=30, hw_mode=True))
