"""Benchmarks: regenerating each paper table (quick-grid workloads).

One benchmark per table/figure of the evaluation section, wired to the
same experiment modules that produce EXPERIMENTS.md.  A shared pipeline
fixture caches workloads, so each benchmark measures its table's own
projection work on top of the built structures — plus one uncached
benchmark (`test_table2_cold`) that measures the full build pipeline.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablations,
    figures,
    section53,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)
from repro.experiments.common import Pipeline

pytestmark = pytest.mark.bench


def test_table2_memory(benchmark, pipeline):
    rows = benchmark(lambda: table2.run(pipeline))
    assert rows


def test_table2_cold(benchmark):
    """Full cost of Table 2 from scratch (generation + builds + layout)."""

    def cold():
        return table2.run(Pipeline(seed=13, quick=True, trace_packets=2000))

    benchmark.pedantic(cold, rounds=1, iterations=1)


def test_table3_build_energy(benchmark, pipeline):
    assert benchmark(lambda: table3.run(pipeline))


def test_table4_scaling(benchmark, pipeline):
    rows = benchmark.pedantic(
        lambda: table4.run(pipeline, families=("acl1", "fw1")),
        rounds=1, iterations=1,
    )
    assert rows


def test_table5_devices(benchmark, pipeline):
    assert benchmark(lambda: table5.report(pipeline))


def test_table6_energy_per_packet(benchmark, pipeline):
    assert benchmark(lambda: table6.run(pipeline))


def test_table7_throughput(benchmark, pipeline):
    rows = benchmark.pedantic(
        lambda: table7.run(pipeline), rounds=1, iterations=1
    )
    assert rows


def test_table8_worst_case(benchmark, pipeline):
    assert benchmark(lambda: table8.run(pipeline))


def test_figures_demo_trees(benchmark):
    def build_figures():
        return (
            figures.figure1_matches_paper(),
            figures.figure3_matches_paper(),
        )

    checks = benchmark(build_figures)
    assert all("PASS" in c for group in checks for c in group)


def test_section53_tcam(benchmark, pipeline):
    assert "Ayama" in benchmark(lambda: section53.report(pipeline))


def test_ablation_speed(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.speed_ablation(size=400, trace_packets=2000),
        rounds=1, iterations=1,
    )
    assert rows[0].bytes_used <= rows[1].bytes_used
