"""Compare a fresh ``BENCH_sweeps.json`` against the committed baseline.

The sweep analogue of ``compare_baseline.py``: cell-level metrics are
diffed against ``benchmarks/sweeps_baseline.json`` with the same two
enforcement tiers plus the same monotone-axis check, and the same exit
semantics (non-zero on any gated regression):

* **gated per-cell metrics** (:data:`GATED_CELL_METRICS`) are the
  *deterministic* ones — flow-cache ``hit_rate``, the cache-effective
  ``memory_accesses_per_lookup``, the modelled ``energy_per_packet_j``
  and ``matched_fraction``.  Given the spec's per-cell seeding these
  are bit-stable across runs and runners, so a >25% drift (default
  ``--fail-threshold 0.75``) is a real behaviour change, never noise.
  A gated metric (or a whole baseline cell) vanishing from the current
  run also fails — grid coverage must not silently shrink.
* **informational metrics** (``throughput_pps``, ``elapsed_s``,
  line-rate headroom) are wall-clock and runner-sensitive: warn-only.
* **monotone axes**: within every group of cells that differ *only* in
  ``cache_entries``, the cached cells' ``hit_rate`` must be
  non-decreasing as the cache grows (up to ``--monotone-tolerance``).
  A bigger cache serving a colder hit rate is the inverted-scaling
  shape no per-cell baseline ratio can see.

Usage::

    python benchmarks/compare_sweeps.py BENCH_sweeps.json \
        benchmarks/sweeps_baseline.json [--allow-missing]

``--allow-missing`` downgrades baseline cells absent from the current
run to warnings — for local ``--filter``\\ ed sweeps; CI runs without
it, so the quick grid must stay a superset of the baseline.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

#: Per-cell metric leaves enforced as hard gates (deterministic given
#: the spec's seeded workloads).
GATED_CELL_METRICS = frozenset({
    "hit_rate",
    "memory_accesses_per_lookup",
    "energy_per_packet_j",
    "matched_fraction",
})

#: Per-cell metric leaves that improve downward.
_LOWER_IS_BETTER = frozenset({
    "memory_accesses_per_lookup",
    "energy_per_packet_j",
    "elapsed_s",
})


def _cells(artifact: dict) -> dict[str, dict]:
    cells = artifact.get("cells")
    if not isinstance(cells, dict):
        raise ValueError("artifact has no 'cells' mapping")
    return cells


def _ratio(key: str, base: float, cur: float) -> float:
    if base == 0 or cur == 0:
        # Both zero is a exact match; one-sided zero is a collapse.
        return 1.0 if base == cur else float("nan")
    return base / cur if key in _LOWER_IS_BETTER else cur / base


def _cache_group_key(cell_id: str) -> str | None:
    """The cell's coordinates with the cache-entries field blanked —
    cells sharing a key differ only in cache size."""
    blanked, n = re.subn(r"/e\d+w", "/e*w", cell_id)
    return blanked if n == 1 else None


def check_monotone_cache_axis(
    current: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """``hit_rate`` must be non-decreasing along the cache_entries axis
    inside every otherwise-identical cell group."""
    groups: dict[str, list[tuple[int, float]]] = {}
    for cell_id, metrics in _cells(current).items():
        hit = metrics.get("hit_rate")
        entries = metrics.get("cache_entries")
        if hit is None or not entries:
            continue
        key = _cache_group_key(cell_id)
        if key is not None:
            groups.setdefault(key, []).append((int(entries), float(hit)))
    lines: list[str] = []
    failures: list[str] = []
    checked = 0
    for key in sorted(groups):
        series = sorted(groups[key])
        if len(series) < 2:
            continue
        checked += 1
        broken = [
            f"e{prev_e} (hit {prev:.3f}) -> e{e} (hit {val:.3f})"
            for (prev_e, prev), (e, val) in zip(series, series[1:])
            if val < tolerance * prev
        ]
        if broken:
            failures.append(f"monotone:{key}")
            lines.append(
                f"- :x: `{key}` hit rate must not fall as the cache "
                f"grows (tolerance {tolerance:.0%}): {'; '.join(broken)}"
            )
    header = [
        "",
        "### Monotone cache axis (current run)",
        "",
        f"- {checked} cell groups checked: hit rate non-decreasing "
        f"along cache_entries"
        + (f", {len(failures)} inverted" if failures else ", all held"),
    ]
    return header + lines, failures


def compare(
    current: dict,
    baseline: dict,
    threshold: float,
    fail_threshold: float,
    monotone_tolerance: float = 0.9,
    allow_missing: bool = False,
) -> tuple[str, list[str]]:
    """Markdown report plus the list of failed gated cell metrics."""
    cur_cells, base_cells = _cells(current), _cells(baseline)
    shared = sorted(set(cur_cells) & set(base_cells))
    lines = [
        "## Sweep grid vs committed baseline",
        "",
        f"{len(cur_cells)} current cells, {len(base_cells)} baseline "
        f"cells, {len(shared)} shared.",
        "",
        "| cell | metric | baseline | current | ratio (>1 = better) | |",
        "| --- | --- | ---: | ---: | ---: | --- |",
    ]
    flagged = 0
    failures: list[str] = []
    shown_ok = 0
    for cell_id in shared:
        base_m, cur_m = base_cells[cell_id], cur_cells[cell_id]
        keys = sorted(
            k
            for k, v in base_m.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        )
        for key in keys:
            b = float(base_m[key])
            gated = key in GATED_CELL_METRICS
            if key not in cur_m:
                if gated:
                    failures.append(f"{cell_id}:{key}")
                    lines.append(
                        f"| `{cell_id}` | `{key}` | {b:g} | *missing* "
                        f"| — | :x: gated |"
                    )
                continue
            c = float(cur_m[key])
            ratio = _ratio(key, b, c)
            mark = ""
            if gated and (ratio != ratio or ratio < fail_threshold):
                mark = ":x: gated"
                failures.append(f"{cell_id}:{key}")
            elif gated and ratio < threshold:
                mark = "gated"
            elif not gated and ratio == ratio and ratio < threshold:
                mark = ":warning:"
                flagged += 1
            if mark:
                lines.append(
                    f"| `{cell_id}` | `{key}` | {b:g} | {c:g} "
                    f"| {ratio:.2f} | {mark} |"
                )
            else:
                shown_ok += 1
    lines.append(
        f"| *({shown_ok} unremarkable cell metrics elided)* | | | | | |"
    )
    missing = sorted(set(base_cells) - set(cur_cells))
    if missing:
        label = ":warning:" if allow_missing else ":x: gated"
        lines += ["", f"Baseline cells missing from this run ({label}):"]
        lines += [f"- `{cell_id}`" for cell_id in missing]
        if not allow_missing:
            failures.extend(f"{cell_id}:missing" for cell_id in missing)
    new = sorted(set(cur_cells) - set(base_cells))
    if new:
        lines += [
            "",
            f"{len(new)} new cells (no baseline yet): "
            + ", ".join(f"`{c}`" for c in new[:8])
            + (" ..." if len(new) > 8 else ""),
        ]
    mono_lines, mono_failures = check_monotone_cache_axis(
        current, monotone_tolerance
    )
    lines += mono_lines
    failures.extend(mono_failures)
    lines += [
        "",
        f"{flagged} informational cell metrics below the "
        f"{threshold:.0%} warn threshold.",
    ]
    if failures:
        lines += [
            "",
            f"**FAIL**: gated sweep metric(s) regressed more than "
            f"{1 - fail_threshold:.0%}, vanished, or inverted: "
            + ", ".join(f"`{k}`" for k in sorted(set(failures))[:12])
            + (" ..." if len(set(failures)) > 12 else ""),
        ]
    return "\n".join(lines), sorted(set(failures))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh BENCH_sweeps.json")
    parser.add_argument(
        "baseline", help="committed benchmarks/sweeps_baseline.json"
    )
    parser.add_argument("--threshold", type=float, default=0.8,
                        help="ratio below which a row is flagged (warn)")
    parser.add_argument("--fail-threshold", type=float, default=0.75,
                        help="ratio below which a GATED cell metric fails")
    parser.add_argument("--monotone-tolerance", type=float, default=0.9,
                        help="noise allowance for the cache-axis hit-rate "
                             "monotone check")
    parser.add_argument("--allow-missing", action="store_true",
                        help="warn (instead of fail) on baseline cells "
                             "absent from the current run — for local "
                             "--filter'ed sweeps")
    args = parser.parse_args(argv)
    try:
        with open(args.current, encoding="utf-8") as fh:
            current = json.load(fh)
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"sweep comparison skipped: {exc}", file=sys.stderr)
        return 0  # missing inputs stay non-fatal (fresh checkouts)
    try:
        report, failures = compare(
            current,
            baseline,
            args.threshold,
            args.fail_threshold,
            monotone_tolerance=args.monotone_tolerance,
            allow_missing=args.allow_missing,
        )
    except ValueError as exc:
        print(f"sweep comparison failed: {exc}", file=sys.stderr)
        return 1
    print(report)
    if failures:
        print(
            f"gated sweep regression(s): {', '.join(failures[:12])}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
