"""Benchmarks: classification throughput (the Table 7 workload)."""

from __future__ import annotations

import pytest

from repro import generate_trace
from repro.algorithms import LinearSearchClassifier
from repro.algorithms.rfc import build_rfc
from repro.hw import AcceleratorFSM, build_memory_image

pytestmark = pytest.mark.bench


def test_accelerator_run_trace(benchmark, acl1k_accelerator, acl1k_trace):
    """Vectorised accelerator model over a 20k-packet trace."""
    run = benchmark(lambda: acl1k_accelerator.run_trace(acl1k_trace))
    assert run.n_packets == acl1k_trace.n_packets


def test_batch_lookup_software_tree(benchmark, acl1k_hw_tree, acl1k_trace):
    benchmark(lambda: acl1k_hw_tree.batch_lookup(acl1k_trace))


def test_fsm_cycle_accurate(benchmark, acl1k_image, acl1k_trace):
    """Cycle-accurate FSM (small slice; it is the validation path)."""
    sub = acl1k_trace.subset(500)
    benchmark(lambda: AcceleratorFSM(acl1k_image).run(sub))


def test_linear_search_oracle(benchmark, acl1k, acl1k_trace):
    sub = acl1k_trace.subset(2000)
    lin = LinearSearchClassifier(acl1k)
    benchmark(lambda: lin.classify_trace(sub))


def test_rfc_batch(benchmark, acl1k, acl1k_trace):
    rfc = build_rfc(acl1k)
    benchmark(lambda: rfc.classify_trace(acl1k_trace))


def test_memory_image_build(benchmark, acl1k_hw_tree):
    benchmark(lambda: build_memory_image(acl1k_hw_tree, speed=1))


def test_trace_generation(benchmark, acl1k):
    benchmark(lambda: generate_trace(acl1k, 20_000, seed=9))
