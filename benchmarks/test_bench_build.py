"""Benchmarks: search-structure construction (the Table 3 workload)."""

from __future__ import annotations

import pytest

from repro import generate_ruleset
from repro.algorithms import build_hicuts, build_hypercuts

pytestmark = pytest.mark.bench


@pytest.fixture(scope="module")
def acl():
    return generate_ruleset("acl1", 1000, seed=7)


@pytest.fixture(scope="module")
def fw():
    return generate_ruleset("fw1", 1000, seed=7)


def test_build_hicuts_software(benchmark, acl):
    benchmark(lambda: build_hicuts(acl, binth=16, spfac=4))


def test_build_hicuts_hw(benchmark, acl):
    benchmark(lambda: build_hicuts(acl, binth=30, spfac=4, hw_mode=True))


def test_build_hypercuts_software(benchmark, acl):
    benchmark(lambda: build_hypercuts(acl, binth=16, spfac=4))


def test_build_hypercuts_hw(benchmark, acl):
    benchmark(lambda: build_hypercuts(acl, binth=30, spfac=4, hw_mode=True))


def test_build_hicuts_hw_firewall(benchmark, fw):
    """Wildcard-heavy sets stress replication and merging."""
    benchmark(lambda: build_hicuts(fw, binth=30, spfac=4, hw_mode=True))


def test_generate_ruleset(benchmark):
    benchmark(lambda: generate_ruleset("acl1", 1000, seed=11))
