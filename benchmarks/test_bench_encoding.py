"""Benchmarks: memory-word encode/decode and the FSM datapath kernel."""

from __future__ import annotations

import pytest

from repro.core.rules import Rule
from repro.hw.encoding import (
    ChildEntry,
    decode_internal_node,
    decode_rule,
    encode_internal_node,
    encode_rule,
    pack_leaf_word,
    unpack_leaf_word,
)

pytestmark = pytest.mark.bench


@pytest.fixture(scope="module")
def rule():
    return Rule.from_5tuple(
        (0xC0A80000, 16), (0x0A000001, 32), (1024, 65535), (80, 80), (6, 1)
    )


@pytest.fixture(scope="module")
def node_word():
    entries = [ChildEntry(is_leaf=(i % 3 == 0), addr=i % 1024, pos=i % 30)
               for i in range(256)]
    return encode_internal_node(
        [0xF8, 0xC0, 0, 0x80, 0xFF], [3, -2, 0, 7, 0], entries
    )


@pytest.fixture(scope="module")
def leaf_word(rule):
    slots = [encode_rule(rule, i, i == 29) for i in range(30)]
    return pack_leaf_word(slots)


def test_encode_rule(benchmark, rule):
    benchmark(lambda: encode_rule(rule, 7, False))


def test_decode_rule(benchmark, rule):
    slot = encode_rule(rule, 7, False)
    benchmark(lambda: decode_rule(slot))


def test_encode_internal_node(benchmark):
    entries = [ChildEntry(False, i, 0) for i in range(256)]
    benchmark(
        lambda: encode_internal_node([0xFF, 0, 0, 0, 0], [0, 0, 0, 0, 0], entries)
    )


def test_decode_internal_node(benchmark, node_word):
    benchmark(lambda: decode_internal_node(node_word))


def test_child_index_datapath(benchmark, node_word):
    dec = decode_internal_node(node_word)
    msb8 = (0xAB, 0x12, 0x55, 0x80, 0x06)
    benchmark(lambda: dec.child_index(msb8))


def test_pack_unpack_leaf(benchmark, leaf_word):
    benchmark(lambda: unpack_leaf_word(leaf_word))
