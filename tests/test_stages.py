"""Tests for the declarative line-card RX stage graph (repro.stages).

Covers the spec layer (validation, JSON round-trip), the runner's
bit-identity contract against a bare ``Engine.classify`` across
backend x shards x cache, per-stage telemetry and energy accounting,
stage-targeted fault injection, TCAM monitor mode under live updates,
and file-source quarantine propagation into ``EngineReport.to_dict``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.classbench import churn_schedule, generate_zipf_trace
from repro.core.errors import ConfigError, ServingFaultError
from repro.core.rules import DIM_PROTO
from repro.engine.faults import FaultPlan, FaultSpec
from repro.serve import Engine, EngineConfig
from repro.stages import (
    STAGE_KINDS,
    StageGraph,
    StageGraphSpec,
    StageSpec,
    default_graph,
)


@pytest.fixture(scope="module")
def zipf_small(acl_small):
    return generate_zipf_trace(
        acl_small, 3000, n_flows=256, skew=1.0, seed=11
    )


# ---------------------------------------------------------------------------
# Spec validation and round-trip
# ---------------------------------------------------------------------------


class TestStageSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown stage kind"):
            StageSpec(kind="decrypt")

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigError, match="unknown rewrite stage"):
            StageSpec(kind="rewrite", params={"bites": 14})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown StageSpec field"):
            StageSpec.from_dict({"kind": "parse", "color": "red"})

    def test_name_defaults_to_kind(self):
        assert StageSpec(kind="drop").name == "drop"

    @pytest.mark.parametrize(
        "kind, params, match",
        [
            ("parse", {"on_malformed": "explode"}, "on_malformed"),
            ("queue_select", {"policy": "rr"}, "policy"),
            ("queue_select", {"queues": 0}, "queues must be >= 1"),
            ("flow_cache", {"entries": 100, "ways": 8}, "multiple"),
            ("tcam_prefilter", {"max_slots": -1}, ">= 0"),
            ("rewrite", {"bytes": "wide"}, "must be an int"),
            ("drop", {"deny_proto": [6, -1]}, "non-negative"),
            ("drop", {"deny_dst_ports": [[80, 22]]}, "not a valid range"),
            ("drop", {"deny_dst_ports": [[80]]}, "pairs"),
            ("extract", {"fields": "all"}, "list of ints"),
            ("classify", {"engine": 7}, "must be a dict"),
        ],
    )
    def test_bad_params_rejected(self, kind, params, match):
        with pytest.raises(ConfigError, match=match):
            StageSpec(kind=kind, params=params)


class TestStageGraphSpec:
    def test_default_graph_has_every_kind(self):
        spec = default_graph()
        assert tuple(s.kind for s in spec.stages) == STAGE_KINDS

    def test_cache_entries_zero_omits_flow_cache(self):
        spec = default_graph(cache_entries=0)
        assert spec.stage("flow_cache") is None
        assert spec.engine_config().cache_entries == 0

    def test_json_round_trip_is_lossless(self, tmp_path):
        spec = default_graph(
            {"backend": "hicuts", "shards": 2}, cache_entries=1024, queues=4
        )
        path = tmp_path / "graph.json"
        spec.save(str(path))
        again = StageGraphSpec.load(str(path))
        assert again == spec
        assert StageGraphSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec

    def test_needs_exactly_one_classify(self):
        with pytest.raises(ConfigError, match="exactly one classify"):
            StageGraphSpec(stages=(StageSpec(kind="parse"),))

    def test_duplicate_stage_rejected(self):
        with pytest.raises(ConfigError, match="duplicate 'rewrite'"):
            StageGraphSpec(
                stages=(
                    StageSpec(kind="classify"),
                    StageSpec(kind="rewrite"),
                    StageSpec(kind="rewrite", name="rewrite2"),
                )
            )

    def test_out_of_order_rejected(self):
        with pytest.raises(ConfigError, match="canonical order"):
            StageGraphSpec(
                stages=(
                    StageSpec(kind="classify"),
                    StageSpec(kind="drop"),
                )
            )

    def test_unknown_graph_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown StageGraphSpec"):
            StageGraphSpec.from_dict({"stages": [], "edges": []})

    def test_cache_overlay_clash_rejected(self):
        with pytest.raises(ConfigError, match="flow_cache stage owning"):
            StageGraphSpec(
                stages=(
                    StageSpec(kind="flow_cache", params={"entries": 1024}),
                    StageSpec(
                        kind="classify",
                        params={"engine": {"cache_entries": 64}},
                    ),
                )
            )

    def test_engine_config_merges_stage_ownership(self):
        spec = StageGraphSpec(
            stages=(
                StageSpec(kind="parse", params={"on_malformed": "raise"}),
                StageSpec(
                    kind="flow_cache", params={"entries": 512, "ways": 2}
                ),
                StageSpec(
                    kind="classify", params={"engine": {"backend": "hicuts"}}
                ),
            )
        )
        config = spec.engine_config()
        assert config.backend == "hicuts"
        assert config.cache_entries == 512
        assert config.cache_ways == 2
        assert config.on_malformed == "raise"

    def test_load_missing_file_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot load stage graph"):
            StageGraphSpec.load(str(tmp_path / "absent.json"))


# ---------------------------------------------------------------------------
# Bit-identity against the bare engine
# ---------------------------------------------------------------------------


class TestBitIdentity:
    @pytest.mark.parametrize("backend", ["hypercuts", "hicuts"])
    @pytest.mark.parametrize("shards", [1, 2])
    @pytest.mark.parametrize("cache_entries", [0, 1024])
    def test_classify_stage_matches_bare_engine(
        self, acl_small, zipf_small, backend, shards, cache_entries
    ):
        overlay = {"backend": backend, "shards": shards, "chunk_size": 1000}
        config = EngineConfig.from_dict(
            {
                **EngineConfig().to_dict(),
                **overlay,
                "cache_entries": cache_entries,
            }
        )
        with Engine.open(config, acl_small) as engine:
            want = engine.classify(zipf_small).match
        spec = default_graph(overlay, cache_entries=cache_entries)
        with StageGraph(spec, acl_small) as graph:
            report = graph.run(zipf_small, segment_packets=1000)
        assert np.array_equal(report.match, want)
        assert report.n_packets == zipf_small.n_packets

    def test_bit_identity_under_live_updates(self, acl_small, zipf_small):
        schedule = churn_schedule(
            acl_small, 40, zipf_small.n_packets, seed=5
        )
        overlay = {
            "backend": "hypercuts", "chunk_size": 1000, "updatable": True,
        }
        config = EngineConfig.from_dict(
            {**EngineConfig().to_dict(), **overlay, "cache_entries": 1024}
        )
        with Engine.open(config, acl_small) as engine:
            want = engine.classify(zipf_small, updates=schedule).match
        spec = default_graph(overlay, cache_entries=1024)
        with StageGraph(spec, acl_small) as graph:
            report = graph.run(
                zipf_small, updates=schedule, segment_packets=1000
            )
        assert np.array_equal(report.match, want)
        tcam = next(s for s in report.stages if s.kind == "tcam_prefilter")
        # Live updates put the prefilter in monitor mode: it observes
        # but filters nothing (the image is the build-time ruleset).
        assert tcam.extra.get("mode") == "monitor"
        assert "tcam_miss" not in tcam.drops
        assert tcam.packets_in == tcam.packets_out

    def test_tcam_drops_only_no_match_packets(self, acl_small, zipf_small):
        spec = default_graph({"backend": "hypercuts"}, cache_entries=0)
        with Engine.open(
            EngineConfig(backend="hypercuts"), acl_small
        ) as engine:
            want = engine.classify(zipf_small).match
        with StageGraph(spec, acl_small) as graph:
            report = graph.run(zipf_small, segment_packets=1000)
        tcam = next(s for s in report.stages if s.kind == "tcam_prefilter")
        n_miss = int((want < 0).sum())
        assert tcam.drops.get("tcam_miss", 0) == n_miss
        # Prefiltered packets report -1, exactly like a bare no-match.
        assert np.array_equal(report.match, want)


# ---------------------------------------------------------------------------
# Stage semantics and telemetry
# ---------------------------------------------------------------------------


class TestStageSemantics:
    def test_acl_drop_stage_filters_and_accounts(
        self, acl_small, zipf_small
    ):
        spec = StageGraphSpec(
            stages=(
                StageSpec(kind="drop", params={"deny_proto": [17]}),
                StageSpec(
                    kind="classify",
                    params={"engine": {"backend": "hypercuts"}},
                ),
            )
        )
        denied = zipf_small.headers[:, DIM_PROTO] == 17
        assert denied.any(), "trace must carry some UDP to be a real test"
        with Engine.open(
            EngineConfig(backend="hypercuts"), acl_small
        ) as engine:
            want = engine.classify(zipf_small).match
        with StageGraph(spec, acl_small) as graph:
            report = graph.run(zipf_small, segment_packets=1000)
        drop = report.stages[0]
        assert drop.drops == {"acl_proto": int(denied.sum())}
        assert (report.match[denied] == -1).all()
        assert np.array_equal(report.match[~denied], want[~denied])

    def test_telemetry_conservation_and_energy(self, acl_small, zipf_small):
        spec = default_graph({"backend": "hypercuts"}, cache_entries=1024)
        with StageGraph(spec, acl_small) as graph:
            report = graph.run(zipf_small, segment_packets=1000)
        for stage in report.stages:
            assert stage.packets_out == stage.packets_in - stage.dropped
            assert stage.energy_j > 0.0
            assert stage.busy_s >= 0.0
        cache = next(s for s in report.stages if s.kind == "flow_cache")
        assert cache.extra["hits"] == report.cache_hits
        assert cache.extra["misses"] == report.cache_misses
        tcam = next(s for s in report.stages if s.kind == "tcam_prefilter")
        assert tcam.extra["n_slots"] > 0
        assert 0 < tcam.extra["unique_flows"] <= zipf_small.n_packets

    @pytest.mark.parametrize("policy", ["hash", "match"])
    def test_queue_occupancy_sums_to_survivors(
        self, acl_small, zipf_small, policy
    ):
        spec = StageGraphSpec(
            stages=(
                StageSpec(
                    kind="classify",
                    params={"engine": {"backend": "hypercuts"}},
                ),
                StageSpec(
                    kind="queue_select",
                    params={"queues": 4, "policy": policy},
                ),
            )
        )
        with StageGraph(spec, acl_small) as graph:
            report = graph.run(zipf_small, segment_packets=1000)
        queue = report.stages[-1]
        occ = queue.extra["queue_occupancy"]
        assert len(occ) == 4
        assert sum(occ) == queue.packets_out == zipf_small.n_packets
        if policy == "hash":
            # The flow hash must actually spread flows across queues.
            assert sum(1 for c in occ if c) > 1

    def test_rewrite_touches_only_matched(self, acl_small, zipf_small):
        spec = default_graph({"backend": "hypercuts"}, cache_entries=0)
        with StageGraph(spec, acl_small) as graph:
            report = graph.run(zipf_small)
        rewrite = next(s for s in report.stages if s.kind == "rewrite")
        assert rewrite.extra["packets_rewritten"] == report.matched

    def test_report_to_dict_carries_stages(self, acl_small, zipf_small):
        spec = default_graph({"backend": "hypercuts"}, cache_entries=1024)
        with StageGraph(spec, acl_small) as graph:
            out = graph.run(zipf_small).to_dict()
        assert [s["kind"] for s in out["stages"]] == list(STAGE_KINDS)
        for stage in out["stages"]:
            assert stage["packets_in"] >= stage["packets_out"]
            assert stage["energy_per_packet_j"] > 0

    def test_tcam_bypassed_on_non_five_tuple_schema(self, demo_ruleset):
        from tests.conftest import random_headers

        spec = default_graph({"software": True}, cache_entries=0)
        headers = random_headers(demo_ruleset.schema, 200, seed=3)
        with StageGraph(spec, demo_ruleset) as graph:
            assert graph.tcam is None
            report = graph.run(headers)
        tcam = next(s for s in report.stages if s.kind == "tcam_prefilter")
        assert tcam.extra["bypassed"] == "schema"
        assert tcam.packets_in == tcam.packets_out == 200

    def test_tcam_bypassed_on_slot_budget(self, acl_small, zipf_small):
        spec = default_graph(cache_entries=0)
        spec = StageGraphSpec.from_dict(
            {
                "name": spec.name,
                "stages": [
                    {**s.to_dict(), "params": {"max_slots": 1}}
                    if s.kind == "tcam_prefilter"
                    else s.to_dict()
                    for s in spec.stages
                ],
            }
        )
        with StageGraph(spec, acl_small) as graph:
            assert graph.tcam is None
            report = graph.run(zipf_small)
        tcam = next(s for s in report.stages if s.kind == "tcam_prefilter")
        assert tcam.extra["bypassed"] == "max_slots"
        assert np.array_equal(
            report.match >= 0, report.match >= 0
        )  # ran to completion


# ---------------------------------------------------------------------------
# Stage-targeted fault injection
# ---------------------------------------------------------------------------


class TestStageFaults:
    def test_error_recovers_under_retry_and_stays_bit_identical(
        self, acl_small, zipf_small
    ):
        overlay = {"backend": "hypercuts", "fault_policy": "retry"}
        spec = default_graph(overlay, cache_entries=1024)
        plan = FaultPlan(
            specs=(FaultSpec(kind="error", stage="extract", segment=1),)
        )
        with Engine.open(
            EngineConfig.from_dict(
                {**EngineConfig().to_dict(), **overlay, "cache_entries": 1024}
            ),
            acl_small,
        ) as engine:
            want = engine.classify(zipf_small).match
        with StageGraph(spec, acl_small) as graph:
            report = graph.run(zipf_small, faults=plan, segment_packets=1000)
        extract = next(s for s in report.stages if s.kind == "extract")
        assert extract.faults_injected == 1
        assert extract.retries == 1
        assert report.fault is not None and report.fault.retries >= 1
        assert np.array_equal(report.match, want)

    def test_crash_with_fail_policy_raises_serving_fault(
        self, acl_small, zipf_small
    ):
        spec = default_graph({"backend": "hypercuts"}, cache_entries=0)
        plan = FaultPlan(
            specs=(FaultSpec(kind="crash", stage="queue_select"),)
        )
        with StageGraph(spec, acl_small) as graph:
            with pytest.raises(ServingFaultError, match="queue_select"):
                graph.run(zipf_small, faults=plan)

    def test_drop_storm_drops_segment_and_degrades(
        self, acl_small, zipf_small
    ):
        overlay = {"backend": "hypercuts", "fault_policy": "retry"}
        spec = default_graph(overlay, cache_entries=0)
        plan = FaultPlan(
            specs=(FaultSpec(kind="drop_storm", stage="drop", segment=0),)
        )
        with Engine.open(
            EngineConfig.from_dict({**EngineConfig().to_dict(), **overlay}),
            acl_small,
        ) as engine:
            want = engine.classify(zipf_small).match
        with StageGraph(spec, acl_small) as graph:
            report = graph.run(zipf_small, faults=plan, segment_packets=1000)
        drop = next(s for s in report.stages if s.kind == "drop")
        assert drop.drops["drop_storm"] == 1000
        assert (report.match[:1000] == -1).all()
        assert np.array_equal(report.match[1000:], want[1000:])
        assert "stage:drop:drop_storm@segment0" in report.fault.degradations

    def test_drop_storm_requires_stage(self):
        with pytest.raises(ConfigError, match="drop_storm"):
            FaultSpec(kind="drop_storm")

    def test_engine_faults_still_route_to_pipeline(
        self, acl_small, zipf_small
    ):
        overlay = {"backend": "hypercuts", "fault_policy": "retry"}
        spec = default_graph(overlay, cache_entries=0)
        plan = FaultPlan(specs=(FaultSpec(kind="crash", chunk=0),))
        with StageGraph(spec, acl_small) as graph:
            report = graph.run(zipf_small, faults=plan, segment_packets=1000)
        assert report.fault is not None
        assert report.fault.faults >= 1
        assert report.n_packets == zipf_small.n_packets


# ---------------------------------------------------------------------------
# File sources and quarantine propagation
# ---------------------------------------------------------------------------


class TestFileSource:
    def test_quarantined_lines_reach_report_to_dict(
        self, acl_small, tmp_path
    ):
        path = tmp_path / "trace.txt"
        path.write_text(
            "# comment line\n"
            "16909060 84281096 80 443 6\n"
            "1.2.3.4 dotted quad is malformed\n"
            "16909060 84281096 80 443 17\n"
            "16909060 84281096 80\n"
        )
        spec = default_graph({"backend": "hypercuts"}, cache_entries=0)
        with StageGraph(spec, acl_small) as graph:
            report = graph.run(str(path), segment_packets=100)
        assert report.n_packets == 2
        assert report.fault is not None
        assert report.fault.quarantined == 2
        assert report.to_dict()["fault"]["quarantined"] == 2
        parse = next(s for s in report.stages if s.kind == "parse")
        assert parse.drops == {"malformed": 2}
        assert parse.packets_in == 4  # 2 good + 2 dead-lettered
        reasons = {r for _, _, r in graph.engine.quarantine.entries}
        assert any("columns" in r for r in reasons)
        assert any("non-numeric" in r for r in reasons)

    def test_parse_raise_policy_propagates(self, acl_small, tmp_path):
        from repro.core.errors import PacketFormatError

        path = tmp_path / "bad.txt"
        path.write_text("not a packet\n")
        spec = StageGraphSpec(
            stages=(
                StageSpec(kind="parse", params={"on_malformed": "raise"}),
                StageSpec(
                    kind="classify",
                    params={"engine": {"backend": "hypercuts"}},
                ),
            )
        )
        with StageGraph(spec, acl_small) as graph:
            with pytest.raises(PacketFormatError):
                graph.run(str(path))
