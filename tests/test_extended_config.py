"""Tests for the paper's extension points: 2048-word memories, trace and
memory serialisation round-trips through the accelerator, and the Figure
reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro import generate_ruleset, generate_trace
from repro.algorithms import build_hicuts
from repro.core.errors import CapacityError
from repro.experiments import figures
from repro.hw import (
    Accelerator,
    AcceleratorFSM,
    EXTENDED_CAPACITY_WORDS,
    MemoryArray,
    build_memory_image,
    measure_layout,
)
from repro.hw.layout import MemoryImage


class TestExtendedCapacity:
    """Section 3: "this could easily be doubled to 2048 memory words and
    implemented on devices such as the Virtex XC5VLX330T which can store
    up to 1,458,000 bytes"."""

    def test_constant_matches_paper(self):
        assert EXTENDED_CAPACITY_WORDS == 2048
        # 2048 x 600 = 1,228,800 bytes <= the XC5VLX330T's 1,458,000.
        assert EXTENDED_CAPACITY_WORDS * 600 <= 1_458_000

    def test_structure_too_big_for_1024_fits_2048(self):
        # fw1 around 3-4k rules typically needs >1024 words at spfac 4.
        rs = generate_ruleset("fw1", 3500, seed=31)
        tree = build_hicuts(rs, binth=30, spfac=4, hw_mode=True)
        meas = measure_layout(tree, speed=1)
        if not (1024 < meas.words_used <= 2048):
            pytest.skip("generated set does not land in the 1-2k band")
        with pytest.raises(CapacityError):
            build_memory_image(tree, speed=1, capacity_words=1024)
        img = build_memory_image(
            tree, speed=1, capacity_words=EXTENDED_CAPACITY_WORDS
        )
        trace = generate_trace(rs, 300, seed=32)
        run = Accelerator(img).run_trace(trace)
        recs = AcceleratorFSM(img).run(trace)
        assert np.array_equal([r.match for r in recs], run.match)


class TestMemoryImageRoundTrip:
    def test_serialised_memory_classifies_identically(self, hw_image_small,
                                                      acl_small):
        """Dump the memory array to bytes, reload, and run the FSM on the
        reloaded image — models re-loading the accelerator at boot."""
        blob = hw_image_small.memory.to_bytes()
        reloaded = MemoryArray.from_bytes(
            blob, hw_image_small.memory.capacity_words
        )
        img2 = MemoryImage(
            tree=hw_image_small.tree,
            memory=reloaded,
            placements=hw_image_small.placements,
            speed=hw_image_small.speed,
            root_wrapped=hw_image_small.root_wrapped,
            n_internal_words=hw_image_small.n_internal_words,
            n_leaf_words=hw_image_small.n_leaf_words,
        )
        trace = generate_trace(acl_small, 200, seed=33)
        a = AcceleratorFSM(hw_image_small).run(trace)
        b = AcceleratorFSM(img2).run(trace)
        assert [r.match for r in a] == [r.match for r in b]
        assert [r.accesses for r in a] == [r.accesses for r in b]


class TestFigureReports:
    def test_render_tree_contains_cuts_and_leaves(self):
        out = figures.render_tree(figures.figure1_tree(), "t")
        assert "4 cuts on Field 0" in out
        assert "2 cuts on Field 4" in out
        assert "[R7, R8, R9]" in out

    def test_figure2_grid_renders_rules(self):
        out = figures.figure2_grid(figures.figure1_tree())
        assert "R0" in out and "cuts:" in out
        assert out.count("=") > 10  # rule extents drawn

    def test_figure5_report_shows_pipeline(self):
        out = figures.figure5_report(n_packets=4)
        assert "LOAD_ROOT" in out and "COMPARE" in out
