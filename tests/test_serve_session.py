"""`Engine` sessions: stream/classify bit-identity and lifecycle.

The acceptance contract of the serving redesign: ``Engine.stream`` is
bit-identical to ``Engine.classify`` (and to driving the underlying
``ClassificationPipeline`` directly, the PR 4 surface) across
backend x shards x persistent x cache x updates.  Streamed sessions
must also behave like sessions: lazy start, clean early exit with no
leaked threads, errors in the segment source surfaced to the consumer.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import Engine, EngineConfig, PacketTrace
from repro.classbench import generate_update_stream
from repro.core.errors import ConfigError, PacketFormatError
from repro.engine import ClassificationPipeline
from repro.serve import iter_trace_file, iter_trace_segments


def _thread_names() -> set[str]:
    return {t.name for t in threading.enumerate()}


@pytest.fixture()
def update_schedule(acl_small, acl_small_trace):
    return generate_update_stream(
        acl_small, 24, acl_small_trace.n_packets, batch_size=6, seed=402
    )


# ---------------------------------------------------------------------------
# Conformance: stream == classify == pipeline, across the matrix
# ---------------------------------------------------------------------------
class TestStreamConformance:
    @pytest.mark.parametrize("backend", [
        "linear", "tuple_space", "rfc", "hypercuts", "tcam",
    ])
    def test_stream_matches_classify_per_backend(
        self, backend, acl_small, acl_small_trace
    ):
        config = EngineConfig(backend=backend, chunk_size=512)
        with Engine.open(config, acl_small) as engine:
            want = engine.classifier.classify_trace(acl_small_trace)
            one_shot = engine.classify(acl_small_trace)
            streamed = engine.classify_stream(
                acl_small_trace, segment_packets=768  # deliberately odd
            )
        assert np.array_equal(one_shot.match, want)
        assert np.array_equal(streamed.match, want)

    @pytest.mark.parametrize(
        ("shards", "persistent", "cache_entries"),
        [(1, False, 0), (2, False, 0), (2, True, 0),
         (2, False, 512), (2, True, 512)],
    )
    def test_stream_matches_pipeline_across_pool_modes(
        self, shards, persistent, cache_entries, acl_small, acl_small_trace
    ):
        config = EngineConfig(
            backend="hypercuts", chunk_size=256, shards=shards,
            persistent=persistent, cache_entries=cache_entries,
        )
        with Engine.open(config, acl_small) as engine:
            # The PR 4 surface, driven directly on the same classifier.
            with ClassificationPipeline(
                engine.classifier, chunk_size=256, shards=shards,
                persistent=persistent,
            ) as pipeline:
                want = pipeline.run(acl_small_trace).match
            streamed = engine.classify_stream(
                acl_small_trace, segment_packets=512
            )
            one_shot = engine.classify(acl_small_trace)
        assert np.array_equal(streamed.match, want)
        assert np.array_equal(one_shot.match, want)

    def test_unaligned_segments_still_identical_without_updates(
        self, acl_small, acl_small_trace
    ):
        config = EngineConfig(backend="tuple_space", chunk_size=512)
        with Engine.open(config, acl_small) as engine:
            want = engine.classify(acl_small_trace).match
            # Segment lengths deliberately coprime with the chunk size.
            streamed = engine.classify_stream(
                acl_small_trace, segment_packets=313
            )
        assert np.array_equal(streamed.match, want)
        assert streamed.n_segments == -(-acl_small_trace.n_packets // 313)

    def test_raw_header_arrays_accepted_as_segments(
        self, acl_small, acl_small_trace
    ):
        config = EngineConfig(backend="linear", chunk_size=512)
        headers = acl_small_trace.headers
        with Engine.open(config, acl_small) as engine:
            want = engine.classify(acl_small_trace).match
            streamed = engine.classify_stream(
                [headers[:700], headers[700:1200], headers[1200:]]
            )
        assert np.array_equal(streamed.match, want)


class TestStreamWithUpdates:
    @pytest.mark.parametrize(
        ("backend", "shards", "persistent", "cache_entries"),
        [
            ("hicuts", 1, False, 0),
            ("hicuts", 2, False, 0),
            ("hicuts", 2, True, 0),
            ("hicuts", 2, True, 256),
            ("tuple_space", 1, False, 0),  # rebuild-adapted backend
            ("tuple_space", 2, False, 256),
        ],
    )
    def test_streamed_updates_identical_to_one_shot(
        self, backend, shards, persistent, cache_entries,
        acl_small, acl_small_trace, update_schedule,
    ):
        config = EngineConfig(
            backend=backend, chunk_size=256, shards=shards,
            persistent=persistent, cache_entries=cache_entries,
            updatable=True,
        )
        with Engine.open(config, acl_small) as engine:
            one_shot = engine.classify(
                acl_small_trace, updates=update_schedule
            )
        with Engine.open(config, acl_small) as engine:
            # Segment length a multiple of chunk_size: the streamed
            # epoch boundaries then coincide with the one-shot ones.
            streamed = engine.classify_stream(
                acl_small_trace, updates=update_schedule,
                segment_packets=512,
            )
        assert np.array_equal(streamed.match, one_shot.match)
        assert streamed.final_epoch == one_shot.final_epoch
        assert streamed.update_ops == one_shot.update_ops == 24

    def test_updates_beyond_stream_end_apply_after(
        self, acl_small, acl_small_trace, update_schedule
    ):
        from repro.core.updates import ScheduledUpdate

        config = EngineConfig(
            backend="hicuts", chunk_size=256, updatable=True
        )
        n = acl_small_trace.n_packets
        late = [
            ScheduledUpdate(n + 1000, upd.batch) for upd in update_schedule
        ]
        with Engine.open(config, acl_small) as engine:
            report = engine.classify_stream(
                acl_small_trace, updates=late, segment_packets=512
            )
            # Matches must equal the un-updated classifier's output...
            fresh = Engine.build_classifier(config, acl_small)
            assert np.array_equal(
                report.match, fresh.classify_trace(acl_small_trace)
            )
            # ...but the session's ruleset version advanced afterwards.
            assert engine.classifier.update_epoch == len(late)
        assert report.final_epoch == len(late)

    def test_tail_updates_do_not_erase_cache_telemetry(
        self, acl_small, acl_small_trace, update_schedule
    ):
        # The zero-packet tail chunk carries no cache counters; merging
        # it must not null out the telemetry of the real segments.
        from repro.core.updates import ScheduledUpdate

        config = EngineConfig(
            backend="hicuts", chunk_size=256, updatable=True,
            cache_entries=256,
        )
        n = acl_small_trace.n_packets
        late = [ScheduledUpdate(n + 1, update_schedule[0].batch)]
        with Engine.open(config, acl_small) as engine:
            report = engine.classify_stream(
                acl_small_trace, updates=late, segment_packets=512
            )
        assert report.cache_hits is not None
        assert report.cache_hit_rate is not None
        assert report.final_epoch == 1

    def test_empty_segments_do_not_erase_cache_telemetry(
        self, acl_small, acl_small_trace
    ):
        config = EngineConfig(backend="linear", cache_entries=256,
                              chunk_size=512)
        headers = acl_small_trace.headers
        empty = headers[:0]
        with Engine.open(config, acl_small) as engine:
            report = engine.classify_stream(
                [headers[:512], empty, headers[512:1024]]
            )
        assert report.n_packets == 1024
        assert report.cache_hits is not None and report.cache_lookups == 1024

    def test_update_latency_percentiles_populated(
        self, acl_small, acl_small_trace, update_schedule
    ):
        config = EngineConfig(
            backend="hicuts", chunk_size=256, updatable=True
        )
        with Engine.open(config, acl_small) as engine:
            report = engine.classify(acl_small_trace, updates=update_schedule)
        pct = report.update_latency
        assert pct is not None
        assert pct["batches"] == report.update_batches == 4
        assert 0 < pct["p50_ms"] <= pct["p95_ms"] <= pct["p99_ms"]
        assert pct["p99_ms"] <= pct["max_ms"]
        assert report.to_dict()["update_latency"] == pct

    def test_updates_on_non_updatable_backend_rejected(
        self, acl_small, acl_small_trace, update_schedule
    ):
        config = EngineConfig(backend="linear", chunk_size=512)
        with Engine.open(config, acl_small) as engine:
            with pytest.raises(ConfigError, match="updatable"):
                engine.stream(acl_small_trace, updates=update_schedule)


# ---------------------------------------------------------------------------
# Session behaviour: laziness, teardown, error relay
# ---------------------------------------------------------------------------
class TestSessionLifecycle:
    def test_stream_is_lazy_and_early_exit_is_clean(
        self, acl_small, acl_small_trace
    ):
        config = EngineConfig(backend="linear", chunk_size=512)
        pulled = []

        def segments():
            for seg in iter_trace_segments(acl_small_trace, 256):
                pulled.append(seg.n_packets)
                yield seg

        before = _thread_names()
        with Engine.open(config, acl_small) as engine:
            it = engine.stream(segments(), prefetch=1, ring_slots=1)
            assert not pulled  # nothing runs until the first next()
            first = next(it)
            assert first.n_packets == 256 and first.start == 0
            it.close()  # early exit: threads must unwind
        for _ in range(100):
            if _thread_names() <= before:
                break
            threading.Event().wait(0.05)
        assert _thread_names() <= before
        # Bounded prefetch: the generator was never drained to the end.
        assert len(pulled) < acl_small_trace.n_packets // 256

    @pytest.mark.parametrize("shard_mode", ["auto", "processes", "threads"])
    def test_break_after_one_chunk_is_clean_in_every_shard_mode(
        self, shard_mode, acl_small, acl_small_trace
    ):
        # The consumer abandons mid-stream with both queues saturated
        # (prefetch=1, ring_slots=1): the ingestion thread is parked on
        # a full prefetch queue whose _DONE sentinel will never be
        # drained.  Teardown must unwind both threads promptly and
        # leave the engine serviceable, in every shard mode.
        config = EngineConfig(
            backend="linear", chunk_size=256, shards=2,
            shard_mode=shard_mode,
        )
        before = _thread_names()
        with Engine.open(config, acl_small) as engine:
            want = engine.classify(acl_small_trace).match
            for chunk in engine.stream(
                iter_trace_segments(acl_small_trace, 256),
                prefetch=1, ring_slots=1,
            ):
                assert chunk.index == 0 and chunk.n_packets == 256
                break  # consumer abandons mid-stream
            # The session stays serviceable after the abandoned stream.
            again = engine.classify(acl_small_trace)
            assert np.array_equal(again.match, want)
        for _ in range(100):
            if _thread_names() <= before:
                break
            threading.Event().wait(0.05)
        assert _thread_names() <= before

    def test_segment_source_error_reaches_consumer(
        self, acl_small, acl_small_trace
    ):
        config = EngineConfig(backend="linear", chunk_size=512)

        def broken():
            yield PacketTrace(
                acl_small_trace.headers[:256], acl_small_trace.schema
            )
            raise OSError("trace feed died")

        with Engine.open(config, acl_small) as engine:
            with pytest.raises(OSError, match="trace feed died"):
                for _ in engine.stream(broken()):
                    pass

    def test_empty_segment_source_yields_no_chunks(self, acl_small):
        config = EngineConfig(backend="linear", chunk_size=512)
        with Engine.open(config, acl_small) as engine:
            assert list(engine.stream(iter([]))) == []
            report = engine.classify_stream(iter([]))
        assert report.n_packets == 0 and report.n_segments == 0

    def test_chunk_results_carry_stream_offsets(
        self, acl_small, acl_small_trace
    ):
        config = EngineConfig(backend="linear", chunk_size=512)
        with Engine.open(config, acl_small) as engine:
            chunks = list(engine.stream(acl_small_trace, segment_packets=512))
        starts = [c.start for c in chunks]
        assert starts == list(range(0, acl_small_trace.n_packets, 512))
        assert [c.index for c in chunks] == list(range(len(chunks)))
        total = sum(c.n_packets for c in chunks)
        assert total == acl_small_trace.n_packets

    def test_merged_report_chunks_use_stream_coordinates(
        self, acl_small, acl_small_trace
    ):
        # Per-segment ChunkStats are rebased when merged: indices run
        # over the whole stream and starts are absolute offsets into
        # the merged match array.  min_chunk_packets=0 pins the chunk
        # grid to chunk_size (the default coalesces each segment into
        # one dispatch).
        config = EngineConfig(
            backend="linear", chunk_size=256, min_chunk_packets=0
        )
        with Engine.open(config, acl_small) as engine:
            report = engine.classify_stream(
                acl_small_trace, segment_packets=512
            )
        assert [c.index for c in report.chunks] == list(
            range(len(report.chunks))
        )
        assert [c.start for c in report.chunks] == list(
            range(0, acl_small_trace.n_packets, 256)
        )
        assert report.n_chunks == len(report.chunks)

    def test_bad_stream_knobs_rejected(self, acl_small, acl_small_trace):
        config = EngineConfig(backend="linear")
        with Engine.open(config, acl_small) as engine:
            with pytest.raises(ConfigError, match="prefetch"):
                engine.stream(acl_small_trace, prefetch=0)
            with pytest.raises(ConfigError, match="ring_slots"):
                engine.stream(acl_small_trace, ring_slots=0)
        with pytest.raises(ConfigError, match="segment_packets"):
            list(iter_trace_segments(acl_small_trace, 0))

    def test_engine_accepts_dict_config_and_rejects_junk(self, acl_small):
        with Engine.open(
            {"backend": "linear", "chunk_size": 512}, acl_small
        ) as engine:
            assert engine.config == EngineConfig(
                backend="linear", chunk_size=512
            )
        with pytest.raises(ConfigError, match="EngineConfig"):
            Engine.open("linear", acl_small)

    def test_transient_sharded_stream_borrows_then_restores_pool(
        self, acl_small, acl_small_trace
    ):
        # A non-persistent sharded config streams on a stream-lifetime
        # pool (one pre-threads fork, no per-segment forking from a
        # threaded process) and restores transient mode afterwards.
        config = EngineConfig(
            backend="linear", chunk_size=256, shards=2, persistent=False
        )
        with Engine.open(config, acl_small) as engine:
            want = engine.classify(acl_small_trace).match
            chunks = list(engine.stream(acl_small_trace, segment_packets=512))
            assert not engine.pipeline.persistent
            assert not engine.pool_engaged
            got = np.concatenate([c.match for c in chunks])
            # The session still serves one-shot runs afterwards.
            again = engine.classify(acl_small_trace).match
        assert np.array_equal(got, want)
        assert np.array_equal(again, want)

    def test_persistent_pool_owned_by_session(self, acl_small, acl_small_trace):
        config = EngineConfig(
            backend="linear", chunk_size=256, shards=2, persistent=True,
            # Force the fork tier: "auto" declines a 1-worker pool on a
            # single-CPU host, and this test pins pool ownership.
            shard_mode="processes", min_chunk_packets=0,
        )
        engine = Engine.open(config, acl_small)
        try:
            engine.classify(acl_small_trace)
            engaged = engine.pool_engaged
        finally:
            engine.close()
        assert not engine.pool_engaged
        if ClassificationPipeline._fork_available():
            assert engaged


# ---------------------------------------------------------------------------
# File-backed ingestion
# ---------------------------------------------------------------------------
class TestIterTraceFile:
    def test_file_segments_match_memory_segments(
        self, tmp_path, acl_small, acl_small_trace
    ):
        path = str(tmp_path / "trace.txt")
        acl_small_trace.save(path)
        segs = list(iter_trace_file(path, segment_packets=700))
        got = np.concatenate([s.headers for s in segs])
        assert np.array_equal(got, acl_small_trace.headers)
        assert [s.n_packets for s in segs][:2] == [700, 700]

    def test_streamed_file_identical_to_loaded_file(
        self, tmp_path, acl_small, acl_small_trace
    ):
        path = str(tmp_path / "trace.txt")
        acl_small_trace.save(path)
        config = EngineConfig(backend="tuple_space", chunk_size=512)
        with Engine.open(config, acl_small) as engine:
            want = engine.classify(PacketTrace.load(path)).match
            streamed = engine.classify_stream(
                iter_trace_file(path, segment_packets=512)
            )
        assert np.array_equal(streamed.match, want)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n1\t2\t3\t4\t5\t-1\n6\t7\t8\t9\t1\t-1\n")
        segs = list(iter_trace_file(str(path), segment_packets=10))
        assert sum(s.n_packets for s in segs) == 2
        assert segs[0].headers[0].tolist() == [1, 2, 3, 4, 5]

    def test_malformed_line_raises_packet_format_error(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("1\t2\t3\t4\t5\t-1\n1\t2\tbroken\n")
        with pytest.raises(PacketFormatError):
            list(iter_trace_file(str(path), segment_packets=10))


# ---------------------------------------------------------------------------
# QuarantineLog edge cases (the dead-letter side of on_malformed)
# ---------------------------------------------------------------------------
class TestQuarantineLog:
    def test_bounded_overflow_keeps_counting(self):
        from repro.serve.ingest import QuarantineLog

        log = QuarantineLog(max_entries=2)
        for lineno in range(1, 6):
            log.record(lineno, f"bad line {lineno}", "non-numeric")
        assert log.count == 5
        assert len(log.entries) == 2  # first two retained, rest counted
        assert log.dropped == 3
        assert [e[0] for e in log.entries] == [1, 2]
        out = log.to_dict()
        assert out["count"] == 5 and out["dropped"] == 3
        assert len(out["entries"]) == 2

    def test_zero_capacity_counts_only(self):
        from repro.serve.ingest import QuarantineLog

        log = QuarantineLog(max_entries=0)
        log.record(7, "x", "negative header field")
        assert log.count == 1 and log.entries == [] and log.dropped == 1
        assert bool(log)

    def test_negative_capacity_rejected(self):
        from repro.serve.ingest import QuarantineLog

        with pytest.raises(ConfigError, match="max_entries"):
            QuarantineLog(max_entries=-1)

    def test_clear_resets_counts(self):
        from repro.serve.ingest import QuarantineLog

        log = QuarantineLog()
        log.record(1, "x", "r")
        log.clear()
        assert log.count == 0 and not log.entries and not bool(log)

    def test_salvage_records_every_reason(self, tmp_path):
        from repro.serve.ingest import QuarantineLog

        path = tmp_path / "trace.txt"
        path.write_text(
            "1 2 3 4 5\n"            # good
            "1 2 3\n"                 # too few columns
            "1 2 three 4 5\n"         # non-numeric
            "1 2 -3 4 5\n"            # negative
            "1 2 3 4 99999999999\n"   # out of 32-bit range
            "6 7 8 9 1\n"             # good
        )
        log = QuarantineLog()
        segs = list(
            iter_trace_file(
                str(path), segment_packets=10,
                on_malformed="quarantine", quarantine=log,
            )
        )
        assert sum(s.n_packets for s in segs) == 2
        assert log.count == 4
        reasons = [r for _, _, r in log.entries]
        assert "expected >= 5 columns, got 3" in reasons
        assert "non-numeric header field" in reasons
        assert "negative header field" in reasons
        assert "header field out of 32-bit range" in reasons
        # Absolute 1-based line numbers of the bad lines, in order.
        assert [e[0] for e in log.entries] == [2, 3, 4, 5]

    def test_quarantined_count_reaches_report_to_dict(
        self, tmp_path, acl_small, acl_small_trace
    ):
        path = str(tmp_path / "trace.txt")
        acl_small_trace.save(path)
        with open(path, "a", encoding="ascii") as fh:
            fh.write("totally broken\n1 2 3\n")
        config = EngineConfig(
            backend="tuple_space", on_malformed="quarantine"
        )
        with Engine.open(config, acl_small) as engine:
            report = engine.classify_stream(
                iter_trace_file(
                    path, segment_packets=512,
                    on_malformed="quarantine",
                    quarantine=engine.quarantine,
                )
            )
        assert report.n_packets == acl_small_trace.n_packets
        assert engine.quarantine.count == 2
        out = report.to_dict()
        assert out["fault"]["quarantined"] == 2
