"""Tests for HiCuts — original and hardware-modified variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro import generate_ruleset, generate_trace
from repro.algorithms import LinearSearchClassifier, OpCounter, build_hicuts
from repro.algorithms.hicuts import HW_MAX_CUTS, HW_MIN_CUTS, HiCutsConfig
from repro.core.errors import ConfigError


class TestFigure1:
    """The paper's Figure 1 example (binth 3, spfac 2)."""

    def test_root_cut(self, demo_ruleset):
        tree = build_hicuts(
            demo_ruleset, binth=3, spfac=2, redundancy_elimination=False
        )
        assert tree.root.cut_dims == (0,)
        assert tree.root.cut_counts == (4,)

    def test_second_level_cut(self, demo_ruleset):
        tree = build_hicuts(
            demo_ruleset, binth=3, spfac=2, redundancy_elimination=False
        )
        internal_children = [
            tree.nodes[int(c)]
            for c in set(map(int, tree.root.children))
            if int(c) >= 0 and not tree.nodes[int(c)].is_leaf
        ]
        assert len(internal_children) == 1
        sub = internal_children[0]
        assert sub.cut_dims == (4,)
        assert sub.cut_counts == (2,)

    def test_figure1_leaves(self, demo_ruleset):
        tree = build_hicuts(
            demo_ruleset, binth=3, spfac=2, redundancy_elimination=False
        )
        leaf_sets = sorted(
            tuple(int(r) for r in n.rule_ids)
            for n in tree.nodes if n.is_leaf
        )
        # Figure 1: {7,8,9}, {1,3}, {0,2,4} (pre-split), split into
        # {0,4,6} and {0,2,5}.
        assert (0, 2, 5) in leaf_sets and (0, 4, 6) in leaf_sets
        assert (7, 8, 9) in leaf_sets and (1, 3) in leaf_sets
        assert all(len(s) <= 3 for s in leaf_sets)


class TestCorrectness:
    @pytest.mark.parametrize("hw_mode", [False, True])
    @pytest.mark.parametrize("family", ["acl1", "fw1", "ipc1"])
    def test_oracle_equality(self, family, hw_mode):
        rs = generate_ruleset(family, 250, seed=13)
        trace = generate_trace(rs, 1500, seed=14, background_fraction=0.1)
        binth = 30 if hw_mode else 16
        tree = build_hicuts(rs, binth=binth, spfac=4, hw_mode=hw_mode)
        want = LinearSearchClassifier(rs).classify_trace(trace)
        got = tree.batch_lookup(trace).match
        assert np.array_equal(got, want)

    def test_single_rule(self):
        rs = generate_ruleset("acl1", 1, seed=1)
        tree = build_hicuts(rs, binth=16)
        assert tree.root.is_leaf
        assert list(tree.root.rule_ids) == [0]

    def test_no_elimination_still_correct(self, acl_small, acl_small_trace,
                                          acl_small_oracle):
        tree = build_hicuts(
            acl_small, binth=16, spfac=4, redundancy_elimination=False
        )
        got = tree.batch_lookup(acl_small_trace).match
        assert np.array_equal(got, acl_small_oracle)


class TestStructureInvariants:
    def test_hw_cut_counts_are_powers_of_two_within_cap(self, acl_medium):
        tree = build_hicuts(acl_medium, binth=30, spfac=4, hw_mode=True)
        for node in tree.nodes:
            if node.is_leaf:
                continue
            assert len(node.cut_dims) == 1  # HiCuts cuts one dimension
            (count,) = node.cut_counts
            assert count & (count - 1) == 0
            assert count <= HW_MAX_CUTS
            assert node.n_children <= 256

    def test_hw_internal_regions_grid_aligned(self, acl_medium):
        """Internal nodes must stay power-of-two aligned (the mask/shift
        datapath requires it); merged leaves may take hull regions."""
        tree = build_hicuts(acl_medium, binth=30, spfac=4, hw_mode=True)
        for node in tree.nodes:
            if node.is_leaf:
                continue
            assert node.grid_region is not None
            for glo, ghi in node.grid_region:
                span = ghi - glo + 1
                assert span & (span - 1) == 0
                assert glo % span == 0

    def test_hw_starts_at_32_cuts(self, acl_medium):
        tree = build_hicuts(acl_medium, binth=30, spfac=4, hw_mode=True)
        (count,) = tree.root.cut_counts
        assert count >= HW_MIN_CUTS

    def test_leaves_respect_binth_or_unsplittable(self, acl_medium):
        tree = build_hicuts(acl_medium, binth=16, spfac=4)
        stats = tree.stats()
        # Software acl1 trees can always split down to binth.
        assert stats.max_leaf_rules <= 16

    def test_software_mode_unbounded_cuts_allowed(self, acl_medium):
        tree = build_hicuts(acl_medium, binth=16, spfac=4)
        (count,) = tree.root.cut_counts
        assert count >= 2

    def test_determinism(self, acl_small):
        t1 = build_hicuts(acl_small, binth=16, spfac=4)
        t2 = build_hicuts(acl_small, binth=16, spfac=4)
        assert len(t1) == len(t2)
        for a, b in zip(t1.nodes, t2.nodes):
            assert a.kind == b.kind
            assert a.cut_dims == b.cut_dims
            assert a.cut_counts == b.cut_counts
            assert np.array_equal(a.rule_ids, b.rule_ids)


class TestSpfacEffect:
    def test_larger_spfac_allows_more_cuts(self, acl_medium):
        wide = build_hicuts(acl_medium, binth=16, spfac=8)
        narrow = build_hicuts(acl_medium, binth=16, spfac=1)
        assert wide.root.cut_counts[0] >= narrow.root.cut_counts[0]

    def test_larger_spfac_fewer_memory_accesses(self, acl_medium):
        wide = build_hicuts(acl_medium, binth=16, spfac=8)
        narrow = build_hicuts(acl_medium, binth=16, spfac=1)
        assert (
            wide.stats().worst_case_sw_accesses
            <= narrow.stats().worst_case_sw_accesses
        )


class TestConfig:
    def test_bad_binth(self, acl_small):
        with pytest.raises(ConfigError):
            build_hicuts(acl_small, binth=0)

    def test_bad_spfac(self, acl_small):
        with pytest.raises(ConfigError):
            build_hicuts(acl_small, spfac=-1)

    def test_bad_start_cuts(self):
        cfg = HiCutsConfig(start_cuts=3)
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_cap_below_start(self):
        cfg = HiCutsConfig(start_cuts=32, max_cuts=16)
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_defaults_by_mode(self):
        assert HiCutsConfig(hw_mode=False).resolved_start() == 2
        assert HiCutsConfig(hw_mode=True).resolved_start() == 32
        assert HiCutsConfig(hw_mode=True).resolved_cap() == 256


class TestBuildOps:
    def test_ops_counted(self, acl_small):
        ops = OpCounter()
        build_hicuts(acl_small, binth=16, spfac=4, ops=ops)
        assert ops.total() > 0
        assert ops["alloc"] > 0
        assert ops["mem_read"] > 0

    def test_hw_build_cheaper_than_sw(self, acl_medium):
        """The Section 3 claim behind Table 3: starting at 32 cuts saves
        build computation."""
        sw_ops, hw_ops = OpCounter(), OpCounter()
        build_hicuts(acl_medium, binth=16, spfac=4, ops=sw_ops)
        build_hicuts(acl_medium, binth=30, spfac=4, hw_mode=True, ops=hw_ops)
        assert hw_ops["div"] == 0  # no divider in the hardware flow
        assert sw_ops["div"] > 0

    def test_ops_grow_with_ruleset(self):
        small, large = OpCounter(), OpCounter()
        a = generate_ruleset("acl1", 100, seed=3)
        b = generate_ruleset("acl1", 800, seed=3)
        build_hicuts(a, binth=16, ops=small)
        build_hicuts(b, binth=16, ops=large)
        assert large.total() > small.total()
