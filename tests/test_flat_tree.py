"""Conformance suite for the compiled flat-array traversal kernel.

The load-bearing property: :meth:`FlatTree.batch_lookup` is bit-for-bit
identical to the object-walking reference traversal
(:meth:`DecisionTree.batch_lookup_reference`) on every
:class:`BatchLookup` field, and both agree with the scalar ``lookup`` —
on grid trees (congruence/mask-shift indexing) and on software trees
including the compacted-region dead path, where packets fall outside a
node's shrunk bounding box and must die with ``leaf_size == 0``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DEMO_SCHEMA, PacketTrace, RuleSet
from repro.algorithms import (
    FlatTree,
    IncrementalClassifier,
    build_hicuts,
    build_hypercuts,
)
from repro.core.rules import Rule, make_demo_ruleset

FIELDS = (
    "match", "internal_nodes", "leaf_id", "leaf_size", "match_pos",
    "rules_compared",
)


def random_headers(schema, n, seed=0):
    rng = np.random.default_rng(seed)
    cols = [
        rng.integers(0, schema.max_value(d) + 1, size=n, dtype=np.uint32)
        for d in range(schema.ndim)
    ]
    return np.stack(cols, axis=1)


def assert_batch_agreement(tree, trace):
    """Reference and flat batch results identical on all fields+dtypes."""
    ref = tree.batch_lookup_reference(trace)
    got = FlatTree(tree).batch_lookup(trace)
    for name in FIELDS:
        a, b = getattr(ref, name), getattr(got, name)
        assert a.dtype == b.dtype, name
        assert np.array_equal(a, b), name
    return ref


def assert_scalar_agreement(tree, headers, batch):
    """The scalar traversal agrees with the batch results packet-for-
    packet on all five LookupResult statistics."""
    for i, header in enumerate(headers):
        res = tree.lookup(header)
        assert res.rule_id == batch.match[i]
        assert res.internal_nodes == batch.internal_nodes[i]
        assert res.leaf_size == batch.leaf_size[i]
        assert res.match_pos == batch.match_pos[i]
        assert res.rules_compared == batch.rules_compared[i]


def clustered_ruleset(rng, n_rules: int) -> RuleSet:
    """Random rules clustered well inside the universe, so compaction
    (and hull merging) shrinks node regions and uniform packets land
    outside them."""
    rules = []
    for _ in range(n_rules):
        ranges = []
        for _d in range(DEMO_SCHEMA.ndim):
            lo = int(rng.integers(60, 180))
            hi = min(lo + int(rng.integers(0, 40)), 255)
            ranges.append((lo, hi))
        rules.append(Rule(ranges=tuple(ranges)))
    return RuleSet(rules, DEMO_SCHEMA, "clustered")


class TestGridTrees:
    @pytest.mark.parametrize("build", [build_hicuts, build_hypercuts])
    def test_acl_grid_tree_matches_reference_and_scalar(
        self, build, acl_small, acl_small_trace
    ):
        tree = build(acl_small, binth=30, spfac=4, hw_mode=True)
        batch = assert_batch_agreement(tree, acl_small_trace)
        assert_scalar_agreement(
            tree, acl_small_trace.headers[:200], batch
        )

    def test_mask_shift_fast_path_engaged(self, hw_tree_small):
        assert FlatTree(hw_tree_small).pow2


class TestSoftwareDeadPath:
    """hw_mode=False trees: region compaction / hull merging shrink node
    boxes; packets outside them must die exactly like the reference."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("build", [build_hicuts, build_hypercuts])
    def test_random_clustered_trees(self, build, seed):
        rng = np.random.default_rng(seed)
        ruleset = clustered_ruleset(rng, 60)
        tree = build(ruleset, binth=4, spfac=3, hw_mode=False)
        assert not tree.grid_mode
        headers = random_headers(DEMO_SCHEMA, 1500, seed=seed + 10)
        trace = PacketTrace(headers, DEMO_SCHEMA)
        batch = assert_batch_agreement(tree, trace)
        # The scenario must actually exercise the dead path: packets
        # that entered the tree but never reached a leaf.
        died = (batch.leaf_id < 0) & (batch.internal_nodes > 0)
        assert died.any()
        assert (batch.leaf_size[died] == 0).all()
        assert (batch.match[died] == -1).all()
        assert_scalar_agreement(tree, headers[:300], batch)

    def test_demo_hypercuts_with_pushed_rules(self):
        ruleset = RuleSet(make_demo_ruleset(), DEMO_SCHEMA, "table1")
        tree = build_hypercuts(ruleset, binth=2, spfac=4, hw_mode=False)
        assert any(n.pushed.size for n in tree.nodes)  # push-common ran
        headers = random_headers(DEMO_SCHEMA, 2000, seed=5)
        trace = PacketTrace(headers, DEMO_SCHEMA)
        batch = assert_batch_agreement(tree, trace)
        assert_scalar_agreement(tree, headers[:300], batch)


class TestKernelPlumbing:
    def test_batch_lookup_delegates_to_cached_flat(self, hw_tree_small):
        flat = hw_tree_small.flat
        assert hw_tree_small.flat is flat  # cached
        hw_tree_small.invalidate_cache()
        assert hw_tree_small.flat is not flat  # recompiled on demand

    def test_empty_trace(self, hw_tree_small):
        trace = PacketTrace(
            np.empty((0, 5), dtype=np.uint32), hw_tree_small.schema
        )
        out = hw_tree_small.batch_lookup(trace)
        assert out.match.shape == (0,)

    def test_nbytes_reported(self, hw_tree_small):
        assert FlatTree(hw_tree_small).nbytes() > 0

    def test_incremental_insert_invalidates_compiled_kernel(self):
        ruleset = RuleSet(make_demo_ruleset(), DEMO_SCHEMA, "table1")
        clf = IncrementalClassifier(
            ruleset, algorithm="hicuts", binth=2, hw_mode=True
        )
        header = np.asarray([[7, 7, 7, 7, 7]], dtype=np.uint32)
        assert clf.classify_batch(header)[0] == -1  # kernel compiled here
        clf.insert(Rule(ranges=tuple((0, 20) for _ in range(5))))
        new_id = len(make_demo_ruleset())
        assert clf.classify_batch(header)[0] == new_id

    def test_incremental_remove_invalidates_compiled_kernel(self):
        ruleset = RuleSet(make_demo_ruleset(), DEMO_SCHEMA, "table1")
        clf = IncrementalClassifier(
            ruleset, algorithm="hicuts", binth=2, hw_mode=True
        )
        header = np.asarray([[135, 100, 30, 180, 134]], dtype=np.uint32)
        first = int(clf.classify_batch(header)[0])
        assert first >= 0
        clf.remove(first)
        assert int(clf.classify_batch(header)[0]) != first
