"""Tests for the Tuple Space Search extension baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import generate_ruleset, generate_trace
from repro.algorithms import LinearSearchClassifier, OpCounter, TupleSpaceClassifier
from repro.core.errors import CapacityError


class TestCorrectness:
    @pytest.mark.parametrize("family", ["acl1", "fw1", "ipc1"])
    def test_oracle_equality(self, family):
        rs = generate_ruleset(family, 200, seed=71)
        tss = TupleSpaceClassifier(rs)
        trace = generate_trace(rs, 600, seed=72, background_fraction=0.2)
        want = LinearSearchClassifier(rs).classify_trace(trace)
        got = tss.classify_trace(trace)
        assert np.array_equal(got, want)

    def test_first_match_priority_within_bucket(self):
        rs = generate_ruleset("acl1", 100, seed=73)
        tss = TupleSpaceClassifier(rs)
        lin = LinearSearchClassifier(rs)
        # Probe with exact rule corners to stress tie-breaking.
        arrays = rs.arrays
        for r in range(0, len(rs), 7):
            header = tuple(int(arrays.lo[d, r]) for d in range(5))
            assert tss.classify(header) == lin.classify(header)


class TestStructure:
    def test_tuple_count_reasonable(self, acl_small):
        tss = TupleSpaceClassifier(acl_small)
        assert 1 <= tss.n_tuples <= len(acl_small)

    def test_memory_accesses_scale_with_tuples(self, acl_small):
        tss = TupleSpaceClassifier(acl_small)
        assert tss.memory_accesses_per_lookup() >= tss.n_tuples

    def test_ops_counted(self, acl_small):
        ops = OpCounter()
        TupleSpaceClassifier(acl_small, ops=ops)
        assert ops["mem_write"] > 0
        lookup_ops = OpCounter()
        tss = TupleSpaceClassifier(acl_small)
        tss.classify((0, 0, 0, 0, 6), ops=lookup_ops)
        assert lookup_ops["mem_read"] >= tss.n_tuples

    def test_wrong_schema(self, demo_ruleset):
        with pytest.raises(CapacityError):
            TupleSpaceClassifier(demo_ruleset)

    def test_memory_bytes(self, acl_small):
        assert TupleSpaceClassifier(acl_small).memory_bytes() == 36 * len(acl_small)
