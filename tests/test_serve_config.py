"""`EngineConfig` round-trips and validation.

The satellite contract: a config survives **every** representation the
repo uses bit-for-bit — JSON text -> ``from_dict`` -> ``to_args`` ->
the real CLI parser -> ``from_args`` must reproduce the exact same
config — and every invalid combination is rejected at construction
with a :class:`ConfigError` naming the offending field.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cli import build_parser
from repro.core.errors import ConfigError
from repro.serve import ENERGY_MODELS, EngineConfig

#: A spread of configs covering every field away from its default.
CONFIG_GRID = [
    EngineConfig(),
    EngineConfig(backend="linear"),
    EngineConfig(backend="tuple_space", shards=4, chunk_size=1024),
    EngineConfig(backend="rfc", software=True, binth=16, spfac=2.5),
    EngineConfig(backend="hicuts", speed=0, persistent=True, shards=2),
    EngineConfig(
        backend="accelerator", cache_entries=4096, cache_ways=8,
        cache_max_age=100_000,
    ),
    EngineConfig(backend="incremental", updatable=True, energy_model="fpga"),
    EngineConfig(
        backend="hypercuts", binth=24, spfac=6.0, shards=8,
        chunk_size=8192, persistent=True, cache_entries=512, cache_ways=2,
        cache_max_age=5000, updatable=True, energy_model="none",
    ),
    EngineConfig(backend="tcam", energy_model="none"),
]


class TestDictRoundTrip:
    @pytest.mark.parametrize("config", CONFIG_GRID, ids=lambda c: c.backend)
    def test_dict_round_trip_identity(self, config):
        assert EngineConfig.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize("config", CONFIG_GRID, ids=lambda c: c.backend)
    def test_json_round_trip_identity(self, config):
        text = json.dumps(config.to_dict())
        assert EngineConfig.from_dict(json.loads(text)) == config

    def test_to_dict_is_plain_json(self):
        payload = EngineConfig(cache_entries=256).to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_aliases_canonicalised(self):
        assert EngineConfig(backend="tss") == EngineConfig(
            backend="tuple_space"
        )
        assert EngineConfig(backend="hw").backend == "accelerator"


class TestCliRoundTrip:
    """JSON -> config -> CLI args -> config, bit-identical (the real
    ``bench`` parser in the middle, not a mock)."""

    @pytest.mark.parametrize("config", CONFIG_GRID, ids=lambda c: c.backend)
    def test_args_round_trip_identity(self, config):
        argv = ["bench", *config.to_args()]
        namespace = build_parser().parse_args(argv)
        assert EngineConfig.from_args(namespace) == config

    @pytest.mark.parametrize("config", CONFIG_GRID, ids=lambda c: c.backend)
    def test_full_json_to_cli_chain(self, config):
        restored = EngineConfig.from_dict(json.loads(json.dumps(
            config.to_dict()
        )))
        namespace = build_parser().parse_args(["bench", *restored.to_args()])
        final = EngineConfig.from_args(namespace)
        assert final == config
        assert final.to_dict() == config.to_dict()

    def test_from_args_tolerates_sparse_namespaces(self):
        # The classify subparser has no --shards/--persistent; missing
        # attributes fall back to config defaults.
        namespace = build_parser().parse_args(
            ["classify", "--algorithm", "rfc", "--cache-entries", "128"]
        )
        config = EngineConfig.from_args(namespace)
        assert config.backend == "rfc"
        assert config.cache_entries == 128
        assert config.shards == 1 and not config.persistent

    def test_updates_count_implies_updatable(self):
        namespace = build_parser().parse_args(
            ["bench", "--algorithm", "hicuts", "--updates", "8"]
        )
        assert EngineConfig.from_args(namespace).updatable


class TestValidation:
    def test_unknown_backend_lists_registered(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            EngineConfig(backend="nope")
        with pytest.raises(ConfigError, match="linear"):
            EngineConfig(backend="nope")

    def test_unknown_dict_key_is_named(self):
        with pytest.raises(ConfigError, match="warp_speed"):
            EngineConfig.from_dict({"backend": "linear", "warp_speed": 9})

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ConfigError, match="expects a dict"):
            EngineConfig.from_dict(["backend", "linear"])

    @pytest.mark.parametrize(
        ("field", "value", "message"),
        [
            ("binth", 0, "binth"),
            ("spfac", 0.0, "spfac"),
            ("speed", 2, "speed"),
            ("shards", 0, "shards"),
            ("chunk_size", 0, "chunk_size"),
            ("cache_entries", -1, "cache_entries"),
            ("cache_max_age", -5, "cache_max_age"),
            ("energy_model", "solar", "energy_model"),
        ],
    )
    def test_bad_field_named_in_error(self, field, value, message):
        with pytest.raises(ConfigError, match=message):
            dataclasses.replace(EngineConfig(), **{field: value})

    def test_bad_cache_geometry(self):
        with pytest.raises(ConfigError, match="multiple"):
            EngineConfig(cache_entries=10, cache_ways=4)
        with pytest.raises(ConfigError, match="cache_ways"):
            EngineConfig(cache_entries=8, cache_ways=0)

    def test_energy_models_cover_the_devices(self):
        assert set(ENERGY_MODELS) == {"asic", "fpga", "none"}

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            EngineConfig().backend = "linear"
