"""Tests for repro.core.packet."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import PacketFormatError
from repro.core.packet import Packet, PacketTrace
from repro.core.rules import DEMO_SCHEMA, FIVE_TUPLE


class TestPacket:
    def test_valid_5tuple(self):
        pkt = Packet.from_5tuple(0xC0A80101, 0x0A000001, 1234, 80, 6)
        assert pkt.fields == (0xC0A80101, 0x0A000001, 1234, 80, 6)

    def test_out_of_range(self):
        with pytest.raises(PacketFormatError):
            Packet.from_5tuple(0, 0, 70000, 80, 6)
        with pytest.raises(PacketFormatError):
            Packet.from_5tuple(0, 0, 0, 0, 300)

    def test_wrong_dims(self):
        pkt = Packet((1, 2, 3))
        with pytest.raises(PacketFormatError):
            pkt.validate(FIVE_TUPLE)


class TestPacketTrace:
    def test_construction_and_iteration(self):
        headers = np.array([[1, 2, 3, 4, 5], [6, 7, 8, 9, 10]], dtype=np.uint32)
        trace = PacketTrace(headers, FIVE_TUPLE)
        assert len(trace) == 2
        pkts = list(trace)
        assert pkts[0].fields == (1, 2, 3, 4, 5)
        assert trace[1].fields == (6, 7, 8, 9, 10)

    def test_shape_validation(self):
        with pytest.raises(PacketFormatError):
            PacketTrace(np.zeros((3, 4), dtype=np.uint32), FIVE_TUPLE)

    def test_field_range_validation(self):
        bad = np.array([[0, 0, 0, 0, 999]], dtype=np.uint32)
        with pytest.raises(PacketFormatError):
            PacketTrace(bad, FIVE_TUPLE)

    def test_subset_is_view(self):
        headers = np.arange(50, dtype=np.uint32).reshape(10, 5) % 256
        trace = PacketTrace(headers, DEMO_SCHEMA)
        sub = trace.subset(4)
        assert sub.n_packets == 4
        assert np.shares_memory(sub.headers, trace.headers)

    def test_from_packets_empty(self):
        trace = PacketTrace.from_packets([], FIVE_TUPLE)
        assert trace.n_packets == 0

    def test_save_load_roundtrip(self, tmp_path):
        headers = np.array(
            [[0xC0A80101, 0x0A000001, 1234, 80, 6],
             [0, 0xFFFFFFFF, 0, 65535, 255]],
            dtype=np.uint32,
        )
        trace = PacketTrace(headers, FIVE_TUPLE)
        path = str(tmp_path / "trace.txt")
        trace.save(path)
        loaded = PacketTrace.load(path)
        assert np.array_equal(loaded.headers, trace.headers)

    def test_load_skips_comments(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# comment\n1\t2\t3\t4\t5\t-1\n\n")
        trace = PacketTrace.load(str(path))
        assert trace.n_packets == 1
        assert trace[0].fields == (1, 2, 3, 4, 5)

    def test_load_too_few_fields(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(PacketFormatError):
            PacketTrace.load(str(path))
