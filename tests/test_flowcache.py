"""Flow-cache front-end: conformance, edge cases, and pipeline stats.

The one contract that matters: a :class:`CachedClassifier` is
bit-identical to the backend it wraps on any trace, at any shard count —
the cache only ever serves results the backend itself produced.  The
conformance class asserts it for every registered backend on a random
(background-mixed) trace and a Zipf-skewed one, through the pipeline at
1/2/4 shards.  Edge cases cover the zero-entry cache, capacity-1
thrash, duplicate packets inside one chunk, and invalidation after an
incremental rule update.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import FIVE_TUPLE, PacketTrace, Rule, generate_zipf_trace
from repro.core.errors import ConfigError
from repro.engine import (
    CachedClassifier,
    ClassificationPipeline,
    FlowCache,
    available_backends,
    build_backend,
    build_cached_backend,
)
from repro.energy import CacheEnergyModel

ALL_BACKENDS = available_backends()


@pytest.fixture(scope="module")
def zipf_trace(acl_small):
    return generate_zipf_trace(acl_small, 2000, n_flows=64, skew=1.0, seed=301)


@pytest.fixture(scope="module", params=ALL_BACKENDS)
def bare_backend(request, acl_small):
    return request.param, build_backend(request.param, acl_small)


def _headers(rows) -> np.ndarray:
    return np.asarray(rows, dtype=np.uint32)


class CountingClassifier:
    """Protocol-shaped stub: every header maps to its source-port field,
    while counting backend calls and rows seen."""

    backend_name = "counting"

    def __init__(self) -> None:
        self.calls = 0
        self.rows_seen = 0

    def classify_batch(self, headers: np.ndarray) -> np.ndarray:
        self.calls += 1
        self.rows_seen += headers.shape[0]
        return headers[:, 3].astype(np.int64)

    def classify(self, header) -> int:
        return int(self.classify_batch(_headers([header]))[0])

    def classify_trace(self, trace: PacketTrace) -> np.ndarray:
        return self.classify_batch(trace.headers)

    def memory_bytes(self) -> int:
        return 64

    def memory_accesses_per_lookup(self) -> int:
        return 8


class TestFlowCacheUnit:
    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError, match="entries"):
            FlowCache(-1)
        with pytest.raises(ConfigError, match="multiple"):
            FlowCache(10, ways=4)
        with pytest.raises(ConfigError, match="ways"):
            FlowCache(8, ways=0)

    def test_zero_entries_disabled(self):
        cache = FlowCache(0)
        assert not cache.enabled
        assert cache.occupancy_fraction() == 0.0

    def test_zero_entry_probe_and_fill_are_noops(self):
        # FlowCache is public API: a disabled cache must behave as
        # "every lookup misses", not crash on an empty table.
        cache = FlowCache(0)
        hdr = _headers([[1, 2, 3, 4, 5], [6, 7, 8, 9, 1]])
        hit, result = cache.probe(hdr)
        assert not hit.any()
        assert result.tolist() == [-1, -1]
        cache.fill(hdr, np.array([3, 4], dtype=np.int64))
        assert not cache.probe(hdr)[0].any()

    def test_probe_hit_after_fill(self):
        cache = FlowCache(8, ways=2)
        hdr = _headers([[1, 2, 3, 4, 5], [9, 9, 9, 9, 9]])
        hit, _ = cache.probe(hdr)
        assert not hit.any()
        cache.fill(hdr, np.array([7, -1], dtype=np.int64))
        hit, result = cache.probe(hdr)
        assert hit.all()
        assert result.tolist() == [7, -1]  # negative results cached too

    def test_lru_eviction_order(self):
        cache = FlowCache(2, ways=2)  # one set of two ways
        a, b, c = (
            _headers([[1, 0, 0, 0, 0]]),
            _headers([[2, 0, 0, 0, 0]]),
            _headers([[3, 0, 0, 0, 0]]),
        )
        cache.fill(a, np.array([10]))
        cache.fill(b, np.array([11]))
        assert cache.probe(a)[0].all()  # touch A: B becomes the LRU way
        cache.fill(c, np.array([12]))  # evicts B
        assert cache.probe(a)[0].all()
        assert cache.probe(c)[0].all()
        assert not cache.probe(b)[0].any()
        assert cache.stats.evictions == 1

    def test_wrap_insert_counts_the_displaced_batchmate(self):
        # More distinct headers than ways land in one set in a single
        # batch: the wrapping inserts displace fills their batch-mates
        # just made — evictions the pre-batch state cannot see.
        cache = FlowCache(1, ways=1)
        hdr = _headers([[i, 0, 0, 0, 0] for i in range(3)])
        cache.fill(hdr, np.arange(3, dtype=np.int64))
        assert cache.stats.evictions == 2
        assert cache.stats.reclamations == 0

    def test_warm_leaves_eviction_counters_untouched(self):
        cache = FlowCache(1, ways=1)
        hdr = _headers([[i, 0, 0, 0, 0] for i in range(4)])
        cache.fill(hdr[:1], np.array([0], dtype=np.int64))
        cache.warm(hdr, np.arange(4, dtype=np.int64))
        assert cache.stats.evictions == 0
        assert cache.stats.reclamations == 0

    def test_invalidate_drops_entries_keeps_counters(self):
        cache = FlowCache(8, ways=2)
        hdr = _headers([[1, 2, 3, 4, 5]])
        cache.fill(hdr, np.array([3]))
        cache.invalidate()
        assert not cache.probe(hdr)[0].any()
        assert cache.stats.invalidations == 1


class TestFlowCacheAging:
    """TTL/aging eviction: entries expire ``max_age`` lookups after the
    tick they were *filled* at (hits refresh the LRU stamp only)."""

    def test_bad_max_age_rejected(self):
        with pytest.raises(ConfigError, match="max_age"):
            FlowCache(8, ways=2, max_age=-1)

    def test_fresh_entry_hits_stale_entry_misses(self):
        cache = FlowCache(8, ways=2, max_age=6)
        hdr = _headers([[1, 2, 3, 4, 5]])
        other = _headers([[9, 9, 9, 9, 9]])
        cache.probe(hdr)
        cache.fill(hdr, np.array([7]))
        assert cache.probe(hdr)[0].all()  # well inside the TTL window
        for _ in range(6):  # age the entry out with unrelated lookups
            cache.probe(other)
        assert not cache.probe(hdr)[0].any()

    def test_hits_do_not_extend_the_ttl(self):
        # A hot flow keeps hitting right up to max_age, then must be
        # re-validated against the backend: hits refresh the LRU stamp,
        # not the fill time.
        cache = FlowCache(8, ways=2, max_age=4)
        hdr = _headers([[1, 2, 3, 4, 5]])
        cache.fill(hdr, np.array([7]))
        hits = [bool(cache.probe(hdr)[0][0]) for _ in range(8)]
        assert hits[0] and not hits[-1]
        assert hits.index(False) <= 4

    def test_zero_max_age_disables_aging(self):
        cache = FlowCache(8, ways=2, max_age=0)
        hdr = _headers([[1, 2, 3, 4, 5]])
        other = _headers([[9, 9, 9, 9, 9]])
        cache.fill(hdr, np.array([7]))
        for _ in range(1000):
            cache.probe(other)
        assert cache.probe(hdr)[0].all()

    def test_expired_slot_is_reclaimed_not_evicted(self):
        cache = FlowCache(2, ways=2, max_age=3)  # one set of two ways
        a = _headers([[1, 0, 0, 0, 0]])
        b = _headers([[2, 0, 0, 0, 0]])
        c = _headers([[3, 0, 0, 0, 0]])
        cache.fill(a, np.array([10]))
        for _ in range(4):
            cache.probe(b)  # a expires
        cache.fill(b, np.array([11]))  # one live entry, one expired
        cache.fill(c, np.array([12]))  # lands on a's expired slot
        assert cache.stats.evictions == 0
        assert cache.stats.reclamations == 1
        assert cache.probe(b)[0].all() and cache.probe(c)[0].all()

    def test_doubly_dead_slot_is_reclaimed_exactly_once(self):
        # A slot can be dead for two independent reasons at once —
        # TTL-expired *and* epoch-stale.  Re-using it must count as one
        # reclamation (and never as an eviction), not one per reason.
        cache = FlowCache(2, ways=2, max_age=3)
        a = _headers([[1, 0, 0, 0, 0]])
        cache.fill(a, np.array([10]))
        for _ in range(4):
            cache.probe(_headers([[9, 9, 9, 9, 9]]))  # a TTL-expires
        cache.advance_epoch()  # ...and goes epoch-stale on top
        cache.fill(_headers([[2, 0, 0, 0, 0]]), np.array([11]))
        cache.fill(_headers([[3, 0, 0, 0, 0]]), np.array([12]))
        assert cache.stats.evictions == 0
        assert cache.stats.reclamations == 1

    def test_occupancy_fraction_drops_after_expiry(self):
        cache = FlowCache(4, ways=2, max_age=2)
        cache.fill(_headers([[1, 0, 0, 0, 0]]), np.array([1]))
        assert cache.occupancy_fraction() > 0.0
        for _ in range(3):
            cache.probe(_headers([[8, 8, 8, 8, 8]]))
        assert cache.occupancy_fraction() == 0.0

    def test_cached_classifier_revalidates_after_expiry(self, acl_small):
        # Bit-identity is unconditional; aging only changes *when* the
        # backend is consulted.  After the TTL passes, the same flow
        # causes a second backend lookup.
        inner = CountingClassifier()
        cached = CachedClassifier(inner, entries=64, ways=4, max_age=8)
        hdr = _headers([[1, 2, 3, 4, 5]])
        bulk = _headers([[6, 7, 8, 9, 1]])
        assert cached.classify_batch(hdr).tolist() == [4]
        calls = inner.calls
        assert cached.classify_batch(hdr).tolist() == [4]  # served by cache
        assert inner.calls == calls
        for _ in range(12):
            cached.classify_batch(bulk)
        calls = inner.calls
        assert cached.classify_batch(hdr).tolist() == [4]
        assert inner.calls == calls + 1  # expired -> revalidated

    def test_pipeline_conformance_with_aggressive_ttl(
        self, acl_small, zipf_trace
    ):
        # A pathologically small TTL must never change results, only
        # hit rates: the pipeline output stays bit-identical.
        bare = build_backend("tuple_space", acl_small)
        want = bare.classify_trace(zipf_trace)
        cached = CachedClassifier(bare, entries=256, ways=4, max_age=50)
        res = ClassificationPipeline(cached, chunk_size=256).run(zipf_trace)
        assert np.array_equal(res.match, want)
        aged = res.cache_hit_rate
        fresh = ClassificationPipeline(
            CachedClassifier(bare, entries=256, ways=4), chunk_size=256
        ).run(zipf_trace)
        assert np.array_equal(fresh.match, want)
        assert aged <= fresh.cache_hit_rate


class TestCachedClassifierEdgeCases:
    def test_zero_entry_cache_is_pure_passthrough(self):
        inner = CountingClassifier()
        clf = CachedClassifier(inner, entries=0)
        hdr = _headers([[1, 2, 3, 4, 5]] * 10)
        stats = clf.batch_stats(hdr)
        # No coalescing, no hits: all 10 rows reach the backend.
        assert stats.cache_hits == 0 and stats.cache_misses == 10
        assert inner.rows_seen == 10
        assert stats.match.tolist() == [4] * 10

    def test_capacity_one_thrash(self):
        inner = CountingClassifier()
        clf = CachedClassifier(inner, entries=1, ways=1)
        distinct = _headers([[i, 0, 0, i, 0] for i in range(8)])
        first = clf.batch_stats(distinct)
        assert first.cache_misses == 8 and first.cache_hits == 0
        # Every distinct batch keeps missing: the single slot thrashes.
        second = clf.batch_stats(distinct[:-1])
        assert second.cache_misses == 7 and second.cache_hits == 0
        assert clf.cache.stats.hit_rate == 0.0
        assert clf.cache.stats.evictions >= 1
        # Results stay correct throughout.
        assert np.array_equal(first.match, distinct[:, 3].astype(np.int64))

    def test_duplicate_packets_within_one_chunk_coalesce(self):
        inner = CountingClassifier()
        clf = CachedClassifier(inner, entries=64, ways=4)
        hdr = _headers(
            [[1, 2, 3, 4, 5]] * 5 + [[6, 7, 8, 9, 1]] * 3 + [[1, 2, 3, 4, 5]]
        )
        stats = clf.batch_stats(hdr)
        # 9 packets, 2 distinct headers: one backend call on 2 rows.
        assert inner.calls == 1 and inner.rows_seen == 2
        assert stats.cache_misses == 2 and stats.cache_hits == 7
        assert stats.match.tolist() == [4] * 5 + [9] * 3 + [4]

    def test_scalar_classify_goes_through_cache(self):
        inner = CountingClassifier()
        clf = CachedClassifier(inner, entries=64)
        assert clf.classify((1, 2, 3, 4, 5)) == 4
        assert clf.classify((1, 2, 3, 4, 5)) == 4
        assert inner.rows_seen == 1

    def test_memory_hooks_include_cache(self):
        inner = CountingClassifier()
        clf = CachedClassifier(inner, entries=64, ways=4)
        assert clf.memory_bytes() > inner.memory_bytes()
        assert (
            clf.memory_accesses_per_lookup()
            == inner.memory_accesses_per_lookup() + 1
        )
        off = CachedClassifier(CountingClassifier(), entries=0)
        assert off.memory_accesses_per_lookup() == 8

    def test_invalidation_after_incremental_rule_update(
        self, acl_small, acl_small_trace
    ):
        clf = build_cached_backend(
            "incremental", acl_small, cache_entries=4096
        )
        before = clf.classify_trace(acl_small_trace)
        missed = before < 0
        assert missed.any()  # the background packets miss the ACL
        catch_all = Rule(
            ranges=tuple(
                (0, FIVE_TUPLE.max_value(d)) for d in range(FIVE_TUPLE.ndim)
            ),
            priority=len(acl_small),
            action=0,
        )
        clf.insert(catch_all)
        assert clf.cache.stats.invalidations == 1
        after = clf.classify_trace(acl_small_trace)
        # Stale -1 results must not be served from the cache.
        new_id = len(acl_small)
        assert (after[missed] == new_id).all()
        assert np.array_equal(after[~missed], before[~missed])
        assert np.array_equal(
            after, clf.classifier.classify_trace(acl_small_trace)
        )

    def test_stale_results_without_invalidation(self, acl_small,
                                                acl_small_trace):
        """Control for the invalidation test: mutating the wrapped
        classifier behind the cache's back *does* serve stale results —
        which is exactly why the update hooks flush."""
        clf = build_cached_backend(
            "incremental", acl_small, cache_entries=4096
        )
        before = clf.classify_trace(acl_small_trace)
        missed = before < 0
        catch_all = Rule(
            ranges=tuple(
                (0, FIVE_TUPLE.max_value(d)) for d in range(FIVE_TUPLE.ndim)
            ),
            priority=len(acl_small),
            action=0,
        )
        clf.classifier.insert(catch_all)  # bypass the wrapper on purpose
        stale = clf.classify_trace(acl_small_trace)
        assert (stale[missed] == -1).all()
        clf.invalidate_cache()
        fresh = clf.classify_trace(acl_small_trace)
        assert (fresh[missed] == len(acl_small)).all()


class TestConformance:
    """Cached == bare, for every backend, both traces, 1/2/4 shards."""

    def test_single_shot_random_trace(
        self, bare_backend, acl_small_trace
    ):
        name, bare = bare_backend
        cached = CachedClassifier(bare, entries=1024, ways=4)
        want = bare.classify_trace(acl_small_trace)
        assert np.array_equal(
            cached.classify_trace(acl_small_trace), want
        ), name
        # And again over the warm cache.
        assert np.array_equal(
            cached.classify_trace(acl_small_trace), want
        ), name

    def test_single_shot_zipf_trace(self, bare_backend, zipf_trace):
        name, bare = bare_backend
        cached = CachedClassifier(bare, entries=1024, ways=4)
        want = bare.classify_trace(zipf_trace)
        assert np.array_equal(cached.classify_trace(zipf_trace), want), name
        assert cached.cache.stats.hit_rate > 0.5, name  # Zipf(1.0) is hot

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_pipeline_shards_random_trace(
        self, bare_backend, acl_small_trace, shards
    ):
        name, bare = bare_backend
        cached = CachedClassifier(bare, entries=1024, ways=4)
        res = ClassificationPipeline(
            cached, chunk_size=512, shards=shards
        ).run(acl_small_trace)
        assert np.array_equal(
            res.match, bare.classify_trace(acl_small_trace)
        ), name
        assert res.cache_hits + res.cache_misses == res.n_packets, name

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_pipeline_shards_zipf_trace(
        self, bare_backend, zipf_trace, shards
    ):
        name, bare = bare_backend
        cached = CachedClassifier(bare, entries=1024, ways=4)
        res = ClassificationPipeline(
            cached, chunk_size=512, shards=shards
        ).run(zipf_trace)
        assert np.array_equal(
            res.match, bare.classify_trace(zipf_trace)
        ), name
        assert res.cache_hit_rate > 0.5, name


class TestPipelineCacheStats:
    def test_bare_backend_reports_no_cache_fields(
        self, acl_small, acl_small_trace
    ):
        clf = build_backend("linear", acl_small)
        res = ClassificationPipeline(clf, chunk_size=512).run(acl_small_trace)
        assert res.cache_hits is None
        assert res.cache_hit_rate is None
        assert all(c.cache_hits is None for c in res.chunks)

    def test_chunk_stats_sum_to_totals(self, acl_small, zipf_trace):
        cached = build_cached_backend("linear", acl_small, cache_entries=1024)
        res = ClassificationPipeline(cached, chunk_size=256).run(zipf_trace)
        assert sum(c.cache_hits for c in res.chunks) == res.cache_hits
        assert sum(c.cache_misses for c in res.chunks) == res.cache_misses
        assert res.cache_lookups == res.n_packets

    def test_warm_cache_second_run_all_hits(self, acl_small, zipf_trace):
        cached = build_cached_backend("linear", acl_small, cache_entries=1024)
        pipeline = ClassificationPipeline(cached, chunk_size=256)  # 1 shard
        pipeline.run(zipf_trace)
        res = pipeline.run(zipf_trace)  # 64 flows all fit: no misses left
        assert res.cache_hits == res.n_packets
        assert res.cache_hit_rate == 1.0

    def test_evictions_travel_back_from_forked_shards(
        self, acl_small, zipf_trace
    ):
        """Eviction counts happen inside forked workers; the pipeline
        must report them from the chunk outputs, not the parent cache
        (which forked runs never touch)."""
        cached = build_cached_backend(
            "linear", acl_small, cache_entries=4, cache_ways=1
        )
        res = ClassificationPipeline(
            cached, chunk_size=256, shards=2
        ).run(zipf_trace)
        assert res.cache_evictions is not None
        assert res.cache_evictions > 0  # 64 flows thrash a 4-entry cache
        assert sum(c.cache_evictions for c in res.chunks) == (
            res.cache_evictions
        )

    def test_persistent_pool_update_then_close_serves_fresh(
        self, acl_small, acl_small_trace
    ):
        """The documented rule-update recipe over a persistent pool:
        mutate through the wrapper, close() the pool, rerun."""
        cached = build_cached_backend(
            "incremental", acl_small, cache_entries=1024
        )
        with ClassificationPipeline(
            cached, chunk_size=512, shards=2, persistent=True
        ) as pipeline:
            before = pipeline.run(acl_small_trace).match
            missed = before < 0
            assert missed.any()
            catch_all = Rule(
                ranges=tuple(
                    (0, FIVE_TUPLE.max_value(d))
                    for d in range(FIVE_TUPLE.ndim)
                ),
                priority=len(acl_small),
                action=0,
            )
            cached.insert(catch_all)  # delegates + invalidates
            pipeline.close()  # workers held the pre-insert snapshot
            after = pipeline.run(acl_small_trace).match
        assert (after[missed] == len(acl_small)).all()
        assert np.array_equal(after[~missed], before[~missed])

    def test_cached_accelerator_occupancy_drops(self, acl_small, zipf_trace):
        bare = build_backend("accelerator", acl_small)
        base = ClassificationPipeline(bare, chunk_size=256).run(zipf_trace)
        cached = CachedClassifier(bare, entries=1024, ways=4)
        res = ClassificationPipeline(cached, chunk_size=256).run(zipf_trace)
        assert np.array_equal(res.match, base.match)
        assert res.mean_occupancy() is not None
        assert res.mean_occupancy() <= base.mean_occupancy()


class TestCacheEnergyModel:
    def test_effective_accesses_interpolates(self):
        model = CacheEnergyModel(backend_accesses=10.0)
        assert model.effective_accesses_per_lookup(1.0) == 1.0
        assert model.effective_accesses_per_lookup(0.0) == 12.0
        mid = model.effective_accesses_per_lookup(0.5)
        assert mid == pytest.approx(6.5)
        assert model.effective_lookup_speedup(0.9) > 2.0

    def test_energy_split_monotone_in_hit_rate(self):
        model = CacheEnergyModel(backend_accesses=10.0)
        assert (
            model.energy_per_packet_j(0.9)
            < model.energy_per_packet_j(0.5)
            < model.energy_per_packet_j(0.0)
        )
        assert model.uncached_energy_per_packet_j() == pytest.approx(
            10.0 * model.energy_per_access_j
        )

    def test_for_classifier_unwraps_cache(self, acl_small):
        cached = build_cached_backend("linear", acl_small, cache_entries=64)
        model = CacheEnergyModel.for_classifier(cached)
        assert model.backend_accesses == float(
            cached.classifier.memory_accesses_per_lookup()
        )

    def test_bad_hit_rate_rejected(self):
        model = CacheEnergyModel(backend_accesses=10.0)
        with pytest.raises(ValueError):
            model.energy_per_packet_j(1.5)
