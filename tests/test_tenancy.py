"""Multi-tenant serving + asyncio facade: the tenancy design contract.

Pins the four design points of :mod:`repro.serve.tenancy` — isolation
by construction (bit-identical per-tenant results, epoch bumps never
cross tenants), the single persistent-pool lease, weighted-fair
deficit-round-robin admission, and fault containment — plus the
:class:`~repro.serve.AsyncEngine` bridge and the ``serve`` CLI entry.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import numpy as np
import pytest

from repro.classbench import (
    generate_ruleset,
    generate_trace,
    generate_update_stream,
)
from repro.core.errors import ConfigError
from repro.serve import (
    AsyncEngine,
    Engine,
    EngineConfig,
    MultiTenantEngine,
    TenantSpec,
    iter_trace_segments,
)
from repro.serve.tenancy import _PoolLease

CONFIG = EngineConfig(backend="linear", chunk_size=256)


def make_fleet(n=3, rules=80, packets=1024, weights=(), config=CONFIG):
    """N tenants with distinct rulesets/traces + their workloads."""
    weights = dict(weights)
    tenants, workloads = [], {}
    for i in range(n):
        name = f"t{i}"
        ruleset = generate_ruleset("acl1", rules, seed=301 + i)
        spec = TenantSpec(name, config, weight=weights.get(name, 1.0))
        tenants.append((spec, ruleset))
        workloads[name] = generate_trace(ruleset, packets, seed=401 + i)
    return tenants, workloads


def isolated_matches(tenants, workloads):
    """Each tenant's match array from a private single-tenant session."""
    out = {}
    for spec, ruleset in tenants:
        with Engine.open(spec.config, ruleset) as engine:
            out[spec.name] = engine.classify(workloads[spec.name]).match
    return out


# ---------------------------------------------------------------------------
# TenantSpec
# ---------------------------------------------------------------------------
class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ConfigError, match="non-empty"):
            TenantSpec("")
        with pytest.raises(ConfigError, match="weight"):
            TenantSpec("a", CONFIG, weight=0.0)
        with pytest.raises(ConfigError, match="config"):
            TenantSpec("a", config="linear")

    def test_dict_config_is_coerced(self):
        spec = TenantSpec("a", {"backend": "linear", "chunk_size": 64})
        assert isinstance(spec.config, EngineConfig)
        assert spec.config.chunk_size == 64

    def test_round_trip_and_unknown_keys(self):
        spec = TenantSpec("gold", CONFIG, weight=2.5)
        again = TenantSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        with pytest.raises(ConfigError, match="unknown TenantSpec"):
            TenantSpec.from_dict({"name": "a", "wight": 2})


# ---------------------------------------------------------------------------
# Session construction
# ---------------------------------------------------------------------------
class TestConstruction:
    def test_duplicate_names_rejected(self, acl_small):
        with pytest.raises(ConfigError, match="duplicate tenant"):
            MultiTenantEngine.open([("a", acl_small), ("a", acl_small)])

    def test_needs_at_least_one_tenant(self):
        with pytest.raises(ConfigError, match="at least one"):
            MultiTenantEngine.open([])

    def test_spec_coercion_and_registration_order(self, acl_small):
        with MultiTenantEngine.open([
            ("plain", acl_small),
            ({"name": "fromdict", "weight": 2.0}, acl_small),
            (TenantSpec("full", CONFIG), acl_small),
        ]) as mte:
            assert mte.names == ("plain", "fromdict", "full")
            assert mte.spec("fromdict").weight == 2.0
            assert mte.engine("full").config == CONFIG

    def test_unknown_workload_name_rejected(self, acl_small):
        tenants, workloads = make_fleet(1)
        with MultiTenantEngine.open(tenants) as mte:
            with pytest.raises(ConfigError, match="unknown tenant"):
                mte.serve({"nobody": workloads["t0"]})
            with pytest.raises(ConfigError, match="unknown tenant"):
                mte.engine("nobody")


# ---------------------------------------------------------------------------
# Isolation by construction
# ---------------------------------------------------------------------------
class TestIsolation:
    def test_per_tenant_results_bit_identical_to_isolated_runs(self):
        tenants, workloads = make_fleet(3)
        want = isolated_matches(tenants, workloads)
        with MultiTenantEngine.open(tenants) as mte:
            report = mte.serve(workloads, segment_packets=256)
        assert report.backend == "multi-tenant"
        assert report.n_packets == sum(t.n_packets for t in workloads.values())
        by_name = {t.name: t for t in report.tenants}
        assert set(by_name) == set(want)
        for name, match in want.items():
            assert np.array_equal(by_name[name].report.match, match)

    def test_epoch_bump_never_crosses_tenants(self):
        config = EngineConfig(
            backend="hypercuts", chunk_size=256, updatable=True,
            cache_entries=256,
        )
        tenants, workloads = make_fleet(2, config=config)
        updates = {
            "t0": generate_update_stream(
                tenants[0][1], 12, workloads["t0"].n_packets,
                batch_size=4, seed=77,
            )
        }
        want = isolated_matches(tenants, workloads)
        with MultiTenantEngine.open(tenants) as mte:
            report = mte.serve(workloads, segment_packets=256, updates=updates)
            quiet_cache = mte.engine("t1").classifier.cache
            # The updating tenant's epoch advanced; the quiet tenant's
            # cache saw no invalidation and its epoch never moved.
            assert quiet_cache.stats.invalidations == 0
        by_name = {t.name: t for t in report.tenants}
        assert by_name["t0"].report.update_ops > 0
        assert by_name["t0"].report.final_epoch > 0
        assert not by_name["t1"].report.update_ops
        assert (by_name["t1"].report.final_epoch or 0) == 0
        # The quiet tenant's output is byte-for-byte the isolated run.
        assert np.array_equal(by_name["t1"].report.match, want["t1"])

    def test_streamed_chunks_cover_every_tenant_in_order(self):
        tenants, workloads = make_fleet(2)
        with MultiTenantEngine.open(tenants) as mte:
            seen: dict[str, list] = {"t0": [], "t1": []}
            for name, chunk in mte.stream(workloads, segment_packets=256):
                seen[name].append(chunk)
        for name, chunks in seen.items():
            assert [c.index for c in chunks] == list(range(len(chunks)))
            assert sum(c.n_packets for c in chunks) == 1024
            starts = [c.start for c in chunks]
            assert starts == sorted(starts)


# ---------------------------------------------------------------------------
# Weighted-fair admission
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_deficit_round_robin_honours_weights(self):
        tenants, workloads = make_fleet(2, weights={"t0": 2.0})
        with MultiTenantEngine.open(tenants) as mte:
            order = [
                name for name, _chunk
                in mte.stream(workloads, segment_packets=256, quantum=256)
            ]
        # Round one credits t0 two segments' worth and t1 one.
        assert order[:3] == ["t0", "t0", "t1"]
        assert order.count("t0") == order.count("t1") == 4

    def test_quantum_must_be_positive(self):
        tenants, workloads = make_fleet(1)
        with MultiTenantEngine.open(tenants) as mte:
            with pytest.raises(ConfigError, match="quantum"):
                list(mte.stream(workloads, quantum=0))

    def test_oversized_segments_still_serve(self):
        # A segment bigger than one round's credit must not starve: the
        # deficit accumulates across rounds until the segment fits.
        tenants, workloads = make_fleet(2, weights={"t0": 2.0})
        with MultiTenantEngine.open(tenants) as mte:
            report = mte.serve(workloads, segment_packets=1024, quantum=64)
        assert all(t.n_packets == 1024 for t in report.tenants)


# ---------------------------------------------------------------------------
# The shared persistent pool lease
# ---------------------------------------------------------------------------
class _FakePipeline:
    def __init__(self, persistent=True, plans_fork=True):
        self.persistent = persistent
        self._plans_fork = plans_fork
        self.closed = 0

    def fork_planned(self):
        return self._plans_fork

    def close(self):
        self.closed += 1


class TestPoolLease:
    def test_at_most_one_holder_with_handover(self):
        lease = _PoolLease()
        a, b = _FakePipeline(), _FakePipeline()
        lease.admit("a", a)
        assert lease.holder == "a"
        lease.admit("a", a)
        assert (lease.holder, a.closed) == ("a", 0)
        lease.admit("b", b)  # handover tears the previous pool down
        assert (lease.holder, a.closed, b.closed) == ("b", 1, 0)
        lease.release("a")  # not the holder: no-op
        assert lease.holder == "b"
        lease.release("b")
        assert (lease.holder, b.closed) == (None, 1)

    def test_non_pool_tiers_never_take_the_lease(self):
        lease = _PoolLease()
        lease.admit("a", _FakePipeline(persistent=False))
        lease.admit("b", _FakePipeline(plans_fork=False))
        assert lease.holder is None
        lease.close()

    def test_close_drops_the_holder(self):
        lease = _PoolLease()
        p = _FakePipeline()
        lease.admit("a", p)
        lease.close()
        assert (lease.holder, p.closed) == (None, 1)


# ---------------------------------------------------------------------------
# Fault containment
# ---------------------------------------------------------------------------
class TestFaultContainment:
    def test_faulted_tenant_leaves_others_bit_identical(self):
        tenants, workloads = make_fleet(3)
        want = isolated_matches(tenants, workloads)
        with MultiTenantEngine.open(tenants) as mte:
            def boom(*args, **kwargs):
                raise RuntimeError("injected tenant fault")

            mte.engine("t1").pipeline.run = boom
            report = mte.serve(workloads, segment_packets=256)
        by_name = {t.name: t for t in report.tenants}
        assert by_name["t1"].fault == "RuntimeError: injected tenant fault"
        assert by_name["t1"].n_packets == 0
        for name in ("t0", "t2"):
            assert by_name[name].fault is None
            assert np.array_equal(by_name[name].report.match, want[name])

    def test_fault_lands_in_the_aggregate_dict(self):
        tenants, workloads = make_fleet(2)
        with MultiTenantEngine.open(tenants) as mte:
            def boom(*args, **kwargs):
                raise ValueError("bad arena")

            mte.engine("t0").pipeline.run = boom
            report = mte.serve(workloads, segment_packets=256)
        data = report.to_dict()
        faults = {t["name"]: t.get("fault") for t in data["tenants"]}
        assert faults["t0"] == "ValueError: bad arena"
        assert faults.get("t1") is None


# ---------------------------------------------------------------------------
# Accounting
# ---------------------------------------------------------------------------
class TestReporting:
    def test_slo_percentiles_and_throughput(self):
        tenants, workloads = make_fleet(2)
        with MultiTenantEngine.open(tenants) as mte:
            report = mte.serve(workloads, segment_packets=256)
        for tenant in report.tenants:
            slo = tenant.slo
            assert slo is not None
            assert slo["batches"] == tenant.n_segments == 4
            assert 0 < slo["p50_ms"] <= slo["p95_ms"] <= slo["p99_ms"]
            assert tenant.busy_s > 0
            assert tenant.throughput_pps > 0

    def test_aggregate_report_is_json_safe(self):
        tenants, workloads = make_fleet(2)
        with MultiTenantEngine.open(tenants) as mte:
            report = mte.serve(workloads, segment_packets=256)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["backend"] == "multi-tenant"
        assert [t["name"] for t in data["tenants"]] == ["t0", "t1"]
        for tenant in data["tenants"]:
            assert tenant["n_packets"] == 1024
            assert "slo" in tenant or "latency" not in tenant


# ---------------------------------------------------------------------------
# AsyncEngine
# ---------------------------------------------------------------------------
def _serve_threads():
    return {
        t.name for t in threading.enumerate()
        if t.name.startswith("repro-serve")
    }


def _assert_serve_threads_gone():
    for _ in range(100):
        if not _serve_threads():
            return
        time.sleep(0.05)
    raise AssertionError(f"serve threads leaked: {_serve_threads()}")


class TestAsyncEngine:
    def test_stream_bit_identical_to_sync(self, acl_small, acl_small_trace):
        async def run():
            async with AsyncEngine.open(CONFIG, acl_small) as engine:
                chunks = []
                async for chunk in engine.stream(
                    iter_trace_segments(acl_small_trace, 256)
                ):
                    chunks.append(chunk)
                report = await engine.classify(acl_small_trace)
                return chunks, report

        chunks, report = asyncio.run(run())
        got = np.concatenate([c.match for c in chunks])
        assert np.array_equal(got, report.match)

    def test_classify_stream_off_the_loop(self, acl_small, acl_small_trace):
        async def run():
            async with AsyncEngine.open(CONFIG, acl_small) as engine:
                return await engine.classify_stream(
                    iter_trace_segments(acl_small_trace, 512)
                )

        report = asyncio.run(run())
        assert report.n_packets == acl_small_trace.n_packets
        assert report.n_segments == 4

    def test_early_break_tears_the_session_down(
        self, acl_small, acl_small_trace
    ):
        config = EngineConfig(
            backend="linear", chunk_size=256, shards=2, shard_mode="threads"
        )

        async def run():
            async with AsyncEngine.open(config, acl_small) as engine:
                async for chunk in engine.stream(
                    iter_trace_segments(acl_small_trace, 256),
                    prefetch=1, ring_slots=1,
                ):
                    assert chunk.index == 0
                    break

        asyncio.run(run())
        # asyncio.to_thread's executor threads outlive the loop by
        # design; only the engine's own serve threads must be gone.
        _assert_serve_threads_gone()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestServeCli:
    def test_serve_command_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        engine_json = tmp_path / "engine.json"
        engine_json.write_text(json.dumps(
            {"backend": "linear", "chunk_size": 256}
        ))
        tenants_json = tmp_path / "tenants.json"
        tenants_json.write_text(json.dumps([
            {"name": "gold", "weight": 2.0, "rules": 60, "seed": 11,
             "packets": 600},
            {"name": "bronze", "rules": 60, "seed": 23, "packets": 600,
             "zipf": 1.0, "flows": 32},
        ]))
        out_json = tmp_path / "report.json"
        rc = main([
            "serve", "--config", str(engine_json),
            "--tenants", str(tenants_json),
            "--segment-packets", "256", "-o", str(out_json),
        ])
        captured = capsys.readouterr().out
        assert rc == 0
        assert "served 2 tenants: 1200 packets" in captured
        assert "gold" in captured and "bronze" in captured
        data = json.loads(out_json.read_text())
        assert [t["name"] for t in data["tenants"]] == ["gold", "bronze"]

    def test_serve_rejects_unknown_tenant_keys(self, tmp_path, capsys):
        from repro.cli import main

        tenants_json = tmp_path / "tenants.json"
        tenants_json.write_text(json.dumps([{"name": "a", "rulez": 60}]))
        rc = main(["serve", "--tenants", str(tenants_json)])
        assert rc == 2
        assert "unknown keys" in capsys.readouterr().err
