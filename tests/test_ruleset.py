"""Tests for repro.core.ruleset: container semantics and ClassBench I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import RuleFormatError
from repro.core.packet import PacketTrace
from repro.core.rules import FIVE_TUPLE, Rule
from repro.core.ruleset import RuleSet


def _mk(src=(0, 0), dst=(0, 0), sport=(0, 65535), dport=(0, 65535), proto=(0, 0)):
    return Rule.from_5tuple(src, dst, sport, dport, proto)


class TestRuleSet:
    def test_priorities_renumbered(self):
        rules = [_mk(dport=(80, 80)), _mk(dport=(443, 443))]
        rs = RuleSet(rules, FIVE_TUPLE)
        assert [r.priority for r in rs] == [0, 1]

    def test_first_match_semantics(self):
        rs = RuleSet(
            [_mk(dport=(80, 80)), _mk()],  # specific then catch-all
            FIVE_TUPLE,
        )
        assert rs.classify((0, 0, 0, 80, 6)) == 0
        assert rs.classify((0, 0, 0, 81, 6)) == 1

    def test_no_match(self):
        rs = RuleSet([_mk(proto=(6, 1))], FIVE_TUPLE)
        assert rs.classify((0, 0, 0, 0, 17)) == -1

    def test_classify_trace(self):
        rs = RuleSet([_mk(dport=(80, 80)), _mk()], FIVE_TUPLE)
        headers = np.array(
            [[0, 0, 0, 80, 6], [0, 0, 0, 22, 6]], dtype=np.uint32
        )
        out = rs.classify_trace(PacketTrace(headers, FIVE_TUPLE))
        assert list(out) == [0, 1]

    def test_append_and_remove(self):
        rs = RuleSet([_mk(dport=(80, 80))], FIVE_TUPLE)
        rs.append(_mk(dport=(443, 443)))
        assert len(rs) == 2
        assert rs.classify((0, 0, 0, 443, 6)) == 1
        removed = rs.remove(0)
        assert removed.ranges[3] == (80, 80)
        # Remaining rule renumbered to priority 0.
        assert rs.classify((0, 0, 0, 443, 6)) == 0
        assert rs.classify((0, 0, 0, 80, 6)) == -1

    def test_subset(self):
        rs = RuleSet([_mk(dport=(p, p)) for p in (80, 443, 53)], FIVE_TUPLE)
        sub = rs.subset(2)
        assert len(sub) == 2
        assert sub.classify((0, 0, 0, 53, 6)) == -1

    def test_wildcard_fraction(self):
        rs = RuleSet([_mk(), _mk(src=(1, 32))], FIVE_TUPLE)
        assert rs.wildcard_fraction(0) == 0.5

    def test_storage_bytes(self):
        rs = RuleSet([_mk()] , FIVE_TUPLE)
        assert rs.storage_bytes() == 20


class TestClassBenchIO:
    def test_roundtrip(self, tmp_path, acl_small):
        path = str(tmp_path / "rules.txt")
        acl_small.save(path)
        loaded = RuleSet.load(path)
        assert len(loaded) == len(acl_small)
        for a, b in zip(acl_small, loaded):
            assert a.ranges == b.ranges

    def test_parse_canonical_line(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text(
            "@192.168.1.0/24\t10.0.0.0/8\t0 : 65535\t1024 : 65535\t0x06/0xFF\n"
        )
        rs = RuleSet.load(str(path))
        assert len(rs) == 1
        rule = rs[0]
        assert rule.ranges[0] == (0xC0A80100, 0xC0A801FF)
        assert rule.ranges[1] == (0x0A000000, 0x0AFFFFFF)
        assert rule.ranges[2] == (0, 65535)
        assert rule.ranges[3] == (1024, 65535)
        assert rule.ranges[4] == (6, 6)

    @pytest.mark.parametrize("src_tok", ["@192.168.1.0/24", "192.168.1.0/24"])
    def test_source_ip_with_and_without_at_prefix(self, tmp_path, src_tok):
        # ClassBench writes "@sip"; hand-edited filter sets often drop the
        # marker.  Both must parse to the same rule.
        path = tmp_path / "f.txt"
        path.write_text(
            f"{src_tok}\t10.0.0.0/8\t0 : 65535\t1024 : 65535\t0x06/0xFF\n"
        )
        rs = RuleSet.load(str(path))
        assert len(rs) == 1
        assert rs[0].ranges[0] == (0xC0A80100, 0xC0A801FF)
        assert rs[0].ranges[1] == (0x0A000000, 0x0AFFFFFF)

    def test_parse_errors(self, tmp_path):
        for bad in (
            "not a rule",
            "@1.2.3.4/33 1.0.0.0/8 0 : 1 0 : 1 0x06/0xFF",
            "@1.2.3.4/32 1.0.0.0/8 5 : 1 0 : 1 0x06/0xFF",
            "@1.2.3.4/32 1.0.0.0/8 0 : 1 0 : 1 0x06/0x0F",
            "@1.2.3.4/32 1.0.0.0/8 0 : 70000 0 : 1 0x06/0xFF",
        ):
            path = tmp_path / "bad.txt"
            path.write_text(bad + "\n")
            with pytest.raises(RuleFormatError):
                RuleSet.load(str(path))

    def test_skips_blank_and_comments(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text(
            "# header\n\n@1.2.3.4/32\t5.6.7.8/32\t0 : 65535\t80 : 80\t0x00/0x00\n"
        )
        rs = RuleSet.load(str(path))
        assert len(rs) == 1
        assert rs[0].ranges[4] == (0, 255)
