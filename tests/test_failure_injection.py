"""Failure injection: corrupted memory words and hostile traffic.

The FSM must stay robust when the memory image is damaged (decode never
crashes; classification degrades to wrong/no matches, which the control
plane detects by re-verification) and when traffic is adversarial
(all-background, all-identical, boundary values).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import generate_ruleset, generate_trace
from repro.algorithms import LinearSearchClassifier, build_hicuts
from repro.core.packet import PacketTrace
from repro.core.rules import FIVE_TUPLE
from repro.hw import (
    Accelerator,
    AcceleratorFSM,
    EMPTY_ADDR,
    build_memory_image,
    decode_internal_node,
    decode_rule,
)
from repro.hw.encoding import ChildEntry, encode_internal_node


@pytest.fixture()
def setup():
    rs = generate_ruleset("acl1", 200, seed=41)
    tree = build_hicuts(rs, binth=30, spfac=4, hw_mode=True)
    img = build_memory_image(tree, speed=1)
    trace = generate_trace(rs, 100, seed=42)
    return rs, tree, img, trace


class TestCorruptedWords:
    def test_flipped_leaf_bits_never_crash(self, setup):
        rs, tree, img, trace = setup
        rng = np.random.default_rng(0)
        leaf_addr = img.n_internal_words  # first leaf word
        word = img.memory.read(leaf_addr)
        for _ in range(20):
            bit = int(rng.integers(0, 4800))
            corrupted = word ^ (1 << bit)
            img.memory._words[leaf_addr] = corrupted
            fsm = AcceleratorFSM(img)
            records = fsm.run(trace)  # must terminate without exceptions
            assert len(records) == trace.n_packets
        img.memory._words[leaf_addr] = word

    def test_rule_slot_decode_total(self):
        """decode_rule is total over all mask codes 0-5 and the invalid
        sentinel; codes 6/7 raise a clean EncodingError."""
        from repro.core.errors import EncodingError

        rng = np.random.default_rng(1)
        ok, rejected = 0, 0
        for _ in range(300):
            slot = int(rng.integers(0, 1 << 63)) | (
                int(rng.integers(0, 1 << 63)) << 63
            )
            slot |= int(rng.integers(0, 1 << 34)) << 126
            try:
                dec = decode_rule(slot & ((1 << 160) - 1))
                ok += 1
                if dec.valid:
                    dec.matches((0, 0, 0, 0, 0))
            except EncodingError:
                rejected += 1
        assert ok + rejected == 300
        assert ok > 0

    def test_entry_redirected_to_empty_gives_no_match(self, setup):
        rs, tree, img, trace = setup
        dec = decode_internal_node(img.memory.read(0))
        # Point every child entry at EMPTY: every packet must dead-end.
        empty_entries = [
            ChildEntry(is_leaf=True, addr=EMPTY_ADDR, pos=0)
            for _ in range(256)
        ]
        img.memory._words[0] = encode_internal_node(
            list(dec.masks), list(dec.shifts), empty_entries
        )
        records = AcceleratorFSM(img).run(trace)
        assert all(r.match == -1 for r in records)
        assert all(r.accesses == 0 for r in records)


class TestHostileTraffic:
    def test_boundary_headers(self, setup):
        rs, tree, img, trace = setup
        extremes = np.array(
            [
                [0, 0, 0, 0, 0],
                [2**32 - 1, 2**32 - 1, 65535, 65535, 255],
                [0, 2**32 - 1, 0, 65535, 0],
                [2**32 - 1, 0, 65535, 0, 255],
            ],
            dtype=np.uint32,
        )
        t = PacketTrace(extremes, FIVE_TUPLE)
        want = LinearSearchClassifier(rs).classify_trace(t)
        assert np.array_equal(Accelerator(img).run_trace(t).match, want)
        assert [r.match for r in AcceleratorFSM(img).run(t)] == list(want)

    def test_single_repeated_header(self, setup):
        rs, tree, img, _ = setup
        header = rs.arrays.lo[:, 3].astype(np.uint32)
        t = PacketTrace(np.tile(header, (64, 1)), FIVE_TUPLE)
        run = Accelerator(img).run_trace(t)
        assert len(set(run.match.tolist())) == 1
        # Steady state: every packet costs the same occupancy.
        assert len(set(run.occupancy.tolist())) == 1

    def test_empty_ruleset_trace_guard(self, setup):
        rs, tree, img, _ = setup
        t = PacketTrace(np.empty((0, 5), dtype=np.uint32), FIVE_TUPLE)
        run = Accelerator(img).run_trace(t)
        assert run.n_packets == 0
        assert AcceleratorFSM(img).run(t) == []
