"""FlatTree CSR row-splice patching and epoch-tagged cache invalidation.

The incremental updater reports touched node ids; :meth:`FlatTree.patch`
splices exactly those rows.  The contract under test is the strongest
one available: after every patch, every compiled buffer is **bit
identical** to a fresh ``FlatTree`` compile of the mutated tree — same
dtypes, same shapes, same contents, same mask/shift fast-path flag.
A second group pins the serving-path fix: ``DecisionTree.batch_lookup``
after an update takes the patch path (the patch counter moves, the
recompile counter does not), so a silent fallback to full recompilation
fails loudly.  The last group covers the flow cache's O(1) epoch-tagged
invalidation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import generate_ruleset, generate_trace
from repro.algorithms.flat_tree import FlatTree
from repro.algorithms.incremental import IncrementalClassifier
from repro.core.updates import insert_op, remove_op
from repro.engine import CachedClassifier, FlowCache, build_updatable_backend


def assert_bit_identical(tree, tag="") -> None:
    """The live (possibly patched) kernel equals a from-scratch compile."""
    got = tree.flat
    fresh = FlatTree(tree)
    assert got.naxes == fresh.naxes, (tag, "naxes")
    assert got.pow2 == fresh.pow2, (tag, "pow2")
    names = list(FlatTree.BUFFER_NAMES)
    if fresh.pow2:
        names += ["ax_mask", "ax_shift"]
    for name in names:
        a, b = getattr(got, name), getattr(fresh, name)
        assert a.dtype == b.dtype, (tag, name, a.dtype, b.dtype)
        assert a.shape == b.shape, (tag, name, a.shape, b.shape)
        assert np.array_equal(a, b), (tag, name)


@pytest.mark.parametrize("algorithm,family,hw_mode,binth", [
    ("hicuts", "acl1", True, 30),
    ("hicuts", "fw1", True, 8),       # small binth: subtree rebuilds
    ("hypercuts", "ipc1", True, 30),  # pushed rules in play
    ("hypercuts", "acl1", False, 16),  # software mode (non-pow2 path)
])
def test_patched_buffers_bit_identical_after_every_update(
    algorithm, family, hw_mode, binth
):
    rs = generate_ruleset(family, 250, seed=51)
    inc = IncrementalClassifier(
        rs, algorithm=algorithm, binth=binth, spfac=4, hw_mode=hw_mode
    )
    tree = inc.tree
    tree.flat  # initial compile
    expected_patches = 0
    for i, rule in enumerate(generate_ruleset(family, 20, seed=52).rules):
        inc.insert(rule)
        expected_patches += bool(tree._flat_dirty)
        assert_bit_identical(tree, f"{algorithm}/{family} insert {i}")
    for rid in (2, 17, 101, 230, 255):
        inc.remove(rid)
        # A remove can touch nothing (the rule had no leaf occurrences);
        # only updates with dirty rows should patch.
        expected_patches += bool(tree._flat_dirty)
        assert_bit_identical(tree, f"{algorithm}/{family} remove {rid}")
    assert tree.flat_compiles == 1
    assert tree.flat_patches == expected_patches
    assert expected_patches >= 20  # every insert touches at least a leaf
    # And the patched kernel still classifies correctly.
    trace = generate_trace(inc.live_ruleset(), 1000, seed=53,
                           background_fraction=0.2)
    got = inc.classify_trace(trace)
    ref = tree.batch_lookup_reference(trace).match
    assert np.array_equal(got, ref)


def test_serving_thread_patches_instead_of_recompiling():
    """The pinned fix: batch_lookup after an update must take the patch
    path.  If patching silently fell back to a full recompile, the
    compile counter would move and this test fails loudly."""
    rs = generate_ruleset("acl1", 300, seed=54)
    inc = IncrementalClassifier(rs, algorithm="hicuts", binth=30, spfac=4)
    tree = inc.tree
    trace = generate_trace(rs, 500, seed=55)
    inc.classify_trace(trace)  # compile once
    assert (tree.flat_compiles, tree.flat_patches) == (1, 0)
    kernel_before = tree.flat
    for step, rule in enumerate(generate_ruleset("acl1", 5, seed=56).rules):
        inc.insert(rule)
        assert tree._flat_dirty, "updater must mark dirty rows"
        inc.classify_trace(trace)  # serving lookup applies the patch
        assert tree.flat_patches == step + 1
        assert tree.flat_compiles == 1, "silent recompile on serving thread"
    # Patching is in place: the kernel object identity is preserved.
    assert tree.flat is kernel_before
    # invalidate_cache remains the explicit full-recompile hammer.
    tree.invalidate_cache()
    inc.classify_trace(trace)
    assert tree.flat_compiles == 2


def test_patch_rejects_unknown_node_ids():
    rs = generate_ruleset("acl1", 100, seed=57)
    inc = IncrementalClassifier(rs, binth=30)
    flat = inc.tree.flat
    assert flat.patch({len(inc.tree.nodes) + 5}) is False
    assert flat.patch(set()) is True  # nothing to do is a no-op success


def test_apply_updates_keeps_kernel_patched():
    """The engine-level update surface drives the same patch path."""
    rs = generate_ruleset("acl1", 200, seed=58)
    clf = build_updatable_backend("incremental", rs, binth=30)
    trace = generate_trace(rs, 400, seed=59)
    clf.classify_trace(trace)
    extra = list(generate_ruleset("acl1", 4, seed=60).rules)
    clf.apply_updates(tuple(insert_op(r) for r in extra) + (remove_op(7),))
    clf.classify_trace(trace)
    assert clf.tree.flat_compiles == 1
    assert clf.tree.flat_patches == 1  # one batch -> one splice
    assert_bit_identical(clf.tree, "apply_updates")


# ---------------------------------------------------------------------------
# Epoch-tagged flow-cache invalidation
# ---------------------------------------------------------------------------
def _headers(rows):
    return np.asarray(rows, dtype=np.uint32)


class TestFlowCacheEpochs:
    def test_advance_epoch_invalidates_in_o1(self):
        cache = FlowCache(8, ways=2)
        hdr = _headers([[1, 2, 3, 4, 5], [6, 7, 8, 9, 10]])
        cache.fill(hdr, np.array([3, 4], dtype=np.int64))
        assert cache.probe(hdr)[0].all()
        assert cache.occupancy_fraction() > 0
        cache.advance_epoch()
        # No table writes happened, yet nothing is served any more.
        assert not cache.probe(hdr)[0].any()
        assert cache.occupancy_fraction() == 0.0
        assert cache.stats.invalidations == 1

    def test_stale_epoch_slots_are_reclaimed_not_evicted(self):
        cache = FlowCache(2, ways=2)  # one set, two ways
        a = _headers([[1, 0, 0, 0, 0]])
        b = _headers([[2, 0, 0, 0, 0]])
        cache.fill(a, np.array([10], dtype=np.int64))
        cache.advance_epoch()
        cache.fill(b, np.array([11], dtype=np.int64))
        # Overwriting A's stale slot is reclamation, not an eviction...
        assert cache.stats.evictions == 0
        assert cache.probe(b)[0].all()
        assert not cache.probe(a)[0].any()
        # ...and refilling A under the new epoch serves again.
        cache.fill(a, np.array([10], dtype=np.int64))
        assert cache.probe(a)[0].all()

    def test_cached_classifier_epoch_invalidation_end_to_end(self):
        rs = generate_ruleset("acl1", 150, seed=61)
        cached = CachedClassifier(
            build_updatable_backend("incremental", rs, binth=30),
            entries=512, ways=4,
        )
        trace = generate_trace(rs, 800, seed=62, background_fraction=0.2)
        cached.classify_trace(trace)          # fill
        cached.classify_trace(trace)          # mostly hits
        assert cached.cache.stats.hits > 0
        # A rule update epoch-invalidates; results must track the new
        # ruleset immediately (no stale entries served).
        wild = generate_ruleset("acl1", 1, seed=63).rules[0]
        res = cached.apply_updates((remove_op(0), insert_op(wild)))
        assert cached.cache.stats.invalidations == 1
        assert res.epoch == 1 == cached.update_epoch
        want = cached.classifier.classify_trace(trace)
        assert np.array_equal(cached.classify_trace(trace), want)
        assert (cached.classify_trace(trace) != 0).all()  # rule 0 is dead
