"""Tests for the functional TCAM baseline with range expansion."""

from __future__ import annotations

import numpy as np
import pytest

from repro import generate_ruleset, generate_trace
from repro.algorithms import LinearSearchClassifier
from repro.baselines import TcamClassifier
from repro.core.errors import CapacityError
from repro.core.rules import FIVE_TUPLE, Rule
from repro.core.ruleset import RuleSet


class TestCorrectness:
    @pytest.mark.parametrize("family", ["acl1", "fw1"])
    def test_oracle_equality(self, family):
        rs = generate_ruleset(family, 150, seed=81)
        tcam = TcamClassifier(rs)
        trace = generate_trace(rs, 800, seed=82, background_fraction=0.2)
        want = LinearSearchClassifier(rs).classify_trace(trace)
        got = tcam.classify_trace(trace)
        assert np.array_equal(got, want)

    def test_single_classify(self, acl_small):
        tcam = TcamClassifier(acl_small)
        lin = LinearSearchClassifier(acl_small)
        arrays = acl_small.arrays
        for r in range(0, len(acl_small), 11):
            header = tuple(int(arrays.lo[d, r]) for d in range(5))
            assert tcam.classify(header) == lin.classify(header)


class TestExpansion:
    def _rs(self, sport, dport):
        rule = Rule.from_5tuple((0, 0), (0, 0), sport, dport, (6, 1))
        return RuleSet([rule], FIVE_TUPLE)

    def test_exact_ports_one_slot(self):
        tcam = TcamClassifier(self._rs((80, 80), (443, 443)))
        assert tcam.n_slots == 1

    def test_hi_port_expands_six_ways(self):
        tcam = TcamClassifier(self._rs((1024, 65535), (80, 80)))
        assert tcam.n_slots == 6

    def test_two_ranges_multiply(self):
        tcam = TcamClassifier(self._rs((1024, 65535), (1024, 65535)))
        assert tcam.n_slots == 36

    def test_worst_case_range(self):
        # [1, 65534] needs 2w-2 = 30 prefixes per dimension.
        tcam = TcamClassifier(self._rs((1, 65534), (0, 65535)))
        assert tcam.n_slots == 30

    def test_stats_efficiency(self, acl_small):
        stats = TcamClassifier(acl_small).stats()
        assert stats.n_rules == len(acl_small)
        assert stats.n_slots >= stats.n_rules
        assert stats.storage_efficiency == pytest.approx(
            stats.n_rules / stats.n_slots
        )
        assert stats.size_bytes == stats.n_slots * 18

    def test_acl_efficiency_in_published_band(self):
        """[14]: real sets land at 16-53 % storage efficiency; our acl1
        model with its AR/HI port mix should be comfortably below 100 %."""
        rs = generate_ruleset("acl1", 800, seed=83)
        stats = TcamClassifier(rs).stats()
        assert stats.storage_efficiency < 0.9
        assert stats.expansion_factor > 1.1

    def test_slot_guard(self, acl_small):
        with pytest.raises(CapacityError):
            TcamClassifier(acl_small, max_slots=10)

    def test_wrong_schema(self, demo_ruleset):
        with pytest.raises(CapacityError):
            TcamClassifier(demo_ruleset)
