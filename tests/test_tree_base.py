"""Tests for the shared DecisionTree machinery (base.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import generate_trace
from repro.algorithms import OpCounter, build_hicuts, build_hypercuts
from repro.algorithms.base import EMPTY_CHILD
from repro.core.packet import PacketTrace


class TestLookupVsBatch:
    @pytest.mark.parametrize("builder,kwargs", [
        (build_hicuts, {}),
        (build_hypercuts, {}),
        (build_hicuts, {"hw_mode": True, "binth": 30}),
        (build_hypercuts, {"hw_mode": True, "binth": 30}),
    ])
    def test_per_packet_agreement(self, acl_small, acl_small_trace, builder, kwargs):
        tree = builder(acl_small, spfac=4, **kwargs)
        batch = tree.batch_lookup(acl_small_trace)
        for i in range(0, acl_small_trace.n_packets, 97):
            header = acl_small_trace.headers[i]
            res = tree.lookup(header)
            assert res.rule_id == batch.match[i]
            assert res.internal_nodes == batch.internal_nodes[i]
            assert res.match_pos == batch.match_pos[i]
            assert res.rules_compared == batch.rules_compared[i]

    def test_lookup_counts_ops(self, acl_small):
        tree = build_hicuts(acl_small, binth=16, spfac=4)
        ops = OpCounter()
        tree.lookup(acl_small.arrays.lo[:, 0], ops=ops)
        assert ops["mem_read"] > 0


class TestStats:
    def test_stats_consistency(self, acl_medium):
        tree = build_hicuts(acl_medium, binth=16, spfac=4)
        st = tree.stats()
        assert st.n_nodes == st.n_internal + st.n_leaves
        assert st.n_nodes == len(tree)
        assert st.max_leaf_rules <= 16
        assert st.worst_case_sw_accesses > st.max_depth

    def test_leaf_and_internal_ids(self, acl_small):
        tree = build_hicuts(acl_small, binth=16)
        leaf_ids = set(tree.leaf_ids())
        internal_ids = set(tree.internal_ids())
        assert leaf_ids.isdisjoint(internal_ids)
        assert leaf_ids | internal_ids == set(range(len(tree)))

    def test_software_memory_includes_ruleset(self, acl_small):
        tree = build_hicuts(acl_small, binth=16)
        assert tree.software_memory_bytes() >= len(acl_small) * 20

    def test_merged_children_share_ids(self, acl_medium):
        """Child merging must produce shared node ids (the DAG)."""
        tree = build_hicuts(acl_medium, binth=30, spfac=4, hw_mode=True)
        shared = False
        for node in tree.nodes:
            if node.is_leaf:
                continue
            kids = [int(c) for c in node.children if int(c) != EMPTY_CHILD]
            if len(kids) != len(set(kids)):
                shared = True
                break
        assert shared, "expected at least one merged child in a 1000-rule tree"


class TestBatchEdgeCases:
    def test_empty_trace(self, acl_small):
        tree = build_hicuts(acl_small, binth=16)
        trace = PacketTrace(
            np.empty((0, 5), dtype=np.uint32), acl_small.schema
        )
        batch = tree.batch_lookup(trace)
        assert batch.n_packets == 0

    def test_all_background(self, acl_small):
        rng = np.random.default_rng(5)
        headers = np.stack(
            [
                rng.integers(0, 2**32, size=64, dtype=np.uint32),
                rng.integers(0, 2**32, size=64, dtype=np.uint32),
                rng.integers(0, 2**16, size=64, dtype=np.uint32),
                rng.integers(0, 2**16, size=64, dtype=np.uint32),
                rng.integers(0, 2**8, size=64, dtype=np.uint32),
            ],
            axis=1,
        )
        trace = PacketTrace(headers, acl_small.schema)
        tree = build_hicuts(acl_small, binth=16)
        batch = tree.batch_lookup(trace)
        want = acl_small.classify_trace(trace)
        assert np.array_equal(batch.match, want)

    def test_burst_heavy_trace(self, acl_small):
        trace = generate_trace(acl_small, 512, seed=77, pareto_shape=0.8)
        tree = build_hypercuts(acl_small, binth=16)
        want = acl_small.classify_trace(trace)
        assert np.array_equal(tree.batch_lookup(trace).match, want)
