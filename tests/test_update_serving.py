"""Differential update-conformance harness for the live-update serving
path.

Replays seeded, randomly generated interleaved update/classify schedules
through the sharded :class:`~repro.engine.ClassificationPipeline` and
requires exact agreement with a linear-search oracle *rebuilt from
scratch at every epoch*: the oracle applies the same chunk-boundary
epoch semantics the pipeline documents (a batch takes effect at the
first chunk whose start is at or after its packet offset), classifies
each chunk against the live rules of that epoch, and maps the rebuilt
oracle's compacted ids back to stable ids.  Coverage spans the
incremental backend across 1/2/4 shards x persistent on/off x flow
cache on/off, plus the rebuild adapters for linear and tuple-space —
every combination must match the oracle bit for bit.

A property-based layer (Hypothesis) fuzzes raw update batches —
duplicate inserts, removals of absent ids, empty batches, binth
overflow — asserting no crash and oracle agreement, with shrunk
counterexamples pinned as named regression tests.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import generate_ruleset, generate_trace
from repro.algorithms import LinearSearchClassifier
from repro.algorithms.incremental import IncrementalClassifier
from repro.classbench import generate_update_stream
from repro.core.errors import ConfigError
from repro.core.rules import Rule
from repro.core.ruleset import RuleSet
from repro.core.updates import OP_INSERT, ScheduledUpdate, insert_op, remove_op
from repro.engine import (
    CachedClassifier,
    ClassificationPipeline,
    RebuildUpdatable,
    build_backend,
    build_updatable_backend,
    is_updatable,
)

CHUNK = 256


# ---------------------------------------------------------------------------
# The per-epoch oracle
# ---------------------------------------------------------------------------
class OracleStore:
    """Stable-id control-plane replica driving a from-scratch oracle."""

    def __init__(self, ruleset: RuleSet) -> None:
        self.schema = ruleset.schema
        self.rules = list(ruleset.rules)
        self.live = [True] * len(self.rules)

    def apply(self, batch) -> None:
        for op in batch:
            if op.op == OP_INSERT:
                self.rules.append(op.rule)
                self.live.append(True)
            elif 0 <= op.rule_id < len(self.rules) and self.live[op.rule_id]:
                self.live[op.rule_id] = False

    def classify(self, headers: np.ndarray) -> np.ndarray:
        """First-match stable ids via a freshly built linear search."""
        live_rules = [r for r, ok in zip(self.rules, self.live) if ok]
        stable = np.asarray(
            [i for i, ok in enumerate(self.live) if ok], dtype=np.int64
        )
        out = np.full(headers.shape[0], -1, dtype=np.int64)
        if not live_rules:
            return out
        sub = RuleSet(live_rules, self.schema, "oracle-epoch")
        compact = LinearSearchClassifier(sub).classify_batch(headers)
        hit = compact >= 0
        out[hit] = stable[compact[hit]]
        return out


def replay_oracle(ruleset, trace, schedule, chunk_size=CHUNK) -> np.ndarray:
    """Expected trace-order matches under chunk-boundary epoch semantics."""
    store = OracleStore(ruleset)
    n = trace.n_packets
    bounds = [
        (s, min(s + chunk_size, n)) for s in range(0, n, chunk_size)
    ]
    starts = [b[0] for b in bounds]
    sched = sorted(schedule, key=lambda u: u.at_packet)
    out = np.full(n, -1, dtype=np.int64)
    idx = 0
    for i, (s, e) in enumerate(bounds):
        while idx < len(sched) and bisect_left(starts, sched[idx].at_packet) <= i:
            store.apply(sched[idx].batch)
            idx += 1
        out[s:e] = store.classify(trace.headers[s:e])
    while idx < len(sched):
        store.apply(sched[idx].batch)
        idx += 1
    return out


# ---------------------------------------------------------------------------
# Shared workload
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def serve_rs():
    return generate_ruleset("acl1", 300, seed=71)


@pytest.fixture(scope="module")
def serve_trace(serve_rs):
    return generate_trace(serve_rs, 4096, seed=72, background_fraction=0.15)


@pytest.fixture(scope="module")
def serve_schedule(serve_rs, serve_trace):
    return generate_update_stream(
        serve_rs, 48, serve_trace.n_packets,
        insert_fraction=0.55, batch_size=6, seed=73,
    )


@pytest.fixture(scope="module")
def serve_want(serve_rs, serve_trace, serve_schedule):
    return replay_oracle(serve_rs, serve_trace, serve_schedule)


# ---------------------------------------------------------------------------
# The differential matrix: incremental x shards x persistent x cache
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("persistent", [False, True])
@pytest.mark.parametrize("cache_entries", [0, 256])
def test_incremental_matrix_agrees_with_per_epoch_oracle(
    serve_rs, serve_trace, serve_schedule, serve_want,
    shards, persistent, cache_entries,
):
    clf = build_updatable_backend(
        "incremental", serve_rs, algorithm="hicuts", binth=30, spfac=4,
    )
    if cache_entries:
        clf = CachedClassifier(clf, entries=cache_entries, ways=4)
    with ClassificationPipeline(
        clf, chunk_size=CHUNK, shards=shards, persistent=persistent
    ) as pipeline:
        res = pipeline.run(serve_trace, updates=serve_schedule)
    assert np.array_equal(res.match, serve_want)
    assert res.update_batches == len(serve_schedule)
    assert res.final_epoch == len(serve_schedule)
    # Epochs are monotone along the trace and land on the final version.
    epochs = [c.epoch for c in res.chunks]
    assert epochs == sorted(epochs)
    assert epochs[0] == 0 or res.chunks[0].updates_applied > 0
    applied_ops = sum(c.updates_applied for c in res.chunks)
    assert applied_ops <= res.update_ops


@pytest.mark.parametrize("backend", ["linear", "tuple_space"])
def test_rebuild_adapters_agree_with_per_epoch_oracle(
    serve_rs, serve_trace, serve_schedule, serve_want, backend
):
    clf = build_updatable_backend(backend, serve_rs)
    assert isinstance(clf, RebuildUpdatable)
    res = ClassificationPipeline(clf, chunk_size=CHUNK).run(
        serve_trace, updates=serve_schedule
    )
    assert np.array_equal(res.match, serve_want)


def test_hypercuts_incremental_agrees(serve_rs, serve_trace, serve_schedule,
                                      serve_want):
    clf = build_updatable_backend(
        "incremental", serve_rs, algorithm="hypercuts", binth=30,
    )
    res = ClassificationPipeline(clf, chunk_size=CHUNK, shards=2).run(
        serve_trace, updates=serve_schedule
    )
    assert np.array_equal(res.match, serve_want)


# ---------------------------------------------------------------------------
# Epoch semantics and serving-path mechanics
# ---------------------------------------------------------------------------
def test_updates_on_non_updatable_backend_rejected(serve_rs, serve_trace):
    clf = build_backend("rfc", serve_rs)
    pipeline = ClassificationPipeline(clf, chunk_size=CHUNK)
    with pytest.raises(ConfigError):
        pipeline.run(
            serve_trace, updates=[ScheduledUpdate(0, (remove_op(1),))]
        )
    assert not is_updatable(clf)


def test_cached_non_updatable_backend_rejected_up_front(serve_rs,
                                                       serve_trace):
    """A flow cache around a non-updatable backend must be rejected at
    run() time with ConfigError — not die mid-run in a worker because
    the wrapper's delegating apply_updates looks callable."""
    cached = CachedClassifier(build_backend("linear", serve_rs), entries=64)
    assert not is_updatable(cached)
    pipeline = ClassificationPipeline(cached, chunk_size=CHUNK)
    with pytest.raises(ConfigError):
        pipeline.run(
            serve_trace, updates=[ScheduledUpdate(0, (remove_op(1),))]
        )
    with pytest.raises(ConfigError):
        cached.apply_updates((remove_op(1),))
    # The cached *updatable* composition stays updatable.
    assert is_updatable(CachedClassifier(
        build_updatable_backend("linear", serve_rs), entries=64
    ))
    # And without an update stream, a cached non-updatable backend
    # reports no epochs at all (None, not a phantom 0).
    res = pipeline.run(serve_trace)
    assert res.final_epoch is None
    assert all(c.epoch is None for c in res.chunks)


def test_trailing_and_empty_batches(serve_rs, serve_trace):
    """Batches past the trace end apply after it; empty batches only
    advance the epoch."""
    clf = build_updatable_backend("incremental", serve_rs, binth=30)
    bare = build_backend("incremental", serve_rs, binth=30)
    schedule = [
        ScheduledUpdate(serve_trace.n_packets + 10, (remove_op(0),)),
        ScheduledUpdate(100, ()),
    ]
    res = ClassificationPipeline(clf, chunk_size=CHUNK).run(
        serve_trace, updates=schedule
    )
    # No in-trace mutation: matches equal the never-updated classifier's.
    assert np.array_equal(res.match, bare.classify_trace(serve_trace))
    assert res.final_epoch == 2
    assert clf.update_epoch == 2  # trailing batch applied after the run
    assert not clf._live[0]  # rule 0 is gone post-run


def test_persistent_pool_serves_updates_across_runs(serve_rs, serve_trace):
    """Lagging persistent workers catch up through the shipped prefix
    log; a sequential pipeline is the reference."""
    extra = list(generate_ruleset("acl1", 6, seed=74).rules)
    u1 = [ScheduledUpdate(512, (insert_op(extra[0]), remove_op(3)))]
    u3 = [ScheduledUpdate(40, (remove_op(10),)),
          ScheduledUpdate(4000, (insert_op(extra[1]),))]

    par = build_updatable_backend("incremental", serve_rs, binth=30)
    seq = build_updatable_backend("incremental", serve_rs, binth=30)
    with ClassificationPipeline(
        par, chunk_size=CHUNK, shards=4, persistent=True
    ) as pipeline:
        runs = [
            pipeline.run(serve_trace, updates=u1),
            pipeline.run(serve_trace),
            pipeline.run(serve_trace, updates=u3),
            pipeline.run(serve_trace),
        ]
    ref_pipe = ClassificationPipeline(seq, chunk_size=CHUNK)
    refs = [
        ref_pipe.run(serve_trace, updates=u1),
        ref_pipe.run(serve_trace),
        ref_pipe.run(serve_trace, updates=u3),
        ref_pipe.run(serve_trace),
    ]
    for got, want in zip(runs, refs):
        assert np.array_equal(got.match, want.match)
        assert got.final_epoch == want.final_epoch
    # The parent's copy caught up too.
    assert np.array_equal(
        par.classify_trace(serve_trace), seq.classify_trace(serve_trace)
    )


def test_update_stream_generator_is_seeded_and_well_formed(serve_rs):
    a = generate_update_stream(serve_rs, 40, 10_000, seed=5)
    b = generate_update_stream(serve_rs, 40, 10_000, seed=5)
    assert a == b
    c = generate_update_stream(serve_rs, 40, 10_000, seed=6)
    assert a != c
    ops = [op for upd in a for op in upd.batch]
    assert len(ops) == 40
    assert all(0 < upd.at_packet < 10_000 for upd in a)
    # Offsets never collapse to 0 (the pre-update epoch must be
    # observable), even when the trace is shorter than the batch count.
    tiny = generate_update_stream(serve_rs, 24, 3, batch_size=4, seed=7)
    assert all(1 <= upd.at_packet <= 2 for upd in tiny)
    # Generated removals always name an id live at that stream point.
    store = OracleStore(serve_rs)
    for upd in a:
        for op in upd.batch:
            if op.op != OP_INSERT:
                assert store.live[op.rule_id]
            store.apply((op,))
    # Inserted rules validate against the schema (prefix/exact fields).
    for op in ops:
        if op.op == OP_INSERT:
            op.rule.validate(serve_rs.schema)


# ---------------------------------------------------------------------------
# Property-based fuzzing of raw update batches
# ---------------------------------------------------------------------------
def _fuzz_base() -> IncrementalClassifier:
    rs = generate_ruleset("acl1", 60, seed=81)
    return IncrementalClassifier(rs, algorithm="hicuts", binth=8, spfac=4)


@pytest.fixture(scope="module")
def fuzz_pool():
    """Candidate rules for fuzz inserts, including a full wildcard and a
    very narrow rule (binth-overflow fuel when inserted repeatedly)."""
    pool = list(generate_ruleset("acl1", 12, seed=82).rules)
    pool.append(Rule.from_5tuple((0, 0), (0, 0), (0, 65535), (0, 65535), (0, 0)))
    pool.append(Rule.from_5tuple(
        (0x0A0A0A0A, 32), (0x14141414, 32), (80, 80), (443, 443), (6, 1)
    ))
    return pool


@pytest.fixture(scope="module")
def fuzz_trace():
    rs = generate_ruleset("acl1", 60, seed=81)
    return generate_trace(rs, 600, seed=83, background_fraction=0.25)


def _check_against_oracle(inc: IncrementalClassifier, trace) -> None:
    store = OracleStore(inc._ruleset)
    # Reconstruct the oracle's view from the classifier's own state so
    # the comparison is pure output equivalence.
    store.rules = list(inc._ruleset.rules)
    store.live = list(bool(x) for x in inc._live)
    want = store.classify(trace.headers)
    got = inc.classify_trace(trace)
    assert np.array_equal(got, want)


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 13)),
        st.tuples(st.just("remove"), st.integers(0, 90)),
    ),
    max_size=12,
)
batches_strategy = st.lists(ops_strategy, max_size=5)


@settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(batches=batches_strategy)
def test_fuzz_update_batches_no_crash_and_oracle_agreement(
    batches, fuzz_pool, fuzz_trace
):
    inc = _fuzz_base()
    epoch = 0
    for raw in batches:
        batch = tuple(
            insert_op(fuzz_pool[arg]) if kind == "insert" else remove_op(arg)
            for kind, arg in raw
        )
        res = inc.apply_updates(batch)
        epoch += 1
        assert res.epoch == epoch
        assert res.applied + res.skipped == len(batch)
    _check_against_oracle(inc, fuzz_trace)


# -- pinned (previously shrunk) counterexample shapes ----------------------
def test_pinned_duplicate_insert_then_double_remove(fuzz_pool, fuzz_trace):
    """Insert the same rule twice, remove both copies, remove one again
    (now absent) — the second removal must be skipped, not fatal."""
    inc = _fuzz_base()
    rule = fuzz_pool[-1]
    res = inc.apply_updates((insert_op(rule), insert_op(rule)))
    a, b = res.inserted_ids
    res = inc.apply_updates((remove_op(a), remove_op(b), remove_op(a)))
    assert res.removed == 2 and res.skipped == 1
    _check_against_oracle(inc, fuzz_trace)


def test_pinned_remove_absent_and_empty_batches(fuzz_trace):
    """Removals of never-alive ids and empty batches advance the epoch
    without mutating anything."""
    inc = _fuzz_base()
    before = inc.classify_trace(fuzz_trace)
    res = inc.apply_updates((remove_op(10_000),))
    assert res.skipped == 1 and res.epoch == 1
    res = inc.apply_updates(())
    assert res.epoch == 2 and res.applied == 0
    assert np.array_equal(inc.classify_trace(fuzz_trace), before)


def test_pinned_insert_then_remove_same_id_in_one_batch(fuzz_pool,
                                                        fuzz_trace):
    """Removal coalescing must preserve sequential interleaving: a rule
    inserted earlier in the same batch is removable later in it, and a
    remove-before-insert of a future id is skipped."""
    inc = _fuzz_base()
    future_id = len(inc._ruleset)  # not live yet at the remove below
    res = inc.apply_updates((
        remove_op(future_id),          # skipped: id not yet born
        insert_op(fuzz_pool[0]),       # becomes future_id
        remove_op(future_id),          # applies: the rule just inserted
        remove_op(future_id),          # skipped: already removed
        insert_op(fuzz_pool[1]),
    ))
    assert (res.inserted, res.removed, res.skipped) == (2, 1, 2)
    assert not inc._live[future_id]
    assert inc._live[future_id + 1]
    _check_against_oracle(inc, fuzz_trace)


def test_pinned_binth_overflow_chain(fuzz_pool, fuzz_trace):
    """Repeatedly inserting one narrow rule overflows its leaf past
    binth and forces subtree rebuilds; semantics must hold throughout."""
    inc = _fuzz_base()
    narrow = fuzz_pool[-1]
    rebuilds = 0
    for _ in range(inc.binth + 4):
        rebuilds += inc.insert(narrow).subtrees_rebuilt
    assert rebuilds > 0
    _check_against_oracle(inc, fuzz_trace)


def test_pinned_shadowed_duplicate_survives_removal(fuzz_pool, fuzz_trace):
    """Shrunk fuzz counterexample (latent pre-PR bug): insert the same
    wildcard twice — the second copy overflows a leaf, and the subtree
    rebuild used to *eliminate* it as shadowed by the first — then
    remove the first copy.  The second copy must still serve; updatable
    trees therefore build without redundancy elimination."""
    inc = _fuzz_base()
    wild = fuzz_pool[-2]
    res = inc.apply_updates((insert_op(wild), insert_op(wild)))
    first, second = res.inserted_ids
    inc.apply_updates((remove_op(first),))
    _check_against_oracle(inc, fuzz_trace)
    # The surviving copy catches what nothing narrower matches.
    assert inc.classify((3, 1, 4, 1, 59)) == second or \
        inc.classify((3, 1, 4, 1, 59)) < first


def test_pinned_wildcard_insert_reaches_every_region(fuzz_pool, fuzz_trace):
    """A full-wildcard insert must land in every live region (new
    leaves in empty slots included) and agree with the oracle."""
    inc = _fuzz_base()
    inc.apply_updates((insert_op(fuzz_pool[-2]),))
    _check_against_oracle(inc, fuzz_trace)
    wild_id = len(inc._ruleset) - 1
    # Any header matches it when nothing narrower does.
    assert inc.classify((1, 2, 3, 4, 251)) == wild_id
