"""Tests for repro.core.rules: Rule semantics and RuleArrays."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import RuleFormatError
from repro.core.rules import (
    DEMO_SCHEMA,
    DIM_PROTO,
    DIM_SRC_IP,
    FIVE_TUPLE,
    FieldSchema,
    Rule,
    RuleArrays,
    make_demo_ruleset,
)


class TestFieldSchema:
    def test_five_tuple_shape(self):
        assert FIVE_TUPLE.ndim == 5
        assert FIVE_TUPLE.widths == (32, 32, 16, 16, 8)
        assert FIVE_TUPLE.max_value(DIM_SRC_IP) == 0xFFFFFFFF
        assert FIVE_TUPLE.max_value(DIM_PROTO) == 255

    def test_universe(self):
        uni = DEMO_SCHEMA.universe()
        assert uni == tuple((0, 255) for _ in range(5))

    def test_bad_schema(self):
        with pytest.raises(RuleFormatError):
            FieldSchema(names=("a",), widths=(1, 2))
        with pytest.raises(RuleFormatError):
            FieldSchema(names=("a",), widths=(33,))


class TestRule:
    def test_matches(self):
        rule = Rule(ranges=((0, 10), (5, 5), (0, 255), (0, 255), (7, 7)))
        assert rule.matches((3, 5, 100, 200, 7))
        assert not rule.matches((11, 5, 100, 200, 7))
        assert not rule.matches((3, 4, 100, 200, 7))

    def test_overlap_and_cover(self):
        a = Rule(ranges=((0, 10),))
        b = Rule(ranges=((5, 20),))
        c = Rule(ranges=((2, 8),))
        assert a.overlaps(b) and b.overlaps(a)
        assert a.covers(c) and not c.covers(a)
        assert not a.covers(b)

    def test_validation(self):
        bad_dim_count = Rule(ranges=((0, 1),))
        with pytest.raises(RuleFormatError):
            bad_dim_count.validate(DEMO_SCHEMA)
        inverted = Rule(ranges=((5, 1),) + ((0, 255),) * 4)
        with pytest.raises(RuleFormatError):
            inverted.validate(DEMO_SCHEMA)
        too_big = Rule(ranges=((0, 256),) + ((0, 255),) * 4)
        with pytest.raises(RuleFormatError):
            too_big.validate(DEMO_SCHEMA)

    def test_from_5tuple(self):
        rule = Rule.from_5tuple(
            src_ip=(0xC0A80000, 16),
            dst_ip=(0, 0),
            src_port=(0, 65535),
            dst_port=(80, 80),
            proto=(6, 1),
        )
        assert rule.ranges[0] == (0xC0A80000, 0xC0A8FFFF)
        assert rule.ranges[1] == (0, 0xFFFFFFFF)
        assert rule.ranges[3] == (80, 80)
        assert rule.ranges[4] == (6, 6)

    def test_from_5tuple_wildcard_proto(self):
        rule = Rule.from_5tuple((0, 0), (0, 0), (0, 65535), (0, 65535), (0, 0))
        assert rule.ranges[4] == (0, 255)

    def test_wildcard_and_exact(self):
        rule = Rule.from_5tuple((0, 0), (1, 32), (0, 65535), (53, 53), (17, 1))
        assert rule.is_wildcard(0, FIVE_TUPLE)
        assert not rule.is_wildcard(1, FIVE_TUPLE)
        assert rule.is_exact(3)
        assert rule.is_prefix(1, FIVE_TUPLE)

    def test_grid_footprint(self):
        rule = Rule.from_5tuple(
            (0xC0A80000, 16), (0, 0), (0, 1023), (80, 80), (6, 1)
        )
        fp = rule.grid_footprint(FIVE_TUPLE)
        assert fp[0] == (0xC0, 0xC0)
        assert fp[1] == (0, 255)
        assert fp[2] == (0, 3)  # ports 0-1023 -> top byte 0-3
        assert fp[3] == (0, 0)
        assert fp[4] == (6, 6)


class TestDemoRuleset:
    def test_verbatim_table1(self):
        rules = make_demo_ruleset()
        assert len(rules) == 10
        assert rules[0].ranges[0] == (128, 240)
        assert rules[9].ranges == ((40, 40), (40, 70), (40, 40), (0, 255), (0, 60))
        for i, rule in enumerate(rules):
            assert rule.priority == i


class TestRuleArrays:
    def test_match_consistency(self, demo_ruleset):
        arrays = RuleArrays(demo_ruleset.rules, DEMO_SCHEMA)
        rng = np.random.default_rng(3)
        for _ in range(300):
            header = tuple(int(v) for v in rng.integers(0, 256, size=5))
            want = -1
            for i, rule in enumerate(demo_ruleset.rules):
                if rule.matches(header):
                    want = i
                    break
            assert arrays.first_match(header) == want

    def test_batch_match(self, demo_ruleset):
        arrays = RuleArrays(demo_ruleset.rules, DEMO_SCHEMA)
        rng = np.random.default_rng(4)
        headers = rng.integers(0, 256, size=(100, 5), dtype=np.uint32)
        batch = arrays.batch_match(headers)
        for row, got in zip(headers, batch):
            assert got == arrays.first_match(row)

    def test_batch_match_chunk_and_block_boundaries(self, demo_ruleset):
        # The chunked kernel must agree with the scalar oracle whatever
        # the chunk/rule-block geometry — including blocks smaller than
        # the ruleset (early-exit path) and chunks that do not divide
        # the packet count.
        arrays = RuleArrays(demo_ruleset.rules, DEMO_SCHEMA)
        rng = np.random.default_rng(11)
        headers = rng.integers(0, 256, size=(131, 5), dtype=np.uint32)
        want = np.asarray([arrays.first_match(h) for h in headers])
        for chunk_size, rule_block in [(1, 1), (7, 3), (131, 4), (64, 100)]:
            got = arrays.batch_match(
                headers, chunk_size=chunk_size, rule_block=rule_block
            )
            assert np.array_equal(got, want), (chunk_size, rule_block)

    def test_batch_match_no_match_and_empty(self, demo_ruleset):
        arrays = RuleArrays(demo_ruleset.rules, DEMO_SCHEMA)
        # All-zero headers match none of Table 1's rules: the kernel must
        # scan every rule block and report -1.
        zeros = np.zeros((5, 5), dtype=np.uint32)
        assert (arrays.batch_match(zeros) == -1).all()
        assert arrays.batch_match(
            np.empty((0, 5), dtype=np.uint32)
        ).shape == (0,)

    def test_distinct_range_counts_table1(self, demo_ruleset):
        arrays = demo_ruleset.arrays
        ids = np.arange(10)
        counts = arrays.distinct_range_counts(ids)
        # Hand-computed from Table 1 (see Figure 3 analysis).
        assert counts == [9, 7, 4, 3, 10]

    @given(st.integers(0, 2**32 - 1), st.integers(0, 32))
    def test_grid_footprint_consistent(self, value, plen):
        rule = Rule.from_5tuple(
            (value, plen), (0, 0), (0, 65535), (0, 65535), (6, 1)
        )
        arrays = RuleArrays([rule], FIVE_TUPLE)
        lo, hi = rule.ranges[0]
        assert arrays.glo[0, 0] == lo >> 24
        assert arrays.ghi[0, 0] == hi >> 24
