"""Tests for the HiCuts heuristic variants and the claims verifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import build_hicuts
from repro.algorithms.hicuts import DIM_HEURISTICS, HiCutsConfig
from repro.core.errors import ConfigError
from repro.experiments import Pipeline
from repro.experiments import ablations, claims


class TestDimHeuristics:
    @pytest.mark.parametrize("heuristic", DIM_HEURISTICS)
    @pytest.mark.parametrize("hw_mode", [False, True])
    def test_every_heuristic_is_oracle_correct(self, heuristic, hw_mode,
                                               acl_small, acl_small_trace,
                                               acl_small_oracle):
        tree = build_hicuts(
            acl_small, binth=30 if hw_mode else 16, spfac=4, hw_mode=hw_mode,
            dim_heuristic=heuristic,
        )
        got = tree.batch_lookup(acl_small_trace).match
        assert np.array_equal(got, acl_small_oracle)

    def test_unknown_heuristic_rejected(self):
        cfg = HiCutsConfig(dim_heuristic="sorcery")
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_heuristics_differ_structurally(self, acl_medium):
        """The variants are not aliases: at least one structural statistic
        must differ across them on a non-trivial workload."""
        stats = []
        for heuristic in DIM_HEURISTICS:
            tree = build_hicuts(
                acl_medium, binth=30, spfac=4, hw_mode=True,
                dim_heuristic=heuristic,
            )
            st = tree.stats()
            stats.append((st.n_nodes, st.max_depth, st.total_leaf_rule_refs))
        assert len(set(stats)) > 1

    def test_min_replication_minimises_refs(self, acl_medium):
        by_h = {}
        for heuristic in DIM_HEURISTICS:
            tree = build_hicuts(
                acl_medium, binth=30, spfac=4, hw_mode=True,
                dim_heuristic=heuristic,
            )
            by_h[heuristic] = tree.stats().total_leaf_rule_refs
        assert by_h["min_replication"] == min(by_h.values())

    def test_ablation_rows(self):
        rows = ablations.dim_heuristic_ablation(size=300, trace_packets=1000)
        assert [r.heuristic for r in rows] == list(DIM_HEURISTICS)
        assert all(r.bytes_used > 0 and r.worst_cycles >= 2 for r in rows)


class TestClaims:
    @pytest.fixture(scope="class")
    def pipe(self):
        return Pipeline(seed=5, quick=True, trace_packets=4000)

    def test_all_claims_hold(self, pipe):
        results = claims.verify_claims(pipe)
        assert len(results) == 8
        failed = [c.claim for c in results if not c.holds]
        assert not failed, f"claims failed: {failed}"

    def test_report_renders(self, pipe):
        out = claims.report(pipe)
        assert "all claims reproduced" in out
        assert "226" in out and "77" in out
