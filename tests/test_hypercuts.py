"""Tests for HyperCuts — original and hardware-modified variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro import generate_ruleset, generate_trace
from repro.algorithms import LinearSearchClassifier, OpCounter, build_hypercuts
from repro.algorithms.hypercuts import HW_MIN_CUTS, HyperCutsConfig
from repro.core.errors import ConfigError


class TestFigure3:
    """The paper's Figure 3 example (binth 3, spfac 2, no extra
    heuristics — the figure cuts the full region)."""

    @pytest.fixture()
    def fig3(self, demo_ruleset):
        return build_hypercuts(
            demo_ruleset, binth=3, spfac=2,
            redundancy_elimination=False, region_compaction=False,
            push_common=False,
        )

    def test_root_cut_2x2_fields_0_and_4(self, fig3):
        assert fig3.root.cut_dims == (0, 4)
        assert fig3.root.cut_counts == (2, 2)

    def test_all_children_are_leaves(self, fig3):
        for c in fig3.root.children:
            assert fig3.nodes[int(c)].is_leaf

    def test_leaf_contents(self, fig3):
        leaf_sets = sorted(
            tuple(int(r) for r in fig3.nodes[int(c)].rule_ids)
            for c in set(map(int, fig3.root.children))
        )
        assert leaf_sets == [(0, 2, 5), (0, 4, 6), (1, 3), (7, 8, 9)]

    def test_candidate_dims_rule(self, demo_ruleset):
        """Section 2.2: dims with distinct specs >= mean (9,7,4,3,10 ->
        mean 6.6 -> dims 0, 1, 4)."""
        counts = demo_ruleset.arrays.distinct_range_counts(np.arange(10))
        mean = sum(counts) / 5
        assert [d for d, c in enumerate(counts) if c >= mean] == [0, 1, 4]


class TestCorrectness:
    @pytest.mark.parametrize("hw_mode", [False, True])
    @pytest.mark.parametrize("family", ["acl1", "fw1", "ipc1"])
    def test_oracle_equality(self, family, hw_mode):
        rs = generate_ruleset(family, 250, seed=23)
        trace = generate_trace(rs, 1500, seed=24, background_fraction=0.1)
        binth = 30 if hw_mode else 16
        tree = build_hypercuts(rs, binth=binth, spfac=4, hw_mode=hw_mode)
        want = LinearSearchClassifier(rs).classify_trace(trace)
        got = tree.batch_lookup(trace).match
        assert np.array_equal(got, want)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"region_compaction": False},
            {"push_common": False},
            {"region_compaction": False, "push_common": False},
            {"redundancy_elimination": False},
        ],
    )
    def test_heuristic_toggles_preserve_semantics(
        self, acl_small, acl_small_trace, acl_small_oracle, kwargs
    ):
        tree = build_hypercuts(acl_small, binth=16, spfac=4, **kwargs)
        got = tree.batch_lookup(acl_small_trace).match
        assert np.array_equal(got, acl_small_oracle)

    def test_compaction_with_background_traffic(self, acl_small):
        """Packets outside compacted regions must dead-end, not crash."""
        trace = generate_trace(acl_small, 2000, seed=31, background_fraction=0.5)
        tree = build_hypercuts(acl_small, binth=16, spfac=4)
        want = LinearSearchClassifier(acl_small).classify_trace(trace)
        assert np.array_equal(tree.batch_lookup(trace).match, want)


class TestPushCommon:
    def test_pushed_rules_exist_for_overlapping_sets(self, fw_small):
        tree = build_hypercuts(fw_small, binth=8, spfac=4, push_common=True)
        pushed = sum(int(n.pushed.size) for n in tree.nodes)
        leaf_refs = tree.stats().total_leaf_rule_refs
        no_push = build_hypercuts(fw_small, binth=8, spfac=4, push_common=False)
        # Pushing reduces replicated leaf storage when it fires.
        if pushed:
            assert leaf_refs <= no_push.stats().total_leaf_rule_refs

    def test_hw_mode_never_pushes(self, acl_small):
        tree = build_hypercuts(acl_small, binth=30, spfac=4, hw_mode=True)
        assert all(n.pushed.size == 0 for n in tree.nodes)


class TestHwInvariants:
    def test_children_bounded_by_eq4(self, acl_medium):
        for spfac in (1, 2, 3, 4):
            tree = build_hypercuts(
                acl_medium, binth=30, spfac=spfac, hw_mode=True
            )
            cap = 1 << (4 + spfac)
            for node in tree.nodes:
                if not node.is_leaf:
                    n_children = 1
                    for c in node.cut_counts:
                        n_children *= c
                    assert n_children <= cap
                    assert n_children <= 256

    def test_root_has_at_least_32_cuts(self, acl_medium):
        tree = build_hypercuts(acl_medium, binth=30, spfac=4, hw_mode=True)
        n_children = 1
        for c in tree.root.cut_counts:
            n_children *= c
        assert n_children >= HW_MIN_CUTS

    def test_hw_mode_rejects_compaction(self):
        cfg = HyperCutsConfig(hw_mode=True, region_compaction=True, spfac=4)
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_hw_mode_requires_integer_spfac(self):
        cfg = HyperCutsConfig(hw_mode=True, spfac=2.5)
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_internal_grid_regions_stay_aligned(self, acl_medium):
        tree = build_hypercuts(acl_medium, binth=30, spfac=4, hw_mode=True)
        for node in tree.nodes:
            if node.is_leaf:
                continue
            assert node.grid_region is not None
            for glo, ghi in node.grid_region:
                span = ghi - glo + 1
                assert span & (span - 1) == 0
                assert glo % span == 0


class TestHeuristicEffects:
    def test_compaction_reduces_or_equals_memory(self, acl_small):
        with_c = build_hypercuts(acl_small, binth=16, spfac=4,
                                 region_compaction=True)
        without = build_hypercuts(acl_small, binth=16, spfac=4,
                                  region_compaction=False)
        # Compaction cuts only the occupied region, so trees are no worse
        # (allow a little slack for heuristic noise).
        assert (
            with_c.software_memory_bytes()
            <= without.software_memory_bytes() * 1.25
        )

    def test_multi_dim_cuts_happen(self, acl_medium):
        tree = build_hypercuts(acl_medium, binth=16, spfac=4)
        assert any(
            len(n.cut_dims) > 1 for n in tree.nodes if not n.is_leaf
        ), "HyperCuts should cut multiple dimensions somewhere"

    def test_build_ops_counted(self, acl_small):
        ops = OpCounter()
        build_hypercuts(acl_small, binth=16, spfac=4, ops=ops)
        assert ops.total() > 0
        assert ops["div"] > 0  # compaction + index division in sw mode
