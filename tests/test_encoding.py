"""Tests for the hardware memory word encodings (bit-exact formats)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import EncodingError
from repro.core.geometry import prefix_to_range
from repro.core.rules import Rule
from repro.hw.encoding import (
    CHILD_ENTRY_BITS,
    EMPTY_ADDR,
    INVALID_RULE_ID,
    MAX_CHILDREN,
    NODE_BITS,
    RULE_BITS,
    RULES_PER_WORD,
    WORD_BITS,
    WORD_BYTES,
    ChildEntry,
    decode_internal_node,
    decode_ip_prefix,
    decode_rule,
    empty_rule_slot,
    encode_internal_node,
    encode_ip_prefix,
    encode_rule,
    get_bits,
    pack_leaf_word,
    set_bits,
    unpack_leaf_word,
    word_from_bytes,
    word_to_bytes,
)


class TestGeometryOfTheFormats:
    def test_paper_constants(self):
        assert WORD_BITS == 4800
        assert WORD_BYTES == 600
        assert RULE_BITS == 160
        assert RULES_PER_WORD == 30
        assert MAX_CHILDREN == 256
        assert CHILD_ENTRY_BITS == 1 + 12 + 5
        # 256*18 + 5*16 = 4688 <= 4800: an internal node fits one word.
        assert NODE_BITS == 4688
        assert NODE_BITS <= WORD_BITS


class TestBitHelpers:
    def test_set_get_roundtrip(self):
        word = 0
        word = set_bits(word, 17, 5, 0b10110)
        assert get_bits(word, 17, 5) == 0b10110
        assert get_bits(word, 0, 17) == 0

    def test_overflow_rejected(self):
        with pytest.raises(EncodingError):
            set_bits(0, 0, 3, 8)

    def test_word_bytes_roundtrip(self):
        word = (1 << 4799) | 0xDEADBEEF
        assert word_from_bytes(word_to_bytes(word)) == word

    def test_bad_byte_length(self):
        with pytest.raises(EncodingError):
            word_from_bytes(b"\x00" * 10)


class TestIpPrefixEncoding:
    @given(st.integers(0, 32), st.integers(0, 2**32 - 1))
    def test_roundtrip_every_length(self, plen, value):
        lo, hi = prefix_to_range(value, plen, 32)
        addr, mask3 = encode_ip_prefix(lo, hi)
        assert 0 <= mask3 <= 5
        assert decode_ip_prefix(addr, mask3) == (lo, hi)

    def test_long_prefixes_use_direct_codes(self):
        for plen in range(28, 33):
            lo, hi = prefix_to_range(0xC0A80180, plen, 32)
            addr, mask3 = encode_ip_prefix(lo, hi)
            assert mask3 == plen - 28
            assert addr == lo

    def test_short_prefix_embeds_length(self):
        lo, hi = prefix_to_range(0x0A000000, 8, 32)
        addr, mask3 = encode_ip_prefix(lo, hi)
        assert mask3 == 5
        assert addr & 0x1F == 8

    def test_non_prefix_rejected(self):
        with pytest.raises(EncodingError):
            encode_ip_prefix(1, 2)

    def test_bad_mask_code(self):
        with pytest.raises(EncodingError):
            decode_ip_prefix(0, 7)

    def test_corrupt_embedded_length(self):
        with pytest.raises(EncodingError):
            decode_ip_prefix(31, 5)  # plen 31 > 27 cannot use code 5


def _mk_rule(sip=(0xC0A80000, 16), dip=(0x0A000001, 32), sport=(0, 65535),
             dport=(80, 80), proto=(6, 1), priority=0):
    return Rule.from_5tuple(sip, dip, sport, dport, proto, priority=priority)


class TestRuleEncoding:
    def test_roundtrip(self):
        rule = _mk_rule()
        slot = encode_rule(rule, 42, end_of_leaf=True)
        dec = decode_rule(slot)
        assert dec.valid
        assert dec.rule_id == 42
        assert dec.end_of_leaf
        assert dec.ranges == rule.ranges

    def test_wildcard_proto(self):
        rule = _mk_rule(proto=(0, 0))
        dec = decode_rule(encode_rule(rule, 1, False))
        assert dec.ranges[4] == (0, 255)

    def test_matches_agrees_with_rule(self):
        rule = _mk_rule()
        dec = decode_rule(encode_rule(rule, 0, False))
        for header in (
            (0xC0A80001, 0x0A000001, 1000, 80, 6),
            (0xC0A90001, 0x0A000001, 1000, 80, 6),
            (0xC0A80001, 0x0A000001, 1000, 81, 6),
        ):
            assert dec.matches(header) == rule.matches(header)

    def test_rule_id_too_large(self):
        with pytest.raises(EncodingError):
            encode_rule(_mk_rule(), INVALID_RULE_ID, False)

    def test_non_prefix_ip_rejected(self):
        rule = Rule(
            ranges=((1, 2), (0, 2**32 - 1), (0, 65535), (0, 65535), (0, 255)),
        )
        with pytest.raises(EncodingError):
            encode_rule(rule, 0, False)

    def test_proto_range_rejected(self):
        rule = Rule(
            ranges=(
                (0, 2**32 - 1), (0, 2**32 - 1), (0, 65535), (0, 65535), (5, 9),
            ),
        )
        with pytest.raises(EncodingError):
            encode_rule(rule, 0, False)

    def test_empty_slot_never_matches(self):
        dec = decode_rule(empty_rule_slot())
        assert not dec.valid

    @given(
        st.integers(0, 32), st.integers(0, 2**32 - 1),
        st.integers(0, 32), st.integers(0, 2**32 - 1),
        st.tuples(st.integers(0, 65535), st.integers(0, 65535)),
        st.tuples(st.integers(0, 65535), st.integers(0, 65535)),
        st.one_of(st.none(), st.integers(0, 255)),
        st.integers(0, 65534),
    )
    def test_roundtrip_property(self, sp, sv, dp, dv, sport, dport, proto, rid):
        rule = Rule.from_5tuple(
            (sv, sp), (dv, dp),
            (min(sport), max(sport)), (min(dport), max(dport)),
            (proto or 0, 0 if proto is None else 1),
        )
        dec = decode_rule(encode_rule(rule, rid, end_of_leaf=False))
        assert dec.ranges == rule.ranges
        assert dec.rule_id == rid


class TestInternalNodeEncoding:
    def test_roundtrip(self):
        entries = [
            ChildEntry(is_leaf=False, addr=3, pos=0),
            ChildEntry(is_leaf=True, addr=77, pos=12),
            ChildEntry(is_leaf=True, addr=EMPTY_ADDR, pos=0),
        ]
        masks = [0xF8, 0, 0xC0, 0, 0x80]
        shifts = [3, 0, -2, 0, 7]
        word = encode_internal_node(masks, shifts, entries)
        dec = decode_internal_node(word)
        assert dec.masks == tuple(masks)
        assert dec.shifts == tuple(shifts)
        assert dec.entries[0] == entries[0]
        assert dec.entries[1] == entries[1]
        assert dec.entries[2].is_empty
        # Unspecified slots decode as empty.
        assert dec.entries[255].is_empty

    def test_child_index_datapath(self):
        # Cut dim0 into 4 (top 2 bits) and dim4 into 2: idx = a*2 + b.
        masks = [0xC0, 0, 0, 0, 0x80]
        shifts = [5, 0, 0, 0, 7]
        word = encode_internal_node(
            masks, shifts, [ChildEntry(False, 0, 0)] * 8
        )
        dec = decode_internal_node(word)
        assert dec.child_index((0b10000000, 0, 0, 0, 0b00000000)) == 4
        assert dec.child_index((0b10000000, 0, 0, 0, 0b10000000)) == 5
        assert dec.child_index((0b11000000, 0, 0, 0, 0b10000000)) == 7

    def test_negative_shift_left_shifts(self):
        masks = [0x01, 0, 0, 0, 0]
        shifts = [-3, 0, 0, 0, 0]
        dec = decode_internal_node(
            encode_internal_node(masks, shifts, [ChildEntry(False, 0, 0)])
        )
        assert dec.child_index((1, 0, 0, 0, 0)) == 8

    def test_too_many_children(self):
        with pytest.raises(EncodingError):
            encode_internal_node(
                [0] * 5, [0] * 5, [ChildEntry(False, 0, 0)] * 257
            )

    def test_addr_overflow(self):
        with pytest.raises(EncodingError):
            encode_internal_node(
                [0] * 5, [0] * 5, [ChildEntry(False, 5000, 0)]
            )

    def test_pos_overflow(self):
        with pytest.raises(EncodingError):
            encode_internal_node(
                [0] * 5, [0] * 5, [ChildEntry(True, 0, 40)]
            )


class TestLeafWords:
    def test_pack_unpack(self):
        slots = [encode_rule(_mk_rule(priority=i), i, i == 2) for i in range(3)]
        word = pack_leaf_word(slots)
        out = unpack_leaf_word(word)
        assert out[:3] == slots
        assert all(decode_rule(s).rule_id == INVALID_RULE_ID for s in out[3:])

    def test_too_many_slots(self):
        with pytest.raises(EncodingError):
            pack_leaf_word([0] * 31)

    def test_full_word(self):
        slots = [
            encode_rule(_mk_rule(priority=i), i, i == 29) for i in range(30)
        ]
        out = unpack_leaf_word(pack_leaf_word(slots))
        assert out == slots
