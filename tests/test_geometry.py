"""Unit + property tests for repro.core.geometry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import RuleFormatError
from repro.core.geometry import (
    HW_GRID_BITS,
    HW_GRID_CELLS,
    aligned_power_of_two,
    child_index,
    cut_interval,
    grid_cell,
    grid_cell_to_range,
    grid_cells_vec,
    grid_span,
    iter_prefixes_of,
    pow2_at_least,
    pow2_at_most,
    prefix_to_range,
    range_contains,
    range_is_prefix,
    range_to_prefix,
    range_to_prefix_cover,
    ranges_overlap,
)


class TestPrefixRange:
    def test_full_wildcard(self):
        assert prefix_to_range(0, 0, 32) == (0, 0xFFFFFFFF)

    def test_host_route(self):
        assert prefix_to_range(0x0A000001, 32, 32) == (0x0A000001, 0x0A000001)

    def test_slash24(self):
        lo, hi = prefix_to_range(0xC0A80100, 24, 32)
        assert lo == 0xC0A80100 and hi == 0xC0A801FF

    def test_low_bits_cleared(self):
        lo, hi = prefix_to_range(0xC0A801FF, 24, 32)
        assert lo == 0xC0A80100 and hi == 0xC0A801FF

    def test_bad_length_raises(self):
        with pytest.raises(RuleFormatError):
            prefix_to_range(0, 33, 32)

    def test_value_too_wide_raises(self):
        with pytest.raises(RuleFormatError):
            prefix_to_range(1 << 16, 0, 16)

    def test_roundtrip_16bit(self):
        for plen in range(17):
            lo, hi = prefix_to_range(0xABCD, plen, 16)
            val, got = range_to_prefix(lo, hi, 16)
            assert got == plen
            assert val == lo

    def test_non_prefix_rejected(self):
        assert not range_is_prefix(1, 2, 8)
        assert not range_is_prefix(0, 2, 8)
        assert range_is_prefix(2, 3, 8)
        with pytest.raises(RuleFormatError):
            range_to_prefix(1, 2, 8)

    @given(st.integers(0, 32), st.integers(0, 2**32 - 1))
    def test_prefix_roundtrip_property(self, plen, value):
        lo, hi = prefix_to_range(value, plen, 32)
        assert lo <= (value >> (32 - plen) << (32 - plen) if plen else 0) + 0
        assert range_is_prefix(lo, hi, 32)
        _, got = range_to_prefix(lo, hi, 32)
        assert got == plen


class TestPrefixCover:
    def test_docstring_example(self):
        assert range_to_prefix_cover(1, 14, 4) == [
            (1, 4), (2, 3), (4, 2), (8, 2), (12, 3), (14, 4)
        ]

    def test_single_value(self):
        assert range_to_prefix_cover(5, 5, 16) == [(5, 16)]

    def test_full_range(self):
        assert range_to_prefix_cover(0, 65535, 16) == [(0, 0)]

    def test_ephemeral_ports(self):
        cover = range_to_prefix_cover(1024, 65535, 16)
        assert len(cover) == 6  # the classic HI-port expansion

    def test_bad_range(self):
        with pytest.raises(RuleFormatError):
            range_to_prefix_cover(5, 4, 8)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_cover_is_exact_partition(self, a, b):
        lo, hi = min(a, b), max(a, b)
        cover = range_to_prefix_cover(lo, hi, 8)
        covered = []
        for value, plen in cover:
            p_lo, p_hi = prefix_to_range(value, plen, 8)
            covered.extend(range(p_lo, p_hi + 1))
        assert covered == list(range(lo, hi + 1))

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    @settings(max_examples=50)
    def test_cover_is_minimal_bound(self, a, b):
        lo, hi = min(a, b), max(a, b)
        cover = range_to_prefix_cover(lo, hi, 16)
        assert len(cover) <= 2 * 16 - 2 or lo == 0 and hi == 65535


class TestIntervals:
    def test_overlap(self):
        assert ranges_overlap(0, 10, 10, 20)
        assert not ranges_overlap(0, 9, 10, 20)

    def test_contains(self):
        assert range_contains(0, 10, 3, 7)
        assert not range_contains(3, 7, 0, 10)

    def test_cut_even(self):
        assert cut_interval(0, 255, 4) == [(0, 63), (64, 127), (128, 191), (192, 255)]

    def test_cut_uneven(self):
        parts = cut_interval(0, 9, 3)
        assert parts[0][0] == 0 and parts[-1][1] == 9
        assert all(a <= b for a, b in parts)
        # contiguous, no gaps
        for (a, b), (c, d) in zip(parts, parts[1:]):
            assert c == b + 1

    def test_cut_more_than_span(self):
        assert cut_interval(5, 7, 10) == [(5, 5), (6, 6), (7, 7)]

    def test_cut_invalid(self):
        with pytest.raises(ValueError):
            cut_interval(0, 10, 0)

    @given(
        st.integers(0, 1000),
        st.integers(1, 1000),
        st.integers(1, 64),
        st.data(),
    )
    def test_child_index_matches_cut_interval(self, lo, span, ncuts, data):
        hi = lo + span - 1
        parts = cut_interval(lo, hi, ncuts)
        value = data.draw(st.integers(lo, hi))
        idx = child_index(value, lo, hi, ncuts)
        assert parts[idx][0] <= value <= parts[idx][1]

    def test_child_index_out_of_range(self):
        with pytest.raises(ValueError):
            child_index(11, 0, 10, 2)


class TestGrid:
    def test_grid_cell_wide_field(self):
        assert grid_cell(0xC0A80102, 32) == 0xC0
        assert grid_cell(0x1234, 16) == 0x12

    def test_grid_cell_exact_8(self):
        assert grid_cell(0xAB, 8) == 0xAB

    def test_grid_cell_narrow(self):
        assert grid_cell(1, 4) == 0x10

    def test_grid_span_wide(self):
        assert grid_span(0xC0A80000, 0xC0A8FFFF, 32) == (0xC0, 0xC0)
        assert grid_span(0, 0xFFFFFFFF, 32) == (0, 255)

    def test_grid_span_narrow(self):
        glo, ghi = grid_span(1, 1, 4)
        assert glo == 0x10 and ghi == 0x1F

    def test_grid_roundtrip(self):
        lo, hi = grid_cell_to_range(0xC0, 0xC0, 32)
        assert lo == 0xC0000000 and hi == 0xC0FFFFFF

    def test_grid_cells_vec_matches_scalar(self):
        vals = np.array([0, 1, 2**31, 2**32 - 1], dtype=np.uint32)
        vec = grid_cells_vec(vals, 32)
        for v, g in zip(vals, vec):
            assert grid_cell(int(v), 32) == int(g)

    def test_constants(self):
        assert HW_GRID_BITS == 8
        assert HW_GRID_CELLS == 256

    def test_aligned_power_of_two(self):
        assert aligned_power_of_two(0, 255)
        assert aligned_power_of_two(64, 127)
        assert not aligned_power_of_two(64, 128)
        assert not aligned_power_of_two(1, 2)


class TestMisc:
    def test_pow2_helpers(self):
        assert pow2_at_most(1) == 1
        assert pow2_at_most(255) == 128
        assert pow2_at_most(256) == 256
        assert pow2_at_least(1) == 1
        assert pow2_at_least(3) == 4
        assert pow2_at_least(256) == 256
        with pytest.raises(ValueError):
            pow2_at_most(0)
        with pytest.raises(ValueError):
            pow2_at_least(0)

    def test_iter_prefixes_of(self):
        prefixes = list(iter_prefixes_of(0b1010, 4))
        assert prefixes[0] == (0b1010, 4)
        assert prefixes[-1] == (0, 0)
        assert len(prefixes) == 5
