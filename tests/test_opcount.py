"""Tests for the operation counter."""

from __future__ import annotations

import pytest

from repro.algorithms.opcount import CATEGORIES, NULL_COUNTER, NullCounter, OpCounter


class TestOpCounter:
    def test_categories_initialised(self):
        ops = OpCounter()
        assert set(ops.counts) == set(CATEGORIES)
        assert ops.total() == 0

    def test_add_and_total(self):
        ops = OpCounter()
        ops.add("alu", 5)
        ops.add("alu")
        ops.add("mem_read", 2.7)  # truncates like the builders' bulk adds
        assert ops["alu"] == 6
        assert ops["mem_read"] == 2
        assert ops.total() == 8

    def test_unknown_category(self):
        with pytest.raises(KeyError):
            OpCounter().add("gpu")

    def test_merge(self):
        a, b = OpCounter(), OpCounter()
        a.add("alu", 1)
        b.add("alu", 2)
        b.add("div", 3)
        a.merge(b)
        assert a["alu"] == 3 and a["div"] == 3

    def test_copy_independent(self):
        a = OpCounter()
        a.add("alu", 1)
        b = a.copy()
        b.add("alu", 1)
        assert a["alu"] == 1 and b["alu"] == 2

    def test_reset(self):
        ops = OpCounter()
        ops.add("branch", 9)
        ops.reset()
        assert ops.total() == 0

    def test_as_dict_is_copy(self):
        ops = OpCounter()
        d = ops.as_dict()
        d["alu"] = 99
        assert ops["alu"] == 0


class TestNullCounter:
    def test_noops(self):
        NULL_COUNTER.add("anything", 5)
        NULL_COUNTER.merge(object())
        assert isinstance(NULL_COUNTER, NullCounter)
