"""The bench-comparison harness: gated ratios and the monotone axes.

``benchmarks/compare_baseline.py`` is the CI enforcement point for the
perf acceptance gates, so its two failure modes get unit coverage: a
gated speedup regressing (or vanishing) and a ``*_pipeline_pps`` shards
axis inverting beyond the noise tolerance.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "compare_baseline",
    Path(__file__).resolve().parents[1] / "benchmarks" / "compare_baseline.py",
)
compare_baseline = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_baseline)

compare = compare_baseline.compare
check_monotone = compare_baseline.check_monotone


def _axis(one, two, four):
    return {"shards_1": one, "shards_2": two, "shards_4": four}


class TestMonotoneAxes:
    def test_non_decreasing_axis_passes(self):
        current = {"flowcache_pipeline_pps": _axis(1e6, 1.2e6, 1.5e6)}
        lines, failures = check_monotone(current, tolerance=0.9)
        assert failures == []
        assert any("non-decreasing" in line for line in lines)

    def test_inverted_axis_fails(self):
        current = {"persistent_pipeline_pps": _axis(2e6, 1e6, 0.8e6)}
        _, failures = check_monotone(current, tolerance=0.9)
        assert failures == ["monotone:persistent_pipeline_pps"]

    def test_tolerance_absorbs_noise_dips(self):
        # A 4% step-down is runner noise under the shards families'
        # 0.95 tolerance floor; a 20% step-down is not.
        noisy = {"flowcache_pipeline_pps": _axis(1e6, 0.96e6, 1e6)}
        assert check_monotone(noisy, tolerance=0.9)[1] == []
        broken = {"flowcache_pipeline_pps": _axis(1e6, 0.8e6, 1e6)}
        assert check_monotone(broken, tolerance=0.9)[1] == [
            "monotone:flowcache_pipeline_pps"
        ]

    def test_family_floor_tightens_loose_cli_tolerance(self):
        # The shards families carry a 0.95 floor: even a lax
        # --monotone-tolerance cannot re-admit a >5% step-down.
        dipped = {"persistent_pipeline_pps": _axis(1e6, 0.9e6, 1e6)}
        assert check_monotone(dipped, tolerance=0.5)[1] == [
            "monotone:persistent_pipeline_pps"
        ]

    def test_missing_points_are_skipped(self):
        # One recorded point is not an axis; nothing to enforce.
        current = {"flowcache_pipeline_pps": {"shards_1": 1e6}}
        lines, failures = check_monotone(current, tolerance=0.9)
        assert failures == [] and lines == []

    def test_monotone_failures_reach_compare(self):
        current = {
            "flowcache_pipeline_pps": _axis(2e6, 1e6, 1e6),
            "flat_kernel_gate": {"speedup": 8.0},
        }
        baseline = {"flat_kernel_gate": {"speedup": 8.0}}
        report, failures = compare(
            current, baseline, threshold=0.8, fail_threshold=0.75
        )
        assert "monotone:flowcache_pipeline_pps" in failures
        assert "FAIL" in report


class TestGatedMetrics:
    def test_fused_lookup_is_gated(self):
        assert "fused_lookup.speedup" in compare_baseline.GATED_METRICS

    def test_multi_tenant_aggregate_is_gated(self):
        assert "multi_tenant.aggregate_ratio" in compare_baseline.GATED_METRICS

    def test_stage_graph_overhead_is_gated(self):
        assert "stage_graph.overhead_ratio" in compare_baseline.GATED_METRICS

    def test_gated_regression_fails(self):
        baseline = {"fused_lookup": {"speedup": 2.0}}
        current = {"fused_lookup": {"speedup": 1.0}}
        _, failures = compare(
            current, baseline, threshold=0.8, fail_threshold=0.75
        )
        assert failures == ["fused_lookup.speedup"]

    def test_gated_metric_vanishing_fails(self):
        baseline = {"fused_lookup": {"speedup": 2.0}}
        _, failures = compare(
            {}, baseline, threshold=0.8, fail_threshold=0.75
        )
        assert failures == ["fused_lookup.speedup"]

    def test_healthy_run_passes(self):
        data = {
            "fused_lookup": {"speedup": 2.7},
            "flowcache_pipeline_pps": _axis(1e6, 1e6, 1.1e6),
        }
        report, failures = compare(
            data, data, threshold=0.8, fail_threshold=0.75
        )
        assert failures == []
        assert "FAIL" not in report
