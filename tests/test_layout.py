"""Tests for the memory layout (Section 3's node rearrangement)."""

from __future__ import annotations

import pytest

from repro import generate_ruleset
from repro.algorithms import build_hicuts
from repro.core.errors import CapacityError, ConfigError
from repro.hw import (
    DEFAULT_CAPACITY_WORDS,
    RULES_PER_WORD,
    build_memory_image,
    measure_layout,
)
from repro.hw.memory import MemoryArray


class TestPlacementInvariants:
    def test_internal_nodes_first(self, hw_image_small):
        img = hw_image_small
        max_internal = max(
            (p.addr for p in img.placements.values() if not p.is_leaf),
            default=-1,
        )
        min_leaf = min(
            (p.addr for p in img.placements.values()
             if p.is_leaf and p.n_rules > 0),
            default=1 << 30,
        )
        assert max_internal < min_leaf
        assert max_internal == img.n_internal_words - 1

    def test_root_at_word_zero(self, hw_image_small):
        assert hw_image_small.placements[0].addr == 0

    def test_speed1_no_straddle_unless_pos0(self, hw_tree_small):
        img = build_memory_image(hw_tree_small, speed=1)
        for p in img.placements.values():
            if p.is_leaf and p.n_rules > 0 and p.pos > 0:
                # eq (6): a mid-word leaf must fit entirely.
                assert p.pos + p.n_rules <= RULES_PER_WORD

    def test_speed0_contiguous(self, hw_tree_small):
        img = build_memory_image(hw_tree_small, speed=0)
        slots = []
        for p in sorted(
            (p for p in img.placements.values() if p.is_leaf and p.n_rules),
            key=lambda p: (p.addr, p.pos),
        ):
            slots.append((p.addr * RULES_PER_WORD + p.pos, p.n_rules))
        slots.sort()
        for (start, n), (nxt, _) in zip(slots, slots[1:]):
            assert start + n == nxt, "speed=0 leaves must pack contiguously"

    def test_speed0_never_larger_than_speed1(self, hw_tree_small):
        dense = build_memory_image(hw_tree_small, speed=0)
        fast = build_memory_image(hw_tree_small, speed=1)
        assert dense.words_used <= fast.words_used

    def test_bytes_used_is_words_times_600(self, hw_image_small):
        assert hw_image_small.bytes_used == hw_image_small.words_used * 600

    def test_words_spanned(self, hw_tree_small):
        img = build_memory_image(hw_tree_small, speed=1)
        for p in img.placements.values():
            if p.is_leaf and p.n_rules:
                expect = (p.pos + p.n_rules - 1) // RULES_PER_WORD + 1
                assert p.words_spanned == expect


class TestCapacity:
    def test_capacity_error(self, acl_medium):
        tree = build_hicuts(acl_medium, binth=30, spfac=4, hw_mode=True)
        need = measure_layout(tree, speed=1).words_used
        with pytest.raises(CapacityError):
            build_memory_image(tree, speed=1, capacity_words=need - 1)

    def test_default_capacity_is_paper_design(self):
        assert DEFAULT_CAPACITY_WORDS == 1024

    def test_measure_matches_build(self, hw_tree_small):
        meas = measure_layout(hw_tree_small, speed=1)
        img = build_memory_image(hw_tree_small, speed=1)
        assert meas.words_used == img.words_used
        assert meas.bytes_used == img.bytes_used
        assert meas.worst_case_occupancy == img.worst_case_occupancy()
        assert meas.worst_case_cycles == img.worst_case_cycles()

    def test_fits_helper(self, hw_tree_small):
        meas = measure_layout(hw_tree_small, speed=1)
        assert meas.fits(1024)
        assert not meas.fits(meas.words_used - 1)


class TestModeRestrictions:
    def test_software_tree_rejected(self, acl_small):
        tree = build_hicuts(acl_small, binth=16, spfac=4, hw_mode=False)
        with pytest.raises(ConfigError):
            build_memory_image(tree)

    def test_demo_schema_rejected(self, demo_ruleset):
        # Grid-mode tree on the 8-bit demo schema is buildable but not
        # hardware-encodable (the accelerator is a 5-tuple device).
        tree = build_hicuts(demo_ruleset, binth=3, spfac=2, hw_mode=True)
        with pytest.raises(ConfigError):
            build_memory_image(tree)

    def test_bad_speed(self, hw_tree_small):
        with pytest.raises(ConfigError):
            build_memory_image(hw_tree_small, speed=2)


class TestRootWrap:
    def test_tiny_ruleset_root_leaf(self):
        rs = generate_ruleset("acl1", 5, seed=2)
        tree = build_hicuts(rs, binth=30, spfac=4, hw_mode=True)
        img = build_memory_image(tree, speed=1)
        if tree.root.is_leaf:
            assert img.root_wrapped
            assert img.n_internal_words == 1
            # Synthetic root at word 0 decodes as an internal node whose
            # entries point at the leaf.
            from repro.hw.encoding import decode_internal_node

            dec = decode_internal_node(img.memory.read(0))
            assert dec.entries[0].is_leaf
            assert dec.entries[0].addr == img.placements[0].addr


class TestWorstCase:
    def test_worst_case_vs_brute_force(self, acl_small):
        tree = build_hicuts(acl_small, binth=30, spfac=4, hw_mode=True)
        img = build_memory_image(tree, speed=1)

        best = 0
        def walk(nid, internal_after_root):
            nonlocal best
            node = tree.nodes[nid]
            if node.is_leaf:
                words = img.placements[nid].words_spanned if node.rule_ids.size else 0
                best = max(best, internal_after_root + words)
                return
            for c in set(int(x) for x in node.children):
                if c >= 0:
                    walk(c, internal_after_root + (0 if nid == 0 else 1))

        # Count this node's own fetch when it is not the root.
        def walk2(nid, fetches):
            nonlocal best
            node = tree.nodes[nid]
            if node.is_leaf:
                words = img.placements[nid].words_spanned if node.rule_ids.size else 0
                best = max(best, fetches + words)
                return
            for c in set(int(x) for x in node.children):
                if c >= 0:
                    walk2(c, fetches + (1 if nid != 0 else 0))

        best = 0
        walk2(0, 0)
        assert img.worst_case_occupancy() == max(best, 1)
        assert img.worst_case_cycles() == max(best, 1) + 1


class TestMemoryArray:
    def test_write_read(self):
        arr = MemoryArray(4)
        arr.write(2, 12345)
        assert arr.read(2) == 12345
        assert 2 in arr and 1 not in arr
        assert arr.words_used == 1
        assert arr.bytes_used == 600

    def test_bounds(self):
        arr = MemoryArray(4)
        with pytest.raises(CapacityError):
            arr.write(4, 0)
        with pytest.raises(CapacityError):
            arr.read(0)

    def test_serialisation_roundtrip(self, hw_image_small):
        blob = hw_image_small.memory.to_bytes()
        loaded = MemoryArray.from_bytes(
            blob, hw_image_small.memory.capacity_words
        )
        assert loaded.words_used == hw_image_small.memory.words_used
        for addr in range(hw_image_small.words_used):
            if addr in hw_image_small.memory:
                assert loaded.read(addr) == hw_image_small.memory.read(addr)
