"""Sweep-matrix subsystem tests.

Covers the declarative layer (spec round-trip, axis expansion,
deterministic per-cell seeding), the enforcement layer
(``benchmarks/compare_sweeps.py`` regression / missing-cell / monotone
verdicts on synthetic artifacts), and — behind the ``sweep`` marker —
a mini end-to-end grid through the real :class:`~repro.serve.Engine`.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.core.errors import ConfigError
from repro.serve import EngineConfig
from repro.sweeps import (
    SweepSpec,
    default_spec,
    match_filters,
    parse_filters,
    render_matrix,
    run_sweep,
)

_SPEC = importlib.util.spec_from_file_location(
    "compare_sweeps",
    Path(__file__).resolve().parents[1] / "benchmarks" / "compare_sweeps.py",
)
compare_sweeps = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_sweeps)


def _tiny_spec(**overrides) -> SweepSpec:
    base = dict(
        name="tiny",
        families=("acl1",),
        sizes=(60,),
        backends=("linear",),
        cache_entries=(0, 64),
        cache_ways=4,
        skews=(1.1,),
        packets=400,
        flows=32,
        chunk_size=128,
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestSpecRoundTrip:
    def test_json_round_trip_is_lossless(self, tmp_path):
        spec = default_spec("full")
        path = tmp_path / "spec.json"
        spec.save(str(path))
        assert SweepSpec.load(str(path)) == spec
        # And the dict form survives an actual JSON serialisation.
        assert SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_from_dict_rejects_unknown_keys(self):
        data = default_spec("quick").to_dict()
        data["familes"] = ["acl1"]  # typo'd axis must not pass silently
        with pytest.raises(ConfigError, match="familes"):
            SweepSpec.from_dict(data)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("families", ["nope"]),
            ("sizes", []),
            ("sizes", [0]),
            ("shard_modes", ["diagonal"]),
            ("cache_entries", [10]),  # not a multiple of ways=4
            ("skews", [-0.5]),
            ("churn_rates", [-1]),
        ],
    )
    def test_invalid_axis_values_are_rejected(self, field, value):
        data = default_spec("quick").to_dict()
        data[field] = value
        with pytest.raises(ConfigError):
            SweepSpec.from_dict(data)

    def test_backend_aliases_canonicalise(self):
        a = _tiny_spec(backends=("linear",))
        b = _tiny_spec(backends=(a.backends[0],))
        assert a == b


class TestExpansion:
    def test_n_cells_matches_expansion(self):
        for tier in ("quick", "full", "soak"):
            spec = default_spec(tier)
            cells = spec.expand()
            assert len(cells) == spec.n_cells

    def test_quick_grid_covers_acceptance_axes(self):
        spec = default_spec("quick")
        cells = spec.expand()
        assert {c.family for c in cells} == {"acl1", "fw1", "ipc1"}
        assert len({c.size for c in cells}) >= 3
        assert len({c.backend for c in cells}) >= 2
        assert len({c.cache_entries for c in cells}) >= 2
        assert len({c.skew for c in cells}) >= 2

    def test_cell_ids_are_unique(self):
        cells = default_spec("full").expand()
        assert len({c.cell_id for c in cells}) == len(cells)

    def test_cell_maps_to_engine_config(self):
        cell = _tiny_spec(churn_rates=(8,)).expand()[0]
        config = cell.engine_config()
        assert isinstance(config, EngineConfig)
        assert config.backend == cell.backend
        assert config.cache_entries == cell.cache_entries
        assert config.updatable  # churn > 0 flips the updatable surface


class TestSeeding:
    def test_same_spec_same_seeds(self):
        a = {c.cell_id: c.seed for c in default_spec("quick").expand()}
        b = {c.cell_id: c.seed for c in default_spec("quick").expand()}
        assert a == b

    def test_seeds_are_coordinate_derived_not_order_derived(self):
        """Filtering the grid must not change any surviving cell's
        workload — a filtered rerun reproduces the full sweep's cells."""
        spec = default_spec("quick")
        full = {c.cell_id: c for c in spec.expand()}
        filters = parse_filters(["family=fw1", "cache_entries=4096"])
        kept = [c for c in spec.expand() if match_filters(c, filters)]
        assert kept, "filter should select a non-empty subset"
        for cell in kept:
            twin = full[cell.cell_id]
            assert cell.seed == twin.seed
            assert cell.ruleset_seed == twin.ruleset_seed
            assert cell.trace_seed == twin.trace_seed

    def test_workload_seeds_ignore_backend_and_cache(self):
        """Cells differing only in engine shape share the workload, so
        the grid compares engines on identical inputs."""
        cells = default_spec("quick").expand()
        by_workload: dict[tuple, set[tuple[int, int]]] = {}
        for c in cells:
            key = (c.family, c.size, f"{c.skew:g}")
            by_workload.setdefault(key, set()).add(
                (c.ruleset_seed, c.trace_seed)
            )
        assert all(len(seeds) == 1 for seeds in by_workload.values())

    def test_spec_seed_perturbs_every_cell(self):
        a = {c.cell_id: c.seed for c in _tiny_spec(seed=1).expand()}
        b = {c.cell_id: c.seed for c in _tiny_spec(seed=2).expand()}
        assert all(a[k] != b[k] for k in a)


class TestFilters:
    def test_parse_rejects_unknown_axis(self):
        with pytest.raises(ConfigError, match="flavour"):
            parse_filters(["flavour=mild"])

    def test_parse_rejects_malformed_pair(self):
        with pytest.raises(ConfigError, match="AXIS=VALUE"):
            parse_filters(["family"])

    def test_comma_alternatives_union(self):
        spec = default_spec("quick")
        filters = parse_filters(["size=300,1200"])
        kept = [c for c in spec.expand() if match_filters(c, filters)]
        assert {c.size for c in kept} == {300, 1200}

    def test_float_axis_matches_compact_form(self):
        spec = default_spec("quick")
        filters = parse_filters(["skew=0.7"])
        kept = [c for c in spec.expand() if match_filters(c, filters)]
        assert kept and all(c.skew == 0.7 for c in kept)


def _artifact(cells: dict) -> dict:
    return {"version": 1, "spec": {}, "n_cells": len(cells), "cells": cells}


def _cell(hit=0.9, accesses=2.0, energy=1e-9, matched=0.5, pps=1e6, entries=64):
    return {
        "hit_rate": hit,
        "memory_accesses_per_lookup": accesses,
        "energy_per_packet_j": energy,
        "matched_fraction": matched,
        "throughput_pps": pps,
        "cache_entries": entries,
    }


class TestCompareSweeps:
    def test_identical_artifacts_pass(self):
        art = _artifact({"a/1/x/s1-auto/e64w4/z1.1/p40/u0": _cell()})
        report, failures = compare_sweeps.compare(art, art, 0.8, 0.75)
        assert failures == []
        assert "FAIL" not in report

    def test_gated_regression_fails(self):
        cid = "a/1/x/s1-auto/e64w4/z1.1/p40/u0"
        base = _artifact({cid: _cell(hit=0.9)})
        cur = _artifact({cid: _cell(hit=0.6)})  # ratio 0.67 < 0.75
        report, failures = compare_sweeps.compare(cur, base, 0.8, 0.75)
        assert failures == [f"{cid}:hit_rate"]
        assert "FAIL" in report

    def test_lower_is_better_direction(self):
        """More accesses/lookup is worse even though the number grew."""
        cid = "a/1/x/s1-auto/e64w4/z1.1/p40/u0"
        base = _artifact({cid: _cell(accesses=2.0)})
        cur = _artifact({cid: _cell(accesses=3.0)})  # 2/3 < 0.75 -> fail
        _, failures = compare_sweeps.compare(cur, base, 0.8, 0.75)
        assert failures == [f"{cid}:memory_accesses_per_lookup"]

    def test_throughput_is_warn_only(self):
        cid = "a/1/x/s1-auto/e64w4/z1.1/p40/u0"
        base = _artifact({cid: _cell(pps=1e6)})
        cur = _artifact({cid: _cell(pps=1e5)})  # 10x slower: warn, no gate
        report, failures = compare_sweeps.compare(cur, base, 0.8, 0.75)
        assert failures == []
        assert ":warning:" in report

    def test_missing_cell_fails_unless_allowed(self):
        cid = "a/1/x/s1-auto/e64w4/z1.1/p40/u0"
        base = _artifact({cid: _cell()})
        cur = _artifact({})
        _, failures = compare_sweeps.compare(cur, base, 0.8, 0.75)
        assert failures == [f"{cid}:missing"]
        _, failures = compare_sweeps.compare(
            cur, base, 0.8, 0.75, allow_missing=True
        )
        assert failures == []

    def test_missing_gated_metric_fails(self):
        cid = "a/1/x/s1-auto/e64w4/z1.1/p40/u0"
        base = _artifact({cid: _cell()})
        shrunk = _cell()
        del shrunk["hit_rate"]
        cur = _artifact({cid: shrunk})
        _, failures = compare_sweeps.compare(cur, base, 0.8, 0.75)
        assert failures == [f"{cid}:hit_rate"]

    def test_monotone_cache_axis_inversion_fails(self):
        """A bigger cache with a colder hit rate is an inverted-scaling
        failure even when every per-cell ratio vs baseline is clean."""
        small = "a/1/x/s1-auto/e64w4/z1.1/p40/u0"
        big = "a/1/x/s1-auto/e256w4/z1.1/p40/u0"
        cells = {
            small: _cell(hit=0.9, entries=64),
            big: _cell(hit=0.5, entries=256),
        }
        art = _artifact(cells)
        _, failures = compare_sweeps.compare(art, art, 0.8, 0.75)
        assert failures == ["monotone:a/1/x/s1-auto/e*w4/z1.1/p40/u0"]

    def test_monotone_cache_axis_holds_when_nondecreasing(self):
        cells = {
            "a/1/x/s1-auto/e64w4/z1.1/p40/u0": _cell(hit=0.7, entries=64),
            "a/1/x/s1-auto/e256w4/z1.1/p40/u0": _cell(hit=0.9, entries=256),
        }
        art = _artifact(cells)
        _, failures = compare_sweeps.compare(art, art, 0.8, 0.75)
        assert failures == []

    def test_cli_exit_codes(self, tmp_path, capsys):
        cid = "a/1/x/s1-auto/e64w4/z1.1/p40/u0"
        good = tmp_path / "good.json"
        bad = tmp_path / "bad.json"
        good.write_text(json.dumps(_artifact({cid: _cell()})))
        bad.write_text(json.dumps(_artifact({cid: _cell(matched=0.1)})))
        assert compare_sweeps.main([str(good), str(good)]) == 0
        assert compare_sweeps.main([str(bad), str(good)]) == 1
        capsys.readouterr()

    def test_missing_input_file_is_nonfatal(self, tmp_path, capsys):
        # Fresh checkouts have no artifact yet; the gate must not
        # misfire before the first sweep lands.
        assert compare_sweeps.main(
            [str(tmp_path / "nope.json"), str(tmp_path / "nope.json")]
        ) == 0
        capsys.readouterr()


@pytest.mark.sweep
class TestEndToEnd:
    def test_mini_sweep_produces_gatable_artifact(self, tmp_path):
        spec = _tiny_spec()
        result = run_sweep(spec)
        assert len(result.cells) == spec.n_cells == 2
        artifact = result.to_dict()
        cached = artifact["cells"]["acl1/60/linear/s1-auto/e64w4/z1.1/p40/u0"]
        bare = artifact["cells"]["acl1/60/linear/s1-auto/e0w4/z1.1/p40/u0"]
        assert 0.0 < cached["hit_rate"] <= 1.0
        assert "hit_rate" not in bare
        assert (
            cached["memory_accesses_per_lookup"]
            < bare["memory_accesses_per_lookup"]
        )
        assert cached["energy_per_packet_j"] < bare["energy_per_packet_j"]
        for m in (cached, bare):
            assert m["n_packets"] == spec.packets
            assert set(m["line_rates"]) == {"OC-48", "OC-192", "OC-768"}
        # The artifact self-compares clean through the real gate.
        path = tmp_path / "mini.json"
        result.save(str(path))
        _, failures = compare_sweeps.compare(
            json.loads(path.read_text()), artifact, 0.8, 0.75
        )
        assert failures == []

    def test_mini_sweep_is_deterministic(self):
        """The gated metrics are bit-stable across runs — the property
        the >25% CI gate rests on."""
        gated = ("hit_rate", "memory_accesses_per_lookup",
                 "energy_per_packet_j", "matched_fraction")
        spec = _tiny_spec()
        a = run_sweep(spec).to_dict()["cells"]
        b = run_sweep(spec).to_dict()["cells"]
        assert a.keys() == b.keys()
        for cid in a:
            for key in gated:
                assert a[cid].get(key) == b[cid].get(key), (cid, key)

    def test_churn_cell_records_update_metrics(self):
        spec = _tiny_spec(cache_entries=(64,), churn_rates=(40,))
        result = run_sweep(spec)
        (cell,) = result.cells
        m = cell.metrics
        assert m["update_ops"] > 0
        assert m["update_batches"] > 0
        assert m["update_latency_p50_ms"] >= 0
        assert m["update_latency_p99_ms"] >= m["update_latency_p50_ms"]

    def test_filtered_run_matches_full_run_cells(self):
        spec = _tiny_spec(cache_entries=(0, 64), skews=(0.7, 1.1))
        full = run_sweep(spec).to_dict()["cells"]
        part = run_sweep(
            spec, filters=parse_filters(["skew=0.7"])
        ).to_dict()["cells"]
        assert len(part) == 2
        gated = ("hit_rate", "memory_accesses_per_lookup",
                 "energy_per_packet_j", "matched_fraction")
        for cid, metrics in part.items():
            for key in gated:
                assert metrics.get(key) == full[cid].get(key), (cid, key)

    def test_render_matrix_mentions_every_family_and_size(self):
        spec = _tiny_spec(sizes=(60, 120))
        text = render_matrix(run_sweep(spec).to_dict())
        assert "acl1" in text
        assert "| 60 |" in text and "| 120 |" in text
        assert "OC-48" in text


class TestScenarioAxis:
    def test_quick_tier_carries_both_scenarios(self):
        cells = default_spec("quick").expand()
        by_scn: dict[str, int] = {}
        for c in cells:
            by_scn[c.scenario] = by_scn.get(c.scenario, 0) + 1
        assert set(by_scn) == {"bare", "linecard"}
        assert by_scn["bare"] == by_scn["linecard"] == len(cells) // 2

    def test_bare_cell_ids_are_suffix_free_and_stable(self):
        """Adding the scenario axis must not rename the committed bare
        cells (the sweeps baseline keys on cell_id)."""
        cells = default_spec("quick").expand()
        for c in cells:
            if c.scenario == "bare":
                assert "linecard" not in c.cell_id
            else:
                assert c.cell_id.endswith("/linecard")
                twin = c.cell_id.rsplit("/linecard", 1)[0]
                assert twin in {
                    x.cell_id for x in cells if x.scenario == "bare"
                }

    def test_full_and_soak_tiers_stay_bare_only(self):
        for tier in ("full", "soak"):
            assert default_spec(tier).scenarios == ("bare",)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            _tiny_spec(scenarios=("turbo",))

    def test_linecard_with_multi_tenant_rejected(self):
        with pytest.raises(ConfigError, match="single tenant"):
            _tiny_spec(scenarios=("bare", "linecard"), tenants=(1, 2))

    def test_scenario_filter_selects(self):
        spec = _tiny_spec(scenarios=("bare", "linecard"))
        filters = parse_filters(["scenario=linecard"])
        kept = [c for c in spec.expand() if match_filters(c, filters)]
        assert kept and all(c.scenario == "linecard" for c in kept)

    def test_workload_seeds_shared_across_scenarios(self):
        cells = _tiny_spec(scenarios=("bare", "linecard")).expand()
        by_workload: dict[str, set[tuple[int, int]]] = {}
        for c in cells:
            key = c.cell_id.rsplit("/linecard", 1)[0]
            by_workload.setdefault(key, set()).add(
                (c.ruleset_seed, c.trace_seed)
            )
        assert all(len(s) == 1 for s in by_workload.values())


@pytest.mark.sweep
class TestLinecardScenarioEndToEnd:
    def test_linecard_cells_match_bare_neighbours(self):
        spec = _tiny_spec(scenarios=("bare", "linecard"))
        cells = run_sweep(spec).to_dict()["cells"]
        linecard = {k: v for k, v in cells.items() if k.endswith("/linecard")}
        assert len(linecard) == len(cells) // 2
        for cid, m in linecard.items():
            bare = cells[cid.rsplit("/linecard", 1)[0]]
            # The default graph drops nothing, so the classify verdicts
            # (and the gated matched_fraction) are bit-identical.
            assert m["stage_drops"] == 0
            assert m["matched_fraction"] == bare["matched_fraction"]
            assert m["scenario"] == "linecard"
            # The whole-graph energy prices every stage, so it strictly
            # exceeds the classify-only figure the bare cell reports.
            assert m["graph_energy_per_packet_j"] > m["energy_per_packet_j"]
