"""Tests for the accelerator simulators: FSM vs vectorised model vs oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro import generate_ruleset, generate_trace
from repro.algorithms import LinearSearchClassifier, build_hicuts, build_hypercuts
from repro.hw import (
    Accelerator,
    AcceleratorFSM,
    build_memory_image,
    figure5_trace,
    header_msb8,
)


class TestHeaderMsb8:
    def test_widths(self):
        h = (0xC0A80102, 0x0A0B0C0D, 0x1234, 0x00FF, 0x7F)
        assert header_msb8(h) == (0xC0, 0x0A, 0x12, 0x00, 0x7F)


@pytest.mark.parametrize("builder", [build_hicuts, build_hypercuts])
@pytest.mark.parametrize("speed", [0, 1])
class TestFsmAgreement:
    def test_fsm_fast_oracle_agree(self, builder, speed):
        rs = generate_ruleset("acl1", 400, seed=41)
        tree = builder(rs, binth=30, spfac=4, hw_mode=True)
        img = build_memory_image(tree, speed=speed)
        trace = generate_trace(rs, 300, seed=42, background_fraction=0.15)

        want = LinearSearchClassifier(rs).classify_trace(trace)
        run = Accelerator(img).run_trace(trace)
        recs = AcceleratorFSM(img).run(trace)

        assert np.array_equal(run.match, want)
        assert np.array_equal([r.match for r in recs], want)
        assert np.array_equal([r.occupancy for r in recs], run.occupancy)
        assert np.array_equal([r.accesses for r in recs], run.memory_accesses())


class TestCycleAccounting:
    def test_total_cycle_formula(self, hw_image_small, acl_small,
                                 acl_small_trace):
        """FSM total = 1 (root load) + 1 (first dispatch) + sum(occupancy)."""
        sub = acl_small_trace.subset(200)
        fsm = AcceleratorFSM(hw_image_small)
        recs = fsm.run(sub)
        assert fsm.cycle == 2 + sum(r.occupancy for r in recs)

    def test_one_packet_per_cycle_when_worst_is_2(self):
        """The paper's pipelining claim: worst case 2 -> 1 packet/cycle."""
        rs = generate_ruleset("acl1", 60, seed=43)
        tree = build_hicuts(rs, binth=30, spfac=4, hw_mode=True)
        img = build_memory_image(tree, speed=1)
        if img.worst_case_cycles() != 2:
            pytest.skip("tree shape gives a different worst case")
        trace = generate_trace(rs, 500, seed=44)
        run = Accelerator(img).run_trace(trace)
        assert run.mean_occupancy() == 1.0
        assert run.throughput_pps(226e6) == pytest.approx(226e6)

    def test_occupancy_floor_is_one(self, hw_image_small, acl_small):
        trace = generate_trace(acl_small, 500, seed=45,
                               background_fraction=0.8)
        run = Accelerator(hw_image_small).run_trace(trace)
        assert int(run.occupancy.min()) >= 1

    def test_worst_latency_bounds_run(self, hw_image_small, acl_small_trace):
        run = Accelerator(hw_image_small).run_trace(acl_small_trace)
        assert run.worst_latency() <= hw_image_small.worst_case_cycles()

    def test_memory_accesses_never_exceed_static_bound(
        self, hw_image_small, acl_small_trace
    ):
        run = Accelerator(hw_image_small).run_trace(acl_small_trace)
        assert int(run.memory_accesses().max()) <= (
            hw_image_small.worst_case_occupancy()
        )

    def test_speed0_occupancy_ge_speed1(self, hw_tree_small, acl_small_trace):
        dense = Accelerator(build_memory_image(hw_tree_small, speed=0))
        fast = Accelerator(build_memory_image(hw_tree_small, speed=1))
        r0 = dense.run_trace(acl_small_trace)
        r1 = fast.run_trace(acl_small_trace)
        assert np.array_equal(r0.match, r1.match)
        assert r0.mean_occupancy() >= r1.mean_occupancy() - 1e-12


class TestEquationFive7:
    """Per-packet cycles follow eq (5) (speed 0) / eq (7) (speed 1)."""

    @pytest.mark.parametrize("speed", [0, 1])
    def test_cycle_equations(self, hw_tree_small, acl_small_trace, speed):
        img = build_memory_image(hw_tree_small, speed=speed)
        run = Accelerator(img).run_trace(acl_small_trace)
        batch = hw_tree_small.batch_lookup(acl_small_trace)
        for i in range(0, acl_small_trace.n_packets, 131):
            x = max(int(batch.internal_nodes[i]) - 1, 0)
            leaf = int(batch.leaf_id[i])
            if leaf < 0:
                continue
            p = img.placements[leaf]
            z = int(batch.match_pos[i])
            if z < 0:
                z = max(p.n_rules - 1, 0)
            words = (p.pos + z) // 30 + 1
            assert run.occupancy[i] == max(x + words, 1)
            if speed == 1 and p.n_rules <= 30:
                # eq (7): pos contributes nothing for non-straddling leaves.
                assert words == z // 30 + 1


class TestSingleClassify:
    def test_classify_matches_oracle(self, hw_image_small, acl_small):
        acc = Accelerator(hw_image_small)
        lin = LinearSearchClassifier(acl_small)
        rng = np.random.default_rng(46)
        arrays = acl_small.arrays
        for _ in range(50):
            r = int(rng.integers(0, arrays.n))
            header = tuple(int(arrays.lo[d, r]) for d in range(5))
            assert acc.classify(header) == lin.classify(header)


class TestFigure5Trace:
    def test_events_emitted(self, hw_image_small, acl_small):
        trace = generate_trace(acl_small, 4, seed=47)
        events = figure5_trace(hw_image_small, trace)
        states = {e.state for e in events}
        assert "LOAD_ROOT" in states
        assert "LATCH" in states
        assert "COMPARE" in states
        assert events[0].cycle == 1
        cycles = [e.cycle for e in events]
        assert cycles == sorted(cycles)
