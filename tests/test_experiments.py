"""Smoke + shape tests for the experiment harness (quick pipeline)."""

from __future__ import annotations

import pytest

from repro.experiments import Pipeline
from repro.experiments import (
    ablations,
    figures,
    section53,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)


@pytest.fixture(scope="module")
def pipe():
    # Small trace + reduced grids: the whole module runs in well under a
    # minute while exercising every experiment path.
    return Pipeline(seed=5, quick=True, trace_packets=4000)


class TestFigures:
    def test_figure1_checks_pass(self):
        assert all("PASS" in c for c in figures.figure1_matches_paper())

    def test_figure3_checks_pass(self):
        assert all("PASS" in c for c in figures.figure3_matches_paper())

    def test_report_renders(self, pipe):
        out = figures.report(pipe)
        assert "Figure 1" in out and "Figure 3" in out and "cycle" in out
        assert "FAIL" not in out


class TestTables:
    def test_table2(self, pipe):
        rows = table2.run(pipe)
        assert len(rows) == len(pipe.acl1_sizes())
        for row in rows:
            # Hardware memory is whole words.
            assert row.hw_hicuts % 600 == 0
            assert row.hw_hypercuts % 600 == 0
            assert row.sw_hicuts > 0
        # Memory grows with ruleset size.
        assert rows[-1].hw_hicuts > rows[0].hw_hicuts

    def test_table3(self, pipe):
        rows = table3.run(pipe)
        assert all(r.sw_hicuts_j > 0 for r in rows)
        assert rows[-1].sw_hicuts_j > rows[0].sw_hicuts_j
        assert "FAIL" not in table3.report(pipe)

    def test_table4(self, pipe):
        rows = table4.run(pipe, families=("acl1", "fw1"))
        assert all(2 <= r.hicuts_cycles <= 12 for r in rows)
        fw = [r for r in rows if r.family == "fw1"]
        acl = [r for r in rows if r.family == "acl1"]
        assert fw[-1].hicuts_bytes > acl[-1].hicuts_bytes

    def test_table5(self, pipe):
        out = table5.report(pipe)
        assert "42.45" in out and "18.32" in out
        assert "FAIL" not in out

    def test_table6(self, pipe):
        rows = table6.run(pipe)
        for r in rows:
            assert r.asic_hicuts_j < r.fpga_hicuts_j < r.sw_hicuts_j
        assert "FAIL" not in table6.report(pipe)

    def test_table7(self, pipe):
        rows = table7.run(pipe)
        for r in rows:
            assert r.asic_hicuts_pps > r.fpga_hicuts_pps > r.sw_hicuts_pps
            assert r.asic_hicuts_pps <= 226e6 + 1
            assert r.fpga_hicuts_pps <= 77e6 + 1
        assert "FAIL" not in table7.report(pipe)

    def test_table8(self, pipe):
        rows = table8.run(pipe)
        for r in rows:
            assert r.hw_hicuts >= 2
            assert r.sw_hicuts > r.hw_hicuts
        assert "FAIL" not in table8.report(pipe)


class TestSection53:
    def test_report(self, pipe):
        out = section53.report(pipe)
        assert "Ayama" in out
        assert "FAIL" not in out


class TestAblations:
    def test_speed_ablation(self):
        rows = ablations.speed_ablation(size=400, trace_packets=2000)
        assert rows[0].speed == 0 and rows[1].speed == 1
        assert rows[0].bytes_used <= rows[1].bytes_used
        assert rows[1].mean_occupancy <= rows[0].mean_occupancy + 1e-9

    def test_cut_ladder(self):
        rows = ablations.cut_ladder_ablation(size=400)
        paper = next(r for r in rows if r.start == 32 and r.cap == 256)
        original = next(r for r in rows if r.start == 2 and r.cap == 256)
        assert paper.build_energy_j < original.build_energy_j

    def test_binth_spfac(self):
        rows = ablations.binth_spfac_ablation(size=400, trace_packets=2000)
        assert len(rows) == 12
        # At fixed binth, higher spfac never hurts worst-case cycles.
        for binth in (8, 16, 30, 60):
            group = sorted(
                (r for r in rows if r.binth == binth), key=lambda r: r.spfac
            )
            assert group[-1].worst_cycles <= group[0].worst_cycles


class TestPipeline:
    def test_workload_cached(self, pipe):
        a = pipe.workload("acl1", 60)
        b = pipe.workload("acl1", 60)
        assert a is b

    def test_quick_grids_are_subsets(self, pipe):
        full = Pipeline(quick=False)
        assert set(pipe.acl1_sizes()) <= set(full.acl1_sizes())
        for fam in ("acl1", "fw1", "ipc1"):
            assert set(pipe.table4_sizes(fam)) <= set(full.table4_sizes(fam))
