"""Tests for the energy models: eq (8), SA-1100, device models, TCAM fit."""

from __future__ import annotations

import pytest

from repro import generate_trace
from repro.algorithms import OpCounter, build_hicuts
from repro.energy import (
    ASIC65,
    AYAMA_10128,
    AYAMA_10512,
    SA1100,
    VIRTEX5,
    Sa1100Model,
    TcamModel,
    asic_model,
    denormalize_power,
    fpga_model,
    normalize_power,
    software_lookup_ops,
)
from repro.energy.metrics import (
    OC48,
    OC192,
    OC768,
    fmt_int,
    fmt_sci,
    gain,
    sustains_line_rate,
)
from repro.hw import Accelerator


class TestEquation8:
    def test_identity_at_target(self):
        assert normalize_power(1.0, 65, 1.0) == pytest.approx(1.0)

    def test_sa1100_normalisation(self):
        """Table 5: the SA-1100's normalised power is 42.45 mW."""
        raw = SA1100.power_raw_w
        assert normalize_power(raw, 180, 1.8) == pytest.approx(42.45e-3)

    def test_asic_normalisation(self):
        raw = ASIC65.power_raw_w
        assert normalize_power(raw, 65, 1.08) == pytest.approx(18.32e-3)

    def test_fpga_already_normalised(self):
        # 65 nm at 1.0 V: raw == normalised.
        assert VIRTEX5.power_raw_w == pytest.approx(VIRTEX5.power_norm_w)

    def test_denormalize_inverse(self):
        for p, nm, v in ((0.5, 180, 1.8), (0.02, 90, 1.2)):
            norm = normalize_power(p, nm, v)
            assert denormalize_power(norm, nm, v) == pytest.approx(p)

    def test_scaling_quadratic_in_voltage(self):
        a = normalize_power(1.0, 65, 2.0)
        assert a == pytest.approx(0.25)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            normalize_power(1.0, 0, 1.0)
        with pytest.raises(ValueError):
            normalize_power(1.0, 65, 0)


class TestSa1100Model:
    def test_cycles_weighting(self):
        ops = OpCounter()
        ops.add("alu", 10)
        ops.add("mem_read", 2)
        model = Sa1100Model()
        assert model.cycles(ops) == 10 * 1 + 2 * 40

    def test_energy_scales_with_power(self):
        ops = OpCounter()
        ops.add("alu", 200_000_000)  # 1 second at 200 MHz
        cost = Sa1100Model().cost(ops)
        assert cost.seconds == pytest.approx(1.0)
        assert cost.energy_raw_j == pytest.approx(SA1100.power_raw_w)
        assert cost.energy_norm_j == pytest.approx(42.45e-3)

    def test_lookup_cost_divides(self):
        ops = OpCounter()
        ops.add("mem_read", 1000)
        model = Sa1100Model()
        per = model.lookup_cost(ops, 100)
        assert per.cycles == pytest.approx(model.cycles(ops) / 100)
        with pytest.raises(ValueError):
            model.lookup_cost(ops, 0)

    def test_throughput_inverse_of_time(self):
        ops = OpCounter()
        ops.add("mem_read", 10)  # 400 cycles -> 2 us -> 0.5 Mpps
        model = Sa1100Model()
        assert model.throughput_pps(ops, 1) == pytest.approx(0.5e6)


class TestSoftwareLookupOpsExactness:
    def test_analytic_equals_per_packet_sum(self, acl_small):
        """The analytic trace aggregation must match per-lookup counting."""
        trace = generate_trace(acl_small, 400, seed=55,
                               background_fraction=0.2)
        for hw_mode in (False, True):
            tree = build_hicuts(
                acl_small, binth=30 if hw_mode else 16, spfac=4,
                hw_mode=hw_mode,
            )
            batch = tree.batch_lookup(trace)
            analytic = software_lookup_ops(tree, batch)
            summed = OpCounter()
            for header in trace.headers:
                tree.lookup(header, ops=summed)
            assert summed.as_dict() == analytic.as_dict()


class TestDeviceModels:
    def test_asic_energy_per_packet_at_occupancy_one(self, hw_image_small,
                                                      acl_small):
        trace = generate_trace(acl_small, 1000, seed=56)
        run = Accelerator(hw_image_small).run_trace(trace)
        model = asic_model()
        cost = model.evaluate(run)
        expect = model.active_power_norm_w * run.mean_occupancy() / 226e6
        assert cost.energy_per_packet_norm_j == pytest.approx(expect)
        # Table 6 band: ~7.5e-11 J at occupancy ~1.
        assert 5e-11 < cost.energy_per_packet_norm_j < 5e-10

    def test_fpga_cost_structure(self, hw_image_small, acl_small):
        trace = generate_trace(acl_small, 1000, seed=57)
        run = Accelerator(hw_image_small).run_trace(trace)
        f = fpga_model().evaluate(run)
        a = asic_model().evaluate(run)
        assert f.energy_per_packet_norm_j > a.energy_per_packet_norm_j
        assert f.throughput_pps == pytest.approx(77e6 / run.mean_occupancy())

    def test_power_at_load_interpolates(self):
        model = asic_model()
        idle = model.power_at_load_w(0.0)
        full = model.power_at_load_w(1.0)
        assert idle == pytest.approx(model.static_power_norm_w)
        assert full == pytest.approx(model.active_power_norm_w)
        assert idle < model.power_at_load_w(0.5) < full


class TestTcamModel:
    def test_fit_reproduces_datasheet_points(self):
        model = TcamModel()
        assert model.power_w(AYAMA_10128.size_bytes, AYAMA_10128.freq_hz) == (
            pytest.approx(AYAMA_10128.power_w)
        )
        assert model.power_w(AYAMA_10512.size_bytes, AYAMA_10512.freq_hz) == (
            pytest.approx(AYAMA_10512.power_w)
        )

    def test_power_monotone_in_size_and_freq(self):
        model = TcamModel()
        assert model.power_w(1e6, 100e6) < model.power_w(2e6, 100e6)
        assert model.power_w(1e6, 100e6) < model.power_w(1e6, 200e6)

    def test_band_covers_paper_quote(self):
        """Ayama family: 4.86-19.14 W depending on size."""
        model = TcamModel()
        lo = model.power_w(0.4e6, 133e6)
        hi = model.power_w(AYAMA_10512.size_bytes, 133e6)
        assert lo < 4.86 < hi <= 19.15

    def test_energy_per_lookup(self):
        model = TcamModel()
        e = model.energy_per_lookup_j(AYAMA_10512.size_bytes, 133e6)
        assert e == pytest.approx(19.14 / 133e6)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            TcamModel().power_w(-1, 1e6)


class TestMetrics:
    def test_line_rates(self):
        assert OC192.worst_case_pps == pytest.approx(31.25e6)
        assert OC768.worst_case_pps == pytest.approx(125e6)
        assert OC48.worst_case_pps < OC192.worst_case_pps

    def test_sustains(self):
        assert sustains_line_rate(226e6, OC768)  # the ASIC headline
        assert not sustains_line_rate(77e6, OC768)
        assert sustains_line_rate(77e6, OC192)  # the FPGA headline

    def test_formatting(self):
        assert fmt_sci(2.07e-10) == "2.07E-10"
        assert fmt_int(226e6) == "226,000,000"
        assert gain(100, 4) == 25
        assert gain(1, 0) == float("inf")
