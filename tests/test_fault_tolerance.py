"""Fault-injection grid for the supervised serving path.

The acceptance contract of the robustness PR: under every single-fault
injection (worker crash, hang past the chunk deadline, in-worker error,
arena fence trip, ingestion I/O error, update-apply failure, malformed
trace lines) a ``retry`` or ``degrade`` policy completes the run
**bit-identical** to the fault-free run, the :class:`FaultReport`
accounts for exactly what happened, and the ``fail`` policy raises a
typed :class:`ServingFaultError` naming the shard/chunk/cause.  Nothing
may leak: no orphaned worker processes, no shared-memory segments.
"""

from __future__ import annotations

import pickle
from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classbench import generate_trace, generate_update_stream
from repro.core.errors import (
    ArenaCorruptionError,
    ConfigError,
    IngestError,
    InjectedFault,
    PacketFormatError,
    ServingFaultError,
    WorkerCrashError,
)
from repro.engine import (
    ClassificationPipeline,
    FaultPlan,
    FaultSpec,
    SupervisionPolicy,
    build_backend,
    build_updatable_backend,
)
from repro.serve import (
    Engine,
    EngineConfig,
    MultiTenantEngine,
    QuarantineLog,
    TenantSpec,
    iter_trace_file,
    iter_trace_segments,
)

CHUNK = 256  # 2000-packet fixture trace -> 8 chunks (0..7)

#: Retry-flavoured policies with zero backoff so the grid stays fast.
FAST_RETRY = dict(max_retries=2, backoff_base_s=0.0, backoff_max_s=0.0)


def make_pipeline(ruleset, policy=None, **kw):
    kw.setdefault("chunk_size", CHUNK)
    kw.setdefault("shards", 2)
    kw.setdefault("shard_mode", "processes")
    return ClassificationPipeline(
        build_backend("linear", ruleset), policy=policy, **kw
    )


def retry_policy(policy="retry", **kw):
    return SupervisionPolicy(fault_policy=policy, **{**FAST_RETRY, **kw})


# ---------------------------------------------------------------------------
# Worker faults on the fork tier: crash, error, hang
# ---------------------------------------------------------------------------
class TestForkTierFaults:
    @pytest.mark.parametrize("kind", ["crash", "error"])
    @pytest.mark.parametrize("policy", ["retry", "degrade"])
    def test_recovers_bit_identical(
        self, kind, policy, acl_small, acl_small_trace, acl_small_oracle
    ):
        with make_pipeline(acl_small, policy=retry_policy(policy)) as pipe:
            res = pipe.run(
                acl_small_trace, faults=[FaultSpec(kind=kind, chunk=1)]
            )
        assert np.array_equal(res.match, acl_small_oracle)
        assert res.fault is not None
        assert res.fault.retries == 1
        assert res.fault.replays == len(res.chunks)  # whole-dispatch replay
        if kind == "crash":
            assert res.fault.worker_crashes == 1
            assert sum(res.fault.shard_crashes.values()) == 1
        else:
            assert res.fault.chunk_errors == 1
        assert res.fault.recovery_s  # detection-to-redispatch measured

    def test_hang_trips_chunk_deadline(
        self, acl_small, acl_small_trace, acl_small_oracle
    ):
        policy = retry_policy(chunk_timeout_s=0.5)
        with make_pipeline(acl_small, policy=policy) as pipe:
            res = pipe.run(
                acl_small_trace,
                faults=[FaultSpec(kind="hang", chunk=1, seconds=30.0)],
            )
        assert np.array_equal(res.match, acl_small_oracle)
        assert res.fault.timeouts == 1
        assert res.fault.retries == 1

    def test_fail_policy_raises_typed_error(
        self, acl_small, acl_small_trace
    ):
        with make_pipeline(acl_small, policy=retry_policy("fail")) as pipe:
            with pytest.raises(ServingFaultError) as excinfo:
                pipe.run(
                    acl_small_trace, faults=[FaultSpec(kind="crash", chunk=1)]
                )
        exc = excinfo.value
        assert exc.tier == "processes"
        assert exc.shard is not None  # the dead worker's pid
        assert isinstance(exc.cause, WorkerCrashError)

    def test_retries_exhausted_raises(self, acl_small, acl_small_trace):
        policy = retry_policy(max_retries=1)
        with make_pipeline(acl_small, policy=policy) as pipe:
            with pytest.raises(ServingFaultError) as excinfo:
                pipe.run(
                    acl_small_trace,
                    faults=[FaultSpec(kind="error", chunk=0, times=5)],
                )
        assert isinstance(excinfo.value.cause, InjectedFault)
        assert excinfo.value.chunk == 0

    def test_plan_without_policy_is_fail_fast(
        self, acl_small, acl_small_trace
    ):
        """A faults= plan on an unsupervised pipeline gets fail-fast
        supervision: a typed error, never a hang, never a retry."""
        with make_pipeline(acl_small) as pipe:
            with pytest.raises(ServingFaultError):
                pipe.run(
                    acl_small_trace, faults=[FaultSpec(kind="crash", chunk=0)]
                )

    def test_fault_free_supervised_run_is_clean(
        self, acl_small, acl_small_trace, acl_small_oracle
    ):
        with make_pipeline(acl_small, policy=retry_policy()) as pipe:
            res = pipe.run(acl_small_trace)
        assert np.array_equal(res.match, acl_small_oracle)
        assert res.fault is not None and not res.fault.any()


# ---------------------------------------------------------------------------
# Thread tier: per-chunk recovery (crash maps to a raised InjectedFault)
# ---------------------------------------------------------------------------
class TestThreadTierFaults:
    @pytest.mark.parametrize("kind", ["crash", "error"])
    def test_recovers_per_chunk(
        self, kind, acl_small, acl_small_trace, acl_small_oracle
    ):
        with make_pipeline(
            acl_small, policy=retry_policy(), shard_mode="threads"
        ) as pipe:
            res = pipe.run(
                acl_small_trace, faults=[FaultSpec(kind=kind, chunk=2)]
            )
        assert np.array_equal(res.match, acl_small_oracle)
        assert res.fault.retries >= 1
        # Thread-tier recovery replays single chunks, not the dispatch.
        assert 1 <= res.fault.replays < len(res.chunks)

    def test_hang_respects_deadline(
        self, acl_small, acl_small_trace, acl_small_oracle
    ):
        policy = retry_policy(chunk_timeout_s=0.3)
        with make_pipeline(
            acl_small, policy=policy, shard_mode="threads"
        ) as pipe:
            res = pipe.run(
                acl_small_trace,
                faults=[FaultSpec(kind="hang", chunk=2, seconds=30.0)],
            )
        assert np.array_equal(res.match, acl_small_oracle)
        assert res.fault.timeouts >= 1

    def test_fail_policy_names_shard(self, acl_small, acl_small_trace):
        with make_pipeline(
            acl_small, policy=retry_policy("fail"), shard_mode="threads"
        ) as pipe:
            with pytest.raises(ServingFaultError) as excinfo:
                pipe.run(
                    acl_small_trace, faults=[FaultSpec(kind="error", chunk=2)]
                )
        assert excinfo.value.tier == "threads"
        assert excinfo.value.chunk == 2

    def test_shard_scoped_fault_hits_one_shard(
        self, acl_small, acl_small_trace, acl_small_oracle
    ):
        """A spec with shard= only fires on that thread-tier shard."""
        with make_pipeline(
            acl_small, policy=retry_policy(), shard_mode="threads"
        ) as pipe:
            res = pipe.run(
                acl_small_trace,
                faults=[FaultSpec(kind="error", shard=0)],
            )
        assert np.array_equal(res.match, acl_small_oracle)
        assert res.fault.retries >= 1


# ---------------------------------------------------------------------------
# Persistent tier: arena generation fence + checksum, pool replacement
# ---------------------------------------------------------------------------
class TestArenaFence:
    def test_corruption_detected_and_retried(
        self, acl_small, acl_small_trace, acl_small_oracle
    ):
        with make_pipeline(
            acl_small, policy=retry_policy(), persistent=True
        ) as pipe:
            res = pipe.run(
                acl_small_trace, faults=[FaultSpec(kind="arena")]
            )
            assert np.array_equal(res.match, acl_small_oracle)
            assert res.fault.arena_faults == 1
            assert res.fault.retries == 1
            # The poisoned pool was torn down and a fresh one re-forked.
            assert pipe._pool is not None

    def test_corruption_fail_policy(self, acl_small, acl_small_trace):
        with make_pipeline(
            acl_small, policy=retry_policy("fail"), persistent=True
        ) as pipe:
            with pytest.raises(ServingFaultError) as excinfo:
                pipe.run(acl_small_trace, faults=[FaultSpec(kind="arena")])
        assert excinfo.value.tier == "persistent"
        assert isinstance(excinfo.value.cause, ArenaCorruptionError)

    def test_no_orphans_no_leaked_shm(self, acl_small, acl_small_trace):
        pipe = make_pipeline(
            acl_small, policy=retry_policy(), persistent=True
        )
        try:
            pipe.run(acl_small_trace, faults=[FaultSpec(kind="crash", chunk=0)])
            assert pipe._pool is not None and pipe._arena is not None
            procs = list(pipe._pool._pool)
            names = tuple(pipe._arena["names"])
        finally:
            pipe.close()
        for proc in procs:
            assert not proc.is_alive()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_crash_during_persistent_run_recovers(
        self, acl_small, acl_small_trace, acl_small_oracle
    ):
        with make_pipeline(
            acl_small, policy=retry_policy(), persistent=True
        ) as pipe:
            res = pipe.run(
                acl_small_trace, faults=[FaultSpec(kind="crash", chunk=3)]
            )
            assert np.array_equal(res.match, acl_small_oracle)
            assert res.fault.worker_crashes == 1
            # The replacement pool keeps serving fault-free runs.
            again = pipe.run(acl_small_trace)
            assert np.array_equal(again.match, acl_small_oracle)
            assert not again.fault.any()


# ---------------------------------------------------------------------------
# Degradation ladder
# ---------------------------------------------------------------------------
class TestDegradationLadder:
    def test_persistent_degrades_to_processes(
        self, acl_small, acl_small_trace, acl_small_oracle
    ):
        """An arena fault that outlives every retry (times=10) forces
        the ladder step; the transient fork tier has no arena and
        completes bit-identically."""
        policy = retry_policy("degrade", max_retries=1)
        with make_pipeline(
            acl_small, policy=policy, persistent=True
        ) as pipe:
            res = pipe.run(
                acl_small_trace, faults=[FaultSpec(kind="arena", times=10)]
            )
        assert np.array_equal(res.match, acl_small_oracle)
        assert res.fault.degradations == [
            "persistent->processes:ArenaCorruptionError"
        ]
        assert res.fault.arena_faults == 2  # attempts 0 and 1
        assert res.fault.recovery_s

    def test_fail_policy_never_degrades(self, acl_small, acl_small_trace):
        policy = retry_policy("fail")
        with make_pipeline(
            acl_small, policy=policy, persistent=True
        ) as pipe:
            with pytest.raises(ServingFaultError):
                pipe.run(
                    acl_small_trace, faults=[FaultSpec(kind="arena", times=10)]
                )


# ---------------------------------------------------------------------------
# Live updates under faults: idempotent chunk replay
# ---------------------------------------------------------------------------
class TestUpdatesUnderFaults:
    def _run(self, ruleset, trace, schedule, policy, faults):
        clf = build_updatable_backend("linear", ruleset)
        with ClassificationPipeline(
            clf, chunk_size=CHUNK, shards=2, shard_mode="processes",
            policy=policy,
        ) as pipe:
            return pipe.run(trace, updates=schedule, faults=faults)

    @pytest.fixture()
    def schedule(self, acl_small, acl_small_trace):
        return generate_update_stream(
            acl_small, 24, acl_small_trace.n_packets, batch_size=6, seed=402
        )

    @pytest.mark.parametrize("kind", ["crash", "error"])
    def test_replay_reapplies_update_prefix(
        self, kind, acl_small, acl_small_trace, schedule
    ):
        want = self._run(
            acl_small, acl_small_trace, schedule, retry_policy(), None
        )
        got = self._run(
            acl_small, acl_small_trace, schedule, retry_policy(),
            [FaultSpec(kind=kind, chunk=1)],
        )
        assert np.array_equal(got.match, want.match)
        assert got.final_epoch == want.final_epoch
        assert got.update_batches == want.update_batches
        assert got.fault.retries == 1

    def test_update_apply_fault_retried(
        self, acl_small, acl_small_trace, schedule
    ):
        want = self._run(
            acl_small, acl_small_trace, schedule, retry_policy(), None
        )
        got = self._run(
            acl_small, acl_small_trace, schedule, retry_policy(),
            [FaultSpec(kind="update", batch=0)],
        )
        assert np.array_equal(got.match, want.match)
        assert got.final_epoch == want.final_epoch
        assert got.fault.update_retries == 1

    def test_update_apply_fault_fail_policy(
        self, acl_small, acl_small_trace, schedule
    ):
        with pytest.raises(ServingFaultError) as excinfo:
            self._run(
                acl_small, acl_small_trace, schedule, retry_policy("fail"),
                [FaultSpec(kind="update", batch=0)],
            )
        assert excinfo.value.tier == "update"


# ---------------------------------------------------------------------------
# Engine-level grid: config-driven supervision, cache on/off, streams
# ---------------------------------------------------------------------------
class TestEngineFaults:
    @pytest.mark.parametrize("shard_mode", ["processes", "threads"])
    @pytest.mark.parametrize("cache_entries", [0, 512])
    def test_classify_recovers(
        self, shard_mode, cache_entries, acl_small, acl_small_trace,
        acl_small_oracle,
    ):
        config = EngineConfig(
            backend="linear", shards=2, chunk_size=CHUNK,
            min_chunk_packets=0, shard_mode=shard_mode,
            cache_entries=cache_entries, fault_policy="retry",
        )
        with Engine.open(config, acl_small) as engine:
            report = engine.classify(
                acl_small_trace, faults=[FaultSpec(kind="error", chunk=1)]
            )
        assert np.array_equal(report.match, acl_small_oracle)
        assert report.fault is not None and report.fault.retries >= 1
        assert "fault" in report.to_dict()

    def test_stream_segment_fault_recovers(
        self, acl_small, acl_small_trace, acl_small_oracle
    ):
        config = EngineConfig(
            backend="linear", shards=2, chunk_size=CHUNK,
            min_chunk_packets=0, shard_mode="processes",
            fault_policy="retry",
        )
        plan = FaultPlan((FaultSpec(kind="crash", chunk=0, segment=1),))
        with Engine.open(config, acl_small) as engine:
            report = engine.classify_stream(
                iter_trace_segments(acl_small_trace, 768),
                faults=plan,
            )
        assert np.array_equal(report.match, acl_small_oracle)
        assert report.fault.worker_crashes == 1

    def test_stream_ingest_fault_retried(
        self, acl_small, acl_small_trace, acl_small_oracle
    ):
        config = EngineConfig(
            backend="linear", chunk_size=CHUNK, fault_policy="retry",
        )
        with Engine.open(config, acl_small) as engine:
            report = engine.classify_stream(
                iter_trace_segments(acl_small_trace, 768),
                faults=[FaultSpec(kind="ingest", segment=1)],
            )
            assert engine.last_stream_fault is not None
        assert np.array_equal(report.match, acl_small_oracle)
        assert report.fault.ingest_retries == 1

    def test_stream_ingest_fault_fail_policy(
        self, acl_small, acl_small_trace
    ):
        config = EngineConfig(backend="linear", chunk_size=CHUNK)
        with Engine.open(config, acl_small) as engine:
            with pytest.raises(IngestError):
                engine.classify_stream(
                    iter_trace_segments(acl_small_trace, 768),
                    faults=[FaultSpec(kind="ingest", segment=1)],
                )

    def test_config_policy_round_trips_to_pipeline(self, acl_small):
        config = EngineConfig(
            backend="linear", fault_policy="degrade", max_retries=5,
            chunk_timeout_s=1.5,
        )
        with Engine.open(config, acl_small) as engine:
            policy = engine.pipeline.policy
        assert policy.fault_policy == "degrade"
        assert policy.max_retries == 5
        assert policy.chunk_timeout_s == 1.5


# ---------------------------------------------------------------------------
# Ingestion quarantine
# ---------------------------------------------------------------------------
BAD_TRACE = """\
1 2 3 4 5 -1
# a comment line
10 20 30 40 50 -1
7 8 9
10 20 oops 40 50
-3 2 3 4 5

99999999999 2 3 4 5
6 7 8 9 10 -1
"""


class TestQuarantine:
    GOOD_ROWS = [[1, 2, 3, 4, 5], [10, 20, 30, 40, 50], [6, 7, 8, 9, 10]]
    BAD = [
        (4, "expected >= 5 columns, got 3"),
        (5, "non-numeric header field"),
        (6, "negative header field"),
        (8, "header field out of 32-bit range"),
    ]

    def test_quarantine_keeps_good_rows_in_order(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text(BAD_TRACE)
        log = QuarantineLog()
        segments = list(iter_trace_file(
            str(path), segment_packets=4, on_malformed="quarantine",
            quarantine=log,
        ))
        headers = np.concatenate([s.headers for s in segments])
        assert headers.tolist() == self.GOOD_ROWS
        assert log.count == len(self.BAD)
        assert [(e[0], e[2]) for e in log.entries] == self.BAD
        assert log.dropped == 0

    def test_raise_mode_unchanged(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text(BAD_TRACE)
        with pytest.raises(PacketFormatError):
            list(iter_trace_file(str(path), segment_packets=4))

    def test_bounded_buffer_overflow_counts(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text(BAD_TRACE)
        log = QuarantineLog(max_entries=2)
        list(iter_trace_file(
            str(path), segment_packets=4, on_malformed="quarantine",
            quarantine=log,
        ))
        assert log.count == len(self.BAD)
        assert len(log.entries) == 2
        assert log.dropped == 2
        assert log.to_dict()["dropped"] == 2

    def test_engine_counts_quarantined_packets(self, tmp_path, acl_small):
        path = tmp_path / "trace.txt"
        path.write_text(BAD_TRACE)
        config = EngineConfig(
            backend="linear", chunk_size=CHUNK, on_malformed="quarantine",
        )
        with Engine.open(config, acl_small) as engine:
            assert isinstance(engine.quarantine, QuarantineLog)
            report = engine.classify_stream(iter_trace_file(
                str(path), segment_packets=4, on_malformed="quarantine",
                quarantine=engine.quarantine,
            ))
            assert engine.last_stream_fault.quarantined == len(self.BAD)
        assert report.n_packets == len(self.GOOD_ROWS)
        assert report.fault.quarantined == len(self.BAD)

    def test_invalid_policy_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("1 2 3 4 5\n")
        with pytest.raises(ConfigError):
            list(iter_trace_file(str(path), on_malformed="drop"))


# ---------------------------------------------------------------------------
# Typed errors and plan plumbing
# ---------------------------------------------------------------------------
class TestErrorAndPlanPlumbing:
    def test_serving_fault_errors_survive_pickling(self):
        for exc in (
            WorkerCrashError("w", shard=7, chunk=3, cause="exit:70"),
            ServingFaultError("s", tier="threads", chunk=1),
            InjectedFault("i", kind="error", chunk=2, shard=1),
            IngestError("g", segment=4, cause="io"),
        ):
            clone = pickle.loads(pickle.dumps(exc))
            assert type(clone) is type(exc)
            assert str(clone) == str(exc)
            for attr in ("shard", "chunk", "tier", "segment", "kind"):
                assert getattr(clone, attr, None) == getattr(exc, attr, None)

    def test_plan_round_trips_json(self, tmp_path):
        plan = FaultPlan(
            (
                FaultSpec(kind="crash", chunk=1),
                FaultSpec(kind="hang", chunk=2, seconds=0.5, times=2),
                FaultSpec(kind="ingest", segment=3),
            ),
            seed=9,
        )
        path = tmp_path / "plan.json"
        plan.save(str(path))
        assert FaultPlan.load(str(path)) == plan
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert FaultPlan.coerce(str(path)) == plan
        assert FaultPlan.coerce(list(plan.specs)) == FaultPlan(plan.specs)
        assert FaultPlan.coerce(None) is None

    def test_bad_specs_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="meteor")
        with pytest.raises(ConfigError):
            FaultSpec(kind="crash", times=0)
        with pytest.raises(ConfigError):
            FaultPlan.from_dict({"specs": [{"kind": "crash", "zap": 1}]})
        with pytest.raises(ConfigError):
            FaultPlan.coerce(object())

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            SupervisionPolicy(fault_policy="panic")
        with pytest.raises(ConfigError):
            SupervisionPolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            SupervisionPolicy(chunk_timeout_s=-0.1)

    def test_backoff_is_deterministic_and_bounded(self):
        from repro.engine import Supervisor

        a = Supervisor(SupervisionPolicy(seed=3))
        b = Supervisor(SupervisionPolicy(seed=3))
        seq_a = [a.backoff_s(i) for i in range(5)]
        seq_b = [b.backoff_s(i) for i in range(5)]
        assert seq_a == seq_b  # seeded jitter
        assert all(s <= a.policy.backoff_max_s for s in seq_a)
        assert seq_a[1] > seq_a[0] * 0.9  # roughly exponential


# ---------------------------------------------------------------------------
# Hypothesis: fault placement never breaks bit-identity under retry
# ---------------------------------------------------------------------------
class TestFaultFuzz:
    @settings(max_examples=12, deadline=None)
    @given(
        chunk=st.integers(min_value=0, max_value=7),
        kind=st.sampled_from(["crash", "error"]),
        times=st.integers(min_value=1, max_value=2),
    )
    def test_thread_tier_any_placement(
        self, chunk, kind, times, acl_small, acl_small_trace,
        acl_small_oracle,
    ):
        policy = retry_policy(max_retries=3)
        with make_pipeline(
            acl_small, policy=policy, shard_mode="threads"
        ) as pipe:
            res = pipe.run(
                acl_small_trace,
                faults=[FaultSpec(kind=kind, chunk=chunk, times=times)],
            )
        assert np.array_equal(res.match, acl_small_oracle)
        assert res.fault.retries >= 1

    @settings(max_examples=8, deadline=None)
    @given(
        chunk=st.integers(min_value=0, max_value=7),
        policy=st.sampled_from(["retry", "degrade"]),
    )
    def test_inline_tier_any_placement(
        self, chunk, policy, acl_small, acl_small_trace, acl_small_oracle
    ):
        with make_pipeline(
            acl_small, policy=retry_policy(policy), shards=1
        ) as pipe:
            res = pipe.run(
                acl_small_trace, faults=[FaultSpec(kind="error", chunk=chunk)]
            )
        assert np.array_equal(res.match, acl_small_oracle)
        assert res.fault.retries >= 1


# ---------------------------------------------------------------------------
# Multi-tenant chaos: one tenant's faults never touch another's bytes
# ---------------------------------------------------------------------------
class TestMultiTenantChaos:
    """Two-tenant fleets where every injected fault lands on tenant A
    ("chaotic"); tenant B ("quiet") must finish byte-for-byte identical
    to a private single-tenant session, whatever A's policy does."""

    QUIET_CONFIG = EngineConfig(backend="linear", chunk_size=CHUNK)

    def _fleet(self, acl_small, fw_small, config_a):
        tenants = [
            (TenantSpec("chaotic", config_a), acl_small),
            (TenantSpec("quiet", self.QUIET_CONFIG), fw_small),
        ]
        return tenants

    @pytest.fixture(scope="class")
    def quiet_trace(self, fw_small):
        return generate_trace(fw_small, 1500, seed=211)

    @pytest.fixture(scope="class")
    def quiet_oracle(self, fw_small, quiet_trace):
        with Engine.open(self.QUIET_CONFIG, fw_small) as engine:
            return engine.classify(quiet_trace).match

    @pytest.mark.parametrize("kind", ["crash", "arena"])
    def test_retrying_tenant_recovers_and_neighbour_is_untouched(
        self, kind, acl_small, fw_small, acl_small_trace, acl_small_oracle,
        quiet_trace, quiet_oracle,
    ):
        # Persistent pool: the arena transport is where arena faults
        # inject, and a crash there also exercises the pool lease.
        config_a = EngineConfig(
            backend="linear", chunk_size=CHUNK, shards=2,
            shard_mode="processes", fault_policy="retry",
            min_chunk_packets=0, persistent=True,
        )
        tenants = self._fleet(acl_small, fw_small, config_a)
        faults = {"chaotic": [FaultSpec(kind=kind, segment=1)]}
        with MultiTenantEngine.open(tenants) as mte:
            report = mte.serve(
                {"chaotic": acl_small_trace, "quiet": quiet_trace},
                faults=faults, segment_packets=2 * CHUNK,
            )
        by_name = {t.name: t for t in report.tenants}
        chaotic, quiet = by_name["chaotic"], by_name["quiet"]
        assert chaotic.fault is None  # its own retry policy recovered
        assert chaotic.report.fault.retries >= 1
        assert np.array_equal(chaotic.report.match, acl_small_oracle)
        assert quiet.fault is None
        assert quiet.report.fault is None or not quiet.report.fault.any()
        assert np.array_equal(quiet.report.match, quiet_oracle)

    def test_hanging_tenant_trips_deadline_not_the_fleet(
        self, acl_small, fw_small, acl_small_trace, acl_small_oracle,
        quiet_trace, quiet_oracle,
    ):
        config_a = EngineConfig(
            backend="linear", chunk_size=CHUNK, shards=2,
            shard_mode="processes", fault_policy="retry",
            chunk_timeout_s=0.5, min_chunk_packets=0,
        )
        tenants = self._fleet(acl_small, fw_small, config_a)
        faults = {
            "chaotic": [
                FaultSpec(kind="hang", segment=1, chunk=1, seconds=30.0)
            ]
        }
        with MultiTenantEngine.open(tenants) as mte:
            report = mte.serve(
                {"chaotic": acl_small_trace, "quiet": quiet_trace},
                faults=faults, segment_packets=2 * CHUNK,
            )
        by_name = {t.name: t for t in report.tenants}
        assert by_name["chaotic"].report.fault.timeouts == 1
        assert np.array_equal(
            by_name["chaotic"].report.match, acl_small_oracle
        )
        assert np.array_equal(by_name["quiet"].report.match, quiet_oracle)

    def test_fail_policy_quarantines_tenant_only(
        self, acl_small, fw_small, acl_small_trace, quiet_trace,
        quiet_oracle,
    ):
        # Default fail posture: the first crash is terminal for the
        # tenant (quarantined, out of the rotation) but never for the
        # session — the quiet tenant's bytes don't move.
        config_a = EngineConfig(
            backend="linear", chunk_size=CHUNK, shards=2,
            shard_mode="processes", min_chunk_packets=0,
        )
        tenants = self._fleet(acl_small, fw_small, config_a)
        faults = {"chaotic": [FaultSpec(kind="crash", chunk=0, segment=1)]}
        with MultiTenantEngine.open(tenants) as mte:
            report = mte.serve(
                {"chaotic": acl_small_trace, "quiet": quiet_trace},
                faults=faults, segment_packets=2 * CHUNK,
            )
        by_name = {t.name: t for t in report.tenants}
        chaotic, quiet = by_name["chaotic"], by_name["quiet"]
        assert chaotic.fault is not None
        assert "ServingFaultError" in chaotic.fault
        # It served segment 0 before the injected crash cut it off.
        assert 0 < chaotic.n_packets < acl_small_trace.n_packets
        assert quiet.fault is None
        assert quiet.n_packets == quiet_trace.n_packets
        assert np.array_equal(quiet.report.match, quiet_oracle)
