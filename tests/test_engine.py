"""Cross-backend conformance suite for the unified classifier engine.

Every backend in the registry is built on shared ClassBench rulesets and
must agree packet-for-packet with the linear-search oracle — the one
semantic contract the whole library hangs off.  Edge cases (empty trace,
single-rule ruleset) and the registry API itself are covered here too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import FIVE_TUPLE, PacketTrace, Rule, RuleSet
from repro.core.errors import ConfigError
from repro.engine import (
    available_backends,
    backend_spec,
    batch_stats_of,
    build_backend,
    register_backend,
)

ALL_BACKENDS = available_backends()


@pytest.fixture(scope="module", params=ALL_BACKENDS)
def backend_on_acl_small(request, acl_small):
    """Each registered backend built once on the shared 150-rule set."""
    return request.param, build_backend(request.param, acl_small)


@pytest.fixture(scope="module")
def single_rule_set() -> RuleSet:
    rule = Rule(
        ranges=(
            (0x0A000000, 0x0AFFFFFF),  # 10.0.0.0/8
            (0xC0A80000, 0xC0A8FFFF),  # 192.168.0.0/16
            (0, 0xFFFF),
            (80, 80),
            (6, 6),
        ),
        priority=0,
        action=0,
    )
    return RuleSet([rule], FIVE_TUPLE, "single")


def empty_trace() -> PacketTrace:
    return PacketTrace(np.empty((0, 5), dtype=np.uint32), FIVE_TUPLE)


class TestRegistry:
    def test_at_least_six_backends(self):
        assert len(ALL_BACKENDS) >= 6

    def test_expected_names_present(self):
        for name in ("linear", "rfc", "tuple_space", "hicuts", "hypercuts",
                     "incremental", "tcam", "accelerator"):
            assert name in ALL_BACKENDS

    def test_aliases_resolve(self):
        assert backend_spec("tss").name == "tuple_space"
        assert backend_spec("hw").name == "accelerator"

    def test_unknown_backend_raises(self, acl_small):
        with pytest.raises(ConfigError, match="unknown backend"):
            build_backend("no-such-engine", acl_small)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_backend("linear", lambda rs: None)

    def test_alias_conflict_leaves_registry_unchanged(self):
        from repro.engine import registered_aliases

        before = available_backends()
        with pytest.raises(ConfigError, match="alias 'tss'"):
            register_backend("brand-new", lambda rs: None, aliases=("tss",))
        assert available_backends() == before
        assert "brand-new" not in registered_aliases().values()

    def test_tree_flag(self):
        assert backend_spec("hicuts").builds_tree
        assert backend_spec("hypercuts").builds_tree
        assert not backend_spec("rfc").builds_tree


class TestConformance:
    def test_trace_agrees_with_oracle(
        self, backend_on_acl_small, acl_small_trace, acl_small_oracle
    ):
        name, clf = backend_on_acl_small
        got = clf.classify_trace(acl_small_trace)
        assert np.array_equal(got, acl_small_oracle), name

    def test_batch_agrees_with_oracle(
        self, backend_on_acl_small, acl_small_trace, acl_small_oracle
    ):
        name, clf = backend_on_acl_small
        got = clf.classify_batch(acl_small_trace.headers)
        assert np.array_equal(got, acl_small_oracle), name

    def test_scalar_agrees_with_batch(
        self, backend_on_acl_small, acl_small_trace
    ):
        name, clf = backend_on_acl_small
        headers = acl_small_trace.headers[:25]
        batch = clf.classify_batch(headers)
        for i, row in enumerate(headers):
            assert clf.classify(row) == batch[i], name

    def test_empty_trace(self, backend_on_acl_small):
        name, clf = backend_on_acl_small
        got = clf.classify_trace(empty_trace())
        assert got.shape == (0,), name

    def test_stats_hooks(self, backend_on_acl_small):
        name, clf = backend_on_acl_small
        assert clf.memory_bytes() > 0, name
        assert clf.memory_accesses_per_lookup() >= 1, name


class TestSingleRule:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_single_rule_match_and_miss(self, name, single_rule_set):
        clf = build_backend(name, single_rule_set)
        hit = (0x0A010203, 0xC0A80101, 1234, 80, 6)
        miss_port = (0x0A010203, 0xC0A80101, 1234, 443, 6)
        miss_ip = (0x0B010203, 0xC0A80101, 1234, 80, 6)
        trace = PacketTrace(
            np.asarray([hit, miss_port, miss_ip], dtype=np.uint32), FIVE_TUPLE
        )
        assert clf.classify_trace(trace).tolist() == [0, -1, -1], name
        assert clf.classify(hit) == 0, name


class TestBatchStats:
    def test_accelerator_reports_occupancy(self, acl_small, acl_small_trace):
        clf = build_backend("accelerator", acl_small)
        stats = batch_stats_of(clf, acl_small_trace.headers)
        assert stats.occupancy is not None
        assert stats.occupancy.shape == stats.match.shape
        assert int(stats.occupancy.min()) >= 1

    def test_plain_backend_has_no_occupancy(self, acl_small, acl_small_trace):
        clf = build_backend("linear", acl_small)
        stats = batch_stats_of(clf, acl_small_trace.headers)
        assert stats.occupancy is None
        assert stats.n_packets == acl_small_trace.n_packets


class TestTupleSpaceVectorised:
    """The scalar path is the oracle for the new NumPy batch path."""

    def test_batch_matches_scalar(self, acl_small, acl_small_trace):
        clf = build_backend("tuple_space", acl_small)
        headers = acl_small_trace.headers[:400]
        scalar = np.asarray([clf.classify(row) for row in headers])
        assert np.array_equal(clf.classify_batch(headers), scalar)

    def test_batch_matches_scalar_fw(self, fw_small):
        from repro import generate_trace

        clf = build_backend("tss", fw_small)
        trace = generate_trace(fw_small, 300, seed=11)
        scalar = np.asarray([clf.classify(row) for row in trace.headers])
        assert np.array_equal(clf.classify_batch(trace.headers), scalar)
