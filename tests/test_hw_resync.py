"""Tests for incremental `MemoryImage` re-sync (repro.hw.resync).

The contract under test: after an in-place update batch on an
incremental tree, :func:`resync_memory_image` must leave the image
byte-identical to a from-scratch build of the same tree while issuing
far fewer write-port transactions than the full re-encode — the
word-write count *is* the paper's hardware update cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import generate_ruleset, generate_trace
from repro.algorithms.incremental import IncrementalClassifier
from repro.core.errors import CapacityError
from repro.core.updates import insert_op, remove_op
from repro.hw import Accelerator, build_memory_image, resync_memory_image


@pytest.fixture()
def inc():
    # binth=8 keeps the tree deep enough that the image spans >100
    # words — small batches must then touch only a corner of it.
    rs = generate_ruleset("acl1", 1000, seed=91)
    return IncrementalClassifier(rs, algorithm="hicuts", binth=8, spfac=4)


@pytest.fixture()
def new_rules():
    return list(generate_ruleset("acl1", 60, seed=92).rules)


def assert_matches_scratch(image):
    """The resynced image must be byte-identical to a scratch build."""
    fresh = build_memory_image(image.tree, image.speed)
    assert image.memory.words_used == fresh.memory.words_used
    assert image.memory.to_bytes() == fresh.memory.to_bytes()
    assert image.root_wrapped == fresh.root_wrapped
    assert image.n_internal_words == fresh.n_internal_words
    assert image.n_leaf_words == fresh.n_leaf_words


class TestIncrementalResync:
    def test_small_batch_rewrites_far_fewer_words(self, inc, new_rules):
        image = build_memory_image(inc.tree, speed=1)
        full_writes = image.memory.writes
        inc.apply_updates(
            [remove_op(3), remove_op(7), insert_op(new_rules[0])]
        )
        stats = resync_memory_image(image, inc.last_touched)
        assert not stats.full_rebuild
        # The whole point: a 3-op batch must not re-encode the array.
        assert 0 < stats.words_rewritten <= full_writes // 5
        assert stats.words_rewritten == (
            stats.internal_rewritten + stats.leaf_words_rewritten
        )
        assert stats.total_words == image.memory.words_used

    def test_resync_is_byte_identical_to_scratch_build(self, inc, new_rules):
        image = build_memory_image(inc.tree, speed=1)
        inc.apply_updates(
            [insert_op(r) for r in new_rules[:5]] + [remove_op(11)]
        )
        resync_memory_image(image, inc.last_touched)
        assert_matches_scratch(image)

    def test_fresh_accelerator_serves_updated_ruleset(self, inc, new_rules):
        image = build_memory_image(inc.tree, speed=1)
        inc.apply_updates(
            [remove_op(i) for i in range(0, 20, 4)]
            + [insert_op(r) for r in new_rules[:3]]
        )
        resync_memory_image(image, inc.last_touched)
        trace = generate_trace(
            inc.live_ruleset(), 1500, seed=93, background_fraction=0.2
        )
        # A fresh accelerator (resync mutates the image in place; the
        # Accelerator caches placement arrays at construction).
        got = Accelerator(image).run_trace(trace).match
        assert np.array_equal(got, inc.classify_trace(trace))

    def test_repeated_batches_stay_consistent(self, inc, new_rules):
        # Small batches that fit in existing leaves: across several of
        # them the cumulative write-port cost must stay below one full
        # re-encode (a leaf *split* legitimately renumbers the BFS
        # layout and approaches a rebuild — that is the expensive case,
        # not this one).
        image = build_memory_image(inc.tree, speed=1)
        rewritten = []
        for start in range(0, 12, 4):
            inc.apply_updates(
                [insert_op(r) for r in new_rules[start:start + 2]]
                + [remove_op(start), remove_op(start + 1)]
            )
            stats = resync_memory_image(image, inc.last_touched)
            rewritten.append(stats.words_rewritten)
            assert_matches_scratch(image)
        full = build_memory_image(inc.tree, speed=1).memory.writes
        assert sum(rewritten) < full  # three batches < one re-encode

    def test_root_flip_falls_back_to_full_rebuild(self, new_rules):
        rs = generate_ruleset("acl1", 8, seed=94)
        inc = IncrementalClassifier(rs, algorithm="hicuts", binth=30, spfac=4)
        image = build_memory_image(inc.tree, speed=1)
        assert image.root_wrapped  # <= binth rules: a wrapped leaf root
        inc.apply_updates([insert_op(r) for r in new_rules])
        stats = resync_memory_image(image, inc.last_touched)
        assert stats.full_rebuild
        assert not image.root_wrapped
        assert_matches_scratch(image)
        trace = generate_trace(
            inc.live_ruleset(), 800, seed=95, background_fraction=0.2
        )
        got = Accelerator(image).run_trace(trace).match
        assert np.array_equal(got, inc.classify_trace(trace))

    def test_growth_beyond_capacity_raises(self, inc, new_rules):
        image = build_memory_image(inc.tree, speed=1)
        tight = build_memory_image(
            inc.tree, speed=1, capacity_words=image.memory.words_used
        )
        inc.apply_updates([insert_op(r) for r in new_rules])
        with pytest.raises(CapacityError, match="words"):
            resync_memory_image(tight, inc.last_touched)

    def test_noop_batch_rewrites_nothing_new(self, inc):
        image = build_memory_image(inc.tree, speed=1)
        before = image.memory.to_bytes()
        stats = resync_memory_image(image, set())
        assert stats.words_rewritten == 0
        assert stats.words_discarded == 0
        assert image.memory.to_bytes() == before
