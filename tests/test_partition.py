"""Tests for the vectorised partition kernels (_partition.py).

Each kernel is checked against a brute-force reference implementation and
with hypothesis over random rule interval sets.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms._partition import (
    all_rules_identical_in_region,
    assign_children,
    child_counts_1d,
    clipped_bounds,
    coord_spans,
    eliminate_redundant,
    max_count_grid,
    refs_and_max_1d,
    refs_multi,
)
from repro.core.geometry import child_index
from repro.core.rules import DEMO_SCHEMA, Rule, RuleArrays


def brute_counts(rlo, rhi, lo, hi, ncuts):
    """Reference per-child counts by scanning every value."""
    counts = np.zeros(ncuts, dtype=np.int64)
    for a, b in zip(rlo, rhi):
        hit = set()
        for v in range(max(a, lo), min(b, hi) + 1):
            hit.add(child_index(int(v), lo, hi, ncuts))
        for j in hit:
            counts[j] += 1
    return counts


intervals = st.lists(
    st.tuples(st.integers(0, 63), st.integers(0, 63)).map(
        lambda t: (min(t), max(t))
    ),
    min_size=1,
    max_size=20,
)


class TestCoordSpans:
    @given(intervals, st.integers(1, 16))
    @settings(max_examples=60)
    def test_against_brute_force(self, rules, ncuts):
        lo, hi = 0, 63
        rlo = np.array([a for a, _ in rules], dtype=np.int64)
        rhi = np.array([b for _, b in rules], dtype=np.int64)
        first, last = coord_spans(rlo, rhi, lo, hi, ncuts)
        ref = brute_counts(rlo, rhi, lo, hi, ncuts)
        got = child_counts_1d(first, last, ncuts)
        assert np.array_equal(got, ref)

    def test_clipping(self):
        rlo = np.array([0], dtype=np.int64)
        rhi = np.array([255], dtype=np.int64)
        first, last = coord_spans(rlo, rhi, 64, 127, 4)
        assert first[0] == 0 and last[0] == 3

    def test_refs_and_max(self):
        rlo = np.array([0, 10, 0], dtype=np.int64)
        rhi = np.array([15, 11, 3], dtype=np.int64)
        first, last = coord_spans(rlo, rhi, 0, 15, 4)
        refs, maxc = refs_and_max_1d(first, last, 4)
        # rule0 spans all 4, rule1 child 2, rule2 child 0.
        assert refs == 6
        assert maxc == 2


class TestMaxCountGrid:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 7), st.integers(0, 7),
                st.integers(0, 7), st.integers(0, 7),
            ),
            min_size=1,
            max_size=15,
        ),
        st.integers(1, 3),
        st.integers(1, 3),
    )
    @settings(max_examples=60)
    def test_against_brute_force(self, boxes, e0, e1):
        c0, c1 = 1 << e0, 1 << e1
        f0 = np.array([min(a, b) * c0 // 8 for a, b, _, _ in boxes])
        l0 = np.array([max(a, b) * c0 // 8 for a, b, _, _ in boxes])
        f1 = np.array([min(c, d) * c1 // 8 for _, _, c, d in boxes])
        l1 = np.array([max(c, d) * c1 // 8 for _, _, c, d in boxes])
        grid = np.zeros((c0, c1), dtype=np.int64)
        for i in range(len(boxes)):
            grid[f0[i] : l0[i] + 1, f1[i] : l1[i] + 1] += 1
        assert max_count_grid([f0, f1], [l0, l1], (c0, c1)) == grid.max()

    def test_refs_multi(self):
        firsts = [np.array([0, 1]), np.array([0, 0])]
        lasts = [np.array([1, 1]), np.array([2, 0])]
        # rule0: 2 x 3 children, rule1: 1 x 1.
        assert refs_multi(firsts, lasts) == 7


class TestAssignChildren:
    def test_one_dim(self):
        ids = np.array([5, 9, 11], dtype=np.int64)
        firsts = [np.array([0, 1, 0], dtype=np.int64)]
        lasts = [np.array([1, 1, 0], dtype=np.int64)]
        out = assign_children(ids, firsts, lasts, (2,))
        assert list(out[0]) == [5, 11]
        assert list(out[1]) == [5, 9]

    def test_priority_order_preserved(self):
        rng = np.random.default_rng(0)
        n = 200
        ids = np.sort(rng.choice(10_000, size=n, replace=False)).astype(np.int64)
        f = rng.integers(0, 4, size=n)
        last = f + rng.integers(0, 4 - f)
        out = assign_children(ids, [f], [last], (4,))
        for child in out:
            assert np.all(np.diff(child) > 0)  # still ascending

    def test_two_dims_row_major(self):
        ids = np.array([3], dtype=np.int64)
        firsts = [np.array([1]), np.array([0])]
        lasts = [np.array([1]), np.array([1])]
        out = assign_children(ids, firsts, lasts, (2, 2))
        # child (1,0) -> flat 2, child (1,1) -> flat 3.
        assert [len(c) for c in out] == [0, 0, 1, 1]

    def test_empty_input(self):
        out = assign_children(
            np.empty(0, dtype=np.int64), [np.empty(0)], [np.empty(0)], (4,)
        )
        assert len(out) == 4 and all(len(c) == 0 for c in out)

    @given(
        st.lists(
            st.tuples(st.integers(0, 31), st.integers(0, 31)),
            min_size=1, max_size=12,
        ),
        st.integers(1, 3),
    )
    @settings(max_examples=40)
    def test_assignment_matches_spans(self, rules, exp):
        ncuts = 1 << exp
        rlo = np.array([min(t) for t in rules], dtype=np.int64)
        rhi = np.array([max(t) for t in rules], dtype=np.int64)
        ids = np.arange(len(rules), dtype=np.int64)
        f, l = coord_spans(rlo, rhi, 0, 31, ncuts)
        out = assign_children(ids, [f], [l], (ncuts,))
        for j, child in enumerate(out):
            for i in ids:
                should = f[i] <= j <= l[i]
                assert (i in child) == should


class TestEliminateRedundant:
    def _arrays(self, ranges_list):
        rules = [
            Rule(ranges=tuple(r), priority=i) for i, r in enumerate(ranges_list)
        ]
        return RuleArrays(rules, DEMO_SCHEMA)

    def test_shadowed_rule_removed(self):
        full = ((0, 255),) * 5
        arr = self._arrays([full, full])
        kept = eliminate_redundant(arr, np.array([0, 1]), DEMO_SCHEMA.universe())
        assert list(kept) == [0]

    def test_partial_overlap_kept(self):
        a = ((0, 100),) + ((0, 255),) * 4
        b = ((50, 200),) + ((0, 255),) * 4
        arr = self._arrays([a, b])
        kept = eliminate_redundant(arr, np.array([0, 1]), DEMO_SCHEMA.universe())
        assert list(kept) == [0, 1]

    def test_region_clipping_enables_removal(self):
        # b is wider than a globally, but inside the region a covers b.
        a = ((0, 100),) + ((0, 255),) * 4
        b = ((50, 200),) + ((0, 255),) * 4
        arr = self._arrays([a, b])
        region = ((50, 100),) + ((0, 255),) * 4
        kept = eliminate_redundant(arr, np.array([0, 1]), region)
        assert list(kept) == [0]

    def test_priority_direction(self):
        # The broader rule comes later: nothing is removable.
        narrow = ((10, 20),) + ((0, 255),) * 4
        broad = ((0, 255),) * 5
        arr = self._arrays([narrow, broad])
        kept = eliminate_redundant(arr, np.array([0, 1]), DEMO_SCHEMA.universe())
        assert list(kept) == [0, 1]

    @given(
        st.lists(
            st.tuples(st.integers(0, 31), st.integers(0, 31)),
            min_size=2, max_size=10,
        )
    )
    @settings(max_examples=40)
    def test_semantics_preserved(self, spans):
        """First-match results are identical before and after elimination."""
        ranges_list = [
            ((min(s), max(s)),) + ((0, 255),) * 4 for s in spans
        ]
        arr = self._arrays(ranges_list)
        ids = np.arange(len(spans), dtype=np.int64)
        kept = eliminate_redundant(arr, ids, DEMO_SCHEMA.universe())
        for v in range(32):
            want = next(
                (int(i) for i in ids if arr.lo[0, i] <= v <= arr.hi[0, i]), -1
            )
            got = next(
                (int(i) for i in kept if arr.lo[0, i] <= v <= arr.hi[0, i]), -1
            )
            assert got == want


class TestIdenticalInRegion:
    def test_identical(self):
        full = ((0, 255),) * 5
        rules = [Rule(ranges=full, priority=i) for i in range(3)]
        arr = RuleArrays(rules, DEMO_SCHEMA)
        assert all_rules_identical_in_region(
            arr, np.arange(3), DEMO_SCHEMA.universe()
        )

    def test_differs(self):
        a = ((0, 10),) + ((0, 255),) * 4
        b = ((0, 20),) + ((0, 255),) * 4
        rules = [Rule(ranges=a, priority=0), Rule(ranges=b, priority=1)]
        arr = RuleArrays(rules, DEMO_SCHEMA)
        assert not all_rules_identical_in_region(
            arr, np.arange(2), DEMO_SCHEMA.universe()
        )
        # But inside a region where both clip to the same box, identical.
        region = ((0, 5),) + ((0, 255),) * 4
        assert all_rules_identical_in_region(arr, np.arange(2), region)

    def test_clipped_bounds(self):
        lo = np.array([0, 100], dtype=np.uint32)
        hi = np.array([255, 200], dtype=np.uint32)
        clo, chi = clipped_bounds(lo, hi, 50, 150)
        assert list(clo) == [50, 100]
        assert list(chi) == [150, 150]
