"""Tests for the ClassBench-style workload generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classbench import (
    ACL1,
    FAMILIES,
    FW1,
    IPC1,
    generate_ruleset,
    generate_trace,
    generate_zipf_trace,
    get_seed,
    paper_acl1_sizes,
    paper_table4_sizes,
    trace_locality,
)
from repro.core.errors import ConfigError
from repro.core.rules import FIVE_TUPLE


class TestSeeds:
    def test_registry(self):
        assert set(FAMILIES) == {"acl1", "fw1", "ipc1"}
        assert get_seed("acl1") is ACL1
        with pytest.raises(KeyError):
            get_seed("nope")

    def test_models_normalised(self):
        for model in (ACL1, FW1, IPC1):
            assert abs(sum(model.proto_weights.values()) - 1.0) < 0.2
            for pm in (model.src_port, model.dst_port):
                assert abs(sum(pm.class_weights.values()) - 1.0) < 1e-6


class TestGenerator:
    def test_exact_size_and_unique(self):
        rs = generate_ruleset("acl1", 500, seed=1)
        assert len(rs) == 500
        assert len({r.ranges for r in rs}) == 500

    def test_determinism(self):
        a = generate_ruleset("fw1", 300, seed=9)
        b = generate_ruleset("fw1", 300, seed=9)
        assert [r.ranges for r in a] == [r.ranges for r in b]

    def test_seed_changes_output(self):
        a = generate_ruleset("acl1", 200, seed=1)
        b = generate_ruleset("acl1", 200, seed=2)
        assert [r.ranges for r in a] != [r.ranges for r in b]

    def test_rules_are_valid_5tuple(self):
        rs = generate_ruleset("ipc1", 300, seed=3)
        for rule in rs:
            rule.validate(FIVE_TUPLE)
            # IPs must be prefix blocks (hardware-encodable).
            assert rule.is_prefix(0, FIVE_TUPLE)
            assert rule.is_prefix(1, FIVE_TUPLE)
            # Protocol exact or wildcard.
            lo, hi = rule.ranges[4]
            assert lo == hi or (lo, hi) == (0, 255)

    def test_specific_before_general(self):
        rs = generate_ruleset("fw1", 400, seed=5)
        vol = []
        for rule in rs:
            v = sum(float(np.log2(hi - lo + 1)) for lo, hi in rule.ranges)
            vol.append(v)
        assert vol == sorted(vol)

    def test_family_signatures(self):
        acl = generate_ruleset("acl1", 1500, seed=7)
        fw = generate_ruleset("fw1", 1500, seed=7)
        # Firewall sets wildcard the source IP more often than ACLs.
        assert fw.wildcard_fraction(0) > acl.wildcard_fraction(0)
        # ACL destinations are almost never wildcarded.
        assert acl.wildcard_fraction(1) < 0.05

    def test_default_rule(self):
        rs = generate_ruleset("acl1", 50, seed=1, add_default_rule=True)
        assert len(rs) == 51
        assert rs[len(rs) - 1].ranges == FIVE_TUPLE.universe()

    def test_bad_size(self):
        with pytest.raises(ConfigError):
            generate_ruleset("acl1", 0)

    def test_paper_grids(self):
        assert paper_acl1_sizes() == [60, 150, 500, 1000, 1600, 2191]
        assert paper_table4_sizes("fw1")[-1] == 23087


class TestTraceGenerator:
    def test_length_and_determinism(self, acl_small):
        a = generate_trace(acl_small, 1000, seed=2)
        b = generate_trace(acl_small, 1000, seed=2)
        assert a.n_packets == 1000
        assert np.array_equal(a.headers, b.headers)

    def test_headers_mostly_match_rules(self, acl_small):
        trace = generate_trace(acl_small, 2000, seed=3)
        matches = acl_small.classify_trace(trace)
        assert (matches >= 0).mean() > 0.95

    def test_burst_locality(self, acl_small):
        trace = generate_trace(acl_small, 5000, seed=4)
        assert trace_locality(trace) > 0.1  # Pareto bursts repeat headers

    def test_background_fraction_misses(self, acl_small):
        trace = generate_trace(
            acl_small, 2000, seed=5, background_fraction=0.5
        )
        matches = acl_small.classify_trace(trace)
        # Uniform random 5-tuples almost never match a 150-rule ACL.
        assert (matches < 0).mean() > 0.2

    def test_bad_params(self, acl_small):
        with pytest.raises(ConfigError):
            generate_trace(acl_small, 0)
        with pytest.raises(ConfigError):
            generate_trace(acl_small, 10, background_fraction=1.5)

    def test_corner_bias_hits_rule_low_corner(self, acl_small):
        trace = generate_trace(acl_small, 500, seed=6, corner_bias=1.0)
        arrays = acl_small.arrays
        matches = acl_small.classify_trace(trace)
        hit = matches >= 0
        assert hit.any()
        # With full corner bias every generated field equals some rule's
        # low corner; check source port of matched packets.
        lows = set(int(v) for v in arrays.lo[2])
        sports = set(int(v) for v in trace.headers[hit][:, 2])
        assert sports <= lows


class TestZipfTrace:
    def test_shape_and_reproducibility(self, acl_small):
        a = generate_zipf_trace(acl_small, 1500, n_flows=64, skew=1.0, seed=9)
        b = generate_zipf_trace(acl_small, 1500, n_flows=64, skew=1.0, seed=9)
        assert a.headers.shape == (1500, 5)
        assert np.array_equal(a.headers, b.headers)
        c = generate_zipf_trace(acl_small, 1500, n_flows=64, skew=1.0, seed=10)
        assert not np.array_equal(a.headers, c.headers)

    def test_flow_pool_bounds_distinct_headers(self, acl_small):
        trace = generate_zipf_trace(
            acl_small, 3000, n_flows=32, skew=1.0, seed=11
        )
        distinct = np.unique(trace.headers, axis=0)
        assert len(distinct) <= 32

    def test_skew_concentrates_popularity(self, acl_small):
        def top_share(skew):
            trace = generate_zipf_trace(
                acl_small, 4000, n_flows=256, skew=skew, seed=12
            )
            _, counts = np.unique(trace.headers, axis=0, return_counts=True)
            return counts.max() / counts.sum()

        # Zipf(1.2) piles far more traffic onto the hottest flow than a
        # uniform (skew=0) draw over the same flow pool.
        assert top_share(1.2) > 3 * top_share(0.0)

    def test_headers_mostly_match_rules(self, acl_small):
        trace = generate_zipf_trace(
            acl_small, 1000, n_flows=64, skew=1.0, seed=13
        )
        matches = acl_small.classify_trace(trace)
        assert (matches >= 0).mean() > 0.8  # headers sampled from rules

    def test_bad_params(self, acl_small):
        with pytest.raises(ConfigError):
            generate_zipf_trace(acl_small, 0)
        with pytest.raises(ConfigError):
            generate_zipf_trace(acl_small, 10, n_flows=0)
        with pytest.raises(ConfigError):
            generate_zipf_trace(acl_small, 10, skew=-0.5)
