"""Shared fixtures: small rulesets, traces, and built structures.

Heavy artefacts are session-scoped so the suite stays fast; tests that
mutate state build their own objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DEMO_SCHEMA, RuleSet, generate_ruleset, generate_trace, make_demo_ruleset
from repro.algorithms import LinearSearchClassifier, build_hicuts, build_hypercuts
from repro.hw import build_memory_image


@pytest.fixture(scope="session")
def demo_ruleset() -> RuleSet:
    """The paper's Table 1 ruleset (10 rules, five 8-bit fields)."""
    return RuleSet(make_demo_ruleset(), DEMO_SCHEMA, "table1")


@pytest.fixture(scope="session")
def acl_small() -> RuleSet:
    return generate_ruleset("acl1", 150, seed=101)


@pytest.fixture(scope="session")
def acl_medium() -> RuleSet:
    return generate_ruleset("acl1", 1000, seed=102)


@pytest.fixture(scope="session")
def fw_small() -> RuleSet:
    return generate_ruleset("fw1", 300, seed=103)


@pytest.fixture(scope="session")
def ipc_small() -> RuleSet:
    return generate_ruleset("ipc1", 300, seed=104)


@pytest.fixture(scope="session")
def acl_small_trace(acl_small):
    return generate_trace(acl_small, 2000, seed=201, background_fraction=0.1)


@pytest.fixture(scope="session")
def acl_medium_trace(acl_medium):
    return generate_trace(acl_medium, 5000, seed=202, background_fraction=0.05)


@pytest.fixture(scope="session")
def acl_small_oracle(acl_small, acl_small_trace):
    return LinearSearchClassifier(acl_small).classify_trace(acl_small_trace)


@pytest.fixture(scope="session")
def acl_medium_oracle(acl_medium, acl_medium_trace):
    return LinearSearchClassifier(acl_medium).classify_trace(acl_medium_trace)


@pytest.fixture(scope="session")
def hw_tree_small(acl_small):
    return build_hicuts(acl_small, binth=30, spfac=4, hw_mode=True)


@pytest.fixture(scope="session")
def hw_image_small(hw_tree_small):
    return build_memory_image(hw_tree_small, speed=1)


@pytest.fixture(scope="session")
def hw_hyper_tree_small(acl_small):
    return build_hypercuts(acl_small, binth=30, spfac=4, hw_mode=True)


@pytest.fixture(scope="session")
def hw_hyper_image_small(hw_hyper_tree_small):
    return build_memory_image(hw_hyper_tree_small, speed=1)


def random_headers(schema, n, seed=0):
    """Uniform random headers for a schema (helper, not a fixture)."""
    rng = np.random.default_rng(seed)
    cols = [
        rng.integers(0, schema.max_value(d) + 1, size=n, dtype=np.uint32)
        for d in range(schema.ndim)
    ]
    return np.stack(cols, axis=1)
