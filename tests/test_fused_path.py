"""Fused cache->kernel hot-path conformance.

The fused serving path (:meth:`CachedClassifier._serve_batch` with a
backend ``fused_match`` hook) replaces probe-then-``classify_batch``
with one gather pipeline: vectorised cache probe, compacted miss set,
a single level-synchronous :meth:`FlatTree.batch_match` walk over the
misses only, scatter back, and a same-pass cache fill.  The contract is
**bit-identity**: at every shard count, shard mode, trace shape, and
update schedule, the fused path must produce exactly the matches *and*
exactly the cache counters of the unfused path on the same chunk grid
(fill order included — eviction state must not drift).

This suite pins that contract on a grid of backend x shards x shard
mode x trace locality, with and without live updates mid-stream, plus
the two degenerate dispatch shapes (empty miss set, all-miss batch) and
the kernel-level ``batch_match`` == ``batch_lookup.match`` identity
(before and after incremental patches).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import generate_zipf_trace
from repro.core.errors import ConfigError
from repro.core.updates import ScheduledUpdate, insert_op, remove_op
from repro.engine import (
    CachedClassifier,
    ClassificationPipeline,
    build_backend,
)
from repro.engine.updates import build_updatable_backend


@pytest.fixture(scope="module")
def zipf_small_trace(acl_small):
    return generate_zipf_trace(
        acl_small, 2000, n_flows=128, skew=1.0, seed=31
    )


def _make_cached(kind: str, ruleset, fused: bool) -> CachedClassifier:
    """One flow-cached serving object over a fresh backend build (fresh
    per call: update runs mutate the backend, so fused and unfused
    sides must not share one)."""
    if kind == "updatable":
        backend = build_updatable_backend("hypercuts", ruleset, binth=16)
    else:
        backend = build_backend(
            "hypercuts", ruleset, binth=16, hw_mode=False
        )
    return CachedClassifier(backend, entries=512, ways=4, fused=fused)


def _update_schedule(ruleset):
    """Two mid-stream batches: removals of live ids plus one insert."""
    donor = generate_zipf_trace  # noqa: F841 - keep import local & used
    extra = ruleset.rules[0]
    return [
        ScheduledUpdate(at_packet=800, batch=(remove_op(3), remove_op(7))),
        ScheduledUpdate(at_packet=1600, batch=(insert_op(extra),)),
    ]


# ---------------------------------------------------------------------------
# The conformance grid
# ---------------------------------------------------------------------------
class TestFusedUnfusedIdentity:
    @pytest.mark.parametrize("kind", ["tree", "updatable"])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("mode", ["processes", "threads"])
    @pytest.mark.parametrize("locality", ["random", "zipf"])
    def test_grid(
        self, kind, shards, mode, locality,
        acl_small, acl_small_trace, zipf_small_trace,
    ):
        trace = (
            zipf_small_trace if locality == "zipf" else acl_small_trace
        )
        updates = (
            _update_schedule(acl_small) if kind == "updatable" else None
        )
        results = []
        for fused in (False, True):
            pipeline = ClassificationPipeline(
                _make_cached(kind, acl_small, fused),
                chunk_size=256, shards=shards, shard_mode=mode,
            )
            results.append(pipeline.run(trace, updates=updates))
        want, got = results
        assert np.array_equal(want.match, got.match)
        # Same chunk grid + same mode => identical per-chunk counters:
        # the fused pass must fill the cache in the unfused order (set
        # index, way choice, eviction victims all equal).
        for a, b in zip(want.chunks, got.chunks):
            assert (a.cache_hits, a.cache_misses, a.cache_evictions) == (
                b.cache_hits, b.cache_misses, b.cache_evictions
            ), f"chunk {a.index} counters diverge"
            assert a.epoch == b.epoch
        if updates:
            assert got.final_epoch == want.final_epoch
            assert got.update_batches == len(updates)

    def test_fused_is_default_and_routes_through_engine(
        self, acl_small, acl_small_trace
    ):
        from repro.serve import Engine, EngineConfig

        config = EngineConfig(
            backend="hypercuts", software=True, cache_entries=512,
        )
        with Engine.open(config, acl_small) as engine:
            clf = engine.classifier
            assert isinstance(clf, CachedClassifier) and clf.fused
            assert callable(getattr(clf.classifier, "fused_match", None))
            report = engine.classify(acl_small_trace)
        want = _make_cached("tree", acl_small, fused=False).classify_trace(
            acl_small_trace
        )
        assert np.array_equal(report.match, want)

    def test_stream_with_updates_stays_identical(
        self, acl_small, acl_small_trace
    ):
        from repro.serve import Engine, EngineConfig, iter_trace_segments

        updates = _update_schedule(acl_small)
        reports = []
        for fused in (False, True):
            config = EngineConfig(
                backend="hypercuts", software=True, updatable=True,
                cache_entries=512, chunk_size=256, min_chunk_packets=0,
            )
            with Engine.open(config, acl_small) as engine:
                if not fused:
                    engine.classifier.fused = False
                reports.append(engine.classify_stream(
                    iter_trace_segments(acl_small_trace, 500),
                    updates=updates,
                ))
        want, got = reports
        assert np.array_equal(want.match, got.match)
        assert want.final_epoch == got.final_epoch


# ---------------------------------------------------------------------------
# Degenerate dispatch shapes
# ---------------------------------------------------------------------------
class TestFusedEdges:
    def test_empty_miss_set(self, acl_small, zipf_small_trace):
        # Second pass over a batch of few distinct flows (guaranteed to
        # fit the cache without set conflicts): every probe hits, the
        # fused walk runs over zero misses.
        flows = np.unique(zipf_small_trace.headers, axis=0)[:16]
        headers = np.ascontiguousarray(np.tile(flows, (8, 1)))
        clf = _make_cached("tree", acl_small, fused=True)
        first = clf.batch_stats(headers)
        again = clf.batch_stats(headers)
        assert np.array_equal(first.match, again.match)
        assert again.cache_misses == 0
        assert again.cache_hits == headers.shape[0]

    def test_all_miss_batch(self, acl_small, acl_small_trace):
        # Cold cache, sliced so every header is distinct: every packet
        # takes the fused walk, nothing hits.
        headers = np.unique(acl_small_trace.headers, axis=0)
        clf = _make_cached("tree", acl_small, fused=True)
        stats = clf.batch_stats(headers)
        want = _make_cached("tree", acl_small, fused=False).batch_stats(
            headers
        )
        assert np.array_equal(stats.match, want.match)
        assert stats.cache_hits == 0
        assert stats.cache_misses == headers.shape[0]

    def test_empty_batch(self, acl_small):
        clf = _make_cached("tree", acl_small, fused=True)
        stats = clf.batch_stats(
            np.empty((0, 5), dtype=np.uint32)
        )
        assert stats.match.size == 0

    def test_classify_fused_requires_hook(self, acl_small):
        bare = build_backend("linear", acl_small)
        clf = CachedClassifier(bare, entries=512, ways=4)
        with pytest.raises(ConfigError, match="fused"):
            clf.classify_fused(np.zeros((4, 5), dtype=np.uint32))

    def test_accelerator_backend_falls_back_unfused(
        self, acl_small, acl_small_trace
    ):
        # The accelerator models occupancy per packet, which the fused
        # match-only walk cannot produce — the cache wrapper must fall
        # back to the unfused path and keep the occupancy stream.
        accel = build_backend("accelerator", acl_small)
        clf = CachedClassifier(accel, entries=512, ways=4)
        assert getattr(accel, "fused_match", None) is None
        stats = clf.batch_stats(acl_small_trace.headers)
        want = accel.classify_trace(acl_small_trace)
        assert np.array_equal(stats.match, want)
        assert stats.occupancy is not None


# ---------------------------------------------------------------------------
# Kernel-level identity: batch_match vs batch_lookup
# ---------------------------------------------------------------------------
class TestBatchMatchKernel:
    @pytest.mark.parametrize("algorithm", ["hicuts", "hypercuts"])
    def test_matches_batch_lookup(
        self, algorithm, acl_small, acl_small_trace
    ):
        tree = build_backend(
            algorithm, acl_small, binth=16, hw_mode=False
        ).tree
        full = tree.flat.batch_lookup(acl_small_trace)
        lean = tree.flat.batch_match(acl_small_trace.headers)
        assert np.array_equal(full.match, lean)

    def test_empty_input(self, acl_small):
        tree = build_backend(
            "hypercuts", acl_small, binth=16, hw_mode=False
        ).tree
        out = tree.flat.batch_match(np.empty((0, 5), dtype=np.uint32))
        assert out.shape == (0,) and out.dtype == np.int64

    def test_identity_survives_patches(self, acl_small, acl_small_trace):
        from repro.algorithms.incremental import IncrementalClassifier

        inc = IncrementalClassifier(
            acl_small, algorithm="hypercuts", binth=16
        )
        inc.tree.flat  # initial compile
        for rule_id in (2, 9, 17):
            inc.remove(rule_id)
            full = inc.tree.flat.batch_lookup(acl_small_trace)
            lean = inc.tree.flat.batch_match(acl_small_trace.headers)
            assert np.array_equal(full.match, lean)
