"""End-to-end property-based tests: every classifier agrees with the
first-match linear-search oracle on randomly generated workloads.

These are the library's core invariant (DESIGN.md §5.1): HiCuts,
HyperCuts (both modes), RFC, TSS, TCAM and the hardware accelerator are
all just accelerated implementations of the same function.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import generate_ruleset, generate_trace
from repro.algorithms import (
    LinearSearchClassifier,
    TupleSpaceClassifier,
    build_hicuts,
    build_hypercuts,
)
from repro.algorithms.rfc import build_rfc
from repro.baselines import TcamClassifier
from repro.core.geometry import prefix_to_range
from repro.core.packet import PacketTrace
from repro.core.rules import FIVE_TUPLE, Rule
from repro.core.ruleset import RuleSet
from repro.hw import Accelerator, AcceleratorFSM, build_memory_image

# ---------------------------------------------------------------------------
# Strategies: random hardware-encodable 5-tuple rules and headers.
# ---------------------------------------------------------------------------
ip_prefix = st.tuples(st.integers(0, 2**32 - 1), st.integers(0, 32))
port_range = st.tuples(st.integers(0, 65535), st.integers(0, 65535)).map(
    lambda t: (min(t), max(t))
)
proto = st.one_of(st.just((0, 0)), st.integers(0, 255).map(lambda p: (p, 1)))


@st.composite
def rulesets(draw, min_rules=1, max_rules=24):
    n = draw(st.integers(min_rules, max_rules))
    rules = []
    for _ in range(n):
        rules.append(
            Rule.from_5tuple(
                draw(ip_prefix), draw(ip_prefix),
                draw(port_range), draw(port_range), draw(proto),
            )
        )
    return RuleSet(rules, FIVE_TUPLE)


@st.composite
def headers_for(draw, ruleset, n=24):
    """Headers biased toward rule corners plus uniform noise."""
    arrays = ruleset.arrays
    rows = []
    for _ in range(n):
        if draw(st.booleans()) and arrays.n:
            r = draw(st.integers(0, arrays.n - 1))
            row = []
            for d in range(5):
                lo, hi = int(arrays.lo[d, r]), int(arrays.hi[d, r])
                row.append(draw(st.sampled_from([lo, hi, (lo + hi) // 2])))
            rows.append(row)
        else:
            rows.append(
                [
                    draw(st.integers(0, 2**32 - 1)),
                    draw(st.integers(0, 2**32 - 1)),
                    draw(st.integers(0, 65535)),
                    draw(st.integers(0, 65535)),
                    draw(st.integers(0, 255)),
                ]
            )
    return PacketTrace(np.asarray(rows, dtype=np.uint32), FIVE_TUPLE)


common_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@common_settings
@given(data=st.data())
def test_decision_trees_match_oracle(data):
    rs = data.draw(rulesets())
    trace = data.draw(headers_for(rs))
    want = LinearSearchClassifier(rs).classify_trace(trace)
    for builder in (build_hicuts, build_hypercuts):
        for hw_mode in (False, True):
            tree = builder(
                rs, binth=4 if len(rs) > 4 else 2, spfac=2 if not hw_mode else 4,
                hw_mode=hw_mode,
            )
            got = tree.batch_lookup(trace).match
            assert np.array_equal(got, want), (
                f"{builder.__name__} hw={hw_mode} diverged from oracle"
            )


@common_settings
@given(data=st.data())
def test_hardware_pipeline_matches_oracle(data):
    """Full path: build -> encode -> FSM on raw words == oracle."""
    rs = data.draw(rulesets())
    trace = data.draw(headers_for(rs, n=16))
    want = LinearSearchClassifier(rs).classify_trace(trace)
    tree = build_hypercuts(rs, binth=6, spfac=4, hw_mode=True)
    speed = data.draw(st.sampled_from([0, 1]))
    img = build_memory_image(tree, speed=speed)
    run = Accelerator(img).run_trace(trace)
    recs = AcceleratorFSM(img).run(trace)
    assert np.array_equal(run.match, want)
    assert [r.match for r in recs] == list(want)
    assert [r.occupancy for r in recs] == list(run.occupancy)


@common_settings
@given(data=st.data())
def test_baselines_match_oracle(data):
    rs = data.draw(rulesets(max_rules=12))
    trace = data.draw(headers_for(rs, n=12))
    want = LinearSearchClassifier(rs).classify_trace(trace)
    assert np.array_equal(TcamClassifier(rs).classify_trace(trace), want)
    assert np.array_equal(
        TupleSpaceClassifier(rs).classify_trace(trace), want
    )
    rfc = build_rfc(rs)
    assert np.array_equal(rfc.classify_trace(trace), want)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    family=st.sampled_from(["acl1", "fw1", "ipc1"]),
    n=st.integers(20, 120),
    seed=st.integers(0, 1000),
)
def test_generated_workloads_end_to_end(family, n, seed):
    """Generator-driven end-to-end agreement on all classifier paths."""
    rs = generate_ruleset(family, n, seed=seed)
    trace = generate_trace(rs, 200, seed=seed + 1, background_fraction=0.25)
    want = LinearSearchClassifier(rs).classify_trace(trace)
    tree = build_hicuts(rs, binth=30, spfac=4, hw_mode=True)
    img = build_memory_image(tree, speed=1)
    assert np.array_equal(Accelerator(img).run_trace(trace).match, want)


@settings(max_examples=50, deadline=None)
@given(value=st.integers(0, 2**32 - 1), plen=st.integers(0, 32))
def test_prefix_grid_consistency(value, plen):
    """A prefix's grid footprint always contains its value range."""
    lo, hi = prefix_to_range(value, plen, 32)
    assert lo >> 24 <= (value >> 24) <= hi >> 24
