"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.ruleset import RuleSet


class TestGenerate:
    def test_generate_writes_files(self, tmp_path, capsys):
        rules_path = str(tmp_path / "rules.txt")
        trace_path = str(tmp_path / "trace.txt")
        rc = main([
            "generate", "--family", "acl1", "--rules", "80",
            "--seed", "3", "--output", rules_path,
            "--trace", trace_path, "--packets", "50",
        ])
        assert rc == 0
        rs = RuleSet.load(rules_path)
        assert len(rs) == 80
        out = capsys.readouterr().out
        assert "80 rules" in out and "50 packets" in out


class TestBuild:
    def test_build_hw(self, capsys):
        rc = main([
            "build", "--family", "acl1", "--rules", "120", "--seed", "3",
            "--algorithm", "hicuts",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "memory image" in out
        assert "worst-case cycles" in out

    def test_build_software(self, capsys):
        rc = main([
            "build", "--family", "acl1", "--rules", "120", "--seed", "3",
            "--software",
        ])
        assert rc == 0
        assert "software memory model" in capsys.readouterr().out

    def test_build_from_file(self, tmp_path, capsys):
        rules_path = str(tmp_path / "r.txt")
        main(["generate", "--rules", "60", "--output", rules_path])
        rc = main(["build", "--ruleset-file", rules_path])
        assert rc == 0


class TestClassify:
    def test_classify_hw(self, capsys):
        rc = main([
            "classify", "--family", "acl1", "--rules", "120",
            "--packets", "500", "--seed", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Mpps" in out
        assert "mean occupancy" in out

    def test_classify_software(self, capsys):
        rc = main([
            "classify", "--family", "acl1", "--rules", "120",
            "--packets", "300", "--software",
        ])
        assert rc == 0
        assert "classified 300 packets" in capsys.readouterr().out


class TestBench:
    def test_bench_with_flow_cache_zipf(self, capsys):
        rc = main([
            "bench", "--family", "acl1", "--rules", "120", "--seed", "3",
            "--packets", "2000", "--algorithm", "tss",
            "--cache-entries", "512", "--cache-ways", "4",
            "--zipf", "1.0", "--flows", "64",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "flow cache: 512 entries x 4-way" in out
        assert "hit rate" in out
        assert "effective accesses/lookup" in out
        assert "J/packet" in out

    def test_bench_without_cache_has_no_cache_report(self, capsys):
        rc = main([
            "bench", "--family", "acl1", "--rules", "120", "--seed", "3",
            "--packets", "1000", "--algorithm", "tss",
        ])
        assert rc == 0
        assert "flow cache" not in capsys.readouterr().out

    def test_classify_with_cache(self, capsys):
        rc = main([
            "classify", "--family", "acl1", "--rules", "120", "--seed", "3",
            "--packets", "1000", "--algorithm", "linear",
            "--cache-entries", "256",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "flow cache: 256 entries" in out

    def test_bench_stream_mode(self, capsys):
        rc = main([
            "bench", "--family", "acl1", "--rules", "120", "--seed", "3",
            "--packets", "4000", "--algorithm", "tss", "--stream", "1000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "streamed ingestion: 4 segments x 1000 packets" in out
        assert "classified 4000 packets" in out

    def test_bench_energy_model_selects_device(self, capsys):
        common = [
            "bench", "--family", "acl1", "--rules", "120", "--seed", "3",
            "--packets", "1000", "--algorithm", "hypercuts",
        ]
        assert main([*common, "--energy-model", "fpga"]) == 0
        out = capsys.readouterr().out
        assert "FPGA" in out and "ASIC" not in out
        assert main([*common, "--energy-model", "none"]) == 0
        out = capsys.readouterr().out
        assert "FPGA" not in out and "ASIC" not in out

    def test_bad_cache_geometry_is_clean_error(self, capsys):
        rc = main([
            "bench", "--family", "acl1", "--rules", "60", "--seed", "3",
            "--packets", "500", "--algorithm", "linear",
            "--cache-entries", "10", "--cache-ways", "4",
        ])
        assert rc == 2
        assert "multiple" in capsys.readouterr().err


class TestFsm:
    def test_fsm_trace(self, capsys):
        rc = main([
            "fsm", "--family", "acl1", "--rules", "80", "--packets", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "LOAD_ROOT" in out
        assert "COMPARE" in out


class TestArgErrors:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            main(["build", "--family", "nope"])


class TestLinecard:
    def test_default_run_prints_stage_table(self, capsys):
        rc = main([
            "linecard", "--family", "acl1", "--rules", "120",
            "--packets", "500", "--seed", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "8 stages" in out
        for name in ("parse", "tcam_prefilter", "flow_cache",
                     "classify", "queue_select"):
            assert name in out
        assert "flow cache hit rate" in out

    def test_emit_graph_round_trips(self, tmp_path, capsys):
        from repro.stages import StageGraphSpec

        path = str(tmp_path / "graph.json")
        rc = main(["linecard", "--emit-graph", path,
                   "--algorithm", "hicuts", "--cache-entries", "1024"])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        spec = StageGraphSpec.load(path)
        kinds = [s.kind for s in spec.stages]
        assert kinds.count("classify") == 1
        assert "flow_cache" in kinds
        classify = next(s for s in spec.stages if s.kind == "classify")
        assert classify.params["engine"]["backend"] == "hicuts"

    def test_graph_flag_runs_saved_spec(self, tmp_path, capsys):
        path = str(tmp_path / "graph.json")
        main(["linecard", "--emit-graph", path])
        rc = main([
            "linecard", "--graph", path, "--family", "acl1",
            "--rules", "120", "--packets", "500", "--seed", "3",
        ])
        assert rc == 0
        assert "packets" in capsys.readouterr().out

    def test_trace_lines_reports_quarantine(self, tmp_path, capsys):
        lines = tmp_path / "trace.txt"
        lines.write_text(
            "# comment\n"
            "1 2 3 4 5\n"
            "oops not numbers\n"
            "6 7 8 9 10\n"
        )
        rc = main([
            "linecard", "--family", "acl1", "--rules", "80",
            "--seed", "3", "--trace-lines", str(lines),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "quarantined: 1 malformed trace lines" in out

    def test_output_json_carries_stage_telemetry(self, tmp_path):
        import json

        out_path = tmp_path / "report.json"
        rc = main([
            "linecard", "--family", "acl1", "--rules", "120",
            "--packets", "500", "--seed", "3", "-o", str(out_path),
        ])
        assert rc == 0
        doc = json.loads(out_path.read_text())
        assert "stages" in doc
        assert [s["kind"] for s in doc["stages"]].count("classify") == 1
        assert all("energy_j" in s for s in doc["stages"])
