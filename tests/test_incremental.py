"""Tests for incremental updates (insert/remove on live trees)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import generate_ruleset, generate_trace
from repro.algorithms import LinearSearchClassifier
from repro.algorithms.incremental import IncrementalClassifier
from repro.core.errors import BuildError
from repro.core.rules import Rule
from repro.hw import build_memory_image, Accelerator


def oracle_match(inc, trace):
    """Linear search over the live rules, mapped back to stable ids."""
    live = inc.live_ruleset()
    compact = LinearSearchClassifier(live).classify_trace(trace)
    # live index -> stable id
    stable = [i for i in range(len(inc._ruleset)) if inc._live[i]]
    out = np.full_like(compact, -1)
    hit = compact >= 0
    out[hit] = np.asarray(stable, dtype=np.int64)[compact[hit]]
    return out


@pytest.fixture()
def inc():
    rs = generate_ruleset("acl1", 300, seed=91)
    return IncrementalClassifier(rs, algorithm="hicuts", binth=30, spfac=4)


@pytest.fixture()
def new_rules():
    return list(generate_ruleset("acl1", 30, seed=92).rules)


class TestInsert:
    def test_inserted_rule_becomes_matchable(self, inc):
        rule = Rule.from_5tuple(
            (0xDEADBEEF, 32), (0x0BADF00D, 32), (7777, 7777), (8888, 8888),
            (6, 1),
        )
        header = (0xDEADBEEF, 0x0BADF00D, 7777, 8888, 6)
        before = inc.classify(header)
        inc.insert(rule)
        after = inc.classify(header)
        assert after == len(inc._ruleset) - 1 or after == before != -1

    def test_semantics_after_many_inserts(self, inc, new_rules):
        rs = inc.live_ruleset()
        trace = generate_trace(rs, 1500, seed=93, background_fraction=0.2)
        for rule in new_rules:
            inc.insert(rule)
        got = inc.classify_trace(trace)
        want = oracle_match(inc, trace)
        assert np.array_equal(got, want)

    def test_leaf_split_on_overflow(self):
        rs = generate_ruleset("acl1", 100, seed=94)
        inc = IncrementalClassifier(rs, binth=8, spfac=4)
        stats_total = 0
        for rule in generate_ruleset("acl1", 60, seed=95).rules:
            st = inc.insert(rule)
            stats_total += st.subtrees_rebuilt
        # With binth=8 and 60 inserts some leaf must have overflowed.
        assert stats_total > 0
        trace = generate_trace(inc.live_ruleset(), 800, seed=96)
        assert np.array_equal(inc.classify_trace(trace), oracle_match(inc, trace))

    def test_insert_into_empty_region_creates_leaf(self):
        # One highly specific ruleset: most of the space is EMPTY children.
        rs = generate_ruleset("acl1", 60, seed=97)
        inc = IncrementalClassifier(rs, binth=30, spfac=4)
        wild = Rule.from_5tuple((0, 0), (0, 0), (0, 65535), (0, 65535), (0, 0))
        st = inc.insert(wild)
        assert st.new_leaves > 0
        # The wildcard must now match everything nothing else matches.
        assert inc.classify((1, 2, 3, 4, 250)) == len(inc._ruleset) - 1

    def test_copy_on_write_protects_merged_siblings(self):
        """Inserting a narrow rule must not leak it into merged siblings."""
        rs = generate_ruleset("acl1", 400, seed=98)
        inc = IncrementalClassifier(rs, binth=30, spfac=4)
        narrow = Rule.from_5tuple(
            (0x11223344, 32), (0x55667788, 32), (1, 1), (2, 2), (17, 1)
        )
        inc.insert(narrow)
        trace = generate_trace(inc.live_ruleset(), 2000, seed=99,
                               background_fraction=0.3)
        assert np.array_equal(inc.classify_trace(trace), oracle_match(inc, trace))


class TestRemove:
    def test_removed_rule_never_matches(self, inc):
        arrays = inc.live_ruleset().arrays
        header = tuple(int(arrays.lo[d, 0]) for d in range(5))
        assert inc.classify(header) == 0
        inc.remove(0)
        assert inc.classify(header) != 0

    def test_semantics_after_mixed_updates(self, inc, new_rules):
        for rule in new_rules[:10]:
            inc.insert(rule)
        for rid in (3, 50, 120, 301):
            inc.remove(rid)
        trace = generate_trace(inc.live_ruleset(), 1500, seed=100,
                               background_fraction=0.2)
        assert np.array_equal(inc.classify_trace(trace), oracle_match(inc, trace))

    def test_double_remove_rejected(self, inc):
        inc.remove(5)
        with pytest.raises(BuildError):
            inc.remove(5)
        with pytest.raises(BuildError):
            inc.remove(10_000)

    def test_live_count(self, inc):
        n0 = inc.n_live_rules
        inc.remove(1)
        assert inc.n_live_rules == n0 - 1


class TestRebuild:
    def test_rebuild_compacts_and_preserves_semantics(self, inc, new_rules):
        for rule in new_rules[:5]:
            inc.insert(rule)
        inc.remove(2)
        trace = generate_trace(inc.live_ruleset(), 1000, seed=101)
        want_live = LinearSearchClassifier(inc.live_ruleset()).classify_trace(trace)
        inc.rebuild()
        got = inc.classify_trace(trace)
        # After compaction ids are the live ruleset's own indices.
        assert np.array_equal(got, want_live)
        assert inc.n_live_rules == len(inc._ruleset)


class TestHardwareResync:
    def test_updated_tree_still_encodes_and_runs(self, inc, new_rules):
        for rule in new_rules[:8]:
            inc.insert(rule)
        inc.remove(7)
        image = build_memory_image(inc.tree, speed=1)
        trace = generate_trace(inc.live_ruleset(), 600, seed=102)
        run = Accelerator(image).run_trace(trace)
        assert np.array_equal(run.match, oracle_match(inc, trace))


class TestHyperCutsMode:
    def test_hypercuts_incremental(self):
        rs = generate_ruleset("ipc1", 250, seed=103)
        inc = IncrementalClassifier(rs, algorithm="hypercuts", binth=30,
                                    spfac=4)
        for rule in generate_ruleset("ipc1", 20, seed=104).rules:
            inc.insert(rule)
        inc.remove(11)
        trace = generate_trace(inc.live_ruleset(), 1000, seed=105,
                               background_fraction=0.2)
        assert np.array_equal(inc.classify_trace(trace), oracle_match(inc, trace))

    def test_unknown_algorithm(self):
        rs = generate_ruleset("acl1", 50, seed=106)
        with pytest.raises(BuildError):
            IncrementalClassifier(rs, algorithm="nope")
