"""Sharded streaming pipeline: exactness, aggregation, and edge cases.

The load-bearing property: at every shard count the pipeline's output is
bit-for-bit identical to single-shot ``classify_trace`` — chunking and
multiprocessing must never change classification results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import FIVE_TUPLE, PacketTrace
from repro.core.errors import ConfigError
from repro.energy import asic_model
from repro.engine import ClassificationPipeline, build_backend


@pytest.fixture(scope="module")
def acc_small(acl_small):
    return build_backend("accelerator", acl_small)


class TestExactness:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_matches_single_shot_accelerator(
        self, acc_small, acl_small_trace, shards
    ):
        single = acc_small.classify_trace(acl_small_trace)
        res = ClassificationPipeline(
            acc_small, chunk_size=300, shards=shards
        ).run(acl_small_trace)
        assert np.array_equal(res.match, single)

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("backend", ["linear", "hicuts", "tuple_space"])
    def test_matches_single_shot_software(
        self, backend, shards, acl_small, acl_small_trace, acl_small_oracle
    ):
        clf = build_backend(backend, acl_small)
        res = ClassificationPipeline(
            clf, chunk_size=333, shards=shards
        ).run(acl_small_trace)
        assert np.array_equal(res.match, acl_small_oracle)

    def test_uneven_final_chunk(self, acc_small, acl_small_trace):
        # 2000 packets, chunk 750 -> chunks of 750/750/500.
        res = ClassificationPipeline(acc_small, chunk_size=750).run(
            acl_small_trace
        )
        assert [c.n_packets for c in res.chunks] == [750, 750, 500]
        assert res.n_packets == acl_small_trace.n_packets


class TestAggregation:
    def test_chunk_stats_sum_to_totals(self, acc_small, acl_small_trace):
        res = ClassificationPipeline(acc_small, chunk_size=256, shards=2).run(
            acl_small_trace
        )
        assert sum(c.n_packets for c in res.chunks) == res.n_packets
        assert sum(c.matched for c in res.chunks) == res.matched
        assert res.occupancy is not None
        assert sum(c.occupancy_sum for c in res.chunks) == int(
            res.occupancy.sum()
        )
        assert 0.0 <= res.matched_fraction <= 1.0

    def test_occupancy_matches_run_trace(self, acc_small, acl_small_trace):
        run = acc_small.run_trace(acl_small_trace)
        res = ClassificationPipeline(acc_small, chunk_size=512).run(
            acl_small_trace
        )
        assert res.mean_occupancy() == pytest.approx(run.mean_occupancy())

    def test_device_throughput_and_energy(self, acc_small, acl_small_trace):
        res = ClassificationPipeline(acc_small, chunk_size=512).run(
            acl_small_trace
        )
        mo = res.mean_occupancy()
        assert mo is not None and mo >= 1.0
        assert res.device_throughput_pps(226e6) == pytest.approx(226e6 / mo)
        model = asic_model()
        assert res.energy_per_packet_j(model) == pytest.approx(
            model.energy_per_packet_j(mo)
        )
        assert res.throughput_pps() > 0

    def test_software_backend_has_no_occupancy(self, acl_small, acl_small_trace):
        res = ClassificationPipeline(
            build_backend("linear", acl_small), chunk_size=512
        ).run(acl_small_trace)
        assert res.occupancy is None
        assert res.mean_occupancy() is None
        assert res.device_throughput_pps(226e6) is None


class TestPersistentPool:
    """The persistent fork-pool with shared-memory result transport."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_bit_identical_across_repeated_runs(
        self, acc_small, acl_small_trace, shards
    ):
        single = acc_small.classify_trace(acl_small_trace)
        run = acc_small.run_trace(acl_small_trace)
        with ClassificationPipeline(
            acc_small, chunk_size=300, shards=shards, persistent=True
        ) as pipeline:
            for _ in range(3):
                res = pipeline.run(acl_small_trace)
                assert np.array_equal(res.match, single)
                assert res.occupancy is not None
                assert np.array_equal(res.occupancy, run.occupancy)

    def test_matches_transient_mode_chunk_stats(
        self, acc_small, acl_small_trace
    ):
        transient = ClassificationPipeline(
            acc_small, chunk_size=256, shards=2
        ).run(acl_small_trace)
        with ClassificationPipeline(
            acc_small, chunk_size=256, shards=2, persistent=True
        ) as pipeline:
            persistent = pipeline.run(acl_small_trace)
        assert np.array_equal(persistent.match, transient.match)
        assert [
            (c.index, c.start, c.n_packets, c.matched, c.occupancy_sum)
            for c in persistent.chunks
        ] == [
            (c.index, c.start, c.n_packets, c.matched, c.occupancy_sum)
            for c in transient.chunks
        ]

    def test_software_backend_no_occupancy(self, acl_small, acl_small_trace):
        clf = build_backend("linear", acl_small)
        with ClassificationPipeline(
            clf, chunk_size=512, shards=2, persistent=True
        ) as pipeline:
            res = pipeline.run(acl_small_trace)
        assert res.occupancy is None
        assert np.array_equal(res.match, clf.classify_trace(acl_small_trace))

    def test_pool_reused_and_closed(self, acc_small, acl_small_trace):
        pipeline = ClassificationPipeline(
            acc_small, chunk_size=300, shards=2, persistent=True
        )
        try:
            pipeline.run(acl_small_trace)
            pool = pipeline._pool
            if pool is not None:  # fork platforms only
                pipeline.run(acl_small_trace)
                assert pipeline._pool is pool
        finally:
            pipeline.close()
        assert pipeline._pool is None
        # Running again after close() forks a fresh pool on demand.
        res = pipeline.run(acl_small_trace)
        assert res.n_packets == acl_small_trace.n_packets
        pipeline.close()

    def test_varying_trace_sizes_across_runs(self, acc_small, acl_small_trace):
        full = acl_small_trace
        half = PacketTrace(full.headers[:901], FIVE_TUPLE)
        with ClassificationPipeline(
            acc_small, chunk_size=300, shards=2, persistent=True
        ) as pipeline:
            a = pipeline.run(full)
            b = pipeline.run(half)
            c = pipeline.run(full)
        assert np.array_equal(a.match, c.match)
        assert np.array_equal(b.match, a.match[:901])


class TestEdges:
    def test_empty_trace(self, acc_small):
        trace = PacketTrace(np.empty((0, 5), dtype=np.uint32), FIVE_TUPLE)
        res = ClassificationPipeline(acc_small, shards=2).run(trace)
        assert res.n_packets == 0
        assert res.chunks == []
        assert res.match.shape == (0,)

    def test_chunk_larger_than_trace(self, acc_small, acl_small_trace):
        res = ClassificationPipeline(acc_small, chunk_size=10**6).run(
            acl_small_trace
        )
        assert len(res.chunks) == 1

    def test_n_shards_reports_actual_workers(self, acc_small, acl_small_trace):
        # A single chunk short-circuits to the single-process path even
        # when more shards were requested; the result says what ran.
        res = ClassificationPipeline(
            acc_small, chunk_size=10**6, shards=4
        ).run(acl_small_trace)
        assert res.n_shards == 1

    def test_invalid_parameters(self, acc_small):
        with pytest.raises(ConfigError):
            ClassificationPipeline(acc_small, chunk_size=0)
        with pytest.raises(ConfigError):
            ClassificationPipeline(acc_small, shards=0)
        with pytest.raises(ConfigError):
            ClassificationPipeline(acc_small, shard_mode="fibers")
        with pytest.raises(ConfigError):
            ClassificationPipeline(acc_small, min_chunk_packets=-1)


class TestChunkBounds:
    """The dispatch-grid rules: tiny-tail merge and chunk coalescing."""

    def test_tail_merge_grid(self, acc_small):
        p = ClassificationPipeline(acc_small, chunk_size=1000)
        # Tail of 100 (< 1000/4) folds into the previous chunk...
        assert p._chunk_bounds(2100) == [(0, 1000), (1000, 2100)]
        # ...a tail of exactly a quarter stays its own chunk...
        assert p._chunk_bounds(2250) == [
            (0, 1000), (1000, 2000), (2000, 2250),
        ]
        # ...and exact multiples are untouched.
        assert p._chunk_bounds(3000) == [
            (0, 1000), (1000, 2000), (2000, 3000),
        ]
        # A single short chunk never merges (there is no predecessor).
        assert p._chunk_bounds(10) == [(0, 10)]
        assert p._chunk_bounds(0) == []

    def test_tail_merge_serves_identically(self, acc_small, acl_small_trace):
        # 2000 packets, chunk 950 -> 950/950/100; the 100-packet tail
        # merges into the second chunk.
        single = acc_small.classify_trace(acl_small_trace)
        res = ClassificationPipeline(acc_small, chunk_size=950).run(
            acl_small_trace
        )
        assert [c.n_packets for c in res.chunks] == [950, 1050]
        assert np.array_equal(res.match, single)

    def test_min_chunk_packets_coalesces_without_updates(
        self, acc_small, acl_small_trace
    ):
        res = ClassificationPipeline(
            acc_small, chunk_size=256, min_chunk_packets=10**6
        ).run(acl_small_trace)
        assert len(res.chunks) == 1
        assert np.array_equal(
            res.match, acc_small.classify_trace(acl_small_trace)
        )

    def test_updates_pin_the_epoch_grid(self, acl_small, acl_small_trace):
        # With an update stream the chunk grid must stay chunk_size so
        # epoch boundaries land where scheduled, whatever the dispatch
        # target says.
        from repro.core.updates import ScheduledUpdate, remove_op
        from repro.engine.updates import build_updatable_backend

        clf = build_updatable_backend("hypercuts", acl_small, binth=16)
        res = ClassificationPipeline(
            clf, chunk_size=256, min_chunk_packets=10**6
        ).run(acl_small_trace, updates=[
            ScheduledUpdate(at_packet=1000, batch=(remove_op(3),)),
        ])
        assert len(res.chunks) == 8  # 2000 / 256 with the tail merged
        assert {c.epoch for c in res.chunks} == {0, 1}


class TestShardModes:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_threads_mode_matches_single_shot(
        self, acc_small, acl_small_trace, shards
    ):
        single = acc_small.classify_trace(acl_small_trace)
        pipeline = ClassificationPipeline(
            acc_small, chunk_size=256, shards=shards, shard_mode="threads"
        )
        res = pipeline.run(acl_small_trace)
        assert np.array_equal(res.match, single)
        assert res.n_shards == shards
        assert res.occupancy is not None
        # Chunks round-robin over shard-affine workers.
        assert [c.shard for c in res.chunks] == [
            i % shards for i in range(len(res.chunks))
        ]

    def test_threads_mode_keeps_shard_caches_warm(
        self, acl_small, acl_small_trace
    ):
        from repro.engine import CachedClassifier

        cached = CachedClassifier(
            build_backend("hypercuts", acl_small, binth=16, hw_mode=False),
            entries=512, ways=4,
        )
        pipeline = ClassificationPipeline(
            cached, chunk_size=256, shards=2, shard_mode="threads"
        )
        cold = pipeline.run(acl_small_trace)
        warm = pipeline.run(acl_small_trace)
        assert np.array_equal(cold.match, warm.match)
        assert warm.cache_hit_rate > cold.cache_hit_rate
        per_shard = warm.shard_cache_stats()
        assert per_shard is not None and len(per_shard) == 2
        assert all(d["hits"] > 0 for d in per_shard)

    def test_auto_mode_never_loses_to_single_process(
        self, acc_small, acl_small_trace
    ):
        # "auto" on a host where min(shards, cpus) < 2 must serve the
        # trace single-process (n_shards == 1) rather than paying fork +
        # IPC for a 1-worker pool; with enough CPUs it forks like
        # "processes".  Either way the matches are identical.
        import os

        pipeline = ClassificationPipeline(
            acc_small, chunk_size=256, shards=4, shard_mode="auto"
        )
        res = pipeline.run(acl_small_trace)
        can_win = (
            min(4, os.cpu_count() or 1) >= 2
            and pipeline._fork_available()
        )
        assert res.n_shards == (min(4, os.cpu_count() or 1) if can_win else 1)
        assert np.array_equal(
            res.match, acc_small.classify_trace(acl_small_trace)
        )
        assert pipeline.fork_planned() == can_win

    def test_processes_mode_forces_fork(self, acc_small, acl_small_trace):
        # The historical contract: shards > 1 forks whenever the
        # platform can, even when clamping leaves one worker.
        pipeline = ClassificationPipeline(
            acc_small, chunk_size=256, shards=2, shard_mode="processes"
        )
        if not pipeline._fork_available():  # pragma: no cover
            pytest.skip("fork multiprocessing unavailable")
        assert pipeline.fork_planned()
