"""Tests for the RFC baseline (Recursive Flow Classification)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import generate_ruleset, generate_trace
from repro.algorithms import LinearSearchClassifier, OpCounter
from repro.algorithms.rfc import CHUNKS, REDUCTION_TREE, build_rfc
from repro.core.errors import CapacityError


class TestStructure:
    def test_chunk_layout_covers_five_tuple(self):
        # 4 IP halves + 2 ports + protocol.
        assert len(CHUNKS) == 7
        widths = [w for _, _, w in CHUNKS]
        assert widths == [16, 16, 16, 16, 16, 16, 8]

    def test_reduction_tree_terminates_in_one_table(self):
        assert len(REDUCTION_TREE[-1]) == 1

    def test_memory_accesses_fixed(self, acl_small):
        rfc = build_rfc(acl_small)
        assert rfc.memory_accesses_per_lookup() == 13

    def test_memory_grows_with_rules(self):
        small = build_rfc(generate_ruleset("acl1", 100, seed=4))
        large = build_rfc(generate_ruleset("acl1", 600, seed=4))
        assert large.memory_bytes() > small.memory_bytes()


class TestCorrectness:
    @pytest.mark.parametrize("family", ["acl1", "fw1", "ipc1"])
    def test_oracle_equality(self, family):
        rs = generate_ruleset(family, 200, seed=61)
        rfc = build_rfc(rs)
        trace = generate_trace(rs, 1500, seed=62, background_fraction=0.2)
        want = LinearSearchClassifier(rs).classify_trace(trace)
        got = rfc.classify_trace(trace)
        assert np.array_equal(got, want)

    def test_single_lookup_matches_batch(self, acl_small):
        rfc = build_rfc(acl_small)
        trace = generate_trace(acl_small, 64, seed=63)
        batch = rfc.classify_trace(trace)
        for i, header in enumerate(trace.headers):
            assert rfc.classify(header) == batch[i]

    def test_lookup_charges_table_reads(self, acl_small):
        rfc = build_rfc(acl_small)
        ops = OpCounter()
        rfc.classify((0, 0, 0, 0, 6), ops=ops)
        assert ops["mem_read"] == rfc.memory_accesses_per_lookup()

    def test_no_match(self):
        rs = generate_ruleset("acl1", 50, seed=64)
        rfc = build_rfc(rs)
        lin = LinearSearchClassifier(rs)
        header = (1, 2, 3, 4, 254)  # protocol 254 matches nothing here
        assert rfc.classify(header) == lin.classify(header)


class TestCapacity:
    def test_explosion_guard(self, acl_medium):
        with pytest.raises(CapacityError):
            build_rfc(acl_medium, max_table_entries=100_000)

    def test_wrong_schema(self, demo_ruleset):
        with pytest.raises(CapacityError):
            build_rfc(demo_ruleset)
