#!/usr/bin/env python
"""Incremental rule updates (the HiCuts/HyperCuts capability the paper
keeps highlighting versus RFC).

Section 2 stresses that HiCuts/HyperCuts "allow incremental updates", and
Section 4 describes the deployment model: a control-plane copy of the
search structure is updated and re-synchronised to the accelerator's
memory through the shared write interface.

This example models that flow: a live acl1 classifier receives a batch of
new rules and a batch of deletions; the structure is rebuilt on the
control plane, re-laid-out, and the update cost is reported as build
energy + memory write transactions — versus RFC, which must rebuild a
cross-product table hierarchy that is orders of magnitude more expensive.

Run:  python examples/incremental_updates.py  (REPRO_QUICK=1 shrinks the
workload for CI smoke runs)
"""

import os

import numpy as np

from repro import generate_ruleset, generate_trace, build_hypercuts
from repro.algorithms import LinearSearchClassifier, OpCounter
from repro.algorithms.rfc import build_rfc
from repro.core.rules import Rule
from repro.energy import Sa1100Model
from repro.hw import Accelerator, build_memory_image


QUICK = os.environ.get("REPRO_QUICK") == "1"


def main() -> None:
    sa = Sa1100Model()
    rules = generate_ruleset("acl1", 400 if QUICK else 1500, seed=11)
    extra = generate_ruleset("acl1", 40, seed=99)

    # Baseline structure.
    ops0 = OpCounter()
    tree = build_hypercuts(rules, binth=30, spfac=4, hw_mode=True, ops=ops0)
    image = build_memory_image(tree, speed=1)
    print(f"initial build: {len(rules)} rules, {image.words_used} words, "
          f"{sa.build_energy_j(ops0):.3E} J")

    # --- apply an update batch: 40 inserts + 25 deletes ----------------
    for rule in extra:
        rules.append(Rule(ranges=rule.ranges, priority=0, action=rule.action))
    for _ in range(25):
        rules.remove(len(rules) // 2)
    print(f"after update batch: {len(rules)} rules")

    ops1 = OpCounter()
    tree2 = build_hypercuts(rules, binth=30, spfac=4, hw_mode=True, ops=ops1)
    image2 = build_memory_image(tree2, speed=1)
    print(
        f"control-plane rebuild: {sa.build_energy_j(ops1):.3E} J, "
        f"{image2.memory.writes} word writes to re-sync the accelerator"
    )

    # The refreshed structure still matches first-match semantics.
    trace = generate_trace(rules, 5_000 if QUICK else 20_000, seed=12)
    run = Accelerator(image2).run_trace(trace)
    oracle = LinearSearchClassifier(rules).classify_trace(trace)
    assert np.array_equal(run.match, oracle)
    print("post-update classification verified against the oracle")

    # --- RFC cannot update incrementally: full table reconstruction ----
    rfc_ops = OpCounter()
    rfc = build_rfc(rules, ops=rfc_ops)
    print(
        f"\nRFC rebuild for the same update: {sa.build_energy_j(rfc_ops):.3E} J "
        f"and {rfc.memory_bytes():,} bytes of tables "
        f"(vs {image2.bytes_used:,} bytes for the tree) — the update-cost "
        f"asymmetry behind the paper's focus on HiCuts/HyperCuts"
    )


if __name__ == "__main__":
    main()
