#!/usr/bin/env python
"""Energy budget: software vs accelerator vs TCAM (Sections 5.3 + Table 6).

For one acl1 workload this example answers the line-card designer's
question the paper poses: *what does each classification technology cost
per packet, and what does the whole engine burn at line rate?*

Compared options:

* the original HiCuts/HyperCuts in software on a StrongARM SA-1100,
* RFC (the fastest software algorithm) on the same CPU,
* the hardware accelerator as 65 nm ASIC and Virtex-5 FPGA,
* a Cypress Ayama-class TCAM sized for the same ruleset (with its
  range-expansion storage penalty).

Run:  python examples/energy_budget.py        (REPRO_QUICK=1 shrinks the
workload for CI smoke runs)
"""

import os

from repro import generate_ruleset, generate_trace, build_hicuts, build_hypercuts
from repro.algorithms.rfc import build_rfc
from repro.baselines import TcamClassifier
from repro.energy import (
    Sa1100Model,
    TcamModel,
    asic_model,
    fpga_model,
    rfc_lookup_ops,
    software_lookup_ops,
)
from repro.hw import Accelerator, build_memory_image


QUICK = os.environ.get("REPRO_QUICK") == "1"


def main() -> None:
    rules = generate_ruleset("acl1", 400 if QUICK else 2191, seed=7)
    trace = generate_trace(rules, 10_000 if QUICK else 100_000, seed=8)
    n = trace.n_packets
    sa = Sa1100Model()
    rows: list[tuple[str, float, float, str]] = []

    # --- software decision trees on the StrongARM ----------------------
    for name, build in (("HiCuts sw", build_hicuts), ("HyperCuts sw", build_hypercuts)):
        tree = build(rules, binth=16, spfac=4)
        ops = software_lookup_ops(tree, tree.batch_lookup(trace))
        cost = sa.lookup_cost(ops, n)
        rows.append((f"{name} @SA-1100", 1 / cost.seconds, cost.energy_norm_j,
                     f"{tree.software_memory_bytes():,} B"))

    # --- RFC ------------------------------------------------------------
    rfc = build_rfc(rules)
    cost = sa.lookup_cost(rfc_lookup_ops(rfc, n), n)
    rows.append(("RFC @SA-1100", 1 / cost.seconds, cost.energy_norm_j,
                 f"{rfc.memory_bytes():,} B"))

    # --- the accelerator --------------------------------------------------
    tree = build_hypercuts(rules, binth=30, spfac=4, hw_mode=True)
    image = build_memory_image(tree, speed=1)
    run = Accelerator(image).run_trace(trace)
    for model in (asic_model(), fpga_model()):
        c = model.evaluate(run)
        rows.append((f"accelerator @{c.device}", c.throughput_pps,
                     c.energy_per_packet_norm_j, f"{image.bytes_used:,} B"))

    # --- TCAM -------------------------------------------------------------
    tcam = TcamClassifier(rules)
    stats = tcam.stats()
    model = TcamModel()
    freq = 133e6
    rows.append((
        "Ayama-class TCAM @133MHz",
        model.throughput_pps(freq),
        model.energy_per_lookup_j(stats.size_bytes, freq),
        f"{stats.size_bytes:,} B ({stats.storage_efficiency:.0%} eff.)",
    ))

    print(f"workload: {rules.name}, {len(rules)} rules, {n:,} packets\n")
    print(f"{'engine':<28s} {'throughput':>14s} {'J/packet':>10s}  storage")
    for name, pps, jpp, mem in rows:
        print(f"{name:<28s} {pps/1e6:>10.2f} Mpps {jpp:>10.2E}  {mem}")

    base = rows[0]
    accel = next(r for r in rows if "ASIC" in r[0])
    print(
        f"\nASIC accelerator vs software HiCuts: "
        f"{accel[1] / base[1]:,.0f}x throughput, "
        f"{base[2] / accel[2]:,.0f}x less energy per packet "
        f"(paper: up to 4,269x and 7,773x)"
    )


if __name__ == "__main__":
    main()
