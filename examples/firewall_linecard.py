#!/usr/bin/env python
"""Line-card dimensioning for a firewall ruleset (the paper's fw1 story).

Firewall filter sets wildcard source fields aggressively, which replicates
rules across decision-tree children and blows up the search structure —
the effect behind the paper's Table 4 fw1 rows.  This example sizes the
accelerator for growing fw1 rulesets and reports:

* whether the structure still fits the 1024-word / 614,400-byte FPGA
  configuration (the paper: fw1 beyond ~10k rules needs spfac reductions);
* the worst-case cycles (the guaranteed-bandwidth bound, Section 5.2);
* the spfac fallback the paper recommends when memory runs out.

The fitted configuration is then served through the declarative
line-card RX stage graph (`repro.stages`): parse -> ACL drop -> extract
-> TCAM prefilter -> flow cache -> classify -> rewrite -> queue select,
with per-stage packet, drop and energy telemetry — the full-pipeline
view of the same fw1 engine the sizing table dimensions.

Run:  python examples/firewall_linecard.py    (REPRO_QUICK=1 shrinks the
size grid for CI smoke runs)
"""

import os

from repro import generate_ruleset, generate_trace, build_hicuts
from repro.energy import OC192, OC768
from repro.hw import DEFAULT_CAPACITY_WORDS, Accelerator, build_memory_image, measure_layout
from repro.stages import StageGraphSpec, StageSpec, StageGraph

QUICK = os.environ.get("REPRO_QUICK") == "1"
SIZES = (300, 1200) if QUICK else (300, 1200, 2500, 5000, 10000)
TRACE_PACKETS = 5_000 if QUICK else 50_000


def size_accelerator(family: str, n_rules: int, spfac: int) -> dict:
    rules = generate_ruleset(family, n_rules, seed=3)
    tree = build_hicuts(rules, binth=30, spfac=spfac, hw_mode=True)
    meas = measure_layout(tree, speed=1)
    row = {
        "rules": n_rules,
        "spfac": spfac,
        "bytes": meas.bytes_used,
        "fits": meas.fits(DEFAULT_CAPACITY_WORDS),
        "worst_cycles": meas.worst_case_cycles,
    }
    if row["fits"]:
        image = build_memory_image(tree, speed=1)
        trace = generate_trace(rules, TRACE_PACKETS, seed=4)
        run = Accelerator(image).run_trace(trace)
        row["fpga_mpps"] = 77e6 / run.mean_occupancy() / 1e6
        row["asic_mpps"] = 226e6 / run.mean_occupancy() / 1e6
    return row


def firewall_graph(spfac: int) -> StageGraphSpec:
    """The full RX path for the fitted fw1 engine: a firewall line card
    drops the classic worm ports in the ACL stage *before* spending any
    lookup memory accesses, prefilters through the TCAM, and serves the
    survivors through the flow-cached hardware classify engine."""
    return StageGraphSpec(
        name="fw1-linecard-rx",
        stages=(
            StageSpec(kind="parse"),
            StageSpec(
                kind="drop",
                params={"deny_dst_ports": [[135, 139], [445, 445]]},
            ),
            StageSpec(kind="extract"),
            StageSpec(kind="tcam_prefilter"),
            StageSpec(kind="flow_cache", params={"entries": 4096, "ways": 4}),
            StageSpec(
                kind="classify",
                params={
                    "engine": {
                        "backend": "hicuts", "binth": 30, "spfac": spfac,
                    }
                },
            ),
            StageSpec(kind="rewrite"),
            StageSpec(kind="queue_select", params={"queues": 8}),
        ),
    )


def main() -> None:
    print(f"{'rules':>7s} {'spfac':>5s} {'memory':>12s} {'fits 1024w':>10s} "
          f"{'wc cyc':>6s} {'FPGA Mpps':>9s} {'ASIC Mpps':>9s}")
    fitted = None
    for n in SIZES:
        row = size_accelerator("fw1", n, spfac=4)
        if not row["fits"]:
            # The paper's remedy: trade throughput for memory via spfac.
            for spfac in (2, 1):
                fallback = size_accelerator("fw1", n, spfac=spfac)
                if fallback["fits"]:
                    row = fallback
                    break
        fpga = f"{row.get('fpga_mpps', float('nan')):9.1f}"
        asic = f"{row.get('asic_mpps', float('nan')):9.1f}"
        print(f"{row['rules']:>7d} {row['spfac']:>5d} {row['bytes']:>12,d} "
              f"{str(row['fits']):>10s} {row['worst_cycles']:>6d} {fpga} {asic}")
        if row["fits"]:
            fitted = row

    print()
    print(f"line-rate targets: OC-192 = {OC192.worst_case_pps/1e6:.2f} Mpps, "
          f"OC-768 = {OC768.worst_case_pps/1e6:.0f} Mpps (40-byte packets)")
    print("fw1 sets that exceed the 1024-word memory fall back to lower "
          "spfac, trading cycles for fit — exactly the dial Section 3 "
          "describes.")

    # -- the fitted engine behind the full line-card RX stage graph ------
    rules = generate_ruleset("fw1", fitted["rules"], seed=3)
    trace = generate_trace(rules, TRACE_PACKETS, seed=4)
    spec = firewall_graph(fitted["spfac"])
    with StageGraph(spec, rules) as graph:
        report = graph.run(trace)
    print()
    print(f"stage graph {spec.name!r}: {fitted['rules']} fw1 rules at "
          f"spfac {fitted['spfac']}, {report.n_packets:,} packets")
    print(f"{'stage':>15s} {'in':>8s} {'out':>8s} {'dropped':>8s} "
          f"{'energy/pkt':>11s}")
    for stage in report.stages:
        per_pkt = stage.energy_j / max(stage.packets_in, 1)
        print(f"{stage.name:>15s} {stage.packets_in:>8,d} "
              f"{stage.packets_out:>8,d} {stage.dropped:>8,d} "
              f"{per_pkt:>10.2e}J")
    hit = report.cache_hit_rate
    total_energy = sum(s.energy_j for s in report.stages)
    print(f"flow-cache hit rate {100 * hit:.1f}%, whole-graph energy "
          f"{total_energy / report.n_packets:.2e} J/packet")
    print("the ACL stage drops the worm ports before any lookup spends "
          "memory accesses; the TCAM prefilter screens no-match traffic "
          "off the classify engine.")


if __name__ == "__main__":
    main()
