#!/usr/bin/env python
"""Line-card dimensioning for a firewall ruleset (the paper's fw1 story).

Firewall filter sets wildcard source fields aggressively, which replicates
rules across decision-tree children and blows up the search structure —
the effect behind the paper's Table 4 fw1 rows.  This example sizes the
accelerator for growing fw1 rulesets and reports:

* whether the structure still fits the 1024-word / 614,400-byte FPGA
  configuration (the paper: fw1 beyond ~10k rules needs spfac reductions);
* the worst-case cycles (the guaranteed-bandwidth bound, Section 5.2);
* the spfac fallback the paper recommends when memory runs out.

Run:  python examples/firewall_linecard.py    (REPRO_QUICK=1 shrinks the
size grid for CI smoke runs)
"""

import os

from repro import generate_ruleset, generate_trace, build_hicuts
from repro.energy import OC192, OC768
from repro.hw import DEFAULT_CAPACITY_WORDS, Accelerator, build_memory_image, measure_layout

QUICK = os.environ.get("REPRO_QUICK") == "1"
SIZES = (300, 1200) if QUICK else (300, 1200, 2500, 5000, 10000)
TRACE_PACKETS = 5_000 if QUICK else 50_000


def size_accelerator(family: str, n_rules: int, spfac: int) -> dict:
    rules = generate_ruleset(family, n_rules, seed=3)
    tree = build_hicuts(rules, binth=30, spfac=spfac, hw_mode=True)
    meas = measure_layout(tree, speed=1)
    row = {
        "rules": n_rules,
        "spfac": spfac,
        "bytes": meas.bytes_used,
        "fits": meas.fits(DEFAULT_CAPACITY_WORDS),
        "worst_cycles": meas.worst_case_cycles,
    }
    if row["fits"]:
        image = build_memory_image(tree, speed=1)
        trace = generate_trace(rules, TRACE_PACKETS, seed=4)
        run = Accelerator(image).run_trace(trace)
        row["fpga_mpps"] = 77e6 / run.mean_occupancy() / 1e6
        row["asic_mpps"] = 226e6 / run.mean_occupancy() / 1e6
    return row


def main() -> None:
    print(f"{'rules':>7s} {'spfac':>5s} {'memory':>12s} {'fits 1024w':>10s} "
          f"{'wc cyc':>6s} {'FPGA Mpps':>9s} {'ASIC Mpps':>9s}")
    for n in SIZES:
        row = size_accelerator("fw1", n, spfac=4)
        if not row["fits"]:
            # The paper's remedy: trade throughput for memory via spfac.
            for spfac in (2, 1):
                fallback = size_accelerator("fw1", n, spfac=spfac)
                if fallback["fits"]:
                    row = fallback
                    break
        fpga = f"{row.get('fpga_mpps', float('nan')):9.1f}"
        asic = f"{row.get('asic_mpps', float('nan')):9.1f}"
        print(f"{row['rules']:>7d} {row['spfac']:>5d} {row['bytes']:>12,d} "
              f"{str(row['fits']):>10s} {row['worst_cycles']:>6d} {fpga} {asic}")

    print()
    print(f"line-rate targets: OC-192 = {OC192.worst_case_pps/1e6:.2f} Mpps, "
          f"OC-768 = {OC768.worst_case_pps/1e6:.0f} Mpps (40-byte packets)")
    print("fw1 sets that exceed the 1024-word memory fall back to lower "
          "spfac, trading cycles for fit — exactly the dial Section 3 "
          "describes.")


if __name__ == "__main__":
    main()
