#!/usr/bin/env python
"""Figure 5 walkthrough: watch the accelerator FSM classify packets.

Prints the cycle-by-cycle execution of the cycle-accurate simulator on a
tiny workload, annotated with the architecture of Figure 4:

* cycle 1 loads the root node word into Reg A;
* LATCH: Start sampled, a packet enters Reg B, its root child index is
  computed combinationally from Reg A's masks/shifts;
* TRAVERSE: one internal-node word fetched per cycle;
* COMPARE: a leaf word is fetched, Reg B moves to Reg C, the 30 parallel
  comparators check the stored rules while the *next* packet latches —
  the overlap that gives one-packet-per-cycle throughput when the worst
  case is two cycles.

Run:  python examples/fsm_walkthrough.py
"""

from repro import generate_ruleset, generate_trace, build_hicuts
from repro.hw import AcceleratorFSM, build_memory_image


def main() -> None:
    rules = generate_ruleset("acl1", 200, seed=5)
    tree = build_hicuts(rules, binth=30, spfac=4, hw_mode=True)
    image = build_memory_image(tree, speed=1)
    trace = generate_trace(rules, 6, seed=6)

    print(f"ruleset: {len(rules)} rules -> {image.words_used} memory words "
          f"({image.n_internal_words} internal + {image.n_leaf_words} leaf)")
    print(f"worst-case cycles: {image.worst_case_cycles()}\n")

    fsm = AcceleratorFSM(image, record_trace=True)
    records = fsm.run(trace)

    for event in fsm.events:
        print(f"cycle {event.cycle:>4d}  {event.state:<10s} {event.detail}")

    print("\nper-packet summary:")
    print(f"{'pkt':>4s} {'latched':>8s} {'done':>6s} {'latency':>8s} "
          f"{'accesses':>9s} {'match':>6s}")
    for r in records:
        print(f"{r.index:>4d} {r.latch_cycle:>8d} {r.done_cycle:>6d} "
              f"{r.done_cycle - r.latch_cycle:>8d} {r.accesses:>9d} "
              f"{r.match:>6d}")

    total = fsm.cycle
    occ = sum(r.occupancy for r in records)
    print(f"\ntotal cycles: {total} = 1 (root load) + 1 (first dispatch) "
          f"+ {occ} (sum of per-packet occupancy)")


if __name__ == "__main__":
    main()
