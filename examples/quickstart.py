#!/usr/bin/env python
"""Quickstart: build the accelerator for an ACL and classify a trace.

Walks the whole pipeline of the paper in ~30 lines of API:

1. synthesise a ClassBench-style acl1 ruleset,
2. build the modified (hardware-oriented) HyperCuts search structure,
3. lay it out into 4800-bit accelerator memory words,
4. run a packet trace through the accelerator model,
5. report throughput and energy on the paper's ASIC and FPGA devices.

Run:  python examples/quickstart.py           (REPRO_QUICK=1 shrinks the
workload for CI smoke runs)
"""

import os

from repro import generate_ruleset, generate_trace, build_hypercuts
from repro.algorithms import LinearSearchClassifier
from repro.energy import asic_model, fpga_model, OC192, OC768, sustains_line_rate
from repro.hw import Accelerator, build_memory_image

QUICK = os.environ.get("REPRO_QUICK") == "1"


def main() -> None:
    # 1. A 1000-rule ACL and a 100k-packet trace hitting it.
    rules = generate_ruleset("acl1", 300 if QUICK else 1000, seed=1)
    trace = generate_trace(rules, 10_000 if QUICK else 100_000, seed=2)
    print(f"ruleset: {rules.name} ({len(rules)} rules)")
    print(f"trace:   {trace.n_packets:,} packets")

    # 2. The paper's modified HyperCuts (32..256 cuts, grid datapath).
    tree = build_hypercuts(rules, binth=30, spfac=4, hw_mode=True)
    stats = tree.stats()
    print(f"tree:    {stats.n_nodes} nodes, depth {stats.max_depth}, "
          f"max leaf {stats.max_leaf_rules} rules")

    # 3. 4800-bit word memory image (speed=1: eq (7) packing).
    image = build_memory_image(tree, speed=1)
    print(f"memory:  {image.words_used} words = {image.bytes_used:,} bytes "
          f"(design holds 1024 words / 614,400 bytes)")
    print(f"worst-case cycles per packet: {image.worst_case_cycles()}")

    # 4. Classify the trace (and double-check against linear search).
    run = Accelerator(image).run_trace(trace)
    oracle = LinearSearchClassifier(rules).classify_trace(trace)
    assert (run.match == oracle).all(), "accelerator diverged from oracle!"
    print(f"matched: {(run.match >= 0).mean():.1%} of packets")
    print(f"mean occupancy: {run.mean_occupancy():.3f} cycles/packet")

    # 5. Device-level throughput and energy (Table 6/7 style).
    for model in (asic_model(), fpga_model()):
        cost = model.evaluate(run)
        rate = "OC-768" if sustains_line_rate(cost.throughput_pps, OC768) else (
            "OC-192" if sustains_line_rate(cost.throughput_pps, OC192) else "sub-OC-192"
        )
        print(
            f"{cost.device:<16s} {cost.throughput_pps / 1e6:7.1f} Mpps "
            f"({rate}), {cost.energy_per_packet_norm_j:.2E} J/packet"
        )


if __name__ == "__main__":
    main()
