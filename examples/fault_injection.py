#!/usr/bin/env python
"""Fault injection and self-healing serving, end to end.

A production classifier cannot assume its workers are immortal or its
input is clean.  This example drives the supervised serving path with a
deterministic :class:`~repro.engine.faults.FaultPlan` and shows every
recovery mechanism the engine layer provides:

* a **worker crash** mid-run, absorbed by a bounded retry — the replay
  is bit-identical to the fault-free run because the parent's state
  only advances after a successful dispatch;
* an **arena fence trip** (corrupted shared memory) under
  ``fault_policy="degrade"``, which walks the worker-tier ladder
  ``persistent -> processes -> threads -> inline`` instead of failing;
* the ``fail`` policy raising a typed
  :class:`~repro.core.errors.ServingFaultError` that names the tier,
  shard and chunk;
* **malformed trace lines** dead-lettered into a bounded
  :class:`~repro.serve.QuarantineLog` instead of aborting ingestion.

Everything observed lands in the :class:`~repro.serve.FaultReport` on
``report.fault`` — the same telemetry ``repro-classify bench --faults
PLAN.json`` prints.

Run:  python examples/fault_injection.py       (REPRO_QUICK=1 shrinks
the workload for CI smoke runs)
"""

import os
import tempfile

import numpy as np

from repro import generate_ruleset, generate_trace
from repro.core.errors import ServingFaultError
from repro.serve import (
    Engine,
    EngineConfig,
    FaultPlan,
    FaultSpec,
    iter_trace_file,
)

QUICK = os.environ.get("REPRO_QUICK") == "1"


def main() -> None:
    rules = generate_ruleset("acl1", 300 if QUICK else 1000, seed=31)
    trace = generate_trace(rules, 8_000 if QUICK else 40_000, seed=32)

    # ------------------------------------------------------------------
    # 1. A worker crash, retried: bit-identical recovery
    # ------------------------------------------------------------------
    config = EngineConfig(
        backend="hypercuts", shards=2, chunk_size=1024,
        min_chunk_packets=0, shard_mode="processes",
        fault_policy="retry", max_retries=2,
    )
    plan = FaultPlan((FaultSpec(kind="crash", chunk=1),))
    with Engine.open(config, rules) as engine:
        clean = engine.classify(trace)
        faulted = engine.classify(trace, faults=plan)
    assert np.array_equal(clean.match, faulted.match)
    fault = faulted.fault
    print("worker crash, policy=retry:")
    print(f"  {fault.worker_crashes} crash detected "
          f"(pids {sorted(fault.shard_crashes)}), "
          f"{fault.retries} retries, {fault.replays} chunks replayed")
    print(f"  recovery {max(fault.recovery_s) * 1e3:.1f} ms; "
          f"matches bit-identical to the fault-free run")

    # ------------------------------------------------------------------
    # 2. Arena corruption, policy=degrade: walk the tier ladder
    # ------------------------------------------------------------------
    config = EngineConfig(
        backend="hypercuts", shards=2, chunk_size=1024,
        min_chunk_packets=0, shard_mode="processes", persistent=True,
        fault_policy="degrade", max_retries=1,
    )
    # times=10 outlives every persistent-tier retry, forcing the step
    # down to the transient fork tier (which has no shared arena).
    plan = FaultPlan((FaultSpec(kind="arena", times=10),))
    with Engine.open(config, rules) as engine:
        report = engine.classify(trace, faults=plan)
    assert np.array_equal(clean.match, report.match)
    print("arena corruption, policy=degrade:")
    print(f"  {report.fault.arena_faults} fence trips, then degraded: "
          f"{', '.join(report.fault.degradations)}")

    # ------------------------------------------------------------------
    # 3. The fail policy: a typed, attributed error
    # ------------------------------------------------------------------
    config = EngineConfig(
        backend="hypercuts", shards=2, chunk_size=1024,
        min_chunk_packets=0, shard_mode="processes", fault_policy="fail",
    )
    with Engine.open(config, rules) as engine:
        try:
            engine.classify(
                trace, faults=[FaultSpec(kind="error", chunk=2)]
            )
        except ServingFaultError as exc:
            print("injected chunk error, policy=fail:")
            print(f"  {type(exc).__name__}: tier={exc.tier} "
                  f"chunk={exc.chunk} cause={type(exc.cause).__name__}")

    # ------------------------------------------------------------------
    # 4. Malformed input: quarantine instead of abort
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trace.txt")
        with open(path, "w", encoding="ascii") as fh:
            for i, row in enumerate(trace.headers[:2000]):
                if i % 500 == 250:
                    fh.write("not a packet\n")
                fh.write("\t".join(str(int(v)) for v in row) + "\n")
        config = EngineConfig(
            backend="hypercuts", chunk_size=1024,
            on_malformed="quarantine",
        )
        with Engine.open(config, rules) as engine:
            report = engine.classify_stream(iter_trace_file(
                path, segment_packets=512, on_malformed="quarantine",
                quarantine=engine.quarantine,
            ))
            log = engine.quarantine
            print("malformed trace file, on_malformed=quarantine:")
            print(f"  served {report.n_packets} packets, quarantined "
                  f"{log.count} lines ({log.dropped} beyond the buffer)")
            lineno, text, reason = log.entries[0]
            print(f"  first dead letter: line {lineno} ({reason}): "
                  f"{text!r}")


if __name__ == "__main__":
    main()
