#!/usr/bin/env python
"""Live rule-update serving through the classification pipeline.

The paper's Section 4 deployment keeps the data plane classifying while
the control plane mutates the search structure.  ``examples/
incremental_updates.py`` models the *rebuild* end of that spectrum; this
example drives the real serving path added in the engine layer:

* an updatable classifier (the incremental backend behind a flow cache)
  streams a trace through the sharded ``ClassificationPipeline``;
* a seeded churn stream (``generate_update_stream``) is interleaved with
  classification — each batch takes effect at a chunk boundary, so every
  packet is classified against one well-defined ruleset epoch;
* the compiled flat-tree kernel is *patched* (CSR row splice) rather
  than recompiled per update, and the flow cache epoch-invalidates in
  O(1);
* the control-plane cost of the incremental path is compared with a
  from-scratch rebuild via ``repro.energy.updates.UpdateCostModel``.

Run:  python examples/update_serving.py       (REPRO_QUICK=1 shrinks the
workload for CI smoke runs)
"""

import os

import numpy as np

from repro import generate_ruleset, generate_trace
from repro.algorithms import LinearSearchClassifier, OpCounter
from repro.classbench import generate_update_stream
from repro.core.ruleset import RuleSet
from repro.energy import UpdateCostModel, ops_delta
from repro.engine import (
    CachedClassifier,
    ClassificationPipeline,
    build_updatable_backend,
)


QUICK = os.environ.get("REPRO_QUICK") == "1"


def main() -> None:
    rules = generate_ruleset("acl1", 500 if QUICK else 2000, seed=21)
    trace = generate_trace(
        rules, 10_000 if QUICK else 50_000, seed=22,
        background_fraction=0.05,
    )

    build_ops = OpCounter()
    inner = build_updatable_backend(
        "incremental", rules, algorithm="hicuts", binth=30, spfac=4,
        ops=build_ops,
    )
    build_snapshot = build_ops.copy()
    clf = CachedClassifier(inner, entries=4096, ways=4)

    # 96 updates (60% inserts) in batches of 8, spread along the trace.
    schedule = generate_update_stream(
        rules, 96, trace.n_packets, insert_fraction=0.6, batch_size=8,
        seed=23,
    )

    # Single-process serving makes the per-epoch kernel patching visible
    # below; shards=N and persistent=True serve the same stream with
    # identical results (each forked worker patches its own copy).
    pipeline = ClassificationPipeline(clf, chunk_size=4096)
    result = pipeline.run(trace, updates=schedule)
    print(f"served {result.n_packets} packets across "
          f"{len(result.chunks)} chunks, epochs "
          f"{result.chunks[0].epoch}..{result.final_epoch} "
          f"({result.update_ops} update ops in {result.update_batches} "
          f"batches)")
    print(f"cache hit rate under churn: {result.cache_hit_rate:.1%} "
          f"({clf.cache.stats.invalidations} O(1) epoch invalidations)")
    print(f"flat kernel: {inner.tree.flat_patches} row-splice patches, "
          f"{inner.tree.flat_compiles} full compile(s)")

    # The final epoch agrees with a from-scratch linear oracle.
    live = inner.live_ruleset()
    stable = np.asarray(
        [i for i in range(len(inner._ruleset)) if inner._live[i]],
        dtype=np.int64,
    )
    compact = LinearSearchClassifier(
        RuleSet(list(live.rules), rules.schema)
    ).classify_trace(trace)
    want = np.where(compact >= 0, stable[np.maximum(compact, 0)], -1)
    got = inner.classify_trace(trace)
    assert np.array_equal(got, want)
    print("final-epoch classification verified against the oracle")

    # Control-plane economics: incremental updates vs full rebuild
    # (average the energy over batches, not the integer op counters).
    model = UpdateCostModel()
    update_ops = ops_delta(build_ops, build_snapshot)
    update_j = model.update_energy_j(update_ops) / max(
        1, result.update_batches
    )
    rebuild_j = model.rebuild_energy_j(build_snapshot)
    print(f"\ncontrol-plane energy: {update_j:.3E} J per update batch vs "
          f"{rebuild_j:.3E} J per full rebuild — "
          f"{rebuild_j / update_j:,.0f} batches of churn cost one rebuild")


if __name__ == "__main__":
    main()
