#!/usr/bin/env python
"""The declarative serving API: one config, one session, three paths.

Everything the other examples wire by hand — backend construction,
cache wrapping, update adaptation, pool lifecycle — collapses into an
:class:`~repro.serve.EngineConfig` plus an :class:`~repro.serve.Engine`
session:

1. declare the engine (backend, shards, cache, update policy) and
   round-trip the config through JSON and the CLI flag namespace;
2. ``classify`` a trace one-shot and read the unified ``EngineReport``;
3. ``stream`` the same workload as lazily generated segments — a
   background ingestion thread overlaps trace generation with
   classification and results arrive through a bounded ring;
4. interleave a live rule-update schedule and read the apply-latency
   percentiles off the report.

Run:  python examples/engine_session.py       (REPRO_QUICK=1 shrinks the
workload for CI smoke runs)
"""

import json
import os

import numpy as np

from repro import Engine, EngineConfig, generate_ruleset, generate_trace
from repro.classbench import generate_update_stream

QUICK = os.environ.get("REPRO_QUICK") == "1"
N_RULES = 300 if QUICK else 1000
N_PACKETS = 10_000 if QUICK else 100_000
SEGMENT = 2_048 if QUICK else 16_384


def main() -> None:
    rules = generate_ruleset("acl1", N_RULES, seed=31)

    # 1. One declarative description of the whole serving engine.
    config = EngineConfig(
        backend="hypercuts",      # routed onto the accelerator model
        shards=2, persistent=True, chunk_size=2048,
        cache_entries=4096, cache_ways=4, cache_max_age=500_000,
        updatable=True,           # serve live rule updates
    )
    print("config:", json.dumps(config.to_dict(), indent=None))
    assert EngineConfig.from_dict(config.to_dict()) == config
    print("as CLI flags:", " ".join(config.to_args()), "\n")

    trace = generate_trace(rules, N_PACKETS, seed=32)
    schedule = generate_update_stream(
        rules, 48, trace.n_packets, insert_fraction=0.6, batch_size=8,
        seed=33,
    )

    with Engine.open(config, rules) as engine:
        # 2. One-shot serving with an interleaved update schedule.
        report = engine.classify(trace, updates=schedule)
        print(f"one-shot: {report.n_packets:,} packets, "
              f"{report.matched_fraction:.1%} matched, "
              f"{report.throughput_pps:,.0f} pps, "
              f"cache hit rate {report.cache_hit_rate:.1%}")
        print(f"epochs {report.first_epoch}..{report.final_epoch} "
              f"({report.update_ops} ops in {report.update_batches} "
              f"batches)")
        pct = report.update_latency
        print(f"update latency/batch: p50 {pct['p50_ms']:.2f} ms, "
              f"p95 {pct['p95_ms']:.2f} ms, p99 {pct['p99_ms']:.2f} ms\n")

        # 3. Streamed serving: segments are *generated lazily* in the
        # ingestion thread while earlier segments classify.
        def segment_source():
            for i in range(N_PACKETS // SEGMENT):
                yield generate_trace(rules, SEGMENT, seed=100 + i)

        streamed = engine.classify_stream(segment_source())
        print(f"streamed: {streamed.n_segments} segments, "
              f"{streamed.n_packets:,} packets, "
              f"{streamed.throughput_pps:,.0f} pps end-to-end "
              f"(ingestion overlapped)")

        # 4. Streaming an in-memory trace is bit-identical to one-shot.
        check = engine.classify(trace)
        chunks = list(engine.stream(trace, segment_packets=SEGMENT))
        got = np.concatenate([c.match for c in chunks])
        assert np.array_equal(got, check.match)
        print(f"stream == classify on {len(chunks)} segments "
              f"(bit-identical)")

    print("\nfull telemetry:", json.dumps(report.to_dict(), indent=2)[:400],
          "...")


if __name__ == "__main__":
    main()
