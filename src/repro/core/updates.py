"""Rule-update primitives shared by the control plane and the engine.

The paper's Section 4 deployment splits classification into a data plane
(the accelerator serving lookups) and a control plane that mutates its
copy of the search structure and re-syncs the device.  This module holds
the *wire format* of that split — the plain data types an update stream
is made of — so the algorithm layer (``repro.algorithms.incremental``),
the serving engine (``repro.engine``) and the workload generators
(``repro.classbench``) can exchange updates without importing each
other.

Stable-id semantics: rules keep the id they were born with.  A freshly
built classifier's rules are ids ``0..n-1``; every insert takes the next
id (``n``, ``n+1``, ...); a remove tombstones its id, which is never
reused.  Classification results always report stable ids, so a packet's
match is comparable across ruleset versions — the per-epoch differential
harness depends on exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigError
from .rules import Rule

#: The two operation kinds an update stream carries.
OP_INSERT = "insert"
OP_REMOVE = "remove"


@dataclass(frozen=True)
class RuleUpdate:
    """One control-plane operation: insert a rule or remove a stable id."""

    op: str
    rule: Rule | None = None
    rule_id: int = -1

    def __post_init__(self) -> None:
        if self.op == OP_INSERT:
            if self.rule is None:
                raise ConfigError("insert update requires a rule")
        elif self.op == OP_REMOVE:
            if self.rule_id < 0:
                raise ConfigError("remove update requires a rule_id >= 0")
        else:
            raise ConfigError(
                f"unknown update op {self.op!r}; "
                f"expected {OP_INSERT!r} or {OP_REMOVE!r}"
            )


def insert_op(rule: Rule) -> RuleUpdate:
    """An insert operation (the rule takes the next stable id)."""
    return RuleUpdate(op=OP_INSERT, rule=rule)


def remove_op(rule_id: int) -> RuleUpdate:
    """A remove operation for stable id ``rule_id``."""
    return RuleUpdate(op=OP_REMOVE, rule_id=int(rule_id))


@dataclass
class UpdateResult:
    """What one :meth:`apply_updates` call did.

    ``epoch`` is the classifier's ruleset version *after* the batch
    (every applied batch advances it by one, including empty batches —
    epochs number the versions, not the mutations).  ``skipped`` counts
    operations that were well-formed but inapplicable — removing an id
    that is not live — which update serving tolerates by design: under
    churn, a control plane may race its own earlier removals.
    """

    epoch: int
    inserted: int = 0
    removed: int = 0
    skipped: int = 0
    #: Stable ids assigned to this batch's inserts, in batch order.
    inserted_ids: tuple[int, ...] = ()

    @property
    def applied(self) -> int:
        return self.inserted + self.removed


@dataclass(frozen=True)
class ScheduledUpdate:
    """An update batch scheduled at a packet offset of a serving trace.

    The pipeline applies the batch at the first chunk boundary at or
    after ``at_packet`` (see ``ClassificationPipeline.run``), so every
    packet is classified against one well-defined epoch.
    """

    at_packet: int
    batch: tuple[RuleUpdate, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.at_packet < 0:
            raise ConfigError(
                f"at_packet must be >= 0, got {self.at_packet}"
            )
