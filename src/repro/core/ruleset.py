"""Ruleset container and ClassBench filter-file I/O.

The evaluation workloads of the paper are ClassBench-style filter sets
(acl1 / fw1 / ipc1 families).  :class:`RuleSet` is the library's central
container: an ordered list of :class:`~repro.core.rules.Rule` (order =
priority, first match wins) plus its :class:`~repro.core.rules.FieldSchema`
and a lazily-built structure-of-arrays view for the vectorised code paths.

File format (ClassBench ``db_generator`` output)::

    @198.51.100.0/24  10.0.0.0/8  0 : 65535  1024 : 65535  0x06/0xFF

with one rule per line.  A sixth flags column, when present, is preserved
but not classified on (the paper's hardware classifies the 5-tuple only).
"""

from __future__ import annotations

import re
from typing import Iterator, Sequence

import numpy as np

from .errors import RuleFormatError
from .packet import PacketTrace
from .rules import FIVE_TUPLE, FieldSchema, Rule, RuleArrays

_PREFIX_RE = re.compile(r"^@?(\d+)\.(\d+)\.(\d+)\.(\d+)/(\d+)$")
_RANGE_RE = re.compile(r"^(\d+)\s*:\s*(\d+)$")
_PROTO_RE = re.compile(r"^0x([0-9a-fA-F]{1,2})/0x([0-9a-fA-F]{1,2})$")


def _parse_ip_prefix(token: str) -> tuple[int, int]:
    m = _PREFIX_RE.match(token)
    if not m:
        raise RuleFormatError(f"bad IP prefix {token!r}")
    a, b, c, d, plen = (int(g) for g in m.groups())
    for octet in (a, b, c, d):
        if octet > 255:
            raise RuleFormatError(f"bad IP octet in {token!r}")
    if plen > 32:
        raise RuleFormatError(f"bad prefix length in {token!r}")
    value = (a << 24) | (b << 16) | (c << 8) | d
    host = 32 - plen
    lo = (value >> host) << host
    return lo, lo | ((1 << host) - 1)


def _format_ip_prefix(lo: int, hi: int) -> str:
    span = hi - lo + 1
    if span & (span - 1):
        raise RuleFormatError(f"[{lo},{hi}] not a prefix block")
    plen = 32 - (span.bit_length() - 1)
    return (
        f"{(lo >> 24) & 255}.{(lo >> 16) & 255}.{(lo >> 8) & 255}.{lo & 255}/{plen}"
    )


class RuleSet:
    """An ordered classification ruleset with first-match-wins semantics."""

    def __init__(
        self,
        rules: Sequence[Rule],
        schema: FieldSchema = FIVE_TUPLE,
        name: str = "ruleset",
    ) -> None:
        self.schema = schema
        self.name = name
        self.rules: list[Rule] = []
        for i, rule in enumerate(rules):
            rule.validate(schema)
            if rule.priority != i:
                rule = Rule(ranges=rule.ranges, priority=i, action=rule.action)
            self.rules.append(rule)
        self._arrays: RuleArrays | None = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __getitem__(self, i: int) -> Rule:
        return self.rules[i]

    @property
    def arrays(self) -> RuleArrays:
        """Structure-of-arrays view, built once and cached."""
        if self._arrays is None:
            self._arrays = RuleArrays(self.rules, self.schema)
        return self._arrays

    # ------------------------------------------------------------------
    # Classification oracle
    # ------------------------------------------------------------------
    def classify(self, header: Sequence[int]) -> int:
        """First-match rule index for ``header`` (-1 when nothing matches).

        This is the semantic oracle every accelerated classifier in the
        library must agree with.
        """
        return self.arrays.first_match(header)

    def classify_trace(self, trace: PacketTrace) -> np.ndarray:
        return self.arrays.batch_match(trace.headers)

    # ------------------------------------------------------------------
    # Mutation (incremental updates, which HiCuts/HyperCuts support)
    # ------------------------------------------------------------------
    def append(self, rule: Rule) -> None:
        rule.validate(self.schema)
        appended = Rule(
            ranges=rule.ranges, priority=len(self.rules), action=rule.action
        )
        self.rules.append(appended)
        # Extend the cached SoA view in place instead of dropping it: an
        # insert on a large serving ruleset then costs one buffer copy,
        # not a full per-rule rebuild (the update-serving hot path).
        if self._arrays is not None:
            self._arrays.append_rule(appended)

    def remove(self, index: int) -> Rule:
        removed = self.rules.pop(index)
        self.rules = [
            Rule(ranges=r.ranges, priority=i, action=r.action)
            for i, r in enumerate(self.rules)
        ]
        self._arrays = None
        return removed

    def subset(self, n: int, name: str | None = None) -> "RuleSet":
        """First ``n`` rules as a new ruleset (used for size sweeps)."""
        return RuleSet(
            self.rules[:n], self.schema, name or f"{self.name}[:{n}]"
        )

    # ------------------------------------------------------------------
    # Statistics used by the generator tests and DESIGN.md shape checks
    # ------------------------------------------------------------------
    def wildcard_fraction(self, dim: int) -> float:
        if not self.rules:
            return 0.0
        full = self.schema.full_range(dim)
        return sum(1 for r in self.rules if r.ranges[dim] == full) / len(self.rules)

    def storage_bytes(self) -> int:
        """Bytes to store the raw ruleset (one 160-bit word per rule, the
        paper's leaf encoding width)."""
        return len(self.rules) * 20

    # ------------------------------------------------------------------
    # ClassBench file I/O (5-tuple schema only)
    # ------------------------------------------------------------------
    @staticmethod
    def load(path: str, name: str | None = None) -> "RuleSet":
        rules: list[Rule] = []
        with open(path, "r", encoding="ascii") as fh:
            for ln, line in enumerate(fh, 1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    rules.append(_parse_filter_line(line, len(rules)))
                except RuleFormatError as exc:
                    raise RuleFormatError(f"{path}:{ln}: {exc}") from exc
        return RuleSet(rules, FIVE_TUPLE, name or path)

    def save(self, path: str) -> None:
        if self.schema is not FIVE_TUPLE:
            raise RuleFormatError("ClassBench format requires the 5-tuple schema")
        with open(path, "w", encoding="ascii") as fh:
            for rule in self.rules:
                fh.write(_format_filter_line(rule) + "\n")


def _parse_filter_line(line: str, priority: int) -> Rule:
    # Tokenize: prefixes and proto are whitespace-free; port ranges contain
    # "lo : hi" so we re-join around ':'.
    parts = line.replace(":", " : ").split()
    # Expected layout: sip dip slo : shi dlo : dhi proto [flags]; the
    # source-IP token may carry ClassBench's leading ``@`` (the prefix
    # regex accepts it either way).
    if len(parts) < 9:
        raise RuleFormatError(f"too few tokens in {line!r}")
    sip = _parse_ip_prefix(parts[0])
    dip = _parse_ip_prefix(parts[1])
    if parts[3] != ":" or parts[6] != ":":
        raise RuleFormatError(f"bad port ranges in {line!r}")
    sport = (int(parts[2]), int(parts[4]))
    dport = (int(parts[5]), int(parts[7]))
    for lo, hi in (sport, dport):
        if lo > hi or hi > 0xFFFF:
            raise RuleFormatError(f"bad port range [{lo}, {hi}]")
    m = _PROTO_RE.match(parts[8])
    if not m:
        raise RuleFormatError(f"bad protocol token {parts[8]!r}")
    pval, pmask = int(m.group(1), 16), int(m.group(2), 16)
    proto = (pval, pval) if pmask == 0xFF else (0, 255)
    if pmask not in (0x00, 0xFF):
        raise RuleFormatError(f"unsupported protocol mask {pmask:#x}")
    return Rule(
        ranges=(sip, dip, sport, dport, proto), priority=priority, action=priority
    )


def _format_filter_line(rule: Rule) -> str:
    sip, dip, sport, dport, proto = rule.ranges
    if proto == (0, 255):
        proto_tok = "0x00/0x00"
    elif proto[0] == proto[1]:
        proto_tok = f"0x{proto[0]:02X}/0xFF"
    else:
        raise RuleFormatError(f"protocol range {proto} not representable")
    return (
        f"@{_format_ip_prefix(*sip)}\t{_format_ip_prefix(*dip)}\t"
        f"{sport[0]} : {sport[1]}\t{dport[0]} : {dport[1]}\t{proto_tok}"
    )
