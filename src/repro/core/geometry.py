"""Geometric primitives for packet classification.

The paper (like HiCuts/HyperCuts before it) takes a *geometric view* of
classification: every rule is an axis-aligned hypercube in the F-dimensional
space spanned by the packet-header fields, and a packet is a point in that
space.  This module provides the integer interval/prefix arithmetic that
view rests on:

* prefix <-> range conversion for IP-style fields,
* range -> minimal prefix cover (needed by the TCAM baseline, whose poor
  storage efficiency on ranges the paper quotes from Spitznagel et al.),
* power-of-two interval cutting used by the tree builders,
* the "grid" projection onto the 8 most significant bits of each dimension
  that the hardware datapath operates on (Section 3 of the paper: the cut
  index is computed from the 8 MSBs of each of the 5 dimensions).

All functions operate on plain Python ints (values fit in 32 bits) or on
NumPy ``uint32``/``int64`` arrays for the vectorised paths.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .errors import RuleFormatError

#: Number of most-significant bits of every dimension visible to the
#: hardware cut-index datapath (Section 3: "ANDing the mask values with the
#: corresponding 8 most significant bits from each of the packets 5
#: dimensions").
HW_GRID_BITS = 8

#: Number of grid cells per dimension seen by the hardware (2 ** HW_GRID_BITS).
HW_GRID_CELLS = 1 << HW_GRID_BITS


def prefix_to_range(value: int, prefix_len: int, width: int) -> tuple[int, int]:
    """Convert ``value/prefix_len`` on a ``width``-bit field to ``(lo, hi)``.

    ``prefix_len`` counts the number of significant high-order bits; the
    remaining ``width - prefix_len`` bits are wildcarded.

    >>> prefix_to_range(0xC0A80000, 16, 32)
    (3232235520, 3232301055)
    """
    if not 0 <= prefix_len <= width:
        raise RuleFormatError(f"prefix length {prefix_len} out of [0, {width}]")
    if value >> width:
        raise RuleFormatError(f"value {value:#x} wider than {width} bits")
    host_bits = width - prefix_len
    lo = (value >> host_bits) << host_bits
    hi = lo | ((1 << host_bits) - 1)
    return lo, hi


def range_is_prefix(lo: int, hi: int, width: int) -> bool:
    """Return True when ``[lo, hi]`` is expressible as a single prefix."""
    if lo > hi:
        return False
    span = hi - lo + 1
    # A prefix covers a power-of-two sized block aligned to its size.
    return span & (span - 1) == 0 and lo % span == 0 and hi < (1 << width)


def range_to_prefix(lo: int, hi: int, width: int) -> tuple[int, int]:
    """Inverse of :func:`prefix_to_range`; raises if not a prefix block."""
    if not range_is_prefix(lo, hi, width):
        raise RuleFormatError(f"[{lo}, {hi}] is not a prefix block")
    span = hi - lo + 1
    prefix_len = width - span.bit_length() + 1
    return lo, prefix_len


def range_to_prefix_cover(lo: int, hi: int, width: int) -> list[tuple[int, int]]:
    """Minimal set of prefixes covering ``[lo, hi]`` (value, prefix_len).

    This is the classical splitting a TCAM must perform to store a range
    rule; an arbitrary range on a ``w``-bit field needs up to ``2w - 2``
    prefixes, which is the root cause of the 16-53 % TCAM storage
    efficiency the paper cites.

    >>> range_to_prefix_cover(1, 14, 4)
    [(1, 4), (2, 3), (4, 2), (8, 2), (12, 3), (14, 4)]
    """
    if lo > hi or hi >= (1 << width):
        raise RuleFormatError(f"bad range [{lo}, {hi}] for width {width}")
    cover: list[tuple[int, int]] = []
    cur = lo
    while cur <= hi:
        # Largest aligned block starting at cur ...
        max_align = cur & -cur if cur else 1 << width
        # ... that still fits within [cur, hi].
        remaining = hi - cur + 1
        block = min(max_align, 1 << (remaining.bit_length() - 1))
        prefix_len = width - block.bit_length() + 1
        cover.append((cur, prefix_len))
        cur += block
    return cover


def ranges_overlap(alo: int, ahi: int, blo: int, bhi: int) -> bool:
    """True when the closed intervals ``[alo, ahi]`` and ``[blo, bhi]`` meet."""
    return alo <= bhi and blo <= ahi


def range_contains(outer_lo: int, outer_hi: int, lo: int, hi: int) -> bool:
    """True when ``[lo, hi]`` lies entirely inside ``[outer_lo, outer_hi]``."""
    return outer_lo <= lo and hi <= outer_hi


def cut_interval(lo: int, hi: int, ncuts: int) -> list[tuple[int, int]]:
    """Split ``[lo, hi]`` into ``ncuts`` near-equal sub-intervals.

    This mirrors the software algorithms' behaviour: the original HiCuts /
    HyperCuts divide a node's region into equal pieces with integer
    division (the floating-point/divide cost of which is one of the reasons
    the paper strips region compaction from the hardware variant).  When
    the interval does not divide evenly the boundaries are chosen so that
    child ``j`` covers exactly the values with
    ``(v - lo) * ncuts // span == j`` — the same indexing function
    :func:`child_index` and the builders' rule-assignment kernel use, so
    the three can never disagree (a property test pins this).
    """
    span = hi - lo + 1
    if ncuts <= 0:
        raise ValueError("ncuts must be positive")
    if ncuts >= span:
        return [(v, v) for v in range(lo, hi + 1)]
    bounds = [lo + (span * k + ncuts - 1) // ncuts for k in range(ncuts + 1)]
    return [(bounds[k], bounds[k + 1] - 1) for k in range(ncuts)]


def child_index(value: int, lo: int, hi: int, ncuts: int) -> int:
    """Index of the child interval of :func:`cut_interval` containing value."""
    span = hi - lo + 1
    if not lo <= value <= hi:
        raise ValueError(f"value {value} outside [{lo}, {hi}]")
    if ncuts >= span:
        return value - lo
    return ((value - lo) * ncuts) // span


def grid_cell(value: int, width: int) -> int:
    """Project a ``width``-bit field value onto the hardware 8-MSB grid.

    Fields narrower than 8 bits occupy the *high* end of the 8-bit grid
    (they are left-aligned into the datapath), so an F-bit field maps each
    value ``v`` to ``v << (8 - F)``.
    """
    if width >= HW_GRID_BITS:
        return value >> (width - HW_GRID_BITS)
    return value << (HW_GRID_BITS - width)


def grid_span(lo: int, hi: int, width: int) -> tuple[int, int]:
    """Grid-cell interval covered by the field range ``[lo, hi]``."""
    glo = grid_cell(lo, width)
    ghi = grid_cell(hi, width)
    if width < HW_GRID_BITS:
        # A single narrow-field value owns a block of grid cells.
        ghi |= (1 << (HW_GRID_BITS - width)) - 1
    return glo, ghi


def grid_cell_to_range(glo: int, ghi: int, width: int) -> tuple[int, int]:
    """Field-value range covered by the grid-cell interval ``[glo, ghi]``."""
    if width >= HW_GRID_BITS:
        shift = width - HW_GRID_BITS
        return glo << shift, ((ghi + 1) << shift) - 1
    shift = HW_GRID_BITS - width
    return glo >> shift, ghi >> shift


def grid_cells_vec(values: np.ndarray, width: int) -> np.ndarray:
    """Vectorised :func:`grid_cell` for a ``uint32`` array."""
    if width >= HW_GRID_BITS:
        return (values >> np.uint32(width - HW_GRID_BITS)).astype(np.uint32)
    return (values.astype(np.uint32) << np.uint32(HW_GRID_BITS - width)).astype(
        np.uint32
    )


def aligned_power_of_two(lo: int, hi: int) -> bool:
    """True when ``[lo, hi]`` is a power-of-two block aligned to its size.

    The hardware cut arithmetic (mask + shift, no divider) only works on
    such blocks; the grid-based builders maintain this invariant for every
    node region.
    """
    span = hi - lo + 1
    return span > 0 and span & (span - 1) == 0 and lo % span == 0


def iter_prefixes_of(value: int, width: int) -> Iterator[tuple[int, int]]:
    """Yield every prefix (value, len) that matches ``value``, longest first.

    Used by the RFC/tuple-space baselines when building equivalence tables.
    """
    for plen in range(width, -1, -1):
        host = width - plen
        yield ((value >> host) << host, plen)


def pow2_at_most(n: int) -> int:
    """Largest power of two that is <= ``n`` (n >= 1)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return 1 << (n.bit_length() - 1)


def pow2_at_least(n: int) -> int:
    """Smallest power of two that is >= ``n`` (n >= 1)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return 1 << ((n - 1).bit_length())
