"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from capacity limits
of the modelled hardware.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class RuleFormatError(ReproError):
    """A rule or ruleset file could not be parsed or is inconsistent."""


class PacketFormatError(ReproError):
    """A packet/trace entry could not be parsed or is out of range."""


class BuildError(ReproError):
    """Decision-tree construction failed (bad parameters, no progress)."""


class CapacityError(ReproError):
    """The modelled hardware resource was exceeded.

    Raised, for example, when a search structure needs more than the
    accelerator's 1024 words of 4800-bit memory, or when an internal node
    would require more than 256 child entries.
    """


class EncodingError(ReproError):
    """A value cannot be represented in the hardware memory format."""


class SimulationError(ReproError):
    """The cycle-accurate simulator reached an inconsistent state."""


class ConfigError(ReproError):
    """Invalid combination of configuration parameters."""
