"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from capacity limits
of the modelled hardware.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class RuleFormatError(ReproError):
    """A rule or ruleset file could not be parsed or is inconsistent."""


class PacketFormatError(ReproError):
    """A packet/trace entry could not be parsed or is out of range."""


class BuildError(ReproError):
    """Decision-tree construction failed (bad parameters, no progress)."""


class CapacityError(ReproError):
    """The modelled hardware resource was exceeded.

    Raised, for example, when a search structure needs more than the
    accelerator's 1024 words of 4800-bit memory, or when an internal node
    would require more than 256 child entries.
    """


class EncodingError(ReproError):
    """A value cannot be represented in the hardware memory format."""


class SimulationError(ReproError):
    """The cycle-accurate simulator reached an inconsistent state."""


class ConfigError(ReproError):
    """Invalid combination of configuration parameters."""


class ServingFaultError(ReproError):
    """A serving-path fault the runtime could not (or was told not to)
    recover from.

    Carries the failure coordinates the fault-tolerance contract
    promises: ``shard`` (worker label — a pid in the fork tiers, a
    thread index in the thread tier), ``chunk`` (the chunk ordinal
    being served when the fault hit), ``epoch`` (the ruleset version in
    effect, when known), ``tier`` (the worker tier that failed) and
    ``cause`` (the underlying exception or fault kind).

    Instances must survive a trip through ``multiprocessing`` pickling,
    hence the ``__reduce__`` that rebuilds from the message plus the
    attribute dict.
    """

    def __init__(
        self,
        message: str,
        *,
        shard=None,
        chunk=None,
        epoch=None,
        tier=None,
        cause=None,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.chunk = chunk
        self.epoch = epoch
        self.tier = tier
        self.cause = cause

    def __reduce__(self):
        return (_rebuild_exc, (self.__class__, self.args[0], self.__dict__))


def _rebuild_exc(cls, message, state):
    exc = cls(message)
    exc.__dict__.update(state)
    return exc


class WorkerCrashError(ServingFaultError):
    """A worker process died (non-zero exit) while serving a chunk."""


class ChunkTimeoutError(ServingFaultError):
    """A chunk dispatch exceeded the configured ``chunk_timeout_s``."""


class ArenaCorruptionError(ServingFaultError):
    """The shared-memory arena's generation fence / checksum word did
    not match the dispatched descriptor — the attach would have read a
    torn or stale segment."""


class InjectedFault(ReproError):
    """A fault raised by the deterministic injection layer
    (:mod:`repro.engine.faults`).  Recoverable by supervision policy."""

    def __init__(self, message: str, *, kind=None, chunk=None, shard=None):
        super().__init__(message)
        self.kind = kind
        self.chunk = chunk
        self.shard = shard

    def __reduce__(self):
        return (_rebuild_exc, (self.__class__, self.args[0], self.__dict__))


class IngestError(ReproError):
    """A trace-ingestion source failed (I/O error, unreadable segment).

    ``segment`` is the stream-segment ordinal being fetched; ``cause``
    the underlying exception."""

    def __init__(self, message: str, *, segment=None, cause=None):
        super().__init__(message)
        self.segment = segment
        self.cause = cause

    def __reduce__(self):
        return (_rebuild_exc, (self.__class__, self.args[0], self.__dict__))
