"""Packets and packet traces.

A packet header, for classification purposes, is just a point in the rule
space: one integer per dimension.  Traces are stored as an
``(n_packets, ndim)`` ``uint32`` matrix (:class:`PacketTrace`) so the batch
classifier and the cycle model can process them without creating per-packet
Python objects — the single most important hot-path rule from the HPC
guides (vectorise the loop, keep data in one contiguous buffer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from .errors import PacketFormatError
from .rules import FIVE_TUPLE, FieldSchema


@dataclass(frozen=True)
class Packet:
    """A single packet header (one value per schema dimension)."""

    fields: tuple[int, ...]

    def validate(self, schema: FieldSchema) -> None:
        if len(self.fields) != schema.ndim:
            raise PacketFormatError(
                f"packet has {len(self.fields)} fields, schema {schema.ndim}"
            )
        for d, v in enumerate(self.fields):
            if not 0 <= v <= schema.max_value(d):
                raise PacketFormatError(
                    f"field {d} value {v} outside width {schema.widths[d]}"
                )

    @staticmethod
    def from_5tuple(
        src_ip: int, dst_ip: int, src_port: int, dst_port: int, proto: int
    ) -> "Packet":
        pkt = Packet((src_ip, dst_ip, src_port, dst_port, proto))
        pkt.validate(FIVE_TUPLE)
        return pkt


class PacketTrace:
    """A sequence of packet headers stored as a dense uint32 matrix."""

    __slots__ = ("schema", "headers")

    def __init__(self, headers: np.ndarray, schema: FieldSchema) -> None:
        headers = np.ascontiguousarray(headers, dtype=np.uint32)
        if headers.ndim != 2 or headers.shape[1] != schema.ndim:
            raise PacketFormatError(
                f"trace shape {headers.shape} does not match schema with "
                f"{schema.ndim} dims"
            )
        for d in range(schema.ndim):
            if headers[:, d].size and int(headers[:, d].max()) > schema.max_value(d):
                raise PacketFormatError(f"trace field {d} exceeds field width")
        self.schema = schema
        self.headers = headers

    # ------------------------------------------------------------------
    @property
    def n_packets(self) -> int:
        return self.headers.shape[0]

    def __len__(self) -> int:
        return self.n_packets

    def __iter__(self) -> Iterator[Packet]:
        for row in self.headers:
            yield Packet(tuple(int(v) for v in row))

    def __getitem__(self, i: int) -> Packet:
        return Packet(tuple(int(v) for v in self.headers[i]))

    def subset(self, n: int) -> "PacketTrace":
        """First ``n`` packets as a view (no copy)."""
        return PacketTrace(self.headers[:n], self.schema)

    # ------------------------------------------------------------------
    @staticmethod
    def from_packets(
        packets: Iterable[Packet] | Iterable[Sequence[int]],
        schema: FieldSchema = FIVE_TUPLE,
    ) -> "PacketTrace":
        rows = []
        for pkt in packets:
            fields = pkt.fields if isinstance(pkt, Packet) else tuple(pkt)
            rows.append(fields)
        if not rows:
            return PacketTrace(np.empty((0, schema.ndim), dtype=np.uint32), schema)
        return PacketTrace(np.asarray(rows, dtype=np.uint32), schema)

    def save(self, path: str) -> None:
        """Write in ClassBench trace format (tab-separated decimal fields,
        one header per line, trailing column = expected match id -1)."""
        with open(path, "w", encoding="ascii") as fh:
            for row in self.headers:
                fh.write("\t".join(str(int(v)) for v in row) + "\t-1\n")

    @staticmethod
    def load(path: str, schema: FieldSchema = FIVE_TUPLE) -> "PacketTrace":
        rows = []
        with open(path, "r", encoding="ascii") as fh:
            for ln, line in enumerate(fh, 1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) < schema.ndim:
                    raise PacketFormatError(f"{path}:{ln}: too few fields")
                rows.append(tuple(int(p) for p in parts[: schema.ndim]))
        return PacketTrace.from_packets(rows, schema)
