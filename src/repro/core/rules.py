"""Rules and field schemas.

A classification *rule* is, per the paper's geometric view, a hypercube: one
closed integer interval per packet-header dimension plus a priority (its
position in the ruleset) and an action identifier.

Two schemas matter for the reproduction:

* :data:`FIVE_TUPLE` — the real schema the hardware targets: source IP
  (32 bits), destination IP (32 bits), source port (16), destination port
  (16), protocol (8).  This matches the 160-bit leaf encoding of Section 3.
* :data:`DEMO_SCHEMA` — five 8-bit fields, the shape of the paper's Table 1
  example ruleset used for Figures 1-3.

Rules are stored internally as ranges; prefix/exact/wildcard views are
derived (and validated) on demand.  For bulk work the companion
:class:`RuleArrays` structure-of-arrays holds the whole ruleset in NumPy
``uint32`` buffers, which is what the vectorised tree builders and the
batch classifier traverse (see the hpc guides: SoA + views, no per-rule
Python objects on the hot path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .errors import RuleFormatError
from .geometry import (
    grid_span,
    prefix_to_range,
    range_is_prefix,
    range_to_prefix,
)


@dataclass(frozen=True)
class FieldSchema:
    """Describes the dimensions of a classification space."""

    names: tuple[str, ...]
    widths: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.names) != len(self.widths):
            raise RuleFormatError("schema names/widths length mismatch")
        for w in self.widths:
            if not 1 <= w <= 32:
                raise RuleFormatError(f"field width {w} out of [1, 32]")

    @property
    def ndim(self) -> int:
        return len(self.widths)

    def max_value(self, dim: int) -> int:
        return (1 << self.widths[dim]) - 1

    def full_range(self, dim: int) -> tuple[int, int]:
        return 0, self.max_value(dim)

    def universe(self) -> tuple[tuple[int, int], ...]:
        """The full hyperspace: one (lo, hi) per dimension."""
        return tuple(self.full_range(d) for d in range(self.ndim))


#: The 5-tuple schema used by the hardware accelerator (Section 3).
FIVE_TUPLE = FieldSchema(
    names=("src_ip", "dst_ip", "src_port", "dst_port", "proto"),
    widths=(32, 32, 16, 16, 8),
)

#: Field indices into the 5-tuple, in the order the paper lists them.
DIM_SRC_IP, DIM_DST_IP, DIM_SRC_PORT, DIM_DST_PORT, DIM_PROTO = range(5)

#: Schema of the paper's Table 1 example: five 8-bit fields.
DEMO_SCHEMA = FieldSchema(
    names=("field0", "field1", "field2", "field3", "field4"),
    widths=(8, 8, 8, 8, 8),
)


@dataclass(frozen=True)
class Rule:
    """A single classification rule.

    Attributes
    ----------
    ranges:
        One inclusive ``(lo, hi)`` interval per dimension.
    priority:
        Position in the ruleset; smaller wins (first-match semantics).
    action:
        Opaque action id carried through to classification results.
    """

    ranges: tuple[tuple[int, int], ...]
    priority: int = 0
    action: int = 0

    def validate(self, schema: FieldSchema) -> None:
        if len(self.ranges) != schema.ndim:
            raise RuleFormatError(
                f"rule has {len(self.ranges)} dims, schema {schema.ndim}"
            )
        for d, (lo, hi) in enumerate(self.ranges):
            if lo > hi:
                raise RuleFormatError(f"dim {d}: lo {lo} > hi {hi}")
            if lo < 0 or hi > schema.max_value(d):
                raise RuleFormatError(
                    f"dim {d}: [{lo}, {hi}] outside field width "
                    f"{schema.widths[d]}"
                )

    # ------------------------------------------------------------------
    # Matching / geometry
    # ------------------------------------------------------------------
    def matches(self, header: Sequence[int]) -> bool:
        """True when every header field falls inside the rule's interval."""
        return all(lo <= v <= hi for (lo, hi), v in zip(self.ranges, header))

    def overlaps(self, other: "Rule") -> bool:
        """True when the two hypercubes intersect."""
        return all(
            alo <= bhi and blo <= ahi
            for (alo, ahi), (blo, bhi) in zip(self.ranges, other.ranges)
        )

    def covers(self, other: "Rule") -> bool:
        """True when this rule's hypercube contains ``other``'s entirely."""
        return all(
            alo <= blo and bhi <= ahi
            for (alo, ahi), (blo, bhi) in zip(self.ranges, other.ranges)
        )

    def is_wildcard(self, dim: int, schema: FieldSchema) -> bool:
        return self.ranges[dim] == schema.full_range(dim)

    def prefix_view(self, dim: int, schema: FieldSchema) -> tuple[int, int]:
        """(value, prefix_len) for a dimension that is a prefix block."""
        lo, hi = self.ranges[dim]
        return range_to_prefix(lo, hi, schema.widths[dim])

    def is_prefix(self, dim: int, schema: FieldSchema) -> bool:
        lo, hi = self.ranges[dim]
        return range_is_prefix(lo, hi, schema.widths[dim])

    def is_exact(self, dim: int) -> bool:
        lo, hi = self.ranges[dim]
        return lo == hi

    def grid_footprint(self, schema: FieldSchema) -> tuple[tuple[int, int], ...]:
        """The rule's cell interval on the hardware's 8-MSB grid, per dim."""
        return tuple(
            grid_span(lo, hi, schema.widths[d])
            for d, (lo, hi) in enumerate(self.ranges)
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_5tuple(
        src_ip: tuple[int, int],
        dst_ip: tuple[int, int],
        src_port: tuple[int, int],
        dst_port: tuple[int, int],
        proto: tuple[int, int],
        priority: int = 0,
        action: int = 0,
    ) -> "Rule":
        """Build a 5-tuple rule; each argument is (value, prefix_len) for the
        IPs, (lo, hi) for the ports, and (value, mask_flag) for protocol
        where ``mask_flag`` 1 means exact and 0 means wildcard (matching the
        9-bit protocol encoding of Section 3)."""
        sip = prefix_to_range(src_ip[0], src_ip[1], 32)
        dip = prefix_to_range(dst_ip[0], dst_ip[1], 32)
        prot = (proto[0], proto[0]) if proto[1] else (0, 255)
        rule = Rule(
            ranges=(sip, dip, tuple(src_port), tuple(dst_port), prot),
            priority=priority,
            action=action,
        )
        rule.validate(FIVE_TUPLE)
        return rule

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"[{lo}-{hi}]" for lo, hi in self.ranges)
        return f"Rule#{self.priority}({parts})"


class RuleArrays:
    """Structure-of-arrays view of a list of rules.

    ``lo[d]`` and ``hi[d]`` are ``uint32`` arrays of length ``n_rules``
    holding the inclusive bounds of every rule in dimension ``d``; ``glo``
    and ``ghi`` hold the same intervals projected onto the 8-MSB hardware
    grid.  Builders index these arrays with rule-id arrays instead of
    carrying Python ``Rule`` objects, which keeps the per-node work inside
    NumPy.
    """

    __slots__ = (
        "schema", "n", "lo", "hi", "span", "glo", "ghi", "priority", "action",
    )

    def __init__(self, rules: Sequence[Rule], schema: FieldSchema) -> None:
        self.schema = schema
        self.n = len(rules)
        nd = schema.ndim
        self.lo = np.empty((nd, self.n), dtype=np.uint32)
        self.hi = np.empty((nd, self.n), dtype=np.uint32)
        self.glo = np.empty((nd, self.n), dtype=np.uint32)
        self.ghi = np.empty((nd, self.n), dtype=np.uint32)
        self.priority = np.empty(self.n, dtype=np.int64)
        self.action = np.empty(self.n, dtype=np.int64)
        for i, rule in enumerate(rules):
            self.priority[i] = rule.priority
            self.action[i] = rule.action
            for d, (lo, hi) in enumerate(rule.ranges):
                self.lo[d, i] = lo
                self.hi[d, i] = hi
                g0, g1 = grid_span(lo, hi, schema.widths[d])
                self.glo[d, i] = g0
                self.ghi[d, i] = g1
        # Interval widths for the single-compare test ``(v - lo) <= span``
        # (uint32 wraparound turns ``v < lo`` into a huge value).
        self.span = self.hi - self.lo

    def append_rule(self, rule: Rule) -> None:
        """Extend the view with one more rule (incremental inserts).

        One bulk ``np.concatenate`` per buffer — no per-rule Python pass
        over the existing rules, which is what keeps a single control-
        plane insert O(copy) instead of O(n_rules) rebuild work.  The
        result is bit-identical to constructing :class:`RuleArrays` from
        the extended rule list.
        """
        nd = self.schema.ndim
        col = np.empty((nd, 1), dtype=np.uint32)
        gcol_lo = np.empty((nd, 1), dtype=np.uint32)
        gcol_hi = np.empty((nd, 1), dtype=np.uint32)
        col_hi = np.empty((nd, 1), dtype=np.uint32)
        for d, (lo, hi) in enumerate(rule.ranges):
            col[d, 0] = lo
            col_hi[d, 0] = hi
            g0, g1 = grid_span(lo, hi, self.schema.widths[d])
            gcol_lo[d, 0] = g0
            gcol_hi[d, 0] = g1
        self.lo = np.concatenate([self.lo, col], axis=1)
        self.hi = np.concatenate([self.hi, col_hi], axis=1)
        self.glo = np.concatenate([self.glo, gcol_lo], axis=1)
        self.ghi = np.concatenate([self.ghi, gcol_hi], axis=1)
        self.span = self.hi - self.lo
        self.priority = np.append(self.priority, np.int64(rule.priority))
        self.action = np.append(self.action, np.int64(rule.action))
        self.n += 1

    def match_mask(self, header: Sequence[int]) -> np.ndarray:
        """Boolean mask of rules matching ``header`` (vectorised)."""
        mask = np.ones(self.n, dtype=bool)
        for d, v in enumerate(header):
            mask &= (self.lo[d] <= v) & (v <= self.hi[d])
        return mask

    def first_match(self, header: Sequence[int]) -> int:
        """Lowest rule index matching ``header``; -1 when none match."""
        mask = self.match_mask(header)
        idx = np.nonzero(mask)[0]
        return int(idx[0]) if idx.size else -1

    def batch_match(
        self,
        headers: np.ndarray,
        *,
        chunk_size: int = 512,
        rule_block: int = 256,
    ) -> np.ndarray:
        """First-match indices for an ``(n_packets, ndim)`` header matrix.

        This is the linear-search oracle used by tests and the energy model
        for the software baseline.  Packets are processed in chunks and,
        within a chunk, rules in priority-ordered blocks: each block is one
        ``(chunk, rule_block)`` vectorised interval test over the packets
        still unresolved, and the scan stops early once every packet in
        the chunk has matched — worst case O(n_packets * n_rules), typical
        cost proportional to how deep the first match sits.
        """
        headers = np.asarray(headers)
        n_pkts = headers.shape[0]
        out = np.full(n_pkts, -1, dtype=np.int64)
        if n_pkts == 0 or self.n == 0:
            return out
        headers = headers.astype(np.uint32, copy=False)
        for p0 in range(0, n_pkts, chunk_size):
            chunk = headers[p0:p0 + chunk_size]
            unresolved = np.arange(chunk.shape[0], dtype=np.int64)
            for r0 in range(0, self.n, rule_block):
                r1 = min(r0 + rule_block, self.n)
                h = chunk[unresolved]
                ok = (
                    (h[:, 0][:, None] - self.lo[0, r0:r1][None, :])
                    <= self.span[0, r0:r1][None, :]
                )
                for d in range(1, self.schema.ndim):
                    v = h[:, d][:, None]
                    ok &= (v - self.lo[d, r0:r1][None, :]) <= self.span[
                        d, r0:r1
                    ][None, :]
                hit = ok.any(axis=1)
                if hit.any():
                    out[p0 + unresolved[hit]] = r0 + ok[hit].argmax(axis=1)
                    unresolved = unresolved[~hit]
                    if unresolved.size == 0:
                        break
        return out

    def distinct_range_counts(self, rule_ids: np.ndarray) -> list[int]:
        """Number of distinct (lo, hi) specs per dimension over a subset.

        HyperCuts uses this to decide which dimensions to consider for
        cutting (Section 2.2: dims with #distinct specs >= mean).
        """
        counts = []
        for d in range(self.schema.ndim):
            pairs = np.stack([self.lo[d, rule_ids], self.hi[d, rule_ids]], axis=1)
            counts.append(len(np.unique(pairs, axis=0)))
        return counts


def make_demo_ruleset() -> list[Rule]:
    """The paper's Table 1: ten rules over five 8-bit fields (verbatim)."""
    table1 = [
        ((128, 240), (15, 15), (40, 40), (180, 180), (120, 140)),
        ((90, 100), (0, 80), (0, 200), (190, 200), (130, 132)),
        ((130, 255), (60, 140), (0, 60), (180, 180), (133, 135)),
        ((90, 92), (200, 200), (40, 40), (180, 180), (136, 138)),
        ((130, 255), (60, 140), (40, 40), (190, 200), (60, 63)),
        ((140, 150), (60, 140), (0, 255), (0, 255), (140, 255)),
        ((160, 165), (80, 80), (0, 255), (0, 255), (0, 80)),
        ((48, 50), (0, 80), (40, 40), (0, 255), (0, 10)),
        ((26, 36), (50, 50), (40, 40), (180, 180), (30, 40)),
        ((40, 40), (40, 70), (40, 40), (0, 255), (0, 60)),
    ]
    rules = [
        Rule(ranges=ranges, priority=i, action=i) for i, ranges in enumerate(table1)
    ]
    for rule in rules:
        rule.validate(DEMO_SCHEMA)
    return rules
