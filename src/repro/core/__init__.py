"""Core substrate: rules, rulesets, packets and interval geometry.

Everything else in :mod:`repro` is built on these types.  See
``DESIGN.md`` section 2 for the package map.
"""

from .errors import (
    BuildError,
    CapacityError,
    ConfigError,
    EncodingError,
    PacketFormatError,
    ReproError,
    RuleFormatError,
    SimulationError,
)
from .geometry import (
    HW_GRID_BITS,
    HW_GRID_CELLS,
    grid_cell,
    grid_cell_to_range,
    grid_span,
    prefix_to_range,
    range_is_prefix,
    range_to_prefix,
    range_to_prefix_cover,
)
from .packet import Packet, PacketTrace
from .rules import (
    DEMO_SCHEMA,
    DIM_DST_IP,
    DIM_DST_PORT,
    DIM_PROTO,
    DIM_SRC_IP,
    DIM_SRC_PORT,
    FIVE_TUPLE,
    FieldSchema,
    Rule,
    RuleArrays,
    make_demo_ruleset,
)
from .ruleset import RuleSet

__all__ = [
    "BuildError",
    "CapacityError",
    "ConfigError",
    "EncodingError",
    "PacketFormatError",
    "ReproError",
    "RuleFormatError",
    "SimulationError",
    "HW_GRID_BITS",
    "HW_GRID_CELLS",
    "grid_cell",
    "grid_cell_to_range",
    "grid_span",
    "prefix_to_range",
    "range_is_prefix",
    "range_to_prefix",
    "range_to_prefix_cover",
    "Packet",
    "PacketTrace",
    "DEMO_SCHEMA",
    "DIM_DST_IP",
    "DIM_DST_PORT",
    "DIM_PROTO",
    "DIM_SRC_IP",
    "DIM_SRC_PORT",
    "FIVE_TUPLE",
    "FieldSchema",
    "Rule",
    "RuleArrays",
    "make_demo_ruleset",
    "RuleSet",
]
