"""Bit-exact encodings of the accelerator's memory word formats.

Section 3 of the paper fixes the geometry:

* memory words are **4800 bits** wide (spread over 134 block RAMs);
* a word holds either **one internal node** or **up to 30 rules**;
* an internal node carries up to **256 child entries** of
  ``1 (leaf flag) + 12 (word address) + 5 (start position)`` bits
  (256 × 18 = 4608 bits) plus an **8-bit mask and 8-bit shift per
  dimension** (5 × 16 = 80 bits) — 4688 bits, fitting one word;
* a stored rule uses **160 bits**: 32+32 bits for the two port ranges
  (16-bit min/max each), 35 bits per IP address (32 address + 3 encoded
  mask), 9 bits protocol (8 value + 1 exact flag) and a 16-bit rule
  number.  That sums to 159; we use the remaining bit as an explicit
  *end-of-leaf* flag, which is how the search knows where a leaf's rule
  list stops (the paper leaves this mechanism implicit).

Two encodings the paper leaves under-specified are realised as follows
(DESIGN.md §6):

* **3-bit IP mask**: field values 0-4 directly encode prefix lengths
  28-32 (the address bits are all significant); field value 5 means the
  prefix length (0-27) is stored in the 5 least-significant address bits,
  which are don't-care host bits for those lengths.  Decode is
  unambiguous and tests round-trip all 33 lengths.
* **Signed shifts**: the child-index datapath computes
  ``sum_d ((msb8_d & mask_d) >> shift_d)``; combining several dimensions
  can require left shifts, so the 8-bit shift field is two's-complement
  (negative = shift left).

Words are manipulated as Python ints (arbitrary precision) and stored as
600-byte big-endian blocks in the :class:`~repro.hw.memory.MemoryImage`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import EncodingError
from ..core.geometry import range_is_prefix
from ..core.rules import Rule

WORD_BITS = 4800
WORD_BYTES = WORD_BITS // 8  # 600
RULE_BITS = 160
RULES_PER_WORD = WORD_BITS // RULE_BITS  # 30
MAX_CHILDREN = 256
CHILD_ENTRY_BITS = 18  # 1 leaf flag + 12 word address + 5 start position
ADDR_BITS = 12
POS_BITS = 5
NDIM = 5
MASK_SHIFT_BITS = 16  # 8-bit mask + 8-bit shift per dimension
NODE_BITS = MAX_CHILDREN * CHILD_ENTRY_BITS + NDIM * MASK_SHIFT_BITS  # 4688

#: Sentinel child entry marking "no rules in this sub-region": an
#: impossible address (the accelerator has 1024 words; 0xFFF > 1023).
EMPTY_ADDR = 0xFFF

#: Rule-number sentinel for unused rule slots in a leaf word.
INVALID_RULE_ID = 0xFFFF


# ---------------------------------------------------------------------------
# Bit helpers
# ---------------------------------------------------------------------------
def set_bits(word: int, offset: int, width: int, value: int) -> int:
    """Return ``word`` with ``value`` stored at ``[offset, offset+width)``.

    Bit 0 is the least significant bit of the 4800-bit word.
    """
    if value < 0 or value >> width:
        raise EncodingError(f"value {value} does not fit in {width} bits")
    mask = ((1 << width) - 1) << offset
    return (word & ~mask) | (value << offset)


def get_bits(word: int, offset: int, width: int) -> int:
    """Extract the ``width``-bit field at ``offset``."""
    return (word >> offset) & ((1 << width) - 1)


def word_to_bytes(word: int) -> bytes:
    return word.to_bytes(WORD_BYTES, "big")


def word_from_bytes(data: bytes) -> int:
    if len(data) != WORD_BYTES:
        raise EncodingError(f"memory word must be {WORD_BYTES} bytes")
    return int.from_bytes(data, "big")


# ---------------------------------------------------------------------------
# IP prefix mask encoding (35 bits per address: 32 address + 3 mask code)
# ---------------------------------------------------------------------------
def encode_ip_prefix(lo: int, hi: int) -> tuple[int, int]:
    """Encode an IP range (must be a prefix block) as (addr32, mask3)."""
    if not range_is_prefix(lo, hi, 32):
        raise EncodingError(f"IP range [{lo}, {hi}] is not a prefix block")
    span = hi - lo + 1
    plen = 32 - (span.bit_length() - 1)
    if plen >= 28:
        return lo, plen - 28
    # plen <= 27: at least 5 host bits are don't-care; stash the length
    # there and flag with mask code 5.
    addr = (lo & ~0x1F) | plen
    return addr, 5


def decode_ip_prefix(addr: int, mask3: int) -> tuple[int, int]:
    """Inverse of :func:`encode_ip_prefix` -> (lo, hi)."""
    if mask3 <= 4:
        plen = 28 + mask3
    elif mask3 == 5:
        plen = addr & 0x1F
        if plen > 27:
            raise EncodingError(f"invalid embedded prefix length {plen}")
    else:
        raise EncodingError(f"invalid mask code {mask3}")
    host = 32 - plen
    lo = (addr >> host) << host
    return lo, lo | ((1 << host) - 1)


# ---------------------------------------------------------------------------
# 160-bit rule slots
# ---------------------------------------------------------------------------
# Field offsets inside a rule slot (LSB first):
_RULE_LAYOUT = {
    "src_port_lo": (0, 16),
    "src_port_hi": (16, 16),
    "dst_port_lo": (32, 16),
    "dst_port_hi": (48, 16),
    "src_ip_addr": (64, 32),
    "src_ip_mask": (96, 3),
    "dst_ip_addr": (99, 32),
    "dst_ip_mask": (131, 3),
    "proto_value": (134, 8),
    "proto_exact": (142, 1),
    "rule_id": (143, 16),
    "end_of_leaf": (159, 1),
}


def encode_rule(rule: Rule, rule_id: int, end_of_leaf: bool) -> int:
    """Encode one rule into a 160-bit slot value.

    The rule must use the 5-tuple schema with prefix IP ranges and an
    exact-or-wildcard protocol (which is what ClassBench filter sets and
    our generator produce).
    """
    if len(rule.ranges) != 5:
        raise EncodingError("hardware rules must be 5-tuple")
    sip, dip, sport, dport, proto = rule.ranges
    if rule_id >= INVALID_RULE_ID:
        raise EncodingError(f"rule id {rule_id} exceeds the 16-bit field")
    sip_addr, sip_mask = encode_ip_prefix(*sip)
    dip_addr, dip_mask = encode_ip_prefix(*dip)
    if proto == (0, 255):
        proto_value, proto_exact = 0, 0
    elif proto[0] == proto[1]:
        proto_value, proto_exact = proto[0], 1
    else:
        raise EncodingError(f"protocol range {proto} not encodable (9 bits)")
    for lo, hi in (sport, dport):
        if not 0 <= lo <= hi <= 0xFFFF:
            raise EncodingError(f"bad port range [{lo}, {hi}]")

    slot = 0
    values = {
        "src_port_lo": sport[0],
        "src_port_hi": sport[1],
        "dst_port_lo": dport[0],
        "dst_port_hi": dport[1],
        "src_ip_addr": sip_addr,
        "src_ip_mask": sip_mask,
        "dst_ip_addr": dip_addr,
        "dst_ip_mask": dip_mask,
        "proto_value": proto_value,
        "proto_exact": proto_exact,
        "rule_id": rule_id,
        "end_of_leaf": int(end_of_leaf),
    }
    for name, value in values.items():
        offset, width = _RULE_LAYOUT[name]
        slot = set_bits(slot, offset, width, value)
    return slot


@dataclass(frozen=True)
class DecodedRule:
    """A rule slot decoded back into matchable intervals."""

    ranges: tuple[tuple[int, int], ...]
    rule_id: int
    end_of_leaf: bool

    @property
    def valid(self) -> bool:
        return self.rule_id != INVALID_RULE_ID

    def matches(self, header) -> bool:
        return all(
            lo <= int(v) <= hi for (lo, hi), v in zip(self.ranges, header)
        )


def decode_rule(slot: int) -> DecodedRule:
    """Decode a 160-bit slot (inverse of :func:`encode_rule`)."""
    f = {name: get_bits(slot, off, w) for name, (off, w) in _RULE_LAYOUT.items()}
    if f["rule_id"] == INVALID_RULE_ID:
        return DecodedRule(
            ranges=((0, 0),) * 5, rule_id=INVALID_RULE_ID,
            end_of_leaf=bool(f["end_of_leaf"]),
        )
    sip = decode_ip_prefix(f["src_ip_addr"], f["src_ip_mask"])
    dip = decode_ip_prefix(f["dst_ip_addr"], f["dst_ip_mask"])
    proto = (f["proto_value"],) * 2 if f["proto_exact"] else (0, 255)
    return DecodedRule(
        ranges=(
            sip,
            dip,
            (f["src_port_lo"], f["src_port_hi"]),
            (f["dst_port_lo"], f["dst_port_hi"]),
            proto,
        ),
        rule_id=f["rule_id"],
        end_of_leaf=bool(f["end_of_leaf"]),
    )


def empty_rule_slot(end_of_leaf: bool = False) -> int:
    """An unused rule slot (never matches)."""
    slot = set_bits(0, *_RULE_LAYOUT["rule_id"], INVALID_RULE_ID)
    if end_of_leaf:
        slot = set_bits(slot, *_RULE_LAYOUT["end_of_leaf"], 1)
    return slot


# ---------------------------------------------------------------------------
# Internal-node words
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ChildEntry:
    """One decoded child pointer."""

    is_leaf: bool
    addr: int
    pos: int

    @property
    def is_empty(self) -> bool:
        return self.addr == EMPTY_ADDR


@dataclass(frozen=True)
class DecodedNode:
    """An internal-node word decoded into datapath parameters."""

    masks: tuple[int, ...]  # 8-bit mask per dimension
    shifts: tuple[int, ...]  # signed shift per dimension (+right / -left)
    entries: tuple[ChildEntry, ...]

    def child_index(self, msb8: tuple[int, ...] | list[int]) -> int:
        """The mask/shift/add computation of Section 3 / Figure 4."""
        idx = 0
        for m, s, v in zip(self.masks, self.shifts, msb8):
            masked = v & m
            idx += (masked >> s) if s >= 0 else (masked << -s)
        return idx


def _encode_shift(shift: int) -> int:
    if not -128 <= shift <= 127:
        raise EncodingError(f"shift {shift} out of int8 range")
    return shift & 0xFF


def _decode_shift(raw: int) -> int:
    return raw - 256 if raw >= 128 else raw


def encode_internal_node(
    masks: list[int],
    shifts: list[int],
    entries: list[ChildEntry],
) -> int:
    """Encode an internal node word.

    ``entries`` may be shorter than 256; remaining slots become empty.
    Layout (LSB first): 256 child entries of 18 bits each, then per-dim
    (mask, shift) pairs.
    """
    if len(masks) != NDIM or len(shifts) != NDIM:
        raise EncodingError(f"need {NDIM} masks/shifts")
    if len(entries) > MAX_CHILDREN:
        raise EncodingError(
            f"{len(entries)} children exceed the {MAX_CHILDREN}-entry limit"
        )
    word = 0
    for i in range(MAX_CHILDREN):
        if i < len(entries):
            e = entries[i]
            if e.addr != EMPTY_ADDR and e.addr >> ADDR_BITS:
                raise EncodingError(f"word address {e.addr} exceeds 12 bits")
            if e.pos >> POS_BITS:
                raise EncodingError(f"start position {e.pos} exceeds 5 bits")
            value = (int(e.is_leaf)) | (e.addr << 1) | (e.pos << (1 + ADDR_BITS))
        else:
            value = 1 | (EMPTY_ADDR << 1)
        word = set_bits(word, i * CHILD_ENTRY_BITS, CHILD_ENTRY_BITS, value)
    base = MAX_CHILDREN * CHILD_ENTRY_BITS
    for d in range(NDIM):
        word = set_bits(word, base + d * MASK_SHIFT_BITS, 8, masks[d])
        word = set_bits(
            word, base + d * MASK_SHIFT_BITS + 8, 8, _encode_shift(shifts[d])
        )
    return word


def decode_internal_node(word: int) -> DecodedNode:
    """Inverse of :func:`encode_internal_node`."""
    entries = []
    for i in range(MAX_CHILDREN):
        raw = get_bits(word, i * CHILD_ENTRY_BITS, CHILD_ENTRY_BITS)
        entries.append(
            ChildEntry(
                is_leaf=bool(raw & 1),
                addr=(raw >> 1) & (EMPTY_ADDR),
                pos=raw >> (1 + ADDR_BITS),
            )
        )
    base = MAX_CHILDREN * CHILD_ENTRY_BITS
    masks, shifts = [], []
    for d in range(NDIM):
        masks.append(get_bits(word, base + d * MASK_SHIFT_BITS, 8))
        shifts.append(_decode_shift(get_bits(word, base + d * MASK_SHIFT_BITS + 8, 8)))
    return DecodedNode(masks=tuple(masks), shifts=tuple(shifts), entries=tuple(entries))


def pack_leaf_word(slots: list[int]) -> int:
    """Pack up to 30 rule slots into one word (slot 0 at the LSB end)."""
    if len(slots) > RULES_PER_WORD:
        raise EncodingError(f"{len(slots)} slots exceed {RULES_PER_WORD}/word")
    word = 0
    for i, slot in enumerate(slots):
        word = set_bits(word, i * RULE_BITS, RULE_BITS, slot)
    for i in range(len(slots), RULES_PER_WORD):
        word = set_bits(word, i * RULE_BITS, RULE_BITS, empty_rule_slot())
    return word


def unpack_leaf_word(word: int) -> list[int]:
    """Split a word into its 30 rule slots."""
    return [get_bits(word, i * RULE_BITS, RULE_BITS) for i in range(RULES_PER_WORD)]
