"""Hardware accelerator substrate: memory encodings, layout, simulators.

Implements Section 3's memory organisation (4800-bit words, 160-bit rules,
256-entry internal nodes, internal-first layout with the ``speed``
parameter) and Section 4's architecture (Figure 4 datapath, Figure 5 FSM)
as a cycle-accurate functional simulator plus a vectorised trace model.
"""

from .accelerator import (
    Accelerator,
    AcceleratorFSM,
    AcceleratorRun,
    FsmPacketRecord,
    FsmTraceEvent,
    figure5_trace,
    header_msb8,
)
from .encoding import (
    CHILD_ENTRY_BITS,
    EMPTY_ADDR,
    INVALID_RULE_ID,
    MAX_CHILDREN,
    RULE_BITS,
    RULES_PER_WORD,
    WORD_BITS,
    WORD_BYTES,
    ChildEntry,
    DecodedNode,
    DecodedRule,
    decode_internal_node,
    decode_ip_prefix,
    decode_rule,
    encode_internal_node,
    encode_ip_prefix,
    encode_rule,
    pack_leaf_word,
    unpack_leaf_word,
)
from .layout import (
    LayoutMeasurement,
    MemoryImage,
    build_memory_image,
    measure_layout,
)
from .memory import (
    DEFAULT_CAPACITY_WORDS,
    EXTENDED_CAPACITY_WORDS,
    N_MEMORY_BLOCKS,
    MemoryArray,
    Placement,
)
from .resync import ResyncStats, resync_memory_image

__all__ = [
    "Accelerator",
    "AcceleratorFSM",
    "AcceleratorRun",
    "FsmPacketRecord",
    "FsmTraceEvent",
    "figure5_trace",
    "header_msb8",
    "CHILD_ENTRY_BITS",
    "EMPTY_ADDR",
    "INVALID_RULE_ID",
    "MAX_CHILDREN",
    "RULE_BITS",
    "RULES_PER_WORD",
    "WORD_BITS",
    "WORD_BYTES",
    "ChildEntry",
    "DecodedNode",
    "DecodedRule",
    "decode_internal_node",
    "decode_ip_prefix",
    "decode_rule",
    "encode_internal_node",
    "encode_ip_prefix",
    "encode_rule",
    "pack_leaf_word",
    "unpack_leaf_word",
    "LayoutMeasurement",
    "MemoryImage",
    "build_memory_image",
    "measure_layout",
    "DEFAULT_CAPACITY_WORDS",
    "EXTENDED_CAPACITY_WORDS",
    "N_MEMORY_BLOCKS",
    "MemoryArray",
    "Placement",
    "ResyncStats",
    "resync_memory_image",
]
