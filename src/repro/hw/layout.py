"""Tree -> memory-image layout (Section 3's node rearrangement).

"In order to reduce memory consumption the nodes are rearranged after the
search structure has been built.  All the internal nodes are stored first
followed by the leaf nodes" — internal nodes get one word each (BFS order,
root at word 0, mirroring the register-resident root of Figure 4); leaves
are then packed into the remaining words under the ``speed`` parameter:

* ``speed=0`` — leaves stored contiguously (densest; a leaf may start at
  any position and straddle words; per-packet cycles follow eq (5));
* ``speed=1`` — a leaf starts mid-word only when it fits entirely
  (eq (6): ``RulesStoredInLeaf + pos <= 30``), so no leaf smaller than a
  word ever straddles a boundary and cycles follow eq (7).

Because merged children are shared *node ids* in the tree DAG, each shared
leaf is stored once and pointed to by many child entries, which is exactly
how the hardware saves the replicated storage.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


from ..core.errors import CapacityError, ConfigError, EncodingError
from ..core.rules import FIVE_TUPLE
from ..algorithms.base import EMPTY_CHILD, DecisionTree
from .encoding import (
    EMPTY_ADDR,
    RULES_PER_WORD,
    ChildEntry,
    encode_internal_node,
    encode_rule,
    pack_leaf_word,
)
from .memory import DEFAULT_CAPACITY_WORDS, MemoryArray, Placement


@dataclass
class MemoryImage:
    """A fully placed and encoded search structure."""

    tree: DecisionTree
    memory: MemoryArray
    placements: dict[int, Placement]  # node id -> placement
    speed: int
    root_wrapped: bool  # True when a leaf-only tree got a synthetic root
    n_internal_words: int
    n_leaf_words: int

    @property
    def words_used(self) -> int:
        return self.memory.words_used

    @property
    def bytes_used(self) -> int:
        return self.memory.bytes_used

    def placement_of(self, node_id: int) -> Placement:
        return self.placements[node_id]

    # ------------------------------------------------------------------
    def leaf_words_scanned(self, node_id: int, z: int) -> int:
        """Words fetched to reach rule index ``z`` of a leaf (0-based).

        With ``pos`` the leaf's start slot, slot ``z`` lives in word
        ``(pos + z) // 30`` relative to the leaf's first word — this is
        the ``(pos + z)/30`` term of eq (5) and, since ``speed=1`` forces
        ``pos = 0`` for any straddling leaf, the ``z/30`` term of eq (7).
        """
        p = self.placements[node_id]
        if z < 0:
            z = max(p.n_rules - 1, 0)
        return (p.pos + z) // RULES_PER_WORD + 1

    def worst_case_occupancy(self) -> int:
        """Max memory words fetched for any packet (= Table 8's hardware
        "worst case memory accesses"): internal nodes after the register-
        resident root plus the full scan of the worst leaf on the path."""
        return _worst_case_occupancy(self.tree, self.placements, self.root_wrapped)

    def worst_case_cycles(self) -> int:
        """Tables 4/8 'worst case clock cycles': occupancy + the root
        index-computation cycle that pipelining hides in steady state."""
        return self.worst_case_occupancy() + 1


def _worst_case_occupancy(
    tree: DecisionTree, placements: dict[int, Placement], root_wrapped: bool
) -> int:
    """Memoised DFS over the tree DAG for the worst fetch count."""
    memo: dict[int, int] = {}

    def visit(nid: int) -> int:
        if nid in memo:
            return memo[nid]
        node = tree.nodes[nid]
        if node.is_leaf:
            res = placements[nid].words_spanned if node.rule_ids.size else 0
        else:
            best = 0
            for child in set(int(c) for c in node.children):
                if child != EMPTY_CHILD:
                    best = max(best, visit(child))
            res = best + 1  # this internal node's own word fetch
        memo[nid] = res
        return res

    root = visit(0)
    if root_wrapped:
        # The tree root is a leaf; the register-resident synthetic
        # wrapper contributes no fetch, the leaf scan is the cost.
        return max(root, 1)
    # The real root's own fetch never happens (it lives in Reg A).
    return max(root - 1, 1)


@dataclass
class LayoutMeasurement:
    """Size/shape of a placed structure without encoding it.

    Table 4 reports structures (fw1 at 20k+ rules) far beyond what the
    1024-word accelerator—or even its 12-bit address space—can hold; the
    paper measures them anyway and notes the capacity trade-off.  This is
    the placement-only path for that measurement.
    """

    words_used: int
    bytes_used: int
    n_internal_words: int
    n_leaf_words: int
    worst_case_occupancy: int
    worst_case_cycles: int

    def fits(self, capacity_words: int = DEFAULT_CAPACITY_WORDS) -> bool:
        return self.words_used <= capacity_words


def measure_layout(tree: DecisionTree, speed: int = 1) -> LayoutMeasurement:
    """Place a grid tree and measure it (no encoding, no capacity limit)."""
    placements, n_internal_words, total_words, root_wrapped, _, _ = _place(
        tree, speed
    )
    occ = _worst_case_occupancy(tree, placements, root_wrapped)
    return LayoutMeasurement(
        words_used=total_words,
        bytes_used=total_words * 600,
        n_internal_words=n_internal_words,
        n_leaf_words=total_words - n_internal_words,
        worst_case_occupancy=occ,
        worst_case_cycles=occ + 1,
    )


def _place(tree: DecisionTree, speed: int):
    """Shared placement passes: BFS order + leaf packing.

    Returns ``(placements, n_internal_words, total_words, root_wrapped,
    internal_order, leaf_order)``.
    """
    if not tree.grid_mode:
        raise ConfigError(
            "only grid-mode (hw_mode=True) trees are hardware-encodable; "
            "the original software algorithms use arbitrary regions"
        )
    if tree.schema is not FIVE_TUPLE:
        raise ConfigError("the accelerator classifies the 5-tuple schema")
    if speed not in (0, 1):
        raise ConfigError("speed must be 0 or 1 (Section 3)")

    nodes = tree.nodes
    root_wrapped = nodes[0].is_leaf

    # ------------------------------------------------------------------
    # Pass 1: BFS order, internal nodes first.
    # ------------------------------------------------------------------
    internal_order: list[int] = []
    leaf_order: list[int] = []
    seen = {0}
    queue = deque([0])
    while queue:
        nid = queue.popleft()
        node = nodes[nid]
        if node.is_leaf:
            leaf_order.append(nid)
            continue
        internal_order.append(nid)
        for child in node.children:
            c = int(child)
            if c != EMPTY_CHILD and c not in seen:
                seen.add(c)
                queue.append(c)

    n_internal_words = len(internal_order) + (1 if root_wrapped else 0)
    placements: dict[int, Placement] = {}
    for i, nid in enumerate(internal_order):
        addr = i + (1 if root_wrapped else 0)
        placements[nid] = Placement(node_id=nid, is_leaf=False, addr=addr, pos=0)

    # ------------------------------------------------------------------
    # Pass 2: leaf packing.
    # ------------------------------------------------------------------
    addr = n_internal_words
    pos = 0
    for nid in leaf_order:
        n = int(nodes[nid].rule_ids.size)
        if n == 0:
            placements[nid] = Placement(nid, True, addr=EMPTY_ADDR, pos=0,
                                        n_rules=0, words_spanned=0)
            continue
        if speed == 1 and pos > 0 and pos + n > RULES_PER_WORD:
            addr += 1  # eq (6): start a fresh word instead of straddling
            pos = 0
        start_addr, start_pos = addr, pos
        end_slot = pos + n - 1
        words = end_slot // RULES_PER_WORD + 1
        placements[nid] = Placement(
            nid, True, addr=start_addr, pos=start_pos, n_rules=n,
            words_spanned=words,
        )
        total = pos + n
        addr += total // RULES_PER_WORD
        pos = total % RULES_PER_WORD
    total_words = addr + (1 if pos else 0)
    return placements, n_internal_words, total_words, root_wrapped, internal_order, leaf_order


def build_memory_image(
    tree: DecisionTree,
    speed: int = 1,
    capacity_words: int = DEFAULT_CAPACITY_WORDS,
) -> MemoryImage:
    """Place and encode a grid-mode decision tree into accelerator memory.

    Raises :class:`~repro.core.errors.CapacityError` when the structure
    does not fit ``capacity_words`` (the paper's fw1 sets beyond ~10k rules
    hit this on the 1024-word FPGA configuration).  Use
    :func:`measure_layout` to size structures beyond capacity.
    """
    (placements, n_internal_words, total_words, root_wrapped,
     internal_order, leaf_order) = _place(tree, speed)
    if total_words > capacity_words:
        raise CapacityError(
            f"search structure needs {total_words} words "
            f"({total_words * 600:,} bytes) but the accelerator holds "
            f"{capacity_words} (= {capacity_words * 600:,} bytes); "
            f"reduce spfac or binth to trade throughput for memory"
        )

    # ------------------------------------------------------------------
    # Pass 3: encode.
    # ------------------------------------------------------------------
    memory = MemoryArray(capacity_words)
    rules = tree.ruleset.rules

    if root_wrapped:
        leaf_place = placements[0]
        entry = ChildEntry(is_leaf=True, addr=leaf_place.addr, pos=leaf_place.pos)
        # Synthetic 2-cut root on dim 0: mask the top grid bit; both
        # children point at the single leaf.
        memory.write(
            0,
            encode_internal_node(
                masks=[0x80, 0, 0, 0, 0], shifts=[7, 0, 0, 0, 0],
                entries=[entry, entry],
            ),
        )

    for nid in internal_order:
        memory.write(placements[nid].addr, _encode_node(tree, nid, placements))

    _encode_leaves(tree, leaf_order, placements, memory, rules)

    return MemoryImage(
        tree=tree,
        memory=memory,
        placements=placements,
        speed=speed,
        root_wrapped=root_wrapped,
        n_internal_words=n_internal_words,
        n_leaf_words=total_words - n_internal_words,
    )


def _encode_node(
    tree: DecisionTree, nid: int, placements: dict[int, Placement]
) -> int:
    """Encode one internal node: datapath masks/shifts + child entries."""
    node = tree.nodes[nid]
    assert node.grid_region is not None
    masks = [0] * 5
    shifts = [0] * 5

    # Row-major strides over the cut axes (first axis slowest).
    strides: list[int] = []
    acc = 1
    for c in reversed(node.cut_counts):
        strides.append(acc)
        acc *= c
    strides.reverse()

    for (dim, count, stride) in zip(node.cut_dims, node.cut_counts, strides):
        k = count.bit_length() - 1  # cuts are powers of two on the grid
        glo, ghi = node.grid_region[dim]
        m = (ghi - glo + 1).bit_length() - 1  # region size 2^m cells
        if k > m:
            raise EncodingError("cut finer than the node's grid resolution")
        masks[dim] = ((1 << k) - 1) << (m - k)
        # masked >> shift must equal coord * stride.
        shifts[dim] = (m - k) - (stride.bit_length() - 1)

    entries: list[ChildEntry] = []
    for child in node.children:
        c = int(child)
        if c == EMPTY_CHILD:
            entries.append(ChildEntry(is_leaf=True, addr=EMPTY_ADDR, pos=0))
            continue
        p = placements[c]
        if p.addr == EMPTY_ADDR:  # empty leaf (no rules stored)
            entries.append(ChildEntry(is_leaf=True, addr=EMPTY_ADDR, pos=0))
            continue
        entries.append(ChildEntry(is_leaf=p.is_leaf, addr=p.addr, pos=p.pos))
    return encode_internal_node(masks, shifts, entries)


def _encode_leaves(
    tree: DecisionTree,
    leaf_order: list[int],
    placements: dict[int, Placement],
    memory: MemoryArray,
    rules,
) -> None:
    """Pack leaf rule slots into words (slot-accurate, handles sharing of
    partially filled words between consecutive leaves)."""
    pending: dict[int, list[int | None]] = {}  # addr -> 30 slots

    def slot_put(addr: int, pos: int, slot_value: int) -> None:
        word = pending.setdefault(addr, [None] * RULES_PER_WORD)
        assert word[pos] is None, "leaf packing collision"
        word[pos] = slot_value

    for nid in leaf_order:
        p = placements[nid]
        if p.n_rules == 0:
            continue
        node = tree.nodes[nid]
        for j, rid in enumerate(node.rule_ids):
            abs_slot = p.addr * RULES_PER_WORD + p.pos + j
            slot_put(
                abs_slot // RULES_PER_WORD,
                abs_slot % RULES_PER_WORD,
                encode_rule(
                    rules[int(rid)], int(rid), end_of_leaf=(j == p.n_rules - 1)
                ),
            )

    from .encoding import empty_rule_slot

    for addr, slots in pending.items():
        filled = [s if s is not None else empty_rule_slot() for s in slots]
        memory.write(addr, pack_leaf_word(filled))
