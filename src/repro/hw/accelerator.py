"""The hardware accelerator: Figure 4's datapath + Figure 5's FSM.

Two simulators share the :class:`~repro.hw.layout.MemoryImage`:

* :class:`AcceleratorFSM` — a cycle-accurate functional simulator.  It
  sees *only the encoded memory words* (every routing/compare decision is
  made from decoded bits, exercising the full encode path), models the
  Start/Ready handshake, Reg A (register-resident root), Reg B (incoming
  packet), Reg C (packet under comparison), the single 4800-bit read port
  (one word per cycle) and the 30 parallel rule comparators.  Slow —
  used for validation and the Figure-5 trace printer.
* :class:`Accelerator` — the vectorised model used by the experiment
  harness.  Per-packet *occupancy* (= memory words fetched, the paper's
  "memory accesses") is computed analytically from the batch tree
  traversal and the leaf placements, reproducing eqs (5)/(7):

      occupancy = x + (pos + z)//30 + 1

  with ``x`` the internal nodes after the root, ``pos`` the leaf's start
  slot and ``z`` the matching rule's index in the leaf.  Steady-state
  throughput is ``f / mean(occupancy)`` because the root-index
  computation of the next packet overlaps the current leaf search
  (Section 4: the overlap "reduc[es] the worst case number of clock
  cycles by 1", so a worst case of 2 sustains one packet per cycle).

Tests assert the two simulators agree packet-for-packet and that both
match the linear-search oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import SimulationError
from ..core.packet import PacketTrace
from ..core.rules import FIVE_TUPLE
from .encoding import (
    RULES_PER_WORD,
    ChildEntry,
    DecodedNode,
    decode_internal_node,
    decode_rule,
    unpack_leaf_word,
)
from .layout import MemoryImage

#: Header field widths of the 5-tuple, used for the 8-MSB extraction.
_WIDTHS = FIVE_TUPLE.widths


def header_msb8(header) -> tuple[int, ...]:
    """The 8 most significant bits of each of the 5 dimensions (Section 3)."""
    return tuple(
        (int(v) >> (w - 8)) if w > 8 else int(v)
        for v, w in zip(header, _WIDTHS)
    )


# ---------------------------------------------------------------------------
# Vectorised model
# ---------------------------------------------------------------------------
@dataclass
class AcceleratorRun:
    """Per-packet results of a trace run.

    ``occupancy`` is the number of cycles the packet holds the memory port
    (= its memory accesses, with a 1-cycle floor); ``latency`` adds the
    root-index cycle that pipelining hides from throughput.
    """

    match: np.ndarray
    occupancy: np.ndarray
    internal_fetches: np.ndarray
    leaf_words: np.ndarray

    @property
    def n_packets(self) -> int:
        return len(self.match)

    @property
    def latency(self) -> np.ndarray:
        return self.occupancy + 1

    @property
    def total_cycles(self) -> int:
        return int(self.occupancy.sum())

    def mean_occupancy(self) -> float:
        return float(self.occupancy.mean()) if self.occupancy.size else 0.0

    def worst_latency(self) -> int:
        return int(self.latency.max()) if self.occupancy.size else 0

    def throughput_pps(self, freq_hz: float) -> float:
        """Steady-state packets/second at clock ``freq_hz``."""
        mo = self.mean_occupancy()
        return freq_hz / mo if mo else 0.0

    def memory_accesses(self) -> np.ndarray:
        """Words fetched per packet (Table 8's hardware metric)."""
        return self.internal_fetches + self.leaf_words


class Accelerator:
    """Vectorised trace-level model of the accelerator."""

    def __init__(self, image: MemoryImage) -> None:
        self.image = image
        self.tree = image.tree
        # Compile the flat traversal kernel up front: every run_trace
        # batch-walks the tree, and forked pipeline shards inherit the
        # compiled buffers copy-on-write instead of each recompiling.
        self.tree.flat
        n_nodes = len(self.tree.nodes)
        # Dense per-node placement arrays for vectorised occupancy math.
        self._pos = np.zeros(n_nodes, dtype=np.int64)
        self._nrules = np.zeros(n_nodes, dtype=np.int64)
        for nid, p in image.placements.items():
            if p.is_leaf:
                self._pos[nid] = p.pos
                self._nrules[nid] = p.n_rules

    def run_trace(self, trace: PacketTrace) -> AcceleratorRun:
        bl = self.tree.batch_lookup(trace)
        x = np.maximum(bl.internal_nodes.astype(np.int64) - 1, 0)
        has_leaf = bl.leaf_id >= 0
        leaf_ids = np.where(has_leaf, bl.leaf_id, 0)
        n_rules = self._nrules[leaf_ids]
        z = np.where(bl.match_pos >= 0, bl.match_pos, np.maximum(n_rules - 1, 0))
        words = np.where(
            has_leaf & (n_rules > 0),
            (self._pos[leaf_ids] + z) // RULES_PER_WORD + 1,
            0,
        )
        occupancy = np.maximum(x + words, 1).astype(np.int64)
        return AcceleratorRun(
            match=bl.match,
            occupancy=occupancy,
            internal_fetches=x,
            leaf_words=words.astype(np.int64),
        )

    def classify(self, header) -> int:
        """Single-packet convenience wrapper."""
        trace = PacketTrace(
            np.asarray([list(header)], dtype=np.uint32), self.tree.schema
        )
        return int(self.run_trace(trace).match[0])

    def classify_batch(self, headers: np.ndarray) -> np.ndarray:
        """Engine-protocol batch lookup: matched rule ids only."""
        return self.run_trace(PacketTrace(headers, self.tree.schema)).match

    def classify_trace(self, trace: PacketTrace) -> np.ndarray:
        return self.run_trace(trace).match


# ---------------------------------------------------------------------------
# Cycle-accurate FSM
# ---------------------------------------------------------------------------
@dataclass
class FsmPacketRecord:
    """Completion record for one packet processed by the FSM."""

    index: int
    latch_cycle: int
    done_cycle: int
    match: int
    accesses: int  # memory words fetched
    occupancy: int  # datapath cycles (fetches + the dead-end decide cycle)


@dataclass
class FsmTraceEvent:
    """One line of the Figure-5 execution trace."""

    cycle: int
    state: str
    detail: str


@dataclass
class _Active:
    """The packet currently owning the datapath."""

    index: int
    header: tuple[int, ...]
    entry: ChildEntry  # next child entry to follow (pos = start slot)
    latch_cycle: int
    accesses: int = 0
    cycles: int = 0


class AcceleratorFSM:
    """Cycle-accurate simulator driven purely by the encoded memory words."""

    def __init__(self, image: MemoryImage, record_trace: bool = False) -> None:
        self.image = image
        self.memory = image.memory
        self.record_trace = record_trace
        self.events: list[FsmTraceEvent] = []
        self._node_cache: dict[int, DecodedNode] = {}
        self._leaf_cache: dict[int, list] = {}
        # Reset: one cycle moves the root word into Reg A (Figure 5).
        self.cycle = 1
        self.reg_a = self._decode_node(0)
        self._emit(1, "LOAD_ROOT", "word 0 -> Reg A")

    # -- functional caches (do not affect cycle accounting) -------------
    def _decode_node(self, addr: int) -> DecodedNode:
        if addr not in self._node_cache:
            self._node_cache[addr] = decode_internal_node(self.memory.read(addr))
        return self._node_cache[addr]

    def _decode_leaf_word(self, addr: int) -> list:
        if addr not in self._leaf_cache:
            self._leaf_cache[addr] = [
                decode_rule(s) for s in unpack_leaf_word(self.memory.read(addr))
            ]
        return self._leaf_cache[addr]

    def _emit(self, cycle: int, state: str, detail: str) -> None:
        if self.record_trace:
            self.events.append(FsmTraceEvent(cycle, state, detail))

    # ------------------------------------------------------------------
    def run(self, trace: PacketTrace) -> list[FsmPacketRecord]:
        """Classify a whole trace with back-to-back input (Start always
        asserted while packets remain), returning per-packet records."""
        headers = [tuple(int(v) for v in row) for row in trace.headers]
        n = len(headers)
        records: list[FsmPacketRecord | None] = [None] * n
        next_pkt = 0
        reg_b: _Active | None = None
        active: _Active | None = None
        ready = True

        def try_latch() -> None:
            """Sample Start: move the next packet into Reg B and compute
            its root child entry with Reg A (combinational)."""
            nonlocal reg_b, next_pkt, ready
            if ready and reg_b is None and next_pkt < n:
                hdr = headers[next_pkt]
                idx_val = self.reg_a.child_index(header_msb8(hdr))
                entry = self.reg_a.entries[idx_val]
                reg_b = _Active(next_pkt, hdr, entry, latch_cycle=self.cycle)
                self._emit(self.cycle, "LATCH", f"pkt {next_pkt} -> Reg B")
                next_pkt += 1
                ready = False

        guard = 0
        while next_pkt < n or reg_b is not None or active is not None:
            guard += 1
            if guard > 1_000_000 + 64 * n:
                raise SimulationError("FSM did not terminate")
            self.cycle += 1
            try_latch()

            if active is None:
                if reg_b is not None:
                    # Dispatch from idle: this cycle is the latch/index
                    # cycle; the first memory fetch happens next cycle.
                    active, reg_b, ready = reg_b, None, True
                    self._emit(self.cycle, "DISPATCH", f"pkt {active.index}")
                else:
                    self._emit(self.cycle, "IDLE", "waiting for Start")
                continue

            # ---- one memory-port cycle for the active packet ----------
            active.cycles += 1
            entry = active.entry

            if entry.is_empty:
                # Dead end straight out of the root entry (computed at
                # latch time): no rules in this sub-region; the decide
                # cycle completes without a fetch.
                self._emit(self.cycle, "NO_MATCH", f"pkt {active.index}")
                records[active.index] = self._finish(active, -1)
                active, reg_b, ready = reg_b, None, True
                continue

            if not entry.is_leaf:
                node = self._decode_node(entry.addr)
                active.accesses += 1
                self._emit(
                    self.cycle, "TRAVERSE",
                    f"pkt {active.index} internal@{entry.addr}",
                )
                nxt = node.entries[node.child_index(header_msb8(active.header))]
                if nxt.is_empty:
                    # The child index is combinational: an empty entry is
                    # detected in the same cycle as the node fetch.
                    self._emit(self.cycle, "NO_MATCH", f"pkt {active.index}")
                    records[active.index] = self._finish(active, -1)
                    active, reg_b, ready = reg_b, None, True
                    continue
                active.entry = nxt
                continue

            # Leaf word fetch + 30 parallel comparators.  Reg B frees up
            # (Reg B -> Reg C) so Ready rises and Start is monitored
            # during the compare (Figure 5).
            active.accesses += 1
            ready = True
            try_latch()
            word_rules = self._decode_leaf_word(entry.addr)
            self._emit(
                self.cycle, "COMPARE",
                f"pkt {active.index} leaf@{entry.addr}+{entry.pos}",
            )
            outcome = self._compare_word(word_rules, entry.pos, active.header)
            if outcome == "continue":
                active.entry = ChildEntry(is_leaf=True, addr=entry.addr + 1, pos=0)
                continue
            match = -1 if outcome == "nomatch" else int(outcome)
            self._emit(self.cycle, "MATCH", f"pkt {active.index} -> {match}")
            records[active.index] = self._finish(active, match)
            active, reg_b, ready = reg_b, None, True

        self._emit(self.cycle, "DRAIN", "all packets classified")
        out = [r for r in records if r is not None]
        if len(out) != n:
            raise SimulationError("FSM lost packets")
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def _compare_word(word_rules, start: int, header):
        """One pass of the 30 parallel comparators over a fetched word.

        Returns a matching rule id, ``"nomatch"`` (end-of-leaf hit) or
        ``"continue"`` (leaf extends into the next word).
        """
        for slot in range(start, RULES_PER_WORD):
            r = word_rules[slot]
            if r.valid and r.matches(header):
                return r.rule_id
            if r.end_of_leaf:
                return "nomatch"
        return "continue"

    def _finish(self, active: _Active, match: int) -> FsmPacketRecord:
        return FsmPacketRecord(
            index=active.index,
            latch_cycle=active.latch_cycle,
            done_cycle=self.cycle,
            match=match,
            accesses=active.accesses,
            occupancy=active.cycles,
        )


def figure5_trace(image: MemoryImage, trace: PacketTrace) -> list[FsmTraceEvent]:
    """Run the FSM with event recording — a textual version of Figure 5's
    flow for documentation and the architecture example."""
    fsm = AcceleratorFSM(image, record_trace=True)
    fsm.run(trace)
    return fsm.events
