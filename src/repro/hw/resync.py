"""Incremental `MemoryImage` re-sync after in-place tree updates.

The incremental classifier patches the flat software kernel through
``FlatTree.patch`` after every update batch, but until this module the
hardware image had to be rebuilt from scratch — a full 3-pass place and
re-encode of every word — to reflect the same patch.  The load
interface of Figure 4 is a single shared write port, so re-sync cost
*is* the paper's update story on hardware: what matters is how many
600-byte word writes an update costs, not how fast Python re-encodes.

:func:`resync_memory_image` re-places the (already patched) tree —
placement is pure bookkeeping, no encoding — diffs the new placement
map against the image's, and rewrites **only** the words whose content
can have changed:

* internal nodes that were touched by the update, moved, or have a
  child whose placement (leaf/addr/pos triple, including the
  empty-leaf ``EMPTY_ADDR`` state) changed — a child entry embeds its
  target's address;
* every word overlapped by a touched/moved/resized leaf's old or new
  span (leaf words are shared between consecutive leaves, so the whole
  word is re-packed from the leaves that now live there);
* the synthetic register-root word, when a wrapped root's leaf moved.

Words that fall out of the layout are discarded without a write-port
transaction; a net-growing layout still raises
:class:`~repro.core.errors.CapacityError` like a full build.  The
word-level write counter (``ResyncStats.words_rewritten``, a delta of
the array's write-port accounting) is what the tests pin ≪ the full
re-encode word count.

One structural escape hatch: when the root flips between leaf and
internal (a wrapped root got split by an update), the BFS numbering of
every word shifts at once — the re-sync falls back to a full in-place
rebuild and says so (``ResyncStats.full_rebuild``).

**Caches:** :class:`~repro.hw.Accelerator` precomputes dense
placement arrays at construction and ``AcceleratorFSM`` memoises
decoded words — build a *fresh* accelerator from the image after a
re-sync; the image itself is updated in place.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.base import EMPTY_CHILD
from ..core.errors import CapacityError
from .encoding import (
    EMPTY_ADDR,
    RULES_PER_WORD,
    ChildEntry,
    empty_rule_slot,
    encode_internal_node,
    encode_rule,
    pack_leaf_word,
)
from .layout import MemoryImage, _encode_node, _place
from .memory import Placement


@dataclass
class ResyncStats:
    """Write-port accounting of one incremental re-sync."""

    #: Word writes issued (the shared load-interface transactions).
    words_rewritten: int = 0
    #: Stale words dropped from the array (no write-port cost).
    words_discarded: int = 0
    #: Internal-node words among the rewrites (incl. a synthetic root).
    internal_rewritten: int = 0
    #: Leaf words among the rewrites.
    leaf_words_rewritten: int = 0
    #: Words the re-synced layout occupies in total.
    total_words: int = 0
    #: True when a structural change forced a full in-place rebuild.
    full_rebuild: bool = False


def _triple(p: Placement) -> tuple:
    return (p.is_leaf, p.addr, p.pos)


def _full_rebuild(image: MemoryImage) -> ResyncStats:
    """Escape hatch: re-place and re-encode everything in place."""
    from .layout import build_memory_image

    fresh = build_memory_image(
        image.tree, image.speed, image.memory.capacity_words
    )
    image.memory = fresh.memory
    image.placements = fresh.placements
    image.root_wrapped = fresh.root_wrapped
    image.n_internal_words = fresh.n_internal_words
    image.n_leaf_words = fresh.n_leaf_words
    return ResyncStats(
        words_rewritten=fresh.memory.writes,
        total_words=fresh.memory.words_used,
        full_rebuild=True,
    )


def resync_memory_image(image: MemoryImage, touched=()) -> ResyncStats:
    """Patch ``image`` to match its (already updated) tree.

    ``touched`` is the set of node ids whose *content* changed —
    :attr:`UpdateStats.touched <repro.algorithms.incremental.
    UpdateStats>` from the incremental classifier's last batch (the
    object itself is accepted), or any iterable of ids.  Placement
    drift (moved/new/resized nodes) is detected by the diff itself;
    ``touched`` covers content changes that leave placement untouched
    (a rule swapped inside a same-size leaf, a re-cut internal node).
    """
    tree = image.tree
    touched_set = {int(n) for n in getattr(touched, "touched", touched)}
    (placements, n_internal_words, total_words, root_wrapped,
     internal_order, leaf_order) = _place(tree, image.speed)
    if root_wrapped != image.root_wrapped:
        return _full_rebuild(image)
    memory = image.memory
    if total_words > memory.capacity_words:
        raise CapacityError(
            f"re-synced structure needs {total_words} words but the "
            f"accelerator holds {memory.capacity_words}; reduce spfac "
            f"or binth to trade throughput for memory"
        )
    old = image.placements
    rules = tree.ruleset.rules
    stats = ResyncStats(total_words=total_words)
    writes_before = memory.writes

    # -- internal nodes -------------------------------------------------
    dirty_internal: list[int] = []
    for nid in internal_order:
        p = placements[nid]
        op = old.get(nid)
        dirty = (
            nid in touched_set
            or op is None
            or _triple(op) != _triple(p)
        )
        if not dirty:
            for child in tree.nodes[nid].children:
                c = int(child)
                if c == EMPTY_CHILD:
                    continue
                ocp = old.get(c)
                if ocp is None or _triple(ocp) != _triple(placements[c]):
                    dirty = True
                    break
        if dirty:
            dirty_internal.append(nid)
    for nid in dirty_internal:
        memory.write(placements[nid].addr, _encode_node(tree, nid, placements))
    stats.internal_rewritten = len(dirty_internal)

    # -- leaves ----------------------------------------------------------
    word_leaves: dict[int, list[int]] = {}
    for nid in leaf_order:
        p = placements[nid]
        if p.addr == EMPTY_ADDR:
            continue
        for w in range(p.addr, p.addr + p.words_spanned):
            word_leaves.setdefault(w, []).append(nid)
    changed_leaves: set[int] = set()
    dirty_words: set[int] = set()
    for nid in leaf_order:
        p = placements[nid]
        op = old.get(nid)
        if (
            nid not in touched_set
            and op is not None
            and op.is_leaf == p.is_leaf
            and op.addr == p.addr
            and op.pos == p.pos
            and op.n_rules == p.n_rules
        ):
            continue
        changed_leaves.add(nid)
        if p.addr != EMPTY_ADDR:
            dirty_words.update(range(p.addr, p.addr + p.words_spanned))
        if op is not None and op.is_leaf and op.addr != EMPTY_ADDR:
            dirty_words.update(
                range(op.addr, op.addr + max(op.words_spanned, 1))
            )
    for w in sorted(dirty_words):
        if w < n_internal_words or w >= total_words:
            # Now an internal word (its mover re-encoded it above) or
            # fallen off the end of the layout (discarded below).
            continue
        slots: list[int | None] = [None] * RULES_PER_WORD
        for nid in word_leaves.get(w, ()):
            p = placements[nid]
            node = tree.nodes[nid]
            for j, rid in enumerate(node.rule_ids):
                abs_slot = p.addr * RULES_PER_WORD + p.pos + j
                if abs_slot // RULES_PER_WORD == w:
                    slots[abs_slot % RULES_PER_WORD] = encode_rule(
                        rules[int(rid)],
                        int(rid),
                        end_of_leaf=(j == p.n_rules - 1),
                    )
        memory.write(
            w,
            pack_leaf_word(
                [s if s is not None else empty_rule_slot() for s in slots]
            ),
        )
        stats.leaf_words_rewritten += 1

    # -- synthetic register root (wrapped leaf-only tree) ---------------
    if root_wrapped and (0 in changed_leaves or 0 in touched_set):
        lp = placements[0]
        entry = ChildEntry(is_leaf=True, addr=lp.addr, pos=lp.pos)
        memory.write(
            0,
            encode_internal_node(
                masks=[0x80, 0, 0, 0, 0], shifts=[7, 0, 0, 0, 0],
                entries=[entry, entry],
            ),
        )
        stats.internal_rewritten += 1

    # -- drop stale words ------------------------------------------------
    used = {placements[nid].addr for nid in internal_order}
    used.update(word_leaves)
    if root_wrapped:
        used.add(0)
    for addr in [a for a in memory.addresses() if a not in used]:
        memory.discard(addr)
        stats.words_discarded += 1
    missing = sorted(a for a in used if a not in memory)
    assert not missing, f"re-sync left unwritten words: {missing[:5]}"

    image.placements = placements
    image.n_internal_words = n_internal_words
    image.n_leaf_words = total_words - n_internal_words
    stats.words_rewritten = memory.writes - writes_before
    return stats
