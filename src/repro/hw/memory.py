"""The accelerator's on-chip memory array.

The paper's design point: **1024 words × 4800 bits** (614,400 bytes),
spread over **134 block RAMs** on the Virtex5SX95T (54 % of its BRAM), one
word readable per clock through a 4800-bit bus.  The design "could easily
be doubled to 2048 memory words" on larger parts (Section 3), so capacity
is a constructor parameter here.

:class:`MemoryImage` is the bridge between the tree builders and the
cycle-accurate simulator: it owns the encoded words, the placement map
(node id -> word/position) and the write-port bookkeeping that models the
shared load interface (``Write_enable`` / ``write_address`` in Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import CapacityError, EncodingError
from .encoding import WORD_BITS, WORD_BYTES, word_from_bytes, word_to_bytes

#: Paper design point.
DEFAULT_CAPACITY_WORDS = 1024
N_MEMORY_BLOCKS = 134

#: The larger part the paper mentions (Virtex XC5VLX330T, 1,458,000 bytes).
EXTENDED_CAPACITY_WORDS = 2048


@dataclass
class Placement:
    """Where a tree node lives in the memory array."""

    node_id: int
    is_leaf: bool
    addr: int  # word address
    pos: int  # rule slot within the word (leaves; internals are pos 0)
    n_rules: int = 0  # leaf rule count
    words_spanned: int = 1  # words a full scan of this leaf touches


class MemoryArray:
    """A write-once array of 4800-bit words with capacity accounting."""

    def __init__(self, capacity_words: int = DEFAULT_CAPACITY_WORDS) -> None:
        if capacity_words < 1:
            raise CapacityError("capacity must be at least one word")
        self.capacity_words = capacity_words
        self._words: dict[int, int] = {}
        self.writes = 0  # write-port transactions (load phase model)

    def write(self, addr: int, word: int) -> None:
        if not 0 <= addr < self.capacity_words:
            raise CapacityError(
                f"word address {addr} outside the {self.capacity_words}-word "
                f"memory (the paper's design holds {DEFAULT_CAPACITY_WORDS}; "
                f"reduce spfac to trade throughput for memory, Section 3)"
            )
        if word < 0 or word >> WORD_BITS:
            raise EncodingError("word exceeds 4800 bits")
        self._words[addr] = word
        self.writes += 1

    def read(self, addr: int) -> int:
        try:
            return self._words[addr]
        except KeyError:
            raise CapacityError(f"read of unwritten word {addr}") from None

    def discard(self, addr: int) -> None:
        """Forget a word that fell out of the layout (incremental
        re-sync).  Not a write-port transaction: the hardware simply
        stops pointing at the word, so ``writes`` is not charged."""
        self._words.pop(addr, None)

    def addresses(self) -> list[int]:
        """The written word addresses (unordered snapshot)."""
        return list(self._words)

    def __contains__(self, addr: int) -> bool:
        return addr in self._words

    @property
    def words_used(self) -> int:
        return len(self._words)

    @property
    def bytes_used(self) -> int:
        """The paper's memory metric: used words × 600 bytes."""
        return self.words_used * WORD_BYTES

    def to_bytes(self) -> bytes:
        """Serialise the array (used words, in address order)."""
        out = bytearray()
        for addr in sorted(self._words):
            out += addr.to_bytes(2, "big") + word_to_bytes(self._words[addr])
        return bytes(out)

    @staticmethod
    def from_bytes(data: bytes, capacity_words: int = DEFAULT_CAPACITY_WORDS) -> "MemoryArray":
        if len(data) % (2 + WORD_BYTES):
            raise EncodingError("corrupt memory dump")
        arr = MemoryArray(capacity_words)
        step = 2 + WORD_BYTES
        for i in range(0, len(data), step):
            addr = int.from_bytes(data[i : i + 2], "big")
            arr.write(addr, word_from_bytes(data[i + 2 : i + step]))
        return arr
