"""Declarative line-card RX stage graphs over the serving engine.

::

    from repro.stages import StageGraph, default_graph

    graph = default_graph({"backend": "hypercuts", "shards": 2})
    with StageGraph(graph, ruleset) as lc:
        report = lc.run(trace)          # EngineReport with .stages
    for stage in report.stages:
        print(stage.name, stage.packets_in, stage.dropped, stage.energy_j)

See ``docs/linecard.md`` for the spec schema, the stage reference and
the energy/fault semantics.
"""

from .graph import StageGraph, StageReport
from .spec import (
    QUEUE_POLICIES,
    STAGE_KINDS,
    StageGraphSpec,
    StageSpec,
    default_graph,
)

__all__ = [
    "QUEUE_POLICIES",
    "STAGE_KINDS",
    "StageGraph",
    "StageGraphSpec",
    "StageReport",
    "StageSpec",
    "default_graph",
]
