"""`StageGraph` — execute a line-card RX pipeline over the Engine.

The runner walks a :class:`~repro.stages.StageGraphSpec` per segment,
vectorised: each stage transforms an ``alive`` boolean mask (and, after
the classify stage, the segment's match array) over the whole segment at
once, so the graph costs O(stages) numpy passes per segment, not a
Python loop per packet.  The ``classify`` stage runs the survivors
through the engine's own :class:`~repro.engine.pipeline.
ClassificationPipeline` — shards, flow cache, supervision, live updates
and all — which is what makes the stage bit-identical to a bare
:meth:`Engine.classify <repro.serve.Engine.classify>` run by
construction.

Telemetry: every stage accumulates a :class:`StageReport` (packets
in/out, per-reason drops, busy seconds, per-stage energy through the
:mod:`repro.energy` models, injected faults and retries).  The run
returns a normal :class:`~repro.serve.EngineReport` whose ``match`` is
the *full stream-order* array (policy-dropped packets report ``-1``,
exactly what a bare run reports for a no-match packet) and whose
``stages`` field carries the per-stage reports into ``to_dict()``.

Energy semantics (documented in ``docs/linecard.md``): the soft stages
(parse/drop/extract/rewrite/queue_select) charge SRAM access energy
(:data:`~repro.energy.SRAM_ACCESS_ENERGY_J`) per modelled memory touch;
``tcam_prefilter`` charges the :class:`~repro.energy.TcamModel` per
lookup at the Ayama operating frequency for its actual slot count;
``flow_cache`` charges its probe; ``classify`` charges the
:class:`~repro.energy.CacheEnergyModel` per-packet energy at the
measured hit rate.

Updates: a run that carries a live update schedule puts the
``tcam_prefilter`` stage into **monitor mode** — the prefilter's image
is the build-time ruleset, so dropping on it could shadow a rule
inserted mid-stream; the stage keeps its telemetry and energy accounting
(plus a ``would_drop`` counter) but filters nothing, preserving
bit-identity with the bare updating engine.

Faults: a :class:`~repro.engine.faults.FaultPlan` splits into its
engine sub-plan (routed into the pipeline run, unchanged semantics) and
its stage sub-plan (specs with ``stage`` set, matched by stage *kind*).
Stage ``crash``/``error`` specs raise at the stage boundary and are
retried under the engine's supervision policy — with the default
``times=1`` the retry recovers and output stays bit-identical;
``drop_storm`` drops every packet reaching the stage, accounted under
the ``"drop_storm"`` drop reason.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..baselines.tcam_classifier import TcamClassifier
from ..core.errors import CapacityError, InjectedFault, ServingFaultError
from ..core.packet import PacketTrace
from ..core.rules import DIM_DST_PORT, DIM_PROTO, FIVE_TUPLE
from ..core.updates import ScheduledUpdate
from ..energy import SRAM_ACCESS_ENERGY_J, CacheEnergyModel, TcamModel
from ..energy.tcam import TCAM_ENTRY_BYTES
from ..engine.faults import FaultPlan
from ..engine.supervision import FaultReport
from ..serve import Engine, EngineReport
from ..serve.ingest import (
    DEFAULT_SEGMENT_PACKETS,
    iter_trace_file,
    iter_trace_segments,
)
from .spec import StageGraphSpec, StageSpec

#: Mixing weights for the deterministic queue-select flow hash (odd
#: constants, one per 5-tuple field; Fibonacci-hash style).
_HASH_WEIGHTS = np.array(
    [0x9E3779B1, 0x85EBCA77, 0xC2B2AE3D, 0x27D4EB2F, 0x165667B1],
    dtype=np.uint64,
)


def _flow_hash(rows: np.ndarray) -> np.ndarray:
    """A 64-bit mixed hash per header row (vectorised).

    Each column is folded in through a full splitmix64 finaliser round,
    so structured field deltas cannot cancel the way they could under a
    plain weighted sum.  Distinct flows colliding is a ~2**-64-per-pair
    event — far below the simulator's noise floor."""
    h = np.zeros(rows.shape[0], dtype=np.uint64)
    for j in range(rows.shape[1]):
        h ^= rows[:, j].astype(np.uint64) + _HASH_WEIGHTS[
            j % len(_HASH_WEIGHTS)
        ]
        h += np.uint64(0x9E3779B97F4A7C15)
        h = (h ^ (h >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        h = (h ^ (h >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        h ^= h >> np.uint64(31)
    return h


@dataclass
class StageReport:
    """Per-stage telemetry of one :class:`StageGraph` run."""

    name: str
    kind: str
    packets_in: int = 0
    packets_out: int = 0
    busy_s: float = 0.0
    energy_j: float = 0.0
    #: Per-reason drop counts (e.g. ``malformed``, ``acl_proto``,
    #: ``tcam_miss``, ``drop_storm``).
    drops: dict = field(default_factory=dict)
    faults_injected: int = 0
    retries: int = 0
    #: Stage-specific extras (TCAM slot count, queue occupancy, cache
    #: hit rate, ...), flat JSON-safe scalars/lists only.
    extra: dict = field(default_factory=dict)

    @property
    def dropped(self) -> int:
        return int(sum(self.drops.values()))

    def drop(self, reason: str, count: int) -> None:
        if count:
            self.drops[reason] = self.drops.get(reason, 0) + int(count)

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "kind": self.kind,
            "packets_in": self.packets_in,
            "packets_out": self.packets_out,
            "busy_s": round(self.busy_s, 6),
            "energy_j": self.energy_j,
        }
        if self.packets_in:
            out["energy_per_packet_j"] = self.energy_j / self.packets_in
        if self.drops:
            out["drops"] = dict(self.drops)
        if self.faults_injected:
            out["faults_injected"] = self.faults_injected
        if self.retries:
            out["retries"] = self.retries
        if self.extra:
            out["extra"] = dict(self.extra)
        return out


class StageGraph:
    """A line-card RX serving session: one spec, one engine, one TCAM.

    Usable as a context manager (closes the engine's worker pool).  The
    optional prebuilt ``classifier`` is forwarded to the engine so sweep
    cells can share builds exactly like bare cells do.
    """

    def __init__(
        self,
        spec: StageGraphSpec | dict | str,
        ruleset,
        *,
        classifier=None,
        **backend_params,
    ) -> None:
        if isinstance(spec, (str, Path)):
            spec = StageGraphSpec.load(str(spec))
        elif isinstance(spec, dict):
            spec = StageGraphSpec.from_dict(spec)
        self.spec = spec
        self.ruleset = ruleset
        self.config = spec.engine_config()
        self.engine = Engine(
            self.config, ruleset, classifier=classifier, **backend_params
        )
        self.tcam: TcamClassifier | None = None
        self._tcam_bypass: str | None = None
        #: Memoised TCAM verdicts keyed by sorted 64-bit flow hash (the
        #: prefilter ruleset is static for the graph's lifetime), plus a
        #: direct-indexed table for the warm path (one gather per
        #: packet; slot evictions just fall back to the sorted memo).
        self._tcam_keys = np.empty(0, dtype=np.uint64)
        self._tcam_vals = np.empty(0, dtype=np.int64)
        tc = spec.stage("tcam_prefilter")
        if tc is not None:
            if ruleset.schema is not FIVE_TUPLE:
                self._tcam_bypass = "schema"
            else:
                max_slots = tc.params.get("max_slots", 0)
                try:
                    self.tcam = TcamClassifier(
                        ruleset, **({"max_slots": max_slots} if max_slots else {})
                    )
                except CapacityError:
                    # The expansion blew the stage's slot budget: a real
                    # line card would fall back to software/full lookup,
                    # so the stage passes everything through (recorded).
                    self._tcam_bypass = "max_slots"
        if self.tcam is not None:
            self._tcam_tkeys = np.full(
                1 << 18, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64
            )
            self._tcam_tvals = np.zeros(1 << 18, dtype=np.int64)

    @property
    def classifier(self):
        return self.engine.classifier

    def close(self) -> None:
        self.engine.close()

    def __enter__(self) -> "StageGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _segments(self, source, segment_packets: int):
        """Normalise any supported source into a segment iterator."""
        if isinstance(source, (str, Path)):
            return iter_trace_file(
                str(source),
                self.ruleset.schema,
                segment_packets,
                on_malformed=self.config.on_malformed,
                quarantine=self.engine.quarantine,
            )
        if isinstance(source, PacketTrace):
            return iter_trace_segments(source, segment_packets)
        if isinstance(source, np.ndarray):
            trace = PacketTrace(
                np.asarray(source, dtype=np.uint32), self.ruleset.schema
            )
            return iter_trace_segments(trace, segment_packets)
        return iter(source)

    # ------------------------------------------------------------------
    def run(
        self,
        source,
        *,
        updates=None,
        faults=None,
        segment_packets: int = DEFAULT_SEGMENT_PACKETS,
    ) -> EngineReport:
        """Serve ``source`` through every stage and return the merged
        report.

        ``source`` is a :class:`PacketTrace`, a raw header array, a
        trace-file path (parsed through the quarantine machinery per the
        ``parse`` stage's policy) or any iterable of segments.
        ``updates`` is a stream-coordinate update schedule forwarded to
        the classify stage; ``faults`` a
        :class:`~repro.engine.faults.FaultPlan` (or dict/list/path).
        """
        plan = FaultPlan.coerce(faults)
        stage_plan = plan.stage_plan() if plan is not None else None
        engine_plan = plan.engine_plan() if plan is not None else None
        entries = self.engine._normalise_stream_updates(updates)
        policy = self.engine.pipeline.policy
        max_retries = policy.max_retries if policy is not None else 0
        fail_fast = policy is None or policy.fault_policy == "fail"

        reports = [
            StageReport(name=s.name, kind=s.kind) for s in self.spec.stages
        ]
        quar_before = (
            self.engine.quarantine.count if self.engine.quarantine else 0
        )
        results = []
        matches: list[np.ndarray] = []
        seg_index = 0
        offset = 0
        upd_i = 0
        stage_retries = 0
        storm_events: list[str] = []
        started = time.perf_counter()
        segments = self._segments(source, segment_packets)
        while True:
            quar0 = (
                self.engine.quarantine.count if self.engine.quarantine else 0
            )
            pull0 = time.perf_counter()
            try:
                segment = next(segments)
            except StopIteration:
                break
            pull_s = time.perf_counter() - pull0
            trace = self.engine._as_trace(segment)
            n = trace.n_packets
            quarantined = (
                self.engine.quarantine.count - quar0
                if self.engine.quarantine
                else 0
            )
            alive = np.ones(n, dtype=bool)
            seg_match = np.full(n, -1, dtype=np.int64)
            scratch: dict = {}  # per-segment shared work (flow hash)
            # Updates due inside this segment, rebased onto the classify
            # stage's survivor coordinates (the batch applies at the
            # same *packet*, wherever upstream drops moved its index).
            due: list[tuple[int, ScheduledUpdate]] = []
            while (
                upd_i < len(entries)
                and entries[upd_i].at_packet < offset + n
            ):
                due.append(
                    (max(0, entries[upd_i].at_packet - offset), entries[upd_i])
                )
                upd_i += 1
            for rep, stage in zip(reports, self.spec.stages):
                n_in = int(alive.sum())
                rep.packets_in += n_in
                if stage.kind == "parse":
                    rep.packets_in += quarantined
                    rep.busy_s += pull_s
                    rep.drop("malformed", quarantined)
                    rep.energy_j += (
                        (n_in + quarantined) * SRAM_ACCESS_ENERGY_J
                    )
                    rep.packets_out += n_in
                    continue
                attempt = 0
                while True:
                    specs = (
                        stage_plan.stage_faults(stage.kind, seg_index, attempt)
                        if stage_plan is not None
                        else ()
                    )
                    t0 = time.perf_counter()
                    try:
                        raising = [
                            s for s in specs if s.kind in ("crash", "error")
                        ]
                        if raising:
                            rep.faults_injected += len(raising)
                            s0 = raising[0]
                            raise InjectedFault(
                                s0.message
                                or f"injected {s0.kind} in stage "
                                f"{stage.kind} (segment {seg_index})",
                                kind=s0.kind,
                                chunk=seg_index,
                            )
                        storms = [
                            s for s in specs if s.kind == "drop_storm"
                        ]
                        if storms:
                            rep.faults_injected += len(storms)
                            rep.drop("drop_storm", int(alive.sum()))
                            storm_events.append(
                                f"stage:{stage.kind}:drop_storm"
                                f"@segment{seg_index}"
                            )
                            alive[:] = False
                        result = self._run_stage(
                            stage, rep, trace, alive, seg_match,
                            seg_index=seg_index, due=due,
                            engine_plan=engine_plan,
                            tcam_monitor=bool(entries),
                            scratch=scratch,
                        )
                        if result is not None:
                            results.append(result)
                        break
                    except InjectedFault as exc:
                        if fail_fast or attempt >= max_retries:
                            raise ServingFaultError(
                                f"stage {stage.kind!r} fault not recovered "
                                f"(policy "
                                f"{self.config.fault_policy!r}): {exc}",
                                chunk=seg_index,
                                cause=getattr(exc, "kind", "error"),
                            ) from exc
                        rep.retries += 1
                        stage_retries += 1
                        attempt += 1
                    finally:
                        rep.busy_s += time.perf_counter() - t0
                rep.packets_out += int(alive.sum())
            matches.append(seg_match)
            offset += n
            seg_index += 1
        elapsed = time.perf_counter() - started
        return self._finalise(
            reports, results, matches, elapsed,
            n_segments=seg_index,
            n_packets=offset,
            quarantined=(
                self.engine.quarantine.count - quar_before
                if self.engine.quarantine
                else 0
            ),
            stage_retries=stage_retries,
            storm_events=storm_events,
        )

    # ------------------------------------------------------------------
    def _run_stage(
        self,
        stage: StageSpec,
        rep: StageReport,
        trace: PacketTrace,
        alive: np.ndarray,
        seg_match: np.ndarray,
        *,
        seg_index: int,
        due,
        engine_plan,
        tcam_monitor: bool = False,
        scratch: dict | None = None,
    ):
        """Execute one stage body over the segment; returns the
        classify stage's :class:`PipelineResult`, else ``None``."""
        headers = trace.headers
        n_in = int(alive.sum())
        all_alive = n_in == trace.n_packets
        scratch = scratch if scratch is not None else {}

        def seg_hash() -> np.ndarray:
            """The segment's per-packet flow hash, computed once and
            shared by the tcam_prefilter memo and the queue hash."""
            h = scratch.get("flow_hash")
            if h is None:
                h = scratch["flow_hash"] = _flow_hash(headers)
            return h if all_alive else h[alive]
        if stage.kind == "drop":
            deny_proto = stage.params.get("deny_proto", [])
            if deny_proto:
                hit = alive & np.isin(
                    headers[:, DIM_PROTO],
                    np.asarray(deny_proto, dtype=np.uint32),
                )
                rep.drop("acl_proto", int(hit.sum()))
                alive &= ~hit
            for lo, hi in stage.params.get("deny_dst_ports", []):
                dport = headers[:, DIM_DST_PORT]
                hit = alive & (dport >= lo) & (dport <= hi)
                rep.drop("acl_dst_port", int(hit.sum()))
                alive &= ~hit
            rep.energy_j += n_in * SRAM_ACCESS_ENERGY_J
        elif stage.kind == "extract":
            fields_ = stage.params.get(
                "fields", list(range(trace.schema.ndim))
            )
            # Projection copy models the extraction datapath: one
            # modelled access per extracted field per live packet.
            if n_in:
                _ = np.ascontiguousarray(
                    headers[alive][:, np.asarray(fields_, dtype=np.intp)]
                )
            rep.extra["fields"] = list(fields_)
            rep.energy_j += n_in * len(fields_) * SRAM_ACCESS_ENERGY_J
        elif stage.kind == "tcam_prefilter":
            if self.tcam is None:
                rep.extra["bypassed"] = self._tcam_bypass or "unavailable"
            elif n_in:
                rows = headers if all_alive else headers[alive]
                verdict = self._tcam_verdicts(rows, seg_hash())
                survivors = verdict >= 0
                if tcam_monitor:
                    # Live updates ride this run: the prefilter's image
                    # is the *build-time* ruleset, so dropping on it
                    # could shadow a rule inserted mid-stream.  A real
                    # line card re-programs the TCAM out of band; the
                    # model observes (telemetry + energy) without
                    # filtering until the run carries no updates.
                    rep.extra["mode"] = "monitor"
                    rep.extra["would_drop"] = rep.extra.get(
                        "would_drop", 0
                    ) + int((~survivors).sum())
                elif not survivors.all():
                    rep.drop("tcam_miss", int((~survivors).sum()))
                    keep = alive.copy()
                    keep[alive] = survivors
                    alive &= keep
                rep.extra["n_slots"] = self.tcam.n_slots
                rep.extra["unique_flows"] = int(self._tcam_keys.size)
                model = TcamModel()
                rep.energy_j += n_in * model.energy_per_lookup_j(
                    self.tcam.n_slots * TCAM_ENTRY_BYTES, self.tcam_freq_hz
                )
        elif stage.kind == "flow_cache":
            # The cache executes inside the engine (CachedClassifier is
            # bit-identical by construction); this stage charges the
            # probe energy and its hit/miss telemetry is backfilled from
            # the merged report in _finalise.
            rep.extra["entries"] = self.config.cache_entries
            rep.extra["ways"] = self.config.cache_ways
            rep.energy_j += n_in * SRAM_ACCESS_ENERGY_J
        elif stage.kind == "classify":
            if n_in == trace.n_packets:
                sub = trace  # nothing dropped upstream: zero-copy
            else:
                sub = PacketTrace(
                    np.ascontiguousarray(headers[alive]), trace.schema
                )
            local = []
            if due:
                # Rebase each batch's offset from segment coordinates to
                # survivor coordinates: it applies after however many of
                # the first ``at`` packets survived the upstream stages.
                for at, entry in due:
                    local.append(
                        ScheduledUpdate(
                            int(alive[:at].sum()), entry.batch
                        )
                    )
            result = self.engine.pipeline.run(
                sub,
                updates=local or None,
                faults=(
                    engine_plan.for_segment(seg_index)
                    if engine_plan is not None
                    else None
                ),
            )
            seg_match[alive] = result.match
            return result
        elif stage.kind == "rewrite":
            matched = seg_match if all_alive else seg_match[alive]
            touched = int((matched >= 0).sum())
            nbytes = stage.params.get("bytes", 14)
            rep.extra["bytes"] = nbytes
            rep.extra["packets_rewritten"] = rep.extra.get(
                "packets_rewritten", 0
            ) + touched
            # One modelled 32-bit SRAM write per 4 header bytes touched.
            rep.energy_j += (
                touched * max(1, nbytes // 4) * SRAM_ACCESS_ENERGY_J
            )
        elif stage.kind == "queue_select":
            queues = stage.params.get("queues", 8)
            policy = stage.params.get("policy", "hash")
            if n_in:
                if policy == "match":
                    m = seg_match if all_alive else seg_match[alive]
                    q = np.where(m >= 0, m % queues, 0).astype(np.int64)
                else:
                    q = (seg_hash() % np.uint64(queues)).astype(np.int64)
                counts = np.bincount(q, minlength=queues)
                prev = rep.extra.get("queue_occupancy", [0] * queues)
                rep.extra["queue_occupancy"] = [
                    int(a + b) for a, b in zip(prev, counts)
                ]
            rep.energy_j += n_in * SRAM_ACCESS_ENERGY_J
        return None

    #: Operating frequency the TCAM prefilter is modelled at (the Ayama
    #: 10128's 77 MHz datasheet point).
    tcam_freq_hz = 77e6

    def _tcam_verdicts(self, rows: np.ndarray, h: np.ndarray) -> np.ndarray:
        """Per-packet TCAM verdicts through the flow-hash memo.

        The prefilter image is static for the graph's lifetime, so each
        distinct flow costs the O(slots) Python model walk exactly once
        across every run — the simulator-side analogue of the device's
        single-cycle parallel compare — and every later sighting is a
        vectorised ``searchsorted`` probe.  ``h`` is the rows' flow
        hash (``_flow_hash``, precomputed once per segment).  Energy is
        still charged per *packet* by the caller: every packet crosses
        the TCAM."""
        slot = (h & np.uint64(self._tcam_tkeys.size - 1)).astype(np.intp)
        hit = self._tcam_tkeys[slot] == h
        if hit.all():  # warm path: one gather + compare per packet
            return self._tcam_tvals[slot]
        out = np.empty(rows.shape[0], dtype=np.int64)
        out[hit] = self._tcam_tvals[slot[hit]]
        miss = ~hit
        miss_h = h[miss]
        keys = self._tcam_keys
        # Resolve slot losers from the sorted memo; truly new flows go
        # through the TCAM model once and join both structures.
        if keys.size:
            pos = np.minimum(np.searchsorted(keys, miss_h), keys.size - 1)
            known = keys[pos] == miss_h
        else:
            known = np.zeros(miss_h.size, dtype=bool)
        new = ~known
        if new.any():
            new_h = miss_h[new]
            uniq_h, first = np.unique(new_h, return_index=True)
            verdicts = self.tcam.classify_batch(rows[miss][new][first])
            merged_keys = np.concatenate([keys, uniq_h])
            merged_vals = np.concatenate(
                [self._tcam_vals, verdicts.astype(np.int64)]
            )
            order = np.argsort(merged_keys, kind="stable")
            self._tcam_keys = merged_keys[order]
            self._tcam_vals = merged_vals[order]
        resolved = self._tcam_vals[
            np.searchsorted(self._tcam_keys, miss_h)
        ]
        out[miss] = resolved
        miss_slots = slot[miss]
        self._tcam_tkeys[miss_slots] = miss_h
        self._tcam_tvals[miss_slots] = resolved
        return out

    # ------------------------------------------------------------------
    def _finalise(
        self,
        reports: list[StageReport],
        results,
        matches,
        elapsed: float,
        *,
        n_segments: int,
        n_packets: int,
        quarantined: int,
        stage_retries: int,
        storm_events: list[str],
    ) -> EngineReport:
        report = EngineReport.merge(
            results, elapsed_s=elapsed,
            energy_model=self.config.energy_model,
        )
        full = (
            np.concatenate(matches)
            if matches
            else np.empty(0, dtype=np.int64)
        )
        report.match = full
        report.n_packets = n_packets
        report.matched = int((full >= 0).sum())
        report.n_segments = n_segments
        if not results:
            report.backend = self.config.backend
        # Classify-stage energy needs the run's measured hit rate, so it
        # lands after the merge; the flow_cache stage's telemetry is the
        # merged cache counters.
        model = CacheEnergyModel.for_classifier(self.engine.classifier)
        hit_rate = report.cache_hit_rate
        for rep in reports:
            if rep.kind == "classify":
                per_packet = (
                    model.energy_per_packet_j(hit_rate)
                    if hit_rate is not None
                    else model.uncached_energy_per_packet_j()
                )
                rep.energy_j += rep.packets_in * per_packet
            elif rep.kind == "flow_cache" and report.cache_hits is not None:
                rep.extra["hits"] = report.cache_hits
                rep.extra["misses"] = report.cache_misses
                rep.extra["hit_rate"] = (
                    round(hit_rate, 4) if hit_rate is not None else None
                )
        report.stages = reports
        if quarantined or stage_retries or storm_events:
            if report.fault is None:
                report.fault = FaultReport()
            report.fault.quarantined += quarantined
            report.fault.retries += stage_retries
            report.fault.chunk_errors += stage_retries
            report.fault.degradations.extend(storm_events)
        return report
