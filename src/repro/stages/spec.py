"""`StageGraphSpec` — the declarative description of a line-card RX path.

The paper models only the classification step of a line card, but every
real RX path composes it from stages — the NetFPGA reference pipeline,
P4 ingress controls and the classic seven-stage Ethernet RX path
(buffer -> drop malformed -> extract headers -> TCAM prefilter -> flow
table -> rewrite -> queue select) all share the shape.  A
``StageGraphSpec`` names that shape once, declaratively: an ordered
tuple of typed :class:`StageSpec` entries, each a ``kind`` from
:data:`STAGE_KINDS` plus validated per-kind parameters.

Like :class:`~repro.serve.EngineConfig` and
:class:`~repro.sweeps.SweepSpec`, a spec round-trips losslessly through
plain JSON (``to_dict``/``from_dict``, ``save``/``load``) and rejects
unknown keys, unknown kinds, out-of-order stages and invalid parameter
values loudly at construction with a :class:`~repro.core.errors.
ConfigError` naming the offending field.

Stage kinds (canonical pipeline order)
--------------------------------------

``parse``
    header ingestion and validation; malformed input is dead-lettered
    through the :class:`~repro.serve.ingest.QuarantineLog` machinery
    (``on_malformed`` mirrors ``EngineConfig``).
``drop``
    ACL predicate drops: protocol deny list and destination-port deny
    ranges, applied before any lookup spends memory accesses.
``extract``
    header-field projection — selects which fields downstream stages
    copy; models the extraction datapath cost, never changes matches.
``tcam_prefilter``
    the :class:`~repro.baselines.tcam_classifier.TcamClassifier` as a
    coarse pre-match: packets matching *no* TCAM slot cannot match any
    rule (first-match over the same ruleset), so only survivors feed
    the classify stage and bit-identity is preserved by construction.
``flow_cache``
    flow-cache geometry for the classify engine (the cache executes
    inside the engine — :class:`~repro.engine.flowcache.
    CachedClassifier` is bit-identical by construction — and reports
    its hit/miss telemetry as this stage's record).
``classify``
    the full classification engine: any registered backend through
    :meth:`~repro.serve.Engine.build_classifier`, with an
    ``EngineConfig`` overlay dict as its parameter.
``rewrite``
    header rewrite of matched packets (models the MAC/VLAN rewrite
    write traffic; never changes matches).
``queue_select``
    hashes survivors onto ``queues`` output queues and reports the
    per-queue occupancy histogram.
"""

from __future__ import annotations

import copy
import dataclasses
import json
from dataclasses import dataclass, field

from ..core.errors import ConfigError
from ..serve import EngineConfig

#: Every stage kind, in canonical pipeline order.  A spec's stages must
#: be a subsequence of this order (the pipeline is linear; the only
#: branch point is ``queue_select``'s fan-out at the end).
STAGE_KINDS = (
    "parse",
    "drop",
    "extract",
    "tcam_prefilter",
    "flow_cache",
    "classify",
    "rewrite",
    "queue_select",
)

#: Allowed parameter keys (and validators) per stage kind.
_INT = ("int", int)
_PARAM_SCHEMA: dict[str, dict] = {
    "parse": {"on_malformed": ("str", str)},
    "drop": {"deny_proto": ("int_list", None), "deny_dst_ports": ("range_list", None)},
    "extract": {"fields": ("int_list", None)},
    "tcam_prefilter": {"max_slots": _INT},
    "flow_cache": {"entries": _INT, "ways": _INT, "max_age": _INT},
    "classify": {"engine": ("dict", dict)},
    "rewrite": {"bytes": _INT},
    "queue_select": {"queues": _INT, "policy": ("str", str)},
}

#: Queue-assignment policies ``queue_select`` accepts: ``"hash"``
#: spreads by a deterministic 5-tuple flow hash, ``"match"`` by the
#: matched rule id (unmatched packets land on queue 0).
QUEUE_POLICIES = ("hash", "match")


def _check_param(kind: str, key: str, value):
    """Validate one stage parameter value; returns the coerced value."""
    tag, typ = _PARAM_SCHEMA[kind][key]
    label = f"{kind} stage parameter {key!r}"
    if tag == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigError(f"{label} must be an int, got {value!r}")
        if value < 0:
            raise ConfigError(f"{label} must be >= 0, got {value}")
        return value
    if tag == "str":
        if not isinstance(value, str):
            raise ConfigError(f"{label} must be a string, got {value!r}")
        return value
    if tag == "dict":
        if not isinstance(value, dict):
            raise ConfigError(f"{label} must be a dict, got {value!r}")
        return copy.deepcopy(value)
    if tag == "int_list":
        if not isinstance(value, (list, tuple)):
            raise ConfigError(f"{label} must be a list of ints, got {value!r}")
        out = []
        for v in value:
            if isinstance(v, bool) or not isinstance(v, int) or v < 0:
                raise ConfigError(
                    f"{label} must contain non-negative ints, got {v!r}"
                )
            out.append(v)
        return out
    # range_list: [[lo, hi], ...]
    if not isinstance(value, (list, tuple)):
        raise ConfigError(f"{label} must be a list of [lo, hi] pairs")
    out = []
    for pair in value:
        if (
            not isinstance(pair, (list, tuple))
            or len(pair) != 2
            or any(isinstance(v, bool) or not isinstance(v, int) for v in pair)
        ):
            raise ConfigError(
                f"{label} must contain [lo, hi] int pairs, got {pair!r}"
            )
        lo, hi = pair
        if lo < 0 or hi < lo:
            raise ConfigError(
                f"{label} pair [{lo}, {hi}] is not a valid range"
            )
        out.append([lo, hi])
    return out


@dataclass(frozen=True)
class StageSpec:
    """One typed pipeline stage: a kind, a display name, parameters."""

    kind: str
    name: str = ""
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in STAGE_KINDS:
            raise ConfigError(
                f"unknown stage kind {self.kind!r}; "
                f"expected one of {', '.join(STAGE_KINDS)}"
            )
        set_ = object.__setattr__
        if not self.name:
            set_(self, "name", self.kind)
        if not isinstance(self.params, dict):
            raise ConfigError(
                f"stage {self.name!r} params must be a dict, "
                f"got {type(self.params).__name__}"
            )
        allowed = _PARAM_SCHEMA[self.kind]
        unknown = sorted(set(self.params) - set(allowed))
        if unknown:
            raise ConfigError(
                f"unknown {self.kind} stage parameter(s): "
                f"{', '.join(unknown)}; known: {', '.join(sorted(allowed))}"
            )
        set_(
            self,
            "params",
            {
                k: _check_param(self.kind, k, v)
                for k, v in self.params.items()
            },
        )
        if self.kind == "parse":
            from ..serve.ingest import ON_MALFORMED

            mode = self.params.get("on_malformed", "quarantine")
            if mode not in ON_MALFORMED:
                raise ConfigError(
                    f"parse stage on_malformed {mode!r}; "
                    f"expected one of {', '.join(ON_MALFORMED)}"
                )
        if self.kind == "queue_select":
            policy = self.params.get("policy", "hash")
            if policy not in QUEUE_POLICIES:
                raise ConfigError(
                    f"queue_select policy {policy!r}; "
                    f"expected one of {', '.join(QUEUE_POLICIES)}"
                )
            if self.params.get("queues", 8) < 1:
                raise ConfigError("queue_select queues must be >= 1")
        if self.kind == "flow_cache":
            entries = self.params.get("entries", 0)
            ways = self.params.get("ways", 4)
            if entries and entries % max(ways, 1):
                raise ConfigError(
                    f"flow_cache entries ({entries}) must be a multiple "
                    f"of ways ({ways})"
                )

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind}
        if self.name != self.kind:
            out["name"] = self.name
        if self.params:
            out["params"] = copy.deepcopy(self.params)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "StageSpec":
        if not isinstance(data, dict):
            raise ConfigError(
                f"StageSpec.from_dict expects a dict, "
                f"got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown StageSpec field(s): {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        if "kind" not in data:
            raise ConfigError("StageSpec requires a 'kind' field")
        return cls(**data)


@dataclass(frozen=True)
class StageGraphSpec:
    """Declarative, validated, immutable line-card RX pipeline.

    ``stages`` must contain exactly one ``classify`` stage, at most one
    stage of every other kind, and follow the canonical
    :data:`STAGE_KINDS` order.  The classify stage's ``engine``
    parameter is an :class:`~repro.serve.EngineConfig` overlay dict;
    a ``flow_cache`` stage owns the cache geometry (a classify overlay
    that also names cache fields is rejected as ambiguous).
    """

    name: str = "linecard-rx"
    stages: tuple[StageSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigError(
                f"name must be a non-empty string, got {self.name!r}"
            )
        stages = tuple(
            s if isinstance(s, StageSpec) else StageSpec.from_dict(s)
            for s in self.stages
        )
        object.__setattr__(self, "stages", stages)
        if not stages:
            raise ConfigError("a stage graph needs at least one stage")
        kinds = [s.kind for s in stages]
        for kind in set(kinds):
            if kinds.count(kind) > 1:
                raise ConfigError(f"duplicate {kind!r} stage in graph")
        if kinds.count("classify") != 1:
            raise ConfigError("a stage graph needs exactly one classify stage")
        order = [STAGE_KINDS.index(k) for k in kinds]
        if order != sorted(order):
            raise ConfigError(
                f"stages out of canonical order: {' -> '.join(kinds)}; "
                f"expected a subsequence of {' -> '.join(STAGE_KINDS)}"
            )
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate stage names: {names!r}")
        # Validate the engine overlay (and the cache-ownership rule)
        # eagerly, so a bad graph file fails at load, not mid-run.
        self.engine_config()

    # ------------------------------------------------------------------
    def stage(self, kind: str) -> StageSpec | None:
        """The graph's stage of ``kind``, or ``None`` when absent."""
        for s in self.stages:
            if s.kind == kind:
                return s
        return None

    def engine_config(self) -> EngineConfig:
        """The :class:`~repro.serve.EngineConfig` the classify stage
        (plus the flow_cache and parse stages, which own the cache
        geometry and the malformed-line policy) resolves to."""
        classify = self.stage("classify")
        assert classify is not None  # __post_init__ guarantees it
        overlay = classify.params.get("engine", {})
        cache = self.stage("flow_cache")
        if cache is not None:
            clash = sorted(
                k for k in overlay
                if k in ("cache_entries", "cache_ways", "cache_max_age")
            )
            if clash:
                raise ConfigError(
                    f"classify engine overlay names {', '.join(clash)} but "
                    f"the graph has a flow_cache stage owning the cache "
                    f"geometry; set it in one place"
                )
        merged = {**EngineConfig().to_dict(), **overlay}
        if cache is not None:
            merged["cache_entries"] = cache.params.get("entries", 4096)
            merged["cache_ways"] = cache.params.get("ways", 4)
            merged["cache_max_age"] = cache.params.get("max_age", 0)
        parse = self.stage("parse")
        if parse is not None:
            merged["on_malformed"] = parse.params.get(
                "on_malformed", "quarantine"
            )
        return EngineConfig.from_dict(merged)

    # -- dict/JSON round-trip --------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "stages": [s.to_dict() for s in self.stages],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StageGraphSpec":
        if not isinstance(data, dict):
            raise ConfigError(
                f"StageGraphSpec.from_dict expects a dict, "
                f"got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"name", "stages"})
        if unknown:
            raise ConfigError(
                f"unknown StageGraphSpec field(s): {', '.join(unknown)}"
            )
        stages = data.get("stages", ())
        if not isinstance(stages, (list, tuple)):
            raise ConfigError(
                f"stages must be a list, got {type(stages).__name__}"
            )
        return cls(
            name=data.get("name", "linecard-rx"),
            stages=tuple(StageSpec.from_dict(s) for s in stages),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "StageGraphSpec":
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(
                f"cannot load stage graph {path!r}: {exc}"
            ) from None
        return cls.from_dict(data)


def default_graph(
    engine: dict | None = None,
    *,
    name: str = "linecard-rx",
    cache_entries: int = 4096,
    cache_ways: int = 4,
    queues: int = 8,
) -> StageGraphSpec:
    """The full line-card RX pipeline over a given engine overlay.

    This is the graph the sweep ``scenario`` axis and the overhead
    bench execute: every stage kind, permissive drop predicates (no ACL
    denies — bit-identity with a bare classify run holds end to end).
    ``cache_entries=0`` omits the flow_cache stage entirely.
    """
    stages = [
        StageSpec(kind="parse"),
        StageSpec(kind="drop"),
        StageSpec(kind="extract"),
        StageSpec(kind="tcam_prefilter"),
    ]
    if cache_entries:
        stages.append(
            StageSpec(
                kind="flow_cache",
                params={"entries": cache_entries, "ways": cache_ways},
            )
        )
    stages += [
        StageSpec(kind="classify", params={"engine": dict(engine or {})}),
        StageSpec(kind="rewrite"),
        StageSpec(kind="queue_select", params={"queues": queues}),
    ]
    return StageGraphSpec(name=name, stages=tuple(stages))
