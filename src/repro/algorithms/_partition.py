"""Vectorised partition primitives shared by the HiCuts/HyperCuts builders.

Building a decision tree is dominated by one kernel: *given a node region,
a candidate cut (dimension(s) + cut counts), how many rules land in each
child?*  The original algorithms evaluate this kernel for every candidate
while doubling cut counts (HiCuts eq (1)) or enumerating combinations
(HyperCuts eqs (2)/(4)), so it must be fast.

Following the HPC guides, the kernel never loops over rules in Python:

* a rule's child span in one dimension is two integer expressions
  (``first``/``last`` child coordinate) evaluated on whole arrays;
* per-child counts come from a difference array (+1 at ``first``, -1 after
  ``last``; prefix-sum) — O(N + ncuts) per candidate instead of O(N*ncuts);
* multi-dimensional max-child counts use the k-dimensional inclusion-
  exclusion version of the same trick (2^k scatter passes);
* the final rule->children assignment expands (rule, child) pairs with
  ``np.repeat`` and groups them with one stable argsort.

All coordinates are ``int64``; field values are < 2^32 and cut counts
<= 2^16, so products stay well inside the 63-bit range.
"""

from __future__ import annotations

import numpy as np

from .opcount import NULL_COUNTER


def coord_spans(
    rlo: np.ndarray,
    rhi: np.ndarray,
    region_lo: int,
    region_hi: int,
    ncuts: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Child-coordinate interval of each rule for an equal-interval cut.

    ``rlo``/``rhi`` are the rules' bounds in the cut dimension (already
    known to overlap the region).  Returns ``(first, last)`` int64 arrays.
    Uses the same indexing function as lookup (``(v - lo) * ncuts // span``)
    so assignment and traversal can never disagree.
    """
    lo = np.int64(region_lo)
    span = np.int64(region_hi) - lo + 1
    clo = np.maximum(rlo.astype(np.int64), lo)
    chi = np.minimum(rhi.astype(np.int64), np.int64(region_hi))
    if ncuts >= span:
        return clo - lo, chi - lo
    first = ((clo - lo) * ncuts) // span
    last = ((chi - lo) * ncuts) // span
    return first, last


def child_counts_1d(
    first: np.ndarray, last: np.ndarray, ncuts: int
) -> np.ndarray:
    """Per-child rule counts via a difference array (O(N + ncuts))."""
    diff = np.zeros(ncuts + 1, dtype=np.int64)
    np.add.at(diff, first, 1)
    np.add.at(diff, last + 1, -1)
    return np.cumsum(diff[:ncuts])


def refs_and_max_1d(
    first: np.ndarray, last: np.ndarray, ncuts: int
) -> tuple[int, int]:
    """(total child references, max rules in any child) for a 1-D cut.

    ``total`` is the Σ-rules-at-children term of HiCuts' space measure
    (eq (1)/(3)); ``max`` is the dimension-choice heuristic the paper uses
    ("pick the dimension which returns the smallest largest child").
    """
    counts = child_counts_1d(first, last, ncuts)
    refs = int((last - first + 1).sum())
    return refs, int(counts.max()) if ncuts else 0


def max_count_grid(
    firsts: list[np.ndarray], lasts: list[np.ndarray], counts: tuple[int, ...]
) -> int:
    """Max rules in any child of a multi-dimensional cut grid.

    k-dimensional inclusion-exclusion difference array: for every corner
    subset S of the k axes we scatter (-1)^|S| at the rule's box corner,
    then prefix-sum along every axis.  Cost: 2^k scatters of N indices
    plus a prod(counts)-cell cumsum, instead of N * prod(counts) work.
    """
    k = len(counts)
    shape = tuple(c + 1 for c in counts)
    diff = np.zeros(shape, dtype=np.int64)
    for corner in range(1 << k):
        idx = []
        sign = 1
        for d in range(k):
            if corner >> d & 1:
                idx.append(lasts[d] + 1)
                sign = -sign
            else:
                idx.append(firsts[d])
        np.add.at(diff, tuple(idx), sign)
    for axis in range(k):
        np.cumsum(diff, axis=axis, out=diff)
    core = diff[tuple(slice(0, c) for c in counts)]
    return int(core.max()) if core.size else 0


def refs_multi(firsts: list[np.ndarray], lasts: list[np.ndarray]) -> int:
    """Total child references of a multi-dimensional cut (Π per-dim spans)."""
    if not firsts:
        return 0
    total = np.ones(len(firsts[0]), dtype=np.int64)
    for f, l in zip(firsts, lasts):
        total *= l - f + 1
    return int(total.sum())


def assign_children(
    rule_ids: np.ndarray,
    firsts: list[np.ndarray],
    lasts: list[np.ndarray],
    counts: tuple[int, ...],
    ops=NULL_COUNTER,
) -> list[np.ndarray]:
    """Split ``rule_ids`` into ``prod(counts)`` per-child arrays.

    ``firsts[d][i]``/``lasts[d][i]`` give rule i's child-coordinate span in
    cut axis d; a rule lands in the Cartesian product of its spans.  The
    expansion is done axis by axis with ``np.repeat``; a final stable sort
    groups references by flat child index while preserving rule priority
    order inside each child (rule_ids are ascending and the expansion is
    lexicographic in (rule, child)).

    Returns a list of int64 arrays, one per flat child index (row-major in
    the order of ``counts``); empty children get empty arrays.
    """
    n = len(rule_ids)
    n_children = 1
    for c in counts:
        n_children *= c
    if n == 0:
        return [np.empty(0, dtype=np.int64) for _ in range(n_children)]

    strides = []
    acc = 1
    for c in reversed(counts):
        strides.append(acc)
        acc *= c
    strides.reverse()

    # Iteratively expand (rule_ref, flat_base) by each axis.
    ref = np.arange(n, dtype=np.int64)  # index into rule_ids
    flat = np.zeros(n, dtype=np.int64)
    for f, l, stride in zip(firsts, lasts, strides):
        lens = (l - f + 1)[ref]
        total = int(lens.sum())
        base = np.repeat(flat + f[ref] * stride, lens)
        # offset within each group: arange(total) - start-of-group
        starts = np.cumsum(lens) - lens
        offs = (np.arange(total, dtype=np.int64) - np.repeat(starts, lens)) * stride
        flat = base + offs
        ref = np.repeat(ref, lens)
    ops.add("mem_write", len(flat))
    ops.add("alu", 2 * len(flat))

    order = np.argsort(flat, kind="stable")
    flat_sorted = flat[order]
    ids_sorted = rule_ids[ref[order]]
    # Boundaries of each child's slice inside the sorted reference list.
    bounds = np.searchsorted(flat_sorted, np.arange(n_children + 1, dtype=np.int64))
    return [
        ids_sorted[bounds[j]: bounds[j + 1]] for j in range(n_children)
    ]


def clipped_bounds(
    rlo: np.ndarray, rhi: np.ndarray, region_lo: int, region_hi: int
) -> tuple[np.ndarray, np.ndarray]:
    """Rule bounds clipped to a region interval (int64)."""
    clo = np.maximum(rlo.astype(np.int64), np.int64(region_lo))
    chi = np.minimum(rhi.astype(np.int64), np.int64(region_hi))
    return clo, chi


def all_rules_identical_in_region(
    arrays, rule_ids: np.ndarray, region: tuple[tuple[int, int], ...]
) -> bool:
    """True when every rule clips to the same box inside ``region``.

    If so, no cut on any dimension can separate the rules and the node must
    become a leaf regardless of binth (wildcard-heavy firewall sets hit
    this constantly; it is what creates their oversized leaves).
    """
    for d, (lo, hi) in enumerate(region):
        clo, chi = clipped_bounds(arrays.lo[d, rule_ids], arrays.hi[d, rule_ids], lo, hi)
        if clo.size and (clo.min() != clo.max() or chi.min() != chi.max()):
            return False
    return True


def eliminate_redundant(
    arrays, rule_ids: np.ndarray, region: tuple[tuple[int, int], ...],
    ops=NULL_COUNTER,
) -> np.ndarray:
    """Drop rules shadowed inside ``region`` by a single earlier rule.

    Rule r is removable when some higher-priority rule s in the same list
    satisfies clip(s) ⊇ clip(r) on every dimension: any packet in the
    region matching r would already have matched s, so r can never be the
    first match here.  This is the standard HiCuts/HyperCuts leaf pruning;
    it preserves first-match semantics exactly (tests verify against the
    linear-search oracle).

    Because coverage is transitive (⊇ chains bottom out at a surviving
    rule), "r is covered by *some* earlier rule" — removed or not — is
    equivalent to the sequential keep/remove recurrence, so the whole
    check is one O(n² · ndim) boolean matrix with no Python loop.
    """
    n = len(rule_ids)
    if n <= 1:
        return rule_ids
    nd = len(region)
    covered = np.ones((n, n), dtype=bool)  # covered[i, j]: rule j ⊇ rule i
    for d, (lo, hi) in enumerate(region):
        clo, chi = clipped_bounds(
            arrays.lo[d, rule_ids], arrays.hi[d, rule_ids], lo, hi
        )
        covered &= (clo[None, :] <= clo[:, None]) & (chi[:, None] <= chi[None, :])
    ops.add("alu", 4 * nd * n * n)
    ops.add("mem_read", 2 * n * n)
    # Only earlier (higher-priority, lower index) rules may shadow.
    covered &= np.tri(n, k=-1, dtype=bool)
    keep = ~covered.any(axis=1)
    return rule_ids[keep]
