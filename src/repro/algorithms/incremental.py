"""Incremental rule updates on built decision trees.

The paper picks HiCuts/HyperCuts over RFC specifically because they
"allow incremental updates to a ruleset" (Sections 1/2), and Section 4
sketches the deployment: the control plane keeps a copy of the search
structure, updates it, and re-syncs the accelerator's memory through the
shared write interface.  The paper never specifies the update algorithm;
this module provides the standard one:

* **insert** — descend from the root into every child slot the new
  rule's footprint overlaps; append the rule to each reached leaf; a
  leaf that grows beyond ``binth`` has its subtree rebuilt in place with
  the same builder configuration.  Empty child slots covered by the rule
  become fresh leaves.
* **remove** — delete the rule id from every leaf (a tombstone remains
  in the rule table so existing ids stay stable; ``rebuild()`` compacts).

Merged children make the tree a DAG, so blind mutation of a shared node
would leak the update into sibling regions that the rule does not cover.
The updater therefore maintains reference counts and **clones shared
nodes copy-on-write** before touching them — the soundness property the
tests check is, as everywhere in this library, exact agreement with a
first-match linear search over the live rules.

Updates are billed to an :class:`OpCounter` so the control-plane energy
cost of an update batch can be compared with a full rebuild (see
``examples/incremental_updates.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.errors import BuildError
from ..core.geometry import child_index
from ..core.packet import PacketTrace
from ..core.rules import Rule
from ..core.ruleset import RuleSet
from ..core.updates import OP_INSERT, OP_REMOVE, RuleUpdate, UpdateResult
from .base import EMPTY_CHILD, LEAF, DecisionTree, Node
from .hicuts import HiCutsBuilder, HiCutsConfig
from .hypercuts import HyperCutsBuilder, HyperCutsConfig
from .opcount import NULL_COUNTER, OpCounter


@dataclass
class UpdateStats:
    """What one insert/remove touched.

    ``touched`` holds the node ids whose compiled-kernel rows changed
    (mutated leaves, cloned/rebased nodes, re-pointed parents, spliced
    subtrees); the updater hands it to
    :meth:`~repro.algorithms.base.DecisionTree.mark_dirty` so the flat
    kernel is *patched* instead of recompiled.
    """

    leaves_touched: int = 0
    nodes_cloned: int = 0
    subtrees_rebuilt: int = 0
    new_leaves: int = 0
    touched: set[int] = field(default_factory=set)


class IncrementalClassifier:
    """A decision-tree classifier supporting in-place rule updates.

    Parameters mirror the builders; ``algorithm`` selects HiCuts or
    HyperCuts.  Inserted rules take the lowest priority (appended at the
    bottom of the ruleset), which is the common ACL-update pattern; a
    priority-ordered batch can be applied with :meth:`rebuild`.
    """

    def __init__(
        self,
        ruleset: RuleSet,
        algorithm: str = "hicuts",
        binth: int = 30,
        spfac: float = 4.0,
        hw_mode: bool = True,
        ops: OpCounter | None = None,
    ) -> None:
        self.ops = ops if ops is not None else NULL_COUNTER
        self.algorithm = algorithm
        self.binth = binth
        self.spfac = spfac
        self.hw_mode = hw_mode
        # Private ruleset copy: ids must stay stable across updates.
        self._ruleset = RuleSet(list(ruleset.rules), ruleset.schema, ruleset.name)
        self._live = np.ones(len(self._ruleset), dtype=bool)
        self.tree = self._build(self._ruleset)
        self._refcounts = self._count_refs()
        #: Ruleset version: bumped once per applied update batch.
        self.update_epoch = 0
        #: Node ids the most recent :meth:`apply_updates` batch touched
        #: (for incremental hardware re-sync; empty before any batch).
        self.last_touched: set[int] = set()

    # ------------------------------------------------------------------
    def _config(self):
        """Builder configuration for an *updatable* tree.

        Redundancy elimination is disabled: dropping a rule because an
        earlier rule shadows it is only sound while the shadowing rule
        is live, and :meth:`remove` merely strips ids from leaves — a
        later removal of the shadower would leave the eliminated rule
        unrecoverable (first found by the update fuzzer: insert a rule
        twice, rebuild a leaf, remove the first copy — the second copy
        had been eliminated and silently vanished).  Updatable trees
        therefore keep every overlapping rule in every leaf.
        """
        if self.algorithm == "hicuts":
            return HiCutsConfig(binth=self.binth, spfac=self.spfac,
                                hw_mode=self.hw_mode,
                                redundancy_elimination=False)
        if self.algorithm == "hypercuts":
            return HyperCutsConfig(binth=self.binth, spfac=self.spfac,
                                   hw_mode=self.hw_mode,
                                   redundancy_elimination=False)
        raise BuildError(f"unknown algorithm {self.algorithm!r}")

    def _build(self, ruleset: RuleSet) -> DecisionTree:
        cfg = self._config()
        ops = self.ops if isinstance(self.ops, OpCounter) else None
        if self.algorithm == "hicuts":
            return HiCutsBuilder(ruleset, cfg, ops).build()
        return HyperCutsBuilder(ruleset, cfg, ops).build()

    def _count_refs(self) -> dict[int, int]:
        refs: dict[int, int] = {0: 1}
        for node in self.tree.nodes:
            if node.children is None:
                continue
            for c in node.children:
                ci = int(c)
                if ci != EMPTY_CHILD:
                    refs[ci] = refs.get(ci, 0) + 1
        return refs

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_live_rules(self) -> int:
        return int(self._live.sum())

    def live_ruleset(self) -> RuleSet:
        """The semantically live rules, in priority order (the oracle's
        view; ids are compacted)."""
        rules = [
            r for i, r in enumerate(self._ruleset.rules) if self._live[i]
        ]
        return RuleSet(rules, self._ruleset.schema, f"{self._ruleset.name}+upd")

    def classify(self, header) -> int:
        """First-match over live rules (stable-id result)."""
        return self.tree.lookup(header).rule_id

    def classify_batch(self, headers: np.ndarray) -> np.ndarray:
        return self.tree.batch_lookup(
            PacketTrace(headers, self._ruleset.schema)
        ).match

    def fused_match(self, headers: np.ndarray) -> np.ndarray:
        """Match-only lookup for the fused cache hot path.  ``flat``
        flushes any pending kernel patch first, so the walk always sees
        the current ruleset epoch."""
        return self.tree.flat.batch_match(headers)

    def classify_trace(self, trace: PacketTrace) -> np.ndarray:
        return self.tree.batch_lookup(trace).match

    def memory_bytes(self) -> int:
        """Software search-structure model of the current (live) tree."""
        return self.tree.software_memory_bytes()

    def memory_accesses_per_lookup(self) -> int:
        return self.tree.stats().worst_case_sw_accesses

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, rule: Rule) -> UpdateStats:
        """Insert a rule at the lowest priority; returns touch stats."""
        rule.validate(self._ruleset.schema)
        # ``append`` extends the cached SoA view in place, so the new
        # rule's bounds are visible without an O(n) arrays rebuild.
        self._ruleset.append(rule)
        self._live = np.append(self._live, True)
        rid = len(self._ruleset) - 1

        stats = UpdateStats()
        root = self.tree.nodes[0]
        self._insert_into(
            0, rid, parent=None, slot=None,
            true_region=root.region, true_grid=root.grid_region, stats=stats,
        )
        self.ops.add("mem_write", 1)
        # Patch (not recompile) the compiled kernel rows we touched.
        self.tree.mark_dirty(stats.touched)
        return stats

    def remove(self, rule_id: int) -> UpdateStats:
        """Remove a rule by stable id (tombstoned until :meth:`rebuild`)."""
        if not 0 <= rule_id < len(self._ruleset) or not self._live[rule_id]:
            raise BuildError(f"rule {rule_id} is not live")
        self._live[rule_id] = False
        return self._scrub([rule_id])

    def _scrub(self, rule_ids: list[int]) -> UpdateStats:
        """One pass deleting the (already tombstoned) ``rule_ids`` from
        every leaf and pushed list — a k-removal batch costs one node
        scan, not k."""
        stats = UpdateStats()
        ids = np.asarray(rule_ids, dtype=np.int64)

        def keep_mask(stored: np.ndarray) -> np.ndarray:
            if ids.size == 1:
                return stored != ids[0]
            return ~np.isin(stored, ids)

        for nid, node in enumerate(self.tree.nodes):
            if node.is_leaf and node.rule_ids.size:
                mask = keep_mask(node.rule_ids)
                if not mask.all():
                    node.rule_ids = node.rule_ids[mask]
                    stats.leaves_touched += 1
                    stats.touched.add(nid)
                    self.ops.add("mem_write", 1)
            elif node.pushed.size:
                pushed = node.pushed[keep_mask(node.pushed)]
                if pushed.size != node.pushed.size:
                    node.pushed = pushed
                    stats.touched.add(nid)
        self.tree.mark_dirty(stats.touched)
        return stats

    def apply_updates(self, batch) -> UpdateResult:
        """Apply one control-plane batch of :class:`RuleUpdate` ops.

        Inserts take the next stable id; removals of ids that are not
        live are *skipped* (counted, not raised) — under churn an update
        stream may legitimately race its own earlier removals, and the
        serving path must not die for it.  Consecutive removals coalesce
        into one tree scrub (inserts flush the pending run first, so
        interleaving semantics are exactly sequential).  Every batch —
        including an empty one — advances :attr:`update_epoch` by one,
        so epochs number ruleset versions deterministically.
        """
        inserted = removed = skipped = 0
        ids: list[int] = []
        pending: list[int] = []
        touched: set[int] = set()

        def flush() -> None:
            if pending:
                touched.update(self._scrub(pending).touched)
                pending.clear()

        for op in batch:
            if not isinstance(op, RuleUpdate):
                raise BuildError(f"not a RuleUpdate: {op!r}")
            if op.op == OP_INSERT:
                flush()
                touched.update(self.insert(op.rule).touched)
                ids.append(len(self._ruleset) - 1)
                inserted += 1
            elif op.op == OP_REMOVE:
                rid = op.rule_id
                if 0 <= rid < len(self._ruleset) and self._live[rid]:
                    # Tombstone now so a duplicate removal later in this
                    # run is counted as skipped, exactly as sequential
                    # application would.
                    self._live[rid] = False
                    pending.append(rid)
                    removed += 1
                else:
                    skipped += 1
            else:  # pragma: no cover - RuleUpdate validates op
                raise BuildError(f"unknown update op {op.op!r}")
        flush()
        self.update_epoch += 1
        # Node ids whose kernel rows this batch changed — what an
        # incremental hardware re-sync (repro.hw.resync) needs to know.
        self.last_touched = touched
        return UpdateResult(
            epoch=self.update_epoch, inserted=inserted, removed=removed,
            skipped=skipped, inserted_ids=tuple(ids),
        )

    def rebuild(self) -> None:
        """Compact tombstones and rebuild the tree from scratch."""
        self._ruleset = self.live_ruleset()
        self._live = np.ones(len(self._ruleset), dtype=bool)
        self.tree = self._build(self._ruleset)
        self._refcounts = self._count_refs()

    # ------------------------------------------------------------------
    def _clone_if_shared(
        self, nid: int, parent: int | None, slot: int | None
    ) -> tuple[int, bool]:
        """Copy-on-write: give ``parent``'s ``slot`` a private copy of
        node ``nid`` when other child slots also point at it."""
        if parent is None or self._refcounts.get(nid, 1) <= 1:
            return nid, False
        node = self.tree.nodes[nid]
        clone = Node(
            kind=node.kind,
            region=node.region,
            grid_region=node.grid_region,
            cut_dims=node.cut_dims,
            cut_counts=node.cut_counts,
            children=None if node.children is None else node.children.copy(),
            rule_ids=node.rule_ids.copy(),
            pushed=node.pushed.copy(),
            depth=node.depth,
        )
        new_id = len(self.tree.nodes)
        self.tree.nodes.append(clone)
        parent_node = self.tree.nodes[parent]
        assert parent_node.children is not None
        # Re-point only THIS slot; congruent duplicates of the same slot
        # value that this rule also covers are handled by the caller
        # visiting each overlapping slot independently.
        parent_node.children[slot] = new_id
        self._refcounts[nid] -= 1
        self._refcounts[new_id] = 1
        if clone.children is not None:
            for c in clone.children:
                ci = int(c)
                if ci != EMPTY_CHILD:
                    self._refcounts[ci] = self._refcounts.get(ci, 0) + 1
        return new_id, True

    def _insert_into(
        self, nid: int, rid: int, parent: int | None, slot: int | None,
        true_region, true_grid, stats: UpdateStats,
    ) -> None:
        """Insert ``rid`` into the subtree rooted at ``nid``.

        ``true_region`` is the node's actual catchment box along this
        path.  Congruence-merged nodes store the *representative*
        sibling's box, which is position-shifted from the true one;
        lookup is position-independent (relative-bit arithmetic) so that
        is harmless, but insertion clips the new rule against a concrete
        box — so before mutating we give the node a private copy (CoW if
        shared) and *rebase* it onto the true box.  After the rebase all
        global-footprint math is exact.
        """
        node = self.tree.nodes[nid]
        needs_rebase = node.region != true_region
        if self._refcounts.get(nid, 1) > 1:
            nid, cloned = self._clone_if_shared(nid, parent, slot)
            node = self.tree.nodes[nid]
            stats.nodes_cloned += 1
            if cloned:
                # The clone's rows must be created and the parent's
                # children row now points at it.
                stats.touched.add(nid)
                if parent is not None:
                    stats.touched.add(parent)
        if needs_rebase:
            node.region = true_region
            node.grid_region = true_grid
            stats.touched.add(nid)  # region feeds the axis tables
        self.ops.add("mem_read", 1)

        if node.is_leaf:
            # Plain append: redundant rules are only an optimisation
            # concern, never a correctness one, and eliminating against a
            # possibly-hulled leaf region is not worth the subtlety here.
            node.rule_ids = np.append(node.rule_ids, rid)
            stats.leaves_touched += 1
            stats.touched.add(nid)
            if node.rule_ids.size > self.binth:
                self._rebuild_subtree(nid, stats)
            return

        # Internal node: every overlapped child slot receives the rule.
        rule = self._ruleset.rules[rid]
        spans: list[range] = []
        for dim, ncuts in zip(node.cut_dims, node.cut_counts):
            lo, hi = node.region[dim]
            rlo, rhi = rule.ranges[dim]
            clo, chi = max(rlo, lo), min(rhi, hi)
            if clo > chi:
                return  # the rule does not reach this node's region
            spans.append(
                range(
                    child_index(clo, lo, hi, ncuts),
                    child_index(chi, lo, hi, ncuts) + 1,
                )
            )
        strides = node.child_strides()
        self.ops.add("alu", 4 * len(spans))

        def visit(axis: int, flat: int) -> None:
            if axis == len(spans):
                self._insert_slot(nid, flat, rid, stats)
                return
            for coord in spans[axis]:
                visit(axis + 1, flat + coord * strides[axis])

        visit(0, 0)

    def _insert_slot(
        self, nid: int, flat: int, rid: int, stats: UpdateStats
    ) -> None:
        node = self.tree.nodes[nid]
        assert node.children is not None
        child = int(node.children[flat])
        region, grid = self._child_box(node, flat)
        if child == EMPTY_CHILD:
            # A fresh leaf materialises in this sub-region.
            new_id = len(self.tree.nodes)
            self.tree.nodes.append(
                Node(
                    kind=LEAF, region=region, grid_region=grid,
                    rule_ids=np.array([rid], dtype=np.int64),
                    depth=node.depth + 1,
                )
            )
            node.children[flat] = new_id
            self._refcounts[new_id] = 1
            stats.new_leaves += 1
            stats.touched.add(new_id)
            stats.touched.add(nid)  # children row gained the new leaf
            self.ops.add("alloc", 1)
            return
        self._insert_into(
            child, rid, parent=nid, slot=flat,
            true_region=region, true_grid=grid, stats=stats,
        )

    def _child_box(self, node: Node, flat: int):
        """Region of child ``flat`` (mirrors the builder's box math)."""
        from ..core.geometry import cut_interval, grid_cell_to_range

        region = list(node.region)
        grid = list(node.grid_region) if node.grid_region else None
        rem = flat
        for dim, ncuts, stride in zip(
            node.cut_dims, node.cut_counts, node.child_strides()
        ):
            coord = rem // stride
            rem %= stride
            if grid is not None:
                glo, ghi = node.grid_region[dim]  # type: ignore[index]
                cell = cut_interval(glo, ghi, ncuts)[coord]
                grid[dim] = cell
                region[dim] = grid_cell_to_range(
                    cell[0], cell[1], self.tree.schema.widths[dim]
                )
            else:
                lo, hi = node.region[dim]
                region[dim] = cut_interval(lo, hi, ncuts)[coord]
        return tuple(region), tuple(grid) if grid else None

    def _rebuild_subtree(self, nid: int, stats: UpdateStats) -> None:
        """Re-run the builder on an oversized leaf's rules and region,
        splicing the produced nodes into the tree."""
        node = self.tree.nodes[nid]
        sub_rules = node.rule_ids
        sub_ruleset = self.tree.ruleset  # rule ids are global
        cfg = self._config()  # removal-safe: no redundancy elimination
        if self.algorithm == "hicuts":
            builder = HiCutsBuilder(sub_ruleset, cfg)
        else:
            builder = HyperCutsBuilder(sub_ruleset, cfg)
        # Build with the leaf's region as the root universe.
        from ._builder import _WorkItem

        builder.nodes = [
            Node(kind=LEAF, region=node.region, grid_region=node.grid_region,
                 depth=node.depth)
        ]
        stack = [
            _WorkItem(0, sub_rules, node.region, node.grid_region, node.depth)
        ]
        while stack:
            builder._build_node(stack.pop(), stack)

        # Splice: builder node 0 replaces `nid`; the rest append with
        # offset ids.
        offset = len(self.tree.nodes)
        remap = {0: nid}
        for i in range(1, len(builder.nodes)):
            remap[i] = offset + i - 1
        for i, built in enumerate(builder.nodes):
            if built.children is not None:
                built.children = np.array(
                    [
                        EMPTY_CHILD if int(c) == EMPTY_CHILD else remap[int(c)]
                        for c in built.children
                    ],
                    dtype=np.int32,
                )
            if i == 0:
                self.tree.nodes[nid] = built
            else:
                self.tree.nodes.append(built)
        # Refresh refcounts for the spliced region.
        self._refcounts = self._count_refs()
        stats.subtrees_rebuilt += 1
        stats.touched.add(nid)
        stats.touched.update(range(offset, offset + len(builder.nodes) - 1))
        self.ops.add("alloc", len(builder.nodes))
