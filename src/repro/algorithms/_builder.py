"""Common construction machinery for HiCuts/HyperCuts (original + modified).

The two algorithms differ only in *how a node decides its cut* (one
dimension with doubling vs. a multi-dimension combination search); the
surrounding mechanics are shared and live here:

* work-list driven construction (explicit stack, no Python recursion),
* leaf creation with redundancy elimination,
* child merging ("merging child nodes which have associated with them the
  same set of rules" — Section 2) and empty-child removal,
* region bookkeeping in full precision and, for the modified algorithms,
  on the 8-MSB hardware grid where every region is a power-of-two aligned
  box (the invariant that makes mask/shift child indexing possible).

Merging correctness (see DESIGN.md §6): in software mode siblings with
identical rule sets merge and the surviving node's region is the per-
dimension hull of the merged regions — sound because every merged sibling
overlaps every rule in the shared set, so the hull partition covers every
packet that can arrive.  In grid mode regions must stay aligned, so
siblings merge only when their rules' footprints are *congruent* relative
to each sibling's box (bitwise-identical discrimination); leaf-sized
children (n <= binth) merge unconditionally since leaves never cut again.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import BuildError, ConfigError
from ..core.geometry import cut_interval, grid_cell_to_range
from ..core.ruleset import RuleSet
from .base import EMPTY_CHILD, INTERNAL, LEAF, DecisionTree, Node
from .opcount import NULL_COUNTER, OpCounter
from ._partition import (
    all_rules_identical_in_region,
    assign_children,
    clipped_bounds,
    eliminate_redundant,
)


@dataclass
class CutDecision:
    """Outcome of a node's cut-selection heuristic.

    ``dims``/``counts`` name the cut axes; ``firsts``/``lasts`` give every
    rule's child-coordinate interval per axis (aligned with the node's
    rule-id array).  ``pushed`` optionally holds the boolean mask of rules
    hoisted to the internal node (HyperCuts push-common-subsets).
    """

    dims: tuple[int, ...]
    counts: tuple[int, ...]
    firsts: list[np.ndarray]
    lasts: list[np.ndarray]
    pushed: np.ndarray | None = None


@dataclass
class BuilderConfig:
    """Parameters shared by every tree builder.

    ``binth`` and ``spfac`` are the paper's knobs; ``hw_mode`` selects the
    modified (hardware-oriented, grid-cutting) algorithm variant.
    """

    binth: int = 16
    spfac: float = 4.0
    hw_mode: bool = False
    redundancy_elimination: bool = True
    max_depth: int = 64
    #: Nodes larger than this skip redundancy elimination.  Default
    #: (None) resolves to ``max(4 * binth, 64)``: elimination is a
    #: near-leaf optimisation, and a fixed cliff would make build cost
    #: non-monotonic in ruleset size (an O(n²) scan at the root for sets
    #: just under the cliff).
    elimination_limit: int | None = None

    def resolved_elimination_limit(self) -> int:
        if self.elimination_limit is not None:
            return self.elimination_limit
        return max(4 * self.binth, 64)

    def validate(self) -> None:
        if self.binth < 1:
            raise ConfigError("binth must be >= 1")
        if self.spfac <= 0:
            raise ConfigError("spfac must be > 0")
        if self.max_depth < 1:
            raise ConfigError("max_depth must be >= 1")


@dataclass
class _WorkItem:
    node_id: int
    rule_ids: np.ndarray
    region: tuple[tuple[int, int], ...]
    grid_region: tuple[tuple[int, int], ...] | None
    depth: int


class TreeBuilder:
    """Base class driving construction; subclasses implement `_decide_cut`."""

    algorithm = "base"

    def __init__(
        self,
        ruleset: RuleSet,
        config: BuilderConfig,
        ops: OpCounter | None = None,
    ) -> None:
        config.validate()
        self.ruleset = ruleset
        self.schema = ruleset.schema
        self.config = config
        self.ops = ops if ops is not None else NULL_COUNTER
        self.arrays = ruleset.arrays
        self.nodes: list[Node] = []

    # ------------------------------------------------------------------
    def build(self) -> DecisionTree:
        if len(self.ruleset) == 0:
            raise BuildError("cannot build a tree for an empty ruleset")
        root_region = self.schema.universe()
        root_grid = (
            tuple((0, 255) for _ in range(self.schema.ndim))
            if self.config.hw_mode
            else None
        )
        all_ids = np.arange(len(self.ruleset), dtype=np.int64)
        self.nodes = [
            Node(kind=LEAF, region=root_region, grid_region=root_grid, depth=0)
        ]
        stack = [_WorkItem(0, all_ids, root_region, root_grid, 0)]
        while stack:
            item = stack.pop()
            self._build_node(item, stack)
        return DecisionTree(
            self.ruleset,
            self.nodes,
            grid_mode=self.config.hw_mode,
            params={
                "algorithm": self.algorithm,
                "binth": self.config.binth,
                "spfac": self.config.spfac,
                "hw_mode": self.config.hw_mode,
            },
            build_ops=self.ops if isinstance(self.ops, OpCounter) else None,
        )

    # ------------------------------------------------------------------
    def _build_node(self, item: _WorkItem, stack: list[_WorkItem]) -> None:
        cfg = self.config
        rule_ids = item.rule_ids
        self.ops.add("mem_read", len(rule_ids))
        if (
            cfg.redundancy_elimination
            and 1 < len(rule_ids) <= cfg.resolved_elimination_limit()
        ):
            rule_ids = eliminate_redundant(
                self.arrays, rule_ids, item.region, self.ops
            )
        if (
            len(rule_ids) <= cfg.binth
            or item.depth >= cfg.max_depth
            or all_rules_identical_in_region(self.arrays, rule_ids, item.region)
        ):
            self._make_leaf(item.node_id, rule_ids, item)
            return

        decision = self._decide_cut(rule_ids, item)
        if decision is None:
            self._make_leaf(item.node_id, rule_ids, item)
            return
        self._apply_cut(item, rule_ids, decision, stack)

    # ------------------------------------------------------------------
    def _make_leaf(self, node_id: int, rule_ids: np.ndarray, item: _WorkItem) -> None:
        node = self.nodes[node_id]
        node.kind = LEAF
        node.rule_ids = np.asarray(rule_ids, dtype=np.int64)
        node.region = item.region
        node.grid_region = item.grid_region
        node.depth = item.depth
        self.ops.add("alloc", 1)
        self.ops.add("mem_write", max(1, len(rule_ids)))

    # ------------------------------------------------------------------
    def _apply_cut(
        self,
        item: _WorkItem,
        rule_ids: np.ndarray,
        decision: CutDecision,
        stack: list[_WorkItem],
    ) -> None:
        cfg = self.config
        node = self.nodes[item.node_id]
        node.kind = INTERNAL
        node.cut_dims = decision.dims
        node.cut_counts = decision.counts
        node.region = item.region
        node.grid_region = item.grid_region
        node.depth = item.depth
        self.ops.add("alloc", 1)

        firsts, lasts = decision.firsts, decision.lasts
        part_ids = rule_ids
        if decision.pushed is not None and decision.pushed.any():
            node.pushed = rule_ids[decision.pushed]
            keep = ~decision.pushed
            part_ids = rule_ids[keep]
            firsts = [f[keep] for f in firsts]
            lasts = [l[keep] for l in lasts]
            self.ops.add("mem_write", int(node.pushed.size))

        children_lists = assign_children(
            part_ids, firsts, lasts, decision.counts, self.ops
        )
        child_boxes = self._child_boxes(item, decision)
        n_children = len(children_lists)
        child_ids = np.full(n_children, EMPTY_CHILD, dtype=np.int32)

        # --- merge identical siblings --------------------------------
        groups: dict[bytes, list[int]] = {}
        for j, lst in enumerate(children_lists):
            if lst.size == 0:
                continue
            groups.setdefault(lst.tobytes(), []).append(j)

        for sig, members in groups.items():
            lst = children_lists[members[0]]
            leaf_sized = lst.size <= cfg.binth
            if cfg.hw_mode and not leaf_sized:
                subgroups = self._congruent_subgroups(
                    lst, members, child_boxes, decision.dims
                )
            else:
                subgroups = [members]
            for sub in subgroups:
                rep_region, rep_grid = self._merged_region(
                    sub, child_boxes, leaf_sized
                )
                new_id = len(self.nodes)
                self.nodes.append(
                    Node(
                        kind=LEAF,
                        region=rep_region,
                        grid_region=rep_grid,
                        depth=item.depth + 1,
                    )
                )
                for j in sub:
                    child_ids[j] = new_id
                stack.append(
                    _WorkItem(
                        new_id, lst, rep_region, rep_grid, item.depth + 1
                    )
                )
        node.children = child_ids

    # ------------------------------------------------------------------
    def _child_boxes(
        self, item: _WorkItem, decision: CutDecision
    ) -> list[tuple[tuple, tuple | None]]:
        """(region, grid_region) for every flat child index, row-major."""
        per_axis_full: list[list[tuple[int, int]]] = []
        per_axis_grid: list[list[tuple[int, int]] | None] = []
        for dim, ncuts in zip(decision.dims, decision.counts):
            if self.config.hw_mode:
                assert item.grid_region is not None
                glo, ghi = item.grid_region[dim]
                cells = cut_interval(glo, ghi, ncuts)
                per_axis_grid.append(cells)
                width = self.schema.widths[dim]
                per_axis_full.append(
                    [grid_cell_to_range(a, b, width) for a, b in cells]
                )
            else:
                lo, hi = item.region[dim]
                per_axis_full.append(cut_interval(lo, hi, ncuts))
                per_axis_grid.append(None)

        boxes: list[tuple[tuple, tuple | None]] = []
        n_children = 1
        for c in decision.counts:
            n_children *= c
        strides = []
        acc = 1
        for c in reversed(decision.counts):
            strides.append(acc)
            acc *= c
        strides.reverse()
        for flat in range(n_children):
            region = list(item.region)
            grid = list(item.grid_region) if item.grid_region else None
            rem = flat
            for axis, (dim, ncuts, stride) in enumerate(
                zip(decision.dims, decision.counts, strides)
            ):
                coord = rem // stride
                rem %= stride
                region[dim] = per_axis_full[axis][coord]
                if grid is not None:
                    grid[dim] = per_axis_grid[axis][coord]  # type: ignore[index]
            boxes.append((tuple(region), tuple(grid) if grid else None))
        return boxes

    # ------------------------------------------------------------------
    def _congruent_subgroups(
        self,
        rule_list: np.ndarray,
        members: list[int],
        child_boxes: list[tuple[tuple, tuple | None]],
        dims: tuple[int, ...],
    ) -> list[list[int]]:
        """Split same-rule-set siblings into relative-footprint-congruent
        groups (grid mode).  Two siblings are congruent when every shared
        rule clips to the same offsets inside each sibling's box along
        every cut dimension; then one subtree discriminates identically
        for both and may be shared."""

        def signature(j: int) -> bytes:
            region = child_boxes[j][0]
            parts = []
            for d in dims:
                lo, hi = region[d]
                clo, chi = clipped_bounds(
                    self.arrays.lo[d, rule_list],
                    self.arrays.hi[d, rule_list],
                    lo,
                    hi,
                )
                parts.append((clo - lo).tobytes())
                parts.append((chi - lo).tobytes())
            self.ops.add("alu", 4 * len(dims) * len(rule_list))
            return b"".join(parts)

        buckets: dict[bytes, list[int]] = {}
        for j in members:
            buckets.setdefault(signature(j), []).append(j)
        return list(buckets.values())

    # ------------------------------------------------------------------
    def _merged_region(
        self,
        members: list[int],
        child_boxes: list[tuple[tuple, tuple | None]],
        leaf_sized: bool,
    ) -> tuple[tuple, tuple | None]:
        """Region of a merged node.

        Congruence-merged internal groups (grid mode, > binth) keep the
        representative's box: congruence makes every region-relative
        decision (further cuts, redundancy comparisons) identical across
        the merged siblings.  Every other merge — software mode and
        leaf-sized grid merges — takes the per-dimension hull: the hull is
        a box containing every packet that can reach the node, so
        redundancy elimination against it is sound for all siblings
        (eliminating against one sibling's box is NOT: a rule shadowed in
        one sibling may be the match in another).  Leaf hulls on the grid
        may lose power-of-two alignment, which is harmless because leaves
        are never cut again.
        """
        if len(members) == 1:
            return child_boxes[members[0]]
        if self.config.hw_mode and not leaf_sized:
            return child_boxes[members[0]]
        regions = [child_boxes[j][0] for j in members]
        hull = tuple(
            (min(r[d][0] for r in regions), max(r[d][1] for r in regions))
            for d in range(self.schema.ndim)
        )
        if not self.config.hw_mode:
            return hull, None
        grids = [child_boxes[j][1] for j in members]
        grid_hull = tuple(
            (min(g[d][0] for g in grids), max(g[d][1] for g in grids))
            for d in range(self.schema.ndim)
        )
        return hull, grid_hull

    # ------------------------------------------------------------------
    # Subclass hook
    # ------------------------------------------------------------------
    def _decide_cut(
        self, rule_ids: np.ndarray, item: _WorkItem
    ) -> CutDecision | None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def _axis_bounds(
        self, rule_ids: np.ndarray, item: _WorkItem, dim: int
    ) -> tuple[np.ndarray, np.ndarray, int, int]:
        """Rule bounds and region interval along ``dim`` in the coordinate
        system the builder cuts in (grid cells for hw_mode, raw values
        otherwise)."""
        if self.config.hw_mode:
            assert item.grid_region is not None
            lo, hi = item.grid_region[dim]
            return (
                self.arrays.glo[dim, rule_ids],
                self.arrays.ghi[dim, rule_ids],
                lo,
                hi,
            )
        lo, hi = item.region[dim]
        return self.arrays.lo[dim, rule_ids], self.arrays.hi[dim, rule_ids], lo, hi

    def _span_of(self, item: _WorkItem, dim: int) -> int:
        if self.config.hw_mode:
            assert item.grid_region is not None
            lo, hi = item.grid_region[dim]
        else:
            lo, hi = item.region[dim]
        return hi - lo + 1

    def _charge_eval(self, n: int, uses_division: bool) -> None:
        """Bill one candidate-cut evaluation over ``n`` rules."""
        self.ops.add("mem_read", 2 * n)
        self.ops.add("alu", 6 * n)
        self.ops.add("branch", n)
        if uses_division:
            self.ops.add("div", 2 * n)
        else:
            self.ops.add("alu", 2 * n)
