"""Classification algorithms: the paper's decision trees plus baselines.

* :func:`build_hicuts` / :func:`build_hypercuts` — original software
  algorithms (Section 2) and, with ``hw_mode=True``, the paper's modified
  hardware-oriented variants (Section 3).
* :class:`LinearSearchClassifier` — the first-match oracle.
* :class:`RFCClassifier` — the fastest software baseline the paper
  compares against (546x claim).
* :class:`TupleSpaceClassifier` — extension baseline ([8]).
"""

from .base import (
    EMPTY_CHILD,
    INTERNAL,
    LEAF,
    BatchLookup,
    DecisionTree,
    LookupResult,
    Node,
    TreeStats,
)
from .flat_tree import FlatTree
from .hicuts import HiCutsBuilder, HiCutsConfig, build_hicuts
from .incremental import IncrementalClassifier, UpdateStats
from .hypercuts import HyperCutsBuilder, HyperCutsConfig, build_hypercuts
from .linear import LinearSearchClassifier
from .opcount import CATEGORIES, NULL_COUNTER, NullCounter, OpCounter
from .rfc import RFCClassifier, build_rfc
from .tuple_space import TupleSpaceClassifier

__all__ = [
    "EMPTY_CHILD",
    "INTERNAL",
    "LEAF",
    "BatchLookup",
    "DecisionTree",
    "LookupResult",
    "Node",
    "TreeStats",
    "FlatTree",
    "HiCutsBuilder",
    "HiCutsConfig",
    "build_hicuts",
    "IncrementalClassifier",
    "UpdateStats",
    "HyperCutsBuilder",
    "HyperCutsConfig",
    "build_hypercuts",
    "LinearSearchClassifier",
    "CATEGORIES",
    "NULL_COUNTER",
    "NullCounter",
    "OpCounter",
    "RFCClassifier",
    "build_rfc",
    "TupleSpaceClassifier",
]
