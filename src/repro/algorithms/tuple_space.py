"""Tuple Space Search (Srinivasan, Suri & Varghese, SIGCOMM 1999).

The paper cites TSS ([8]) among the software approaches whose throughput
cannot keep up with line rate; we implement it as an extension baseline so
the experiment harness can place the accelerator against one more
classical software scheme.

Our variant follows the pragmatic "pseudo tuple space" used by software
switches: a rule's tuple is the vector of *specificity kinds* per
dimension — the IP prefix lengths and, for ports/protocol, the class
EXACT / RANGE / WILDCARD.  All rules sharing a tuple live in one hash
table keyed by the masked exact fields; range fields are verified by a
short list scan inside the bucket.  A lookup probes every tuple (masking
the header with the tuple's mask and hashing); the best (lowest-id) match
across probes wins.

Cost model: one hash probe ≈ one memory access per tuple, plus bucket
verification — this is why TSS throughput degrades with tuple-count, the
behaviour the experiments display.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..core.errors import CapacityError
from ..core.packet import PacketTrace
from ..core.ruleset import RuleSet
from .opcount import NULL_COUNTER, OpCounter

#: 64-bit mixing constant (golden-ratio hash) for the batch probe path.
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)

KIND_EXACT = 0
KIND_RANGE = 1
KIND_WILD = 2


def _port_kind(lo: int, hi: int, full_hi: int) -> int:
    if lo == 0 and hi == full_hi:
        return KIND_WILD
    if lo == hi:
        return KIND_EXACT
    return KIND_RANGE


@dataclass(frozen=True)
class _TupleKey:
    src_plen: int
    dst_plen: int
    sport_kind: int
    dport_kind: int
    proto_kind: int


@dataclass
class _BatchTable:
    """One tuple's hash table flattened for vectorised probing.

    ``hashes`` is the sorted array of 64-bit bucket-key hashes;
    ``rules`` is a ``(n_buckets, max_depth)`` matrix of rule ids padded
    with -1, each row sorted ascending so the first verified hit along a
    row is the bucket's best (lowest-id) match.  Hash collisions merge
    buckets, which is semantically harmless: a candidate from the wrong
    bucket only survives the full interval verification when the rule
    genuinely matches the packet — in which case its own probe would have
    found it anyway.
    """

    key: _TupleKey
    hashes: np.ndarray  # (n_buckets,) uint64, sorted
    rules: np.ndarray  # (n_buckets, max_depth) int64, -1 padded


def _mix_keys(
    k0: np.ndarray, k1: np.ndarray, k2: np.ndarray, k3: np.ndarray, k4: np.ndarray
) -> np.ndarray:
    """Collapse the 5-part (≤104-bit) probe key into one uint64 hash."""
    hi = (k0 << np.uint64(32)) | k1
    lo = (k2 << np.uint64(24)) | (k3 << np.uint64(8)) | k4
    with np.errstate(over="ignore"):
        return (hi * _HASH_MULT) ^ lo


class TupleSpaceClassifier:
    """Hash-based tuple space search over a 5-tuple ruleset."""

    def __init__(self, ruleset: RuleSet, ops: OpCounter | None = None) -> None:
        from ..core.rules import FIVE_TUPLE

        if ruleset.schema is not FIVE_TUPLE:
            raise CapacityError("TSS implementation targets the 5-tuple schema")
        self.ruleset = ruleset
        counter = ops if ops is not None else NULL_COUNTER
        self.tuples: dict[_TupleKey, dict[tuple, list[int]]] = {}
        arrays = ruleset.arrays
        for r in range(arrays.n):
            key = self._tuple_of(r)
            table = self.tuples.setdefault(key, defaultdict(list))
            table[self._hash_key(r, key)].append(r)
            counter.add("mem_write", 2)
            counter.add("alu", 10)
        # Freeze to plain dicts for lookup speed.
        self.tuples = {k: dict(v) for k, v in self.tuples.items()}
        self._batch_tables: list[_BatchTable] | None = None

    # ------------------------------------------------------------------
    def _tuple_of(self, r: int) -> _TupleKey:
        a = self.ruleset.arrays
        src_span = int(a.hi[0, r]) - int(a.lo[0, r]) + 1
        dst_span = int(a.hi[1, r]) - int(a.lo[1, r]) + 1
        return _TupleKey(
            src_plen=32 - (src_span.bit_length() - 1),
            dst_plen=32 - (dst_span.bit_length() - 1),
            sport_kind=_port_kind(int(a.lo[2, r]), int(a.hi[2, r]), 0xFFFF),
            dport_kind=_port_kind(int(a.lo[3, r]), int(a.hi[3, r]), 0xFFFF),
            proto_kind=_port_kind(int(a.lo[4, r]), int(a.hi[4, r]), 0xFF),
        )

    def _hash_key(self, r: int, key: _TupleKey) -> tuple:
        """Masked exact fields forming the hash key inside a tuple."""
        a = self.ruleset.arrays
        return (
            int(a.lo[0, r]) >> (32 - key.src_plen) if key.src_plen else 0,
            int(a.lo[1, r]) >> (32 - key.dst_plen) if key.dst_plen else 0,
            int(a.lo[2, r]) if key.sport_kind == KIND_EXACT else 0,
            int(a.lo[3, r]) if key.dport_kind == KIND_EXACT else 0,
            int(a.lo[4, r]) if key.proto_kind == KIND_EXACT else 0,
        )

    def _probe_key(self, header, key: _TupleKey) -> tuple:
        return (
            int(header[0]) >> (32 - key.src_plen) if key.src_plen else 0,
            int(header[1]) >> (32 - key.dst_plen) if key.dst_plen else 0,
            int(header[2]) if key.sport_kind == KIND_EXACT else 0,
            int(header[3]) if key.dport_kind == KIND_EXACT else 0,
            int(header[4]) if key.proto_kind == KIND_EXACT else 0,
        )

    # ------------------------------------------------------------------
    def classify(self, header, ops: OpCounter | None = None) -> int:
        counter = ops if ops is not None else NULL_COUNTER
        arrays = self.ruleset.arrays
        best = -1
        for key, table in self.tuples.items():
            counter.add("mem_read", 1)  # hash probe
            counter.add("alu", 12)  # masking + hashing
            bucket = table.get(self._probe_key(header, key))
            if not bucket:
                continue
            for r in bucket:
                counter.add("mem_read", 5)
                counter.add("alu", 10)
                if all(
                    arrays.lo[d, r] <= header[d] <= arrays.hi[d, r]
                    for d in range(5)
                ):
                    if best < 0 or r < best:
                        best = r
                    break  # bucket lists are priority ordered
        return best

    # ------------------------------------------------------------------
    # Vectorised batch lookup
    # ------------------------------------------------------------------
    def _build_batch_tables(self) -> list[_BatchTable]:
        """Flatten each tuple's dict into sorted hash + padded-rule arrays."""
        tables: list[_BatchTable] = []
        for key, table in self.tuples.items():
            keys = np.asarray(
                [list(k) for k in table.keys()], dtype=np.uint64
            ).reshape(len(table), 5)
            hashes = _mix_keys(*(keys[:, d] for d in range(5)))
            # Merge hash-colliding buckets (see _BatchTable docstring).
            merged: dict[int, list[int]] = {}
            for h, bucket in zip(hashes.tolist(), table.values()):
                merged.setdefault(h, []).extend(bucket)
            uniq = np.asarray(sorted(merged), dtype=np.uint64)
            depth = max(len(b) for b in merged.values())
            rules = np.full((len(uniq), depth), -1, dtype=np.int64)
            for i, h in enumerate(uniq.tolist()):
                bucket = sorted(merged[h])
                rules[i, : len(bucket)] = bucket
            tables.append(_BatchTable(key=key, hashes=uniq, rules=rules))
        return tables

    def classify_batch(self, headers: np.ndarray) -> np.ndarray:
        """Vectorised lookup: one hash-probe + bucket verification per
        tuple, resolved for all packets at once with NumPy.

        Exactness argument: every rule that matches a packet is found by
        the probe of its own tuple (the masked header equals the rule's
        hash key precisely when the exact/prefix fields match), so taking
        the minimum rule id over all verified candidates reproduces the
        scalar path's best-of-first-bucket-hits — which is first-match
        semantics.  The scalar :meth:`classify` remains the oracle; the
        conformance tests compare the two.
        """
        # Build the probe tables even for an empty batch so callers (the
        # sharded pipeline) can warm them before forking workers.
        if self._batch_tables is None:
            self._batch_tables = self._build_batch_tables()
        n = headers.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.int64)
        arrays = self.ruleset.arrays
        sentinel = np.int64(arrays.n)  # "no match yet"; any rule id beats it
        best = np.full(n, sentinel, dtype=np.int64)
        h64 = headers.astype(np.uint64)
        zeros = np.zeros(n, dtype=np.uint64)
        for bt in self._batch_tables:
            key = bt.key
            k0 = h64[:, 0] >> np.uint64(32 - key.src_plen) if key.src_plen else zeros
            k1 = h64[:, 1] >> np.uint64(32 - key.dst_plen) if key.dst_plen else zeros
            k2 = h64[:, 2] if key.sport_kind == KIND_EXACT else zeros
            k3 = h64[:, 3] if key.dport_kind == KIND_EXACT else zeros
            k4 = h64[:, 4] if key.proto_kind == KIND_EXACT else zeros
            probes = _mix_keys(k0, k1, k2, k3, k4)
            idx = np.searchsorted(bt.hashes, probes)
            idx_c = np.minimum(idx, len(bt.hashes) - 1)
            hit = np.nonzero(bt.hashes[idx_c] == probes)[0]
            if not hit.size:
                continue
            cand = bt.rules[idx_c[hit]]  # (n_hit, depth) rule ids, -1 pad
            safe = np.maximum(cand, 0)
            ok = cand >= 0
            for d in range(5):
                v = headers[hit, d].astype(np.int64)[:, None]
                ok &= (arrays.lo[d, safe] <= v) & (v <= arrays.hi[d, safe])
            any_match = ok.any(axis=1)
            if not any_match.any():
                continue
            # Rows are sorted ascending, so argmax gives the bucket's
            # lowest matching rule id.
            first = cand[np.arange(hit.size), ok.argmax(axis=1)]
            matched = np.where(any_match, first, sentinel)
            np.minimum.at(best, hit, matched)
        return np.where(best < sentinel, best, -1)

    def classify_trace(self, trace: PacketTrace) -> np.ndarray:
        return self.classify_batch(trace.headers)

    # ------------------------------------------------------------------
    @property
    def n_tuples(self) -> int:
        return len(self.tuples)

    def memory_accesses_per_lookup(self) -> int:
        """Worst case: one probe per tuple + deepest bucket scan."""
        deepest = max(
            (len(b) for table in self.tuples.values() for b in table.values()),
            default=0,
        )
        return self.n_tuples + deepest

    def memory_bytes(self) -> int:
        """Hash-table storage: 8-byte slot per rule at 50 % load plus the
        stored rules themselves (20 bytes each, as elsewhere)."""
        n = len(self.ruleset)
        return 16 * n + 20 * n
