"""Tuple Space Search (Srinivasan, Suri & Varghese, SIGCOMM 1999).

The paper cites TSS ([8]) among the software approaches whose throughput
cannot keep up with line rate; we implement it as an extension baseline so
the experiment harness can place the accelerator against one more
classical software scheme.

Our variant follows the pragmatic "pseudo tuple space" used by software
switches: a rule's tuple is the vector of *specificity kinds* per
dimension — the IP prefix lengths and, for ports/protocol, the class
EXACT / RANGE / WILDCARD.  All rules sharing a tuple live in one hash
table keyed by the masked exact fields; range fields are verified by a
short list scan inside the bucket.  A lookup probes every tuple (masking
the header with the tuple's mask and hashing); the best (lowest-id) match
across probes wins.

Cost model: one hash probe ≈ one memory access per tuple, plus bucket
verification — this is why TSS throughput degrades with tuple-count, the
behaviour the experiments display.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..core.errors import CapacityError
from ..core.packet import PacketTrace
from ..core.ruleset import RuleSet
from .opcount import NULL_COUNTER, OpCounter

KIND_EXACT = 0
KIND_RANGE = 1
KIND_WILD = 2


def _port_kind(lo: int, hi: int, full_hi: int) -> int:
    if lo == 0 and hi == full_hi:
        return KIND_WILD
    if lo == hi:
        return KIND_EXACT
    return KIND_RANGE


@dataclass(frozen=True)
class _TupleKey:
    src_plen: int
    dst_plen: int
    sport_kind: int
    dport_kind: int
    proto_kind: int


class TupleSpaceClassifier:
    """Hash-based tuple space search over a 5-tuple ruleset."""

    def __init__(self, ruleset: RuleSet, ops: OpCounter | None = None) -> None:
        from ..core.rules import FIVE_TUPLE

        if ruleset.schema is not FIVE_TUPLE:
            raise CapacityError("TSS implementation targets the 5-tuple schema")
        self.ruleset = ruleset
        counter = ops if ops is not None else NULL_COUNTER
        self.tuples: dict[_TupleKey, dict[tuple, list[int]]] = {}
        arrays = ruleset.arrays
        for r in range(arrays.n):
            key = self._tuple_of(r)
            table = self.tuples.setdefault(key, defaultdict(list))
            table[self._hash_key(r, key)].append(r)
            counter.add("mem_write", 2)
            counter.add("alu", 10)
        # Freeze to plain dicts for lookup speed.
        self.tuples = {k: dict(v) for k, v in self.tuples.items()}

    # ------------------------------------------------------------------
    def _tuple_of(self, r: int) -> _TupleKey:
        a = self.ruleset.arrays
        src_span = int(a.hi[0, r]) - int(a.lo[0, r]) + 1
        dst_span = int(a.hi[1, r]) - int(a.lo[1, r]) + 1
        return _TupleKey(
            src_plen=32 - (src_span.bit_length() - 1),
            dst_plen=32 - (dst_span.bit_length() - 1),
            sport_kind=_port_kind(int(a.lo[2, r]), int(a.hi[2, r]), 0xFFFF),
            dport_kind=_port_kind(int(a.lo[3, r]), int(a.hi[3, r]), 0xFFFF),
            proto_kind=_port_kind(int(a.lo[4, r]), int(a.hi[4, r]), 0xFF),
        )

    def _hash_key(self, r: int, key: _TupleKey) -> tuple:
        """Masked exact fields forming the hash key inside a tuple."""
        a = self.ruleset.arrays
        return (
            int(a.lo[0, r]) >> (32 - key.src_plen) if key.src_plen else 0,
            int(a.lo[1, r]) >> (32 - key.dst_plen) if key.dst_plen else 0,
            int(a.lo[2, r]) if key.sport_kind == KIND_EXACT else 0,
            int(a.lo[3, r]) if key.dport_kind == KIND_EXACT else 0,
            int(a.lo[4, r]) if key.proto_kind == KIND_EXACT else 0,
        )

    def _probe_key(self, header, key: _TupleKey) -> tuple:
        return (
            int(header[0]) >> (32 - key.src_plen) if key.src_plen else 0,
            int(header[1]) >> (32 - key.dst_plen) if key.dst_plen else 0,
            int(header[2]) if key.sport_kind == KIND_EXACT else 0,
            int(header[3]) if key.dport_kind == KIND_EXACT else 0,
            int(header[4]) if key.proto_kind == KIND_EXACT else 0,
        )

    # ------------------------------------------------------------------
    def classify(self, header, ops: OpCounter | None = None) -> int:
        counter = ops if ops is not None else NULL_COUNTER
        arrays = self.ruleset.arrays
        best = -1
        for key, table in self.tuples.items():
            counter.add("mem_read", 1)  # hash probe
            counter.add("alu", 12)  # masking + hashing
            bucket = table.get(self._probe_key(header, key))
            if not bucket:
                continue
            for r in bucket:
                counter.add("mem_read", 5)
                counter.add("alu", 10)
                if all(
                    arrays.lo[d, r] <= header[d] <= arrays.hi[d, r]
                    for d in range(5)
                ):
                    if best < 0 or r < best:
                        best = r
                    break  # bucket lists are priority ordered
        return best

    def classify_trace(self, trace: PacketTrace) -> np.ndarray:
        out = np.full(trace.n_packets, -1, dtype=np.int64)
        for i, row in enumerate(trace.headers):
            out[i] = self.classify(row)
        return out

    # ------------------------------------------------------------------
    @property
    def n_tuples(self) -> int:
        return len(self.tuples)

    def memory_accesses_per_lookup(self) -> int:
        """Worst case: one probe per tuple + deepest bucket scan."""
        deepest = max(
            (len(b) for table in self.tuples.values() for b in table.values()),
            default=0,
        )
        return self.n_tuples + deepest

    def memory_bytes(self) -> int:
        """Hash-table storage: 8-byte slot per rule at 50 % load plus the
        stored rules themselves (20 bytes each, as elsewhere)."""
        n = len(self.ruleset)
        return 16 * n + 20 * n
