"""Linear-search classifier — the semantic oracle and a software baseline.

Every accelerated classifier in the library (decision trees, RFC, TSS,
TCAM, the hardware simulator) must return exactly what this classifier
returns; tests enforce that with property-based comparisons.  It doubles
as the naive software baseline for the energy model: each lookup touches
every rule until the first match, the worst case the paper's introduction
motivates against.
"""

from __future__ import annotations

import numpy as np

from ..core.packet import PacketTrace
from ..core.ruleset import RuleSet
from .opcount import NULL_COUNTER, OpCounter


class LinearSearchClassifier:
    """First-match linear scan over the ruleset."""

    def __init__(self, ruleset: RuleSet) -> None:
        self.ruleset = ruleset
        self.arrays = ruleset.arrays

    def classify(self, header, ops: OpCounter | None = None) -> int:
        """Return the first matching rule id (or -1), charging per-rule
        costs to ``ops``: 5 interval loads + compares per rule visited."""
        counter = ops if ops is not None else NULL_COUNTER
        arr = self.arrays
        for r in range(arr.n):
            counter.add("mem_read", 5)
            counter.add("alu", 10)
            counter.add("branch", 1)
            ok = True
            for d in range(arr.schema.ndim):
                if not (arr.lo[d, r] <= header[d] <= arr.hi[d, r]):
                    ok = False
                    break
            if ok:
                return r
        return -1

    def classify_batch(self, headers: np.ndarray) -> np.ndarray:
        """Vectorised first match per header row (oracle for batches)."""
        return self.arrays.batch_match(headers)

    def classify_trace(self, trace: PacketTrace) -> np.ndarray:
        """Vectorised batch classification (oracle for whole traces)."""
        return self.classify_batch(trace.headers)

    def avg_rules_scanned(self, trace: PacketTrace) -> float:
        """Mean rules visited per packet (first match index + 1, or n)."""
        matches = self.classify_trace(trace)
        scanned = np.where(matches >= 0, matches + 1, self.arrays.n)
        return float(scanned.mean()) if scanned.size else 0.0

    def memory_bytes(self) -> int:
        """The raw ruleset storage (no auxiliary structure)."""
        return self.ruleset.storage_bytes()

    def memory_accesses_per_lookup(self) -> int:
        """Worst case: one 160-bit rule word read per rule in the set."""
        return self.arrays.n
