"""HiCuts — Hierarchical Intelligent Cuttings (Gupta & McKeown) and the
paper's hardware-oriented modification.

Original algorithm (Section 2.1): at every oversized node pick one
dimension and cut the node's region into ``np`` equal intervals.  ``np``
starts at 2 and doubles while the space-measure condition (eq (1)) holds::

    spfac * rules(i)  >=  sum(rules at each child of i) + np

The dimension-choice heuristic is the one the paper states it uses:
evaluate every dimension, record the largest child produced, and pick the
dimension minimising that number.

Modified algorithm (Section 3, ``hw_mode=True``): cutting happens on the
8-MSB grid so the child index is computable with mask/shift/add (no
divider); ``np`` starts at 32 and doubles under eq (3), which adds the
``np < 129`` guard so the number of cuts is capped at 256 — the largest
internal node that still fits one 4800-bit memory word.  The paper found
the 32-cut floor "leads to a significant decrease in computation [... and]
an insignificant increase to memory consumption".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigError
from ..core.geometry import pow2_at_most
from ..core.ruleset import RuleSet
from .base import DecisionTree
from .opcount import OpCounter
from ._builder import BuilderConfig, CutDecision, TreeBuilder, _WorkItem
from ._partition import coord_spans, refs_and_max_1d

#: eq (3) floor and cap on cuts per internal node in the modified algorithm.
HW_MIN_CUTS = 32
HW_MAX_CUTS = 256


#: Dimension-choice heuristics.  Gupta & McKeown list several; the IPDPS
#: paper states it uses ``min_max_rules`` ("record the largest number of
#: rules contained in a child after cutting each dimension and pick the
#: dimension which returns the smallest number").  The alternatives are
#: provided for the X-series ablations.
DIM_HEURISTICS = ("min_max_rules", "max_distinct", "min_replication")


@dataclass
class HiCutsConfig(BuilderConfig):
    """HiCuts parameters.

    ``start_cuts``/``max_cuts`` default to the paper's values per mode:
    2/unbounded for the original software algorithm, 32/256 for the
    modified hardware-oriented one.  ``dim_heuristic`` selects among the
    original paper's dimension-choice heuristics (default: the one the
    IPDPS paper uses).
    """

    start_cuts: int | None = None
    max_cuts: int | None = None
    dim_heuristic: str = "min_max_rules"

    def resolved_start(self) -> int:
        if self.start_cuts is not None:
            return self.start_cuts
        return HW_MIN_CUTS if self.hw_mode else 2

    def resolved_cap(self) -> int:
        if self.max_cuts is not None:
            return self.max_cuts
        return HW_MAX_CUTS if self.hw_mode else 1 << 16

    def validate(self) -> None:  # noqa: D102
        super().validate()
        start, cap = self.resolved_start(), self.resolved_cap()
        if start < 2 or start & (start - 1):
            raise ConfigError("start_cuts must be a power of two >= 2")
        if cap < start or cap & (cap - 1):
            raise ConfigError("max_cuts must be a power of two >= start_cuts")
        if self.dim_heuristic not in DIM_HEURISTICS:
            raise ConfigError(
                f"dim_heuristic must be one of {DIM_HEURISTICS}"
            )


class HiCutsBuilder(TreeBuilder):
    """Work-list HiCuts builder; see module docstring for the algorithm."""

    algorithm = "hicuts"

    def __init__(
        self,
        ruleset: RuleSet,
        config: HiCutsConfig | None = None,
        ops: OpCounter | None = None,
    ) -> None:
        super().__init__(ruleset, config or HiCutsConfig(), ops)
        self.cfg: HiCutsConfig = self.config  # typed alias

    # ------------------------------------------------------------------
    def _decide_cut(self, rule_ids: np.ndarray, item: _WorkItem):
        n = len(rule_ids)
        spfac = self.cfg.spfac
        start = self.cfg.resolved_start()
        cap = self.cfg.resolved_cap()
        uses_div = not self.cfg.hw_mode
        heuristic = self.cfg.dim_heuristic

        best: tuple[float, int, int] | None = None  # (score, np, dim)
        best_spans: tuple[np.ndarray, np.ndarray] | None = None
        for dim in range(self.schema.ndim):
            span = self._span_of(item, dim)
            dim_cap = min(cap, pow2_at_most(span)) if span > 1 else 0
            if dim_cap < 2:
                continue  # dimension cannot be cut further
            rlo, rhi, reg_lo, reg_hi = self._axis_bounds(rule_ids, item, dim)
            np_cur = min(start, dim_cap)
            first, last = coord_spans(rlo, rhi, reg_lo, reg_hi, np_cur)
            refs, max_child = refs_and_max_1d(first, last, np_cur)
            self._charge_eval(n, uses_div)
            # Doubling loop: grow while eq (1)/(3) accepts the next size.
            while np_cur * 2 <= dim_cap:
                cand = np_cur * 2
                f2, l2 = coord_spans(rlo, rhi, reg_lo, reg_hi, cand)
                refs2, max2 = refs_and_max_1d(f2, l2, cand)
                self._charge_eval(n, uses_div)
                if refs2 + cand > spfac * n:
                    break
                np_cur, first, last, refs, max_child = cand, f2, l2, refs2, max2
            if refs >= n * np_cur:
                continue  # every rule spans every child: no discrimination
            score = self._dim_score(
                heuristic, rule_ids, item, dim, max_child, refs, np_cur
            )
            key = (score, np_cur, dim)
            if best is None or key < best:
                best = key
                best_spans = (first, last)
        if best is None or best_spans is None:
            return None  # no dimension discriminates -> leaf
        _, np_cur, dim = best
        return CutDecision(
            dims=(dim,),
            counts=(np_cur,),
            firsts=[best_spans[0]],
            lasts=[best_spans[1]],
        )

    def _dim_score(
        self, heuristic: str, rule_ids: np.ndarray, item: _WorkItem,
        dim: int, max_child: int, refs: int, np_cur: int,
    ) -> float:
        """Lower is better.  ``min_max_rules`` is the paper's heuristic;
        ``max_distinct`` prefers the dimension with the most distinct
        (clipped) range specifications; ``min_replication`` minimises the
        average rule replication refs / cuts."""
        if heuristic == "min_max_rules":
            return float(max_child)
        if heuristic == "min_replication":
            return refs / np_cur
        # max_distinct: negated so that "more distinct" sorts first.
        from ._partition import clipped_bounds

        lo, hi = item.region[dim]
        clo, chi = clipped_bounds(
            self.arrays.lo[dim, rule_ids], self.arrays.hi[dim, rule_ids], lo, hi
        )
        pairs = np.stack([clo, chi], axis=1)
        self.ops.add("alu", 2 * len(rule_ids))
        return -float(len(np.unique(pairs, axis=0)))


def build_hicuts(
    ruleset: RuleSet,
    binth: int = 16,
    spfac: float = 4.0,
    hw_mode: bool = False,
    ops: OpCounter | None = None,
    **kwargs,
) -> DecisionTree:
    """Build a HiCuts tree (original by default, ``hw_mode=True`` for the
    paper's modified hardware-oriented variant)."""
    cfg = HiCutsConfig(binth=binth, spfac=spfac, hw_mode=hw_mode, **kwargs)
    return HiCutsBuilder(ruleset, cfg, ops).build()
