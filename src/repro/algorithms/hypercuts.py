"""HyperCuts — multidimensional cutting (Singh et al.) and the paper's
hardware-oriented modification.

Original algorithm (Section 2.2):

* consider for cutting the dimensions whose number of distinct range
  specifications is >= the mean over all dimensions;
* bound the number of children by eq (2):
  ``max child nodes at i <= spfac * sqrt(rules at i)``;
* among cut combinations obeying the bound, pick the one minimising the
  largest child (the heuristic the paper says it chose, since Singh et al.
  "never made it clear how to choose the best combination");
* heuristics: *region compaction* (shrink the node region to the rules'
  bounding box before cutting) and *pushing common rule subsets upwards*
  (rules present in every child are stored at the internal node instead).

Modified algorithm (Section 3, ``hw_mode=True``): region compaction is
removed (it needs per-node division in hardware) and push-common-upwards
is removed (it would force rule searches while traversing, stalling the
pipeline); cuts live on the 8-MSB grid and the combination bound becomes
eq (4): ``np <= 2^(4 + spfac)`` and ``np >= 32`` with integer spfac in
{1, 2, 3, 4} — i.e. between 32 and 256 children, one memory word.

Combination search: exhaustive enumeration of power-of-two cut vectors
when the candidate space is small, otherwise a deterministic greedy ascent
(add one bit of cutting to the dimension that minimises the largest child;
see DESIGN.md §6).  Both paths are exercised by tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigError
from ..core.geometry import pow2_at_most
from ..core.ruleset import RuleSet
from .base import DecisionTree
from .opcount import OpCounter
from ._builder import BuilderConfig, CutDecision, TreeBuilder, _WorkItem
from ._partition import (
    clipped_bounds,
    coord_spans,
    max_count_grid,
    refs_multi,
)

#: eq (4) floor on total cuts in the modified algorithm.
HW_MIN_CUTS = 32

#: Above this many (combo, rule) evaluations the builder switches from
#: exhaustive combination search to greedy ascent.
EXHAUSTIVE_BUDGET = 3_000_000


@dataclass
class HyperCutsConfig(BuilderConfig):
    """HyperCuts parameters; heuristic toggles follow the paper's modes."""

    region_compaction: bool | None = None  # default: on for sw, off for hw
    push_common: bool | None = None  # default: on for sw, off for hw

    def resolved_compaction(self) -> bool:
        if self.region_compaction is None:
            return not self.hw_mode
        return self.region_compaction

    def resolved_push(self) -> bool:
        if self.push_common is None:
            return not self.hw_mode
        return self.push_common

    def validate(self) -> None:  # noqa: D102
        super().validate()
        if self.hw_mode:
            if self.resolved_compaction():
                raise ConfigError(
                    "region compaction requires division; the modified "
                    "algorithm (hw_mode) removes it (paper Section 3)"
                )
            if not float(self.spfac).is_integer() or not 1 <= int(self.spfac) <= 4:
                raise ConfigError("hw_mode spfac must be an integer in 1..4 (eq 4)")

    def hw_max_cuts(self) -> int:
        """eq (4) cap: 2 ** (4 + spfac)."""
        return 1 << (4 + int(self.spfac))


class HyperCutsBuilder(TreeBuilder):
    """Work-list HyperCuts builder; see module docstring."""

    algorithm = "hypercuts"

    def __init__(
        self,
        ruleset: RuleSet,
        config: HyperCutsConfig | None = None,
        ops: OpCounter | None = None,
    ) -> None:
        super().__init__(ruleset, config or HyperCutsConfig(), ops)
        self.cfg: HyperCutsConfig = self.config  # typed alias

    # ------------------------------------------------------------------
    def _build_node(self, item: _WorkItem, stack) -> None:  # type: ignore[override]
        # Region compaction happens before anything else at the node
        # (original algorithm only): shrink each dimension of the region to
        # the bounding box of the rules inside it.
        if self.cfg.resolved_compaction() and item.rule_ids.size:
            item.region = self._compact_region(item.rule_ids, item.region)
            self.ops.add("div", 2 * self.schema.ndim)  # the FP divide the
            self.ops.add("mem_read", 2 * item.rule_ids.size)  # paper removed
        super()._build_node(item, stack)

    def _compact_region(
        self, rule_ids: np.ndarray, region: tuple[tuple[int, int], ...]
    ) -> tuple[tuple[int, int], ...]:
        out = []
        for d, (lo, hi) in enumerate(region):
            clo, chi = clipped_bounds(
                self.arrays.lo[d, rule_ids], self.arrays.hi[d, rule_ids], lo, hi
            )
            out.append((int(clo.min()), int(chi.max())))
        return tuple(out)

    # ------------------------------------------------------------------
    def _decide_cut(self, rule_ids: np.ndarray, item: _WorkItem):
        n = len(rule_ids)
        dims = self._candidate_dims(rule_ids, item)
        if not dims:
            return None
        if self.cfg.hw_mode:
            lo_bound, hi_bound = HW_MIN_CUTS, self.cfg.hw_max_cuts()
        else:
            lo_bound = 2
            hi_bound = max(2, int(self.cfg.spfac * math.sqrt(n)))

        # Per-dimension data and caps.
        axes = []
        for dim in dims:
            span = self._span_of(item, dim)
            cap = pow2_at_most(span)
            if cap < 2:
                continue
            rlo, rhi, reg_lo, reg_hi = self._axis_bounds(rule_ids, item, dim)
            axes.append((dim, cap, rlo, rhi, reg_lo, reg_hi))
        if not axes:
            return None

        combo = self._search_combo(axes, n, lo_bound, hi_bound)
        if combo is None:
            return None
        exponents, firsts, lasts = combo
        sel_dims = tuple(axes[i][0] for i in range(len(axes)) if exponents[i])
        sel_counts = tuple(1 << exponents[i] for i in range(len(axes)) if exponents[i])
        sel_firsts = [firsts[i] for i in range(len(axes)) if exponents[i]]
        sel_lasts = [lasts[i] for i in range(len(axes)) if exponents[i]]

        # No discrimination at all -> leaf.
        if refs_multi(sel_firsts, sel_lasts) >= n * int(np.prod(sel_counts)):
            return None

        pushed = None
        if self.cfg.resolved_push():
            pushed = np.ones(n, dtype=bool)
            for f, l, c in zip(sel_firsts, sel_lasts, sel_counts):
                pushed &= (f == 0) & (l == c - 1)
            self.ops.add("alu", 2 * n * len(sel_counts))
            if pushed.all():
                return None  # every rule common to every child -> leaf
            if not pushed.any():
                pushed = None
        return CutDecision(
            dims=sel_dims,
            counts=sel_counts,
            firsts=sel_firsts,
            lasts=sel_lasts,
            pushed=pushed,
        )

    # ------------------------------------------------------------------
    def _candidate_dims(self, rule_ids: np.ndarray, item: _WorkItem) -> list[int]:
        """Dimensions with distinct-range-spec count >= the mean (Sec 2.2)."""
        counts = []
        for d in range(self.schema.ndim):
            lo, hi = item.region[d]
            clo, chi = clipped_bounds(
                self.arrays.lo[d, rule_ids], self.arrays.hi[d, rule_ids], lo, hi
            )
            pairs = np.stack([clo, chi], axis=1)
            counts.append(len(np.unique(pairs, axis=0)))
            self.ops.add("alu", 2 * len(rule_ids))
            self.ops.add("mem_read", 2 * len(rule_ids))
        mean = sum(counts) / len(counts)
        return [d for d, c in enumerate(counts) if c >= mean]

    # ------------------------------------------------------------------
    def _search_combo(
        self,
        axes: list[tuple],
        n: int,
        lo_bound: int,
        hi_bound: int,
    ):
        """Find the exponent vector minimising the largest child.

        Returns ``(exponents, firsts, lasts)`` where ``firsts[i]``/
        ``lasts[i]`` are the coordinate spans for axis i at its chosen cut
        count, or None when no cutting is possible.
        """
        k = len(axes)
        max_exp = [min(int(math.log2(axes[i][1])), int(math.log2(hi_bound))) for i in range(k)]
        if sum(max_exp) == 0:
            return None

        # Precompute spans per axis per exponent, lazily cached.
        span_cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}

        def spans(i: int, e: int) -> tuple[np.ndarray, np.ndarray]:
            key = (i, e)
            if key not in span_cache:
                dim, cap, rlo, rhi, reg_lo, reg_hi = axes[i]
                span_cache[key] = coord_spans(rlo, rhi, reg_lo, reg_hi, 1 << e)
                self._charge_eval(n, not self.cfg.hw_mode)
            return span_cache[key]

        def evaluate(exps: tuple[int, ...]) -> int:
            fs, ls, cs = [], [], []
            for i, e in enumerate(exps):
                if e:
                    f, l = spans(i, e)
                    fs.append(f)
                    ls.append(l)
                    cs.append(1 << e)
            if not cs:
                return n + 1
            self.ops.add("alu", (1 << len(cs)) * n)
            return max_count_grid(fs, ls, tuple(cs))

        n_combos = 1
        for m in max_exp:
            n_combos *= m + 1
        # ``best`` respects the lo_bound floor (eq 4's np >= 32 in hw mode);
        # ``fallback`` records the best smaller combo, used when the grid
        # has too little resolution left to reach the floor (DESIGN.md §6).
        best: tuple[int, int, tuple[int, ...]] | None = None  # (maxc, prod, exps)
        fallback: tuple[int, int, tuple[int, ...]] | None = None

        def consider(maxc: int, prod: int, exps: tuple[int, ...]) -> None:
            nonlocal best, fallback
            key = (maxc, prod, exps)
            if prod >= max(2, lo_bound):
                if best is None or key < best:
                    best = key
            elif prod >= 2:
                if fallback is None or key < fallback:
                    fallback = key

        if n_combos * n <= EXHAUSTIVE_BUDGET:
            # Exhaustive enumeration of admissible exponent vectors.
            def rec(i: int, exps: list[int], prod: int) -> None:
                if i == k:
                    if prod > hi_bound:
                        return
                    consider(evaluate(tuple(exps)), prod, tuple(exps))
                    return
                e = 0
                while True:
                    exps.append(e)
                    rec(i + 1, exps, prod << e)
                    exps.pop()
                    e += 1
                    if e > max_exp[i] or (prod << e) > hi_bound:
                        break

            rec(0, [], 1)
        else:
            # Greedy ascent: repeatedly add one bit of cutting to the axis
            # that minimises the resulting largest child.
            exps = [0] * k
            prod = 1
            while prod < hi_bound:
                step_best: tuple[int, int] | None = None  # (maxc, axis)
                for i in range(k):
                    if exps[i] < max_exp[i] and prod * 2 <= hi_bound:
                        trial = list(exps)
                        trial[i] += 1
                        maxc = evaluate(tuple(trial))
                        if step_best is None or (maxc, i) < step_best:
                            step_best = (maxc, i)
                if step_best is None:
                    break
                exps[step_best[1]] += 1
                prod <<= 1
                consider(step_best[0], prod, tuple(exps))

        chosen = best if best is not None else fallback
        if chosen is None:
            return None
        _, _, exps = chosen
        firsts: list[np.ndarray] = []
        lasts: list[np.ndarray] = []
        for i, e in enumerate(exps):
            if e:
                first, last = spans(i, e)
            else:
                first = np.zeros(n, dtype=np.int64)
                last = np.zeros(n, dtype=np.int64)
            firsts.append(first)
            lasts.append(last)
        return tuple(exps), firsts, lasts


def build_hypercuts(
    ruleset: RuleSet,
    binth: int = 16,
    spfac: float = 4.0,
    hw_mode: bool = False,
    ops: OpCounter | None = None,
    **kwargs,
) -> DecisionTree:
    """Build a HyperCuts tree (original by default, ``hw_mode=True`` for
    the paper's modified hardware-oriented variant)."""
    cfg = HyperCutsConfig(binth=binth, spfac=spfac, hw_mode=hw_mode, **kwargs)
    return HyperCutsBuilder(ruleset, cfg, ops).build()
