"""Operation counting — the substrate for the Sim-Panalyzer substitution.

The paper derives its software energy numbers (Tables 3 and 6) by running
the algorithms on a StrongARM SA-1100 under Sim-Panalyzer, an instruction-
level power simulator.  We cannot run Sim-Panalyzer, so — per DESIGN.md
substitution 3 — every builder and software lookup in this library is
instrumented with an :class:`OpCounter` that tallies the architectural
events the energy model charges for:

========== ===========================================================
category    meaning
========== ===========================================================
``alu``     register-to-register integer ops (add/sub/cmp/shift/mask)
``mul``     integer multiplies
``div``     integer/floating divisions (the expensive op the paper
            removed region compaction to avoid)
``mem_read``   loads that miss into the external SRAM (node headers,
               child pointers, rule fields)
``mem_write``  stores to the search structure under construction
``alloc``   node allocations (header bookkeeping, free-list work)
``branch``  taken branches (loop iterations, tree descents)
========== ===========================================================

The weights that turn these tallies into SA-1100 cycles live in
:mod:`repro.energy.calibration`; keeping the *counting* here and the
*costing* there means the algorithmic code never sees power numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Canonical category names, so typos fail fast in tests.
CATEGORIES = ("alu", "mul", "div", "mem_read", "mem_write", "alloc", "branch")


@dataclass
class OpCounter:
    """Mutable tally of architectural events.

    Counters are plain ints; ``add`` is safe to call with NumPy integers.
    An ``OpCounter`` can be used as a context-local accumulator and merged
    into another with :meth:`merge`.
    """

    counts: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in CATEGORIES}
    )

    def add(self, category: str, n: int | float = 1) -> None:
        if category not in self.counts:
            raise KeyError(
                f"unknown op category {category!r}; known: {CATEGORIES}"
            )
        self.counts[category] += int(n)

    def merge(self, other: "OpCounter") -> None:
        for k, v in other.counts.items():
            self.counts[k] += v

    def reset(self) -> None:
        for k in self.counts:
            self.counts[k] = 0

    def total(self) -> int:
        """Unweighted total event count (used by monotonicity tests)."""
        return sum(self.counts.values())

    def copy(self) -> "OpCounter":
        c = OpCounter()
        c.counts = dict(self.counts)
        return c

    def __getitem__(self, category: str) -> int:
        return self.counts[category]

    def as_dict(self) -> dict[str, int]:
        return dict(self.counts)


class NullCounter:
    """Do-nothing stand-in used on hot paths when counting is disabled.

    Mirrors the :class:`OpCounter` interface; calls are O(1) no-ops so the
    builders can call ``ops.add(...)`` unconditionally.
    """

    __slots__ = ()

    def add(self, category: str, n: int | float = 1) -> None:  # noqa: D102
        pass

    def merge(self, other: object) -> None:  # noqa: D102
        pass


#: Shared singleton null counter.
NULL_COUNTER = NullCounter()
