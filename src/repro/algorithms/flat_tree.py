"""Compiled flat-array traversal kernels for decision trees.

The paper's core insight is a *layout* insight: one pointer-free 4800-bit
word per node and mask/shift/add child indexing make hardware traversal
fast and energy-cheap.  :class:`FlatTree` applies the same insight to the
simulator itself.  It compiles a built :class:`~repro.algorithms.base.
DecisionTree` — a list of Python ``Node`` objects — into pure NumPy
structure-of-arrays buffers:

* per-node scalars: ``kind``, children/leaf/pushed CSR offsets;
* per-(axis-slot, node) cut tables: cut dimension, cut count, row-major
  stride, region bounds and span (padded to the tree's widest node, so
  gather shapes are static);
* a CSR children table (``child_base`` + one flat ``int32`` id array);
* CSR leaf rule lists and pushed rule lists;
* for grid trees, precomputed per-node masks and shifts — the software
  twin of the hardware's mask/shift/add unit (spans and cut counts are
  powers of two on the grid, so ``(v % span) * ncuts // span`` is exactly
  ``(v & mask) >> shift``).

:meth:`FlatTree.batch_lookup` then advances *all* active packets one tree
level per iteration with gather/scatter indexing: there is no
``np.unique`` grouping, no Python loop over nodes, and no per-packet
work — the only Python-level loops are over the (at most ``ndim``) axis
slots and over tree depth.  Leaf and pushed-rule linear searches are
resolved with a segmented first-match kernel (exact-size ``np.repeat``
expansion + ``np.minimum.reduceat``), so the work performed equals the
comparisons the reference traversal counts.

The kernel reproduces :meth:`DecisionTree.batch_lookup_reference`
bit-for-bit on every :class:`~repro.algorithms.base.BatchLookup` field
(``match``, ``internal_nodes``, ``leaf_id``, ``leaf_size``, ``match_pos``,
``rules_compared``), including grid-mode congruence indexing and the
non-grid compacted-region dead path — the conformance suite in
``tests/test_flat_tree.py`` asserts it, which keeps the energy and
occupancy models built on those statistics valid unchanged.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import BuildError
from ..core.packet import PacketTrace

from .base import EMPTY_CHILD, LEAF, BatchLookup

#: Sentinel larger than any within-leaf index, used by the segmented
#: first-match reduction.
_NO_HIT = np.int64(1) << 62

#: Padding upper bound for unused axis slots in software mode — larger
#: than any 32-bit field value, so padded slots never flag "outside".
_PAD_HI = np.int64(1) << 40


class FlatTree:
    """A decision tree compiled into structure-of-arrays kernel buffers."""

    def __init__(self, tree) -> None:
        self.tree = tree
        self.schema = tree.schema
        self.grid_mode = bool(tree.grid_mode)
        nodes = tree.nodes
        n_nodes = len(nodes)
        arrays = tree.ruleset.arrays

        self.kind = np.empty(n_nodes, dtype=np.int8)

        # Axis-slot tables, padded to the widest internal node.
        naxes = 1
        for node in nodes:
            if not node.is_leaf and len(node.cut_dims) > naxes:
                naxes = len(node.cut_dims)
        self.naxes = naxes
        shape = (naxes, n_nodes)
        self.ax_dim = np.zeros(shape, dtype=np.int64)
        self.ax_ncuts = np.ones(shape, dtype=np.int64)
        self.ax_stride = np.zeros(shape, dtype=np.int64)
        self.ax_lo = np.zeros(shape, dtype=np.int64)
        self.ax_hi = np.full(shape, _PAD_HI, dtype=np.int64)
        self.ax_span = np.ones(shape, dtype=np.int64)

        # CSR tables: children, leaf rule lists, pushed rule lists.
        self.child_base = np.zeros(n_nodes, dtype=np.int64)
        self.leaf_base = np.zeros(n_nodes, dtype=np.int64)
        self.leaf_len = np.zeros(n_nodes, dtype=np.int64)
        self.push_base = np.zeros(n_nodes, dtype=np.int64)
        self.push_len = np.zeros(n_nodes, dtype=np.int64)
        children: list[np.ndarray] = []
        leaf_rules: list[np.ndarray] = []
        push_rules: list[np.ndarray] = []
        child_off = leaf_off = push_off = 0

        for nid, node in enumerate(nodes):
            self.kind[nid] = node.kind
            if node.is_leaf:
                self.leaf_base[nid] = leaf_off
                self.leaf_len[nid] = node.rule_ids.size
                leaf_rules.append(np.asarray(node.rule_ids, dtype=np.int64))
                leaf_off += node.rule_ids.size
                continue
            strides = node.child_strides()
            for a, (dim, ncuts, stride) in enumerate(
                zip(node.cut_dims, node.cut_counts, strides)
            ):
                lo, hi = node.region[dim]
                self.ax_dim[a, nid] = dim
                self.ax_ncuts[a, nid] = ncuts
                self.ax_stride[a, nid] = stride
                self.ax_lo[a, nid] = lo
                self.ax_hi[a, nid] = hi
                self.ax_span[a, nid] = hi - lo + 1
            self.child_base[nid] = child_off
            children.append(np.asarray(node.children, dtype=np.int32))
            child_off += node.n_children
            if node.pushed.size:
                self.push_base[nid] = push_off
                self.push_len[nid] = node.pushed.size
                push_rules.append(np.asarray(node.pushed, dtype=np.int64))
                push_off += node.pushed.size

        def _cat(parts: list[np.ndarray], dtype) -> np.ndarray:
            return (
                np.concatenate(parts) if parts else np.empty(0, dtype=dtype)
            ).astype(dtype, copy=False)

        self.children = _cat(children, np.int32)
        self.leaf_rules = _cat(leaf_rules, np.int64)
        self.push_rules = _cat(push_rules, np.int64)
        self.has_pushed = bool(self.push_rules.size)

        # Rule intervals re-ordered by CSR slot (``bounds[d, pos]`` is the
        # bound of the rule stored at flat leaf/pushed position ``pos``).
        # Positions within a packet's list are consecutive, so the lookup
        # gathers walk these tables almost sequentially — and ``uint32``
        # keeps them half the width of rule-id indirection.  ``*_span``
        # holds ``hi - lo`` so the interval test is a single unsigned
        # compare: ``(v - lo) <= span`` (uint32 wraparound makes ``v < lo``
        # read as a huge value).  Identical outcome to ``lo <= v <= hi``.
        self.leaf_lo = arrays.lo[:, self.leaf_rules]
        self.leaf_span = arrays.hi[:, self.leaf_rules] - self.leaf_lo
        self.push_lo = arrays.lo[:, self.push_rules]
        self.push_span = arrays.hi[:, self.push_rules] - self.push_lo

        # Grid fast path: every internal span and cut count is a power of
        # two (the alignment invariant grid trees are built around), so
        # child indexing compiles to the hardware's mask/shift unit.
        # ``(v % span) * ncuts // span == (v & (span-1)) >> log2(span/ncuts)``.
        self.pow2 = False
        if self.grid_mode:
            spans = self.ax_span
            ncuts = self.ax_ncuts
            if (
                bool((spans & (spans - 1) == 0).all())
                and bool((ncuts & (ncuts - 1) == 0).all())
            ):
                self.pow2 = True
                self.ax_mask = spans - 1
                # log2 of a power of two is exact in float64 (spans fit
                # well under 2**53).
                log2span = np.log2(spans.astype(np.float64)).astype(np.int64)
                log2cuts = np.log2(ncuts.astype(np.float64)).astype(np.int64)
                self.ax_shift = np.maximum(log2span - log2cuts, 0)

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.kind)

    def nbytes(self) -> int:
        """Total size of the compiled kernel buffers."""
        total = 0
        for name in (
            "kind", "ax_dim", "ax_ncuts", "ax_stride",
            "ax_lo", "ax_hi", "ax_span", "child_base", "leaf_base",
            "leaf_len", "push_base", "push_len", "children", "leaf_rules",
            "push_rules", "leaf_lo", "leaf_span", "push_lo", "push_span",
        ):
            total += getattr(self, name).nbytes
        if self.pow2:
            total += self.ax_mask.nbytes + self.ax_shift.nbytes
        return total

    # ------------------------------------------------------------------
    def batch_lookup(self, trace: PacketTrace) -> BatchLookup:
        """Classify a whole trace; see module docstring for the scheme."""
        headers32 = trace.headers  # uint32, used by the match kernels
        headers = headers32.astype(np.int64)  # traversal arithmetic
        n = headers.shape[0]
        match = np.full(n, -1, dtype=np.int64)
        internal_nodes = np.zeros(n, dtype=np.int32)
        match_pos = np.full(n, -1, dtype=np.int32)
        leaf_id = np.full(n, -1, dtype=np.int32)
        leaf_size = np.zeros(n, dtype=np.int32)
        rules_compared = np.zeros(n, dtype=np.int32)

        cur = np.zeros(n, dtype=np.int32)
        active = np.arange(n, dtype=np.int64)
        guard = 0
        while active.size:
            guard += 1
            if guard > 10_000:
                raise BuildError("batch traversal did not terminate")
            nodes = cur[active].astype(np.int64)
            at_leaf = self.kind[nodes] == LEAF
            if at_leaf.any():
                self._resolve_leaves(
                    active[at_leaf], nodes[at_leaf], headers32, match,
                    match_pos, leaf_id, leaf_size, rules_compared,
                )
                cur[active[at_leaf]] = -2
            internal = ~at_leaf
            if internal.any():
                sel = active[internal]
                nids = nodes[internal]
                internal_nodes[sel] += 1
                if self.has_pushed:
                    plen = self.push_len[nids]
                    pm = plen > 0
                    if pm.any():
                        self._match_lists(
                            sel[pm], self.push_base[nids[pm]], plen[pm],
                            self.push_rules, self.push_lo, self.push_span,
                            headers32, match, rules_compared,
                        )
                child, dead = self._advance(sel, nids, headers)
                if dead.any():
                    leaf_size[sel[dead]] = 0
                cur[sel] = np.where(dead, np.int32(-2), child)
            active = active[cur[active] >= 0]
        return BatchLookup(
            match=match,
            internal_nodes=internal_nodes,
            leaf_id=leaf_id,
            leaf_size=leaf_size,
            match_pos=match_pos,
            rules_compared=rules_compared,
        )

    # ------------------------------------------------------------------
    def _advance(
        self, sel: np.ndarray, nids: np.ndarray, headers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Child node id per packet plus the dead-path mask.

        One gathered expression per axis slot; padded slots contribute
        stride 0, so mixed-arity nodes advance in the same pass.
        """
        flat = np.zeros(sel.size, dtype=np.int64)
        outside = np.zeros(sel.size, dtype=bool)
        for a in range(self.naxes):
            raw = headers[sel, self.ax_dim[a, nids]]
            stride = self.ax_stride[a, nids]
            if self.pow2:
                # The hardware datapath: mask the position-independent
                # relative bits, shift down to the cut resolution.
                coord = (raw & self.ax_mask[a, nids]) >> self.ax_shift[a, nids]
            else:
                span = self.ax_span[a, nids]
                ncuts = self.ax_ncuts[a, nids]
                if self.grid_mode:
                    v = raw % span
                else:
                    lo = self.ax_lo[a, nids]
                    outside |= (raw < lo) | (raw > self.ax_hi[a, nids])
                    v = np.clip(raw - lo, 0, span - 1)
                coord = np.where(ncuts >= span, v, (v * ncuts) // span)
            flat += coord * stride
        child = self.children[self.child_base[nids] + flat]
        return child, (child == EMPTY_CHILD) | outside

    # ------------------------------------------------------------------
    def _resolve_leaves(
        self, sel: np.ndarray, nids: np.ndarray, headers32: np.ndarray,
        match: np.ndarray, match_pos: np.ndarray, leaf_id: np.ndarray,
        leaf_size: np.ndarray, rules_compared: np.ndarray,
    ) -> None:
        lens = self.leaf_len[nids]
        leaf_id[sel] = nids
        leaf_size[sel] = lens
        nz = lens > 0
        if not nz.any():
            return
        self._match_lists(
            sel[nz], self.leaf_base[nids[nz]], lens[nz], self.leaf_rules,
            self.leaf_lo, self.leaf_span, headers32, match, rules_compared,
            match_pos,
        )

    def _match_lists(
        self, sel: np.ndarray, base: np.ndarray, lens: np.ndarray,
        rules_flat: np.ndarray, lo_tab: np.ndarray, span_tab: np.ndarray,
        headers32: np.ndarray, match: np.ndarray,
        rules_compared: np.ndarray, match_pos: np.ndarray | None = None,
    ) -> None:
        """Segmented first-match over per-packet rule lists (CSR).

        Expands exactly ``lens.sum()`` (packet, rule) pairs — the same
        comparison count the reference charges.  The first two dimensions
        (the highly selective IP prefixes on 5-tuple rulesets) are tested
        over all pairs; the surviving pair set is then compacted and the
        remaining dimensions only touch the survivors, which cuts the
        gather volume by the survivors' fraction.  The first hit per
        packet falls out of one ``np.minimum.reduceat`` over the segment
        layout.  Priority resolution against the running best (pushed
        rules seen higher up the path) matches the reference's
        compare-and-keep-smaller update.
        """
        starts = np.zeros(lens.size, dtype=np.int64)
        np.cumsum(lens[:-1], out=starts[1:])
        total = int(starts[-1] + lens[-1])
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, lens)
        pos = np.repeat(base, lens) + within
        ndim = self.schema.ndim
        lead = min(2, ndim)
        ok = np.ones(total, dtype=bool)
        for d in range(lead):
            v = np.repeat(headers32[sel, d], lens)
            ok &= (v - lo_tab[d, pos]) <= span_tab[d, pos]
        if lead < ndim:
            alive = np.nonzero(ok)[0]
            pair_pkt = np.repeat(
                np.arange(sel.size, dtype=np.int64), lens
            )[alive]
            for d in range(lead, ndim):
                va = headers32[sel, d][pair_pkt]
                pa = pos[alive]
                keep = (va - lo_tab[d, pa]) <= span_tab[d, pa]
                alive = alive[keep]
                pair_pkt = pair_pkt[keep]
            score = np.full(total, _NO_HIT, dtype=np.int64)
            score[alive] = within[alive]
        else:
            score = np.where(ok, within, _NO_HIT)
        first = np.minimum.reduceat(score, starts)
        hit_m = first < _NO_HIT
        first32 = np.where(hit_m, first, -1).astype(np.int32)
        if match_pos is not None:
            match_pos[sel] = first32
        rules_compared[sel] += np.where(hit_m, first + 1, lens).astype(
            np.int32
        )
        hit = sel[hit_m]
        cand = rules_flat[base[hit_m] + first[hit_m]]
        cur_best = match[hit]
        better = (cur_best < 0) | (cand < cur_best)
        match[hit[better]] = cand[better]
