"""Compiled flat-array traversal kernels for decision trees.

The paper's core insight is a *layout* insight: one pointer-free 4800-bit
word per node and mask/shift/add child indexing make hardware traversal
fast and energy-cheap.  :class:`FlatTree` applies the same insight to the
simulator itself.  It compiles a built :class:`~repro.algorithms.base.
DecisionTree` — a list of Python ``Node`` objects — into pure NumPy
structure-of-arrays buffers:

* per-node scalars: ``kind``, children/leaf/pushed CSR offsets;
* per-(axis-slot, node) cut tables: cut dimension, cut count, row-major
  stride, region bounds and span (padded to the tree's widest node, so
  gather shapes are static);
* a CSR children table (``child_base`` + one flat ``int32`` id array);
* CSR leaf rule lists and pushed rule lists;
* for grid trees, precomputed per-node masks and shifts — the software
  twin of the hardware's mask/shift/add unit (spans and cut counts are
  powers of two on the grid, so ``(v % span) * ncuts // span`` is exactly
  ``(v & mask) >> shift``).

:meth:`FlatTree.batch_lookup` then advances *all* active packets one tree
level per iteration with gather/scatter indexing: there is no
``np.unique`` grouping, no Python loop over nodes, and no per-packet
work — the only Python-level loops are over the (at most ``ndim``) axis
slots and over tree depth.  Leaf and pushed-rule linear searches are
resolved with a segmented first-match kernel (exact-size ``np.repeat``
expansion + ``np.minimum.reduceat``), so the work performed equals the
comparisons the reference traversal counts.

The kernel reproduces :meth:`DecisionTree.batch_lookup_reference`
bit-for-bit on every :class:`~repro.algorithms.base.BatchLookup` field
(``match``, ``internal_nodes``, ``leaf_id``, ``leaf_size``, ``match_pos``,
``rules_compared``), including grid-mode congruence indexing and the
non-grid compacted-region dead path — the conformance suite in
``tests/test_flat_tree.py`` asserts it, which keeps the energy and
occupancy models built on those statistics valid unchanged.

**Incremental kernel patching.**  The incremental updater
(:mod:`repro.algorithms.incremental`) mutates a handful of nodes per
rule update; recompiling the whole kernel for that would put an
O(all-nodes) Python pass on the control-plane path.  :meth:`FlatTree.
patch` instead *splices* only the rows of the touched node ids: per-node
scalar and axis-table columns are rewritten in place, each CSR table is
reassembled with one gather/scatter that moves every unchanged row and
writes the recomputed rows at their canonical offsets, and the
mask/shift tables are re-derived.  The patched buffers are **bit
identical to a fresh compile of the mutated tree** (base offsets are
recomputed with the same cumulative-sum convention the compiler uses),
so every downstream consumer — and the bit-for-bit conformance suite —
is oblivious to which path built them.  ``tests/test_flat_patch.py``
asserts the identity after every patch; the benchmark suite gates the
patch at >= 3x a full recompile for single-rule updates on a 10k-rule
tree (``update_patch`` in ``BENCH_engine.json``).
"""

from __future__ import annotations

import numpy as np

from ..core.errors import BuildError
from ..core.packet import PacketTrace

from .base import EMPTY_CHILD, LEAF, BatchLookup

#: Sentinel larger than any within-leaf index, used by the segmented
#: first-match reduction.
_NO_HIT = np.int64(1) << 62

#: Padding upper bound for unused axis slots in software mode — larger
#: than any 32-bit field value, so padded slots never flag "outside".
_PAD_HI = np.int64(1) << 40


class FlatTree:
    """A decision tree compiled into structure-of-arrays kernel buffers."""

    def __init__(self, tree) -> None:
        self.tree = tree
        self.schema = tree.schema
        self.grid_mode = bool(tree.grid_mode)
        nodes = tree.nodes
        n_nodes = len(nodes)
        arrays = tree.ruleset.arrays

        self.kind = np.empty(n_nodes, dtype=np.int8)

        # Axis-slot tables, padded to the widest internal node.
        naxes = 1
        for node in nodes:
            if not node.is_leaf and len(node.cut_dims) > naxes:
                naxes = len(node.cut_dims)
        self.naxes = naxes
        shape = (naxes, n_nodes)
        self.ax_dim = np.zeros(shape, dtype=np.int64)
        self.ax_ncuts = np.ones(shape, dtype=np.int64)
        self.ax_stride = np.zeros(shape, dtype=np.int64)
        self.ax_lo = np.zeros(shape, dtype=np.int64)
        self.ax_hi = np.full(shape, _PAD_HI, dtype=np.int64)
        self.ax_span = np.ones(shape, dtype=np.int64)

        # CSR tables: children, leaf rule lists, pushed rule lists.
        # ``*_len`` records every row's width (``child_len`` exists so the
        # patcher can recompute canonical base offsets without touching
        # the node objects of unchanged rows).
        self.child_base = np.zeros(n_nodes, dtype=np.int64)
        self.child_len = np.zeros(n_nodes, dtype=np.int64)
        self.leaf_base = np.zeros(n_nodes, dtype=np.int64)
        self.leaf_len = np.zeros(n_nodes, dtype=np.int64)
        self.push_base = np.zeros(n_nodes, dtype=np.int64)
        self.push_len = np.zeros(n_nodes, dtype=np.int64)
        children: list[np.ndarray] = []
        leaf_rules: list[np.ndarray] = []
        push_rules: list[np.ndarray] = []
        child_off = leaf_off = push_off = 0

        for nid, node in enumerate(nodes):
            self.kind[nid] = node.kind
            if node.is_leaf:
                self.leaf_base[nid] = leaf_off
                self.leaf_len[nid] = node.rule_ids.size
                leaf_rules.append(np.asarray(node.rule_ids, dtype=np.int64))
                leaf_off += node.rule_ids.size
                continue
            self._fill_internal_axes(nid, node)
            self.child_base[nid] = child_off
            self.child_len[nid] = node.n_children
            children.append(np.asarray(node.children, dtype=np.int32))
            child_off += node.n_children
            if node.pushed.size:
                self.push_base[nid] = push_off
                self.push_len[nid] = node.pushed.size
                push_rules.append(np.asarray(node.pushed, dtype=np.int64))
                push_off += node.pushed.size

        def _cat(parts: list[np.ndarray], dtype) -> np.ndarray:
            return (
                np.concatenate(parts) if parts else np.empty(0, dtype=dtype)
            ).astype(dtype, copy=False)

        self.children = _cat(children, np.int32)
        self.leaf_rules = _cat(leaf_rules, np.int64)
        self.push_rules = _cat(push_rules, np.int64)
        self._refresh_bounds(arrays)
        self._finalize_pow2()
        # How many internal nodes use every axis slot.  The patcher
        # keeps this current so it can detect — without rescanning all
        # nodes — when an update would change the padded table width
        # (either direction), which forces a full recompile.
        widths = (self.ax_stride > 0).sum(axis=0)
        self._n_widest = int((widths == self.naxes).sum())

    # ------------------------------------------------------------------
    def _fill_internal_axes(self, nid: int, node) -> None:
        """Write an internal node's axis-slot columns (slots beyond its
        arity keep the padded defaults)."""
        strides = node.child_strides()
        for a, (dim, ncuts, stride) in enumerate(
            zip(node.cut_dims, node.cut_counts, strides)
        ):
            lo, hi = node.region[dim]
            self.ax_dim[a, nid] = dim
            self.ax_ncuts[a, nid] = ncuts
            self.ax_stride[a, nid] = stride
            self.ax_lo[a, nid] = lo
            self.ax_hi[a, nid] = hi
            self.ax_span[a, nid] = hi - lo + 1

    def _refresh_bounds(self, arrays) -> None:
        # Rule intervals re-ordered by CSR slot (``bounds[d, pos]`` is the
        # bound of the rule stored at flat leaf/pushed position ``pos``).
        # Positions within a packet's list are consecutive, so the lookup
        # gathers walk these tables almost sequentially — and ``uint32``
        # keeps them half the width of rule-id indirection.  ``*_span``
        # holds ``hi - lo`` so the interval test is a single unsigned
        # compare: ``(v - lo) <= span`` (uint32 wraparound makes ``v < lo``
        # read as a huge value).  Identical outcome to ``lo <= v <= hi``.
        self.leaf_lo = arrays.lo[:, self.leaf_rules]
        self.leaf_span = arrays.hi[:, self.leaf_rules] - self.leaf_lo
        self.push_lo = arrays.lo[:, self.push_rules]
        self.push_span = arrays.hi[:, self.push_rules] - self.push_lo
        self.has_pushed = bool(self.push_rules.size)

    def _finalize_pow2(self) -> None:
        # Grid fast path: every internal span and cut count is a power of
        # two (the alignment invariant grid trees are built around), so
        # child indexing compiles to the hardware's mask/shift unit.
        # ``(v % span) * ncuts // span == (v & (span-1)) >> log2(span/ncuts)``.
        self.pow2 = False
        if self.grid_mode:
            spans = self.ax_span
            ncuts = self.ax_ncuts
            if (
                bool((spans & (spans - 1) == 0).all())
                and bool((ncuts & (ncuts - 1) == 0).all())
            ):
                self.pow2 = True
                self.ax_mask = spans - 1
                # log2 of a power of two is exact in float64 (spans fit
                # well under 2**53).
                log2span = np.log2(spans.astype(np.float64)).astype(np.int64)
                log2cuts = np.log2(ncuts.astype(np.float64)).astype(np.int64)
                self.ax_shift = np.maximum(log2span - log2cuts, 0)
        if not self.pow2:
            # A fresh compile of a non-pow2 tree has no mask/shift tables;
            # keep the patched object shape-identical.
            for name in ("ax_mask", "ax_shift"):
                if hasattr(self, name):
                    delattr(self, name)

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.kind)

    #: Every buffer the kernel is made of; the patch conformance suite
    #: asserts bit-identity with a fresh compile over exactly this list.
    BUFFER_NAMES = (
        "kind", "ax_dim", "ax_ncuts", "ax_stride",
        "ax_lo", "ax_hi", "ax_span", "child_base", "child_len",
        "leaf_base", "leaf_len", "push_base", "push_len", "children",
        "leaf_rules", "push_rules", "leaf_lo", "leaf_span", "push_lo",
        "push_span",
    )

    def nbytes(self) -> int:
        """Total size of the compiled kernel buffers."""
        total = 0
        for name in self.BUFFER_NAMES:
            total += getattr(self, name).nbytes
        if self.pow2:
            total += self.ax_mask.nbytes + self.ax_shift.nbytes
        return total

    # ------------------------------------------------------------------
    # Incremental kernel patching (update serving)
    # ------------------------------------------------------------------
    def patch(self, dirty) -> bool:
        """Splice the rows of the ``dirty`` node ids into the buffers.

        ``dirty`` is the set of node ids the incremental updater touched
        (mutated leaves, cloned/rebased nodes, re-pointed parents);
        appended nodes are picked up automatically.  On success the
        buffers are bit-identical to ``FlatTree(self.tree)`` compiled
        from scratch.  Returns ``False`` — leaving the buffers untouched
        — when the mutation cannot be expressed as a row splice (the
        padded axis-table width changed), in which case the caller must
        recompile.
        """
        nodes = self.tree.nodes
        n_new = len(nodes)
        n_old = self.kind.size
        if n_new < n_old:
            return False  # nodes are never deleted; defensive
        dirty = {int(d) for d in dirty}
        dirty.update(range(n_old, n_new))
        if not dirty:
            return True
        if min(dirty) < 0 or max(dirty) >= n_new:
            return False
        # The padded axis-table width is a global property (the widest
        # internal node); a width change in either direction reshapes
        # every gather, so those rare updates fall back to a full
        # recompile.  ``_n_widest`` tracks how many nodes pin the
        # current width, so no rescan of unchanged nodes is needed.
        delta_widest = 0
        for nid in dirty:
            node = nodes[nid]
            new_w = 0 if node.is_leaf else len(node.cut_dims)
            if new_w > self.naxes:
                return False  # would widen the padded tables
            if self.grid_mode and self.pow2 and not node.is_leaf:
                # Validate the alignment *before* any buffer mutation so
                # a False return really does leave the kernel untouched.
                for dim, ncuts in zip(node.cut_dims, node.cut_counts):
                    lo, hi = node.region[dim]
                    span = hi - lo + 1
                    if span & (span - 1) or ncuts & (ncuts - 1):
                        return False  # lost pow2; caller recompiles
            old_w = (
                int((self.ax_stride[:, nid] > 0).sum()) if nid < n_old else 0
            )
            delta_widest += (new_w == self.naxes) - (old_w == self.naxes)
        if self._n_widest + delta_widest <= 0:
            return False  # the widest node vanished; tables would narrow
        self._n_widest += delta_widest

        arrays = self.tree.ruleset.arrays
        # Participation snapshot before the dirty loop mutates ``kind``.
        old_internal = self.kind != LEAF
        old_n_old = self.kind.size
        old_tables = {
            "children": (self.children, self.child_base,
                         self.child_len.copy()),
            "leaf": (self.leaf_rules, self.leaf_base, self.leaf_len.copy()),
            "push": (self.push_rules, self.push_base, self.push_len.copy()),
        }

        grow = n_new - n_old
        ax_defaults = (
            ("ax_dim", 0), ("ax_ncuts", 1), ("ax_stride", 0),
            ("ax_lo", 0), ("ax_hi", _PAD_HI), ("ax_span", 1),
        )
        if grow:
            self.kind = np.concatenate(
                [self.kind, np.empty(grow, dtype=np.int8)]
            )
            names = list(ax_defaults)
            if self.pow2:
                # Padded defaults: mask = span-1 = 0, shift = 0.
                names += [("ax_mask", 0), ("ax_shift", 0)]
            for name, fill in names:
                tab = getattr(self, name)
                pad = np.full((self.naxes, grow), fill, dtype=tab.dtype)
                setattr(self, name, np.concatenate([tab, pad], axis=1))
            for name in ("child_len", "leaf_len", "push_len"):
                setattr(self, name, np.concatenate(
                    [getattr(self, name), np.zeros(grow, dtype=np.int64)]
                ))

        # Recompute the touched rows from their (mutated) node objects.
        new_children: dict[int, np.ndarray] = {}
        new_leaf: dict[int, np.ndarray] = {}
        new_push: dict[int, np.ndarray] = {}
        empty32 = np.empty(0, dtype=np.int32)
        empty64 = np.empty(0, dtype=np.int64)
        for nid in dirty:
            node = nodes[nid]
            self.kind[nid] = node.kind
            for name, fill in ax_defaults:
                getattr(self, name)[:, nid] = fill
            if node.is_leaf:
                self.child_len[nid] = 0
                self.push_len[nid] = 0
                self.leaf_len[nid] = node.rule_ids.size
                new_children[nid] = empty32
                new_push[nid] = empty64
                new_leaf[nid] = np.asarray(node.rule_ids, dtype=np.int64)
            else:
                self._fill_internal_axes(nid, node)
                self.leaf_len[nid] = 0
                self.child_len[nid] = node.n_children
                self.push_len[nid] = node.pushed.size
                new_leaf[nid] = empty64
                new_children[nid] = np.asarray(node.children, dtype=np.int32)
                new_push[nid] = (
                    np.asarray(node.pushed, dtype=np.int64)
                    if node.pushed.size else empty64
                )

        # Canonical participation masks, exactly the compiler's layout:
        # every internal node owns a children row, every leaf a leaf row,
        # and only internal nodes with pushed rules own a push row.
        internal = self.kind != LEAF

        data, base, _, _ = self._patch_table(
            *old_tables["children"], old_internal, self.child_len,
            internal, new_children, dirty, old_n_old,
        )
        self.children, self.child_base = data, base
        data, base, lo, span = self._patch_table(
            *old_tables["leaf"], ~old_internal, self.leaf_len,
            ~internal, new_leaf, dirty, old_n_old,
            bounds=(self.leaf_lo, self.leaf_span, arrays),
        )
        self.leaf_rules, self.leaf_base = data, base
        self.leaf_lo, self.leaf_span = lo, span
        data, base, lo, span = self._patch_table(
            *old_tables["push"],
            old_internal & (old_tables["push"][2] > 0), self.push_len,
            internal & (self.push_len > 0), new_push, dirty, old_n_old,
            bounds=(self.push_lo, self.push_span, arrays),
        )
        self.push_rules, self.push_base = data, base
        self.push_lo, self.push_span = lo, span
        self.has_pushed = bool(self.push_rules.size)

        if self.grid_mode:
            if self.pow2:
                # Alignment was validated in the pre-mutation pass, so
                # this is a pure column refresh.
                self._patch_pow2(dirty)
            else:  # pragma: no cover - grid trees are pow2 by invariant
                self._finalize_pow2()
        return True

    @staticmethod
    def _csr_bases(lens: np.ndarray, part: np.ndarray) -> np.ndarray:
        """Compile-order base offsets: cumulative row widths over the
        participating nodes, zero elsewhere (the compiler's convention)."""
        contrib = np.where(part, lens, 0)
        off = np.zeros(lens.size, dtype=np.int64)
        np.cumsum(contrib[:-1], out=off[1:])
        return np.where(part, off, 0)

    def _patch_table(
        self, old_data, old_base, old_len, old_part, lens, part,
        changed: dict[int, np.ndarray], dirty: set[int], n_old: int,
        bounds=None,
    ):
        """Patch one CSR table, preserving the canonical row order.

        Two regimes:

        * every dirty row keeps its length and participation — rows are
          rewritten **in place** (no reassembly at all);
        * otherwise the table is re-stitched from at most
          ``O(len(dirty))`` contiguous segments of the old data plus the
          recomputed rows, and base offsets are recomputed with the
          compiler's cumulative-sum convention.

        ``bounds`` — ``(lo_tab, span_tab, arrays)`` — threads the
        slot-aligned rule-bound tables through the identical segmenting,
        so they never need a full re-gather.
        Returns ``(data, base, lo_tab, span_tab)``.
        """
        inplace = True
        for nid in dirty:
            was = nid < n_old and bool(old_part[nid])
            now = bool(part[nid])
            if was != now or (now and int(old_len[nid]) != int(lens[nid])):
                inplace = False
                break
        if bounds is not None:
            lo_tab, span_tab, arrays = bounds
        if inplace:
            for nid in dirty:
                row = changed[nid]
                if not part[nid] or not row.size:
                    continue
                b = int(old_base[nid])
                old_data[b : b + row.size] = row
                if bounds is not None:
                    lo_tab[:, b : b + row.size] = arrays.lo[:, row]
                    span_tab[:, b : b + row.size] = (
                        arrays.hi[:, row] - arrays.lo[:, row]
                    )
            if old_base.size < lens.size:
                # Appended nodes that do not participate here still need
                # base slots (canonically zero).
                old_base = np.concatenate([
                    old_base,
                    np.zeros(lens.size - old_base.size, dtype=np.int64),
                ])
            if bounds is None:
                return old_data, old_base, None, None
            return old_data, old_base, lo_tab, span_tab

        base = self._csr_bases(lens, part)
        old_ids = np.nonzero(old_part)[0]
        segs: list[np.ndarray] = []
        lo_segs: list[np.ndarray] = []
        span_segs: list[np.ndarray] = []
        cursor = 0
        for nid in sorted(changed):
            was = nid < n_old and bool(old_part[nid])
            if was:
                start, ln = int(old_base[nid]), int(old_len[nid])
            else:
                # Node joins the table: its canonical position is just
                # before the next old participant with a larger id.
                j = int(np.searchsorted(old_ids, nid))
                start = (
                    int(old_base[old_ids[j]])
                    if j < old_ids.size else old_data.size
                )
                ln = 0
            segs.append(old_data[cursor:start])
            if bounds is not None:
                lo_segs.append(lo_tab[:, cursor:start])
                span_segs.append(span_tab[:, cursor:start])
            row = changed[nid]
            if part[nid] and row.size:
                segs.append(row)
                if bounds is not None:
                    row_lo = arrays.lo[:, row]
                    lo_segs.append(row_lo)
                    span_segs.append(arrays.hi[:, row] - row_lo)
            cursor = start + ln
        segs.append(old_data[cursor:])
        data = np.concatenate(segs)
        if bounds is None:
            return data, base, None, None
        lo_segs.append(lo_tab[:, cursor:])
        span_segs.append(span_tab[:, cursor:])
        return (
            data, base,
            np.concatenate(lo_segs, axis=1),
            np.concatenate(span_segs, axis=1),
        )

    def _patch_pow2(self, dirty: set[int]) -> None:
        """Refresh the mask/shift columns of the dirty nodes (their
        power-of-two alignment was validated before any mutation)."""
        ids = np.fromiter(dirty, dtype=np.int64)
        spans = self.ax_span[:, ids]
        ncuts = self.ax_ncuts[:, ids]
        self.ax_mask[:, ids] = spans - 1
        log2span = np.log2(spans.astype(np.float64)).astype(np.int64)
        log2cuts = np.log2(ncuts.astype(np.float64)).astype(np.int64)
        self.ax_shift[:, ids] = np.maximum(log2span - log2cuts, 0)

    # ------------------------------------------------------------------
    def batch_lookup(self, trace: PacketTrace) -> BatchLookup:
        """Classify a whole trace; see module docstring for the scheme."""
        headers32 = trace.headers  # uint32, used by the match kernels
        headers = headers32.astype(np.int64)  # traversal arithmetic
        n = headers.shape[0]
        match = np.full(n, -1, dtype=np.int64)
        internal_nodes = np.zeros(n, dtype=np.int32)
        match_pos = np.full(n, -1, dtype=np.int32)
        leaf_id = np.full(n, -1, dtype=np.int32)
        leaf_size = np.zeros(n, dtype=np.int32)
        rules_compared = np.zeros(n, dtype=np.int32)

        cur = np.zeros(n, dtype=np.int32)
        active = np.arange(n, dtype=np.int64)
        guard = 0
        while active.size:
            guard += 1
            if guard > 10_000:
                raise BuildError("batch traversal did not terminate")
            nodes = cur[active].astype(np.int64)
            at_leaf = self.kind[nodes] == LEAF
            if at_leaf.any():
                self._resolve_leaves(
                    active[at_leaf], nodes[at_leaf], headers32, match,
                    match_pos, leaf_id, leaf_size, rules_compared,
                )
                cur[active[at_leaf]] = -2
            internal = ~at_leaf
            if internal.any():
                sel = active[internal]
                nids = nodes[internal]
                internal_nodes[sel] += 1
                if self.has_pushed:
                    plen = self.push_len[nids]
                    pm = plen > 0
                    if pm.any():
                        self._match_lists(
                            sel[pm], self.push_base[nids[pm]], plen[pm],
                            self.push_rules, self.push_lo, self.push_span,
                            headers32, match, rules_compared,
                        )
                child, dead = self._advance(sel, nids, headers)
                if dead.any():
                    leaf_size[sel[dead]] = 0
                cur[sel] = np.where(dead, np.int32(-2), child)
            active = active[cur[active] >= 0]
        return BatchLookup(
            match=match,
            internal_nodes=internal_nodes,
            leaf_id=leaf_id,
            leaf_size=leaf_size,
            match_pos=match_pos,
            rules_compared=rules_compared,
        )

    # ------------------------------------------------------------------
    def batch_match(self, headers32: np.ndarray) -> np.ndarray:
        """Match-only traversal: the fused-lookup hot path.

        Same level-synchronous walk as :meth:`batch_lookup` but without
        the statistics bookkeeping (``internal_nodes``, ``leaf_id``,
        ``leaf_size``, ``match_pos``, ``rules_compared``) and without a
        :class:`~repro.core.packet.PacketTrace` wrapper — it takes the
        raw ``(n, ndim)`` uint32 header array a cache miss-set already
        is.  Matches are bit-identical to ``batch_lookup(...).match``
        (the fused-path conformance suite asserts it); use
        :meth:`batch_lookup` when the occupancy/energy statistics are
        needed.
        """
        headers32 = np.ascontiguousarray(headers32, dtype=np.uint32)
        headers = headers32.astype(np.int64)  # traversal arithmetic
        n = headers.shape[0]
        match = np.full(n, -1, dtype=np.int64)
        cur = np.zeros(n, dtype=np.int32)
        active = np.arange(n, dtype=np.int64)
        guard = 0
        while active.size:
            guard += 1
            if guard > 10_000:
                raise BuildError("batch traversal did not terminate")
            nodes = cur[active].astype(np.int64)
            at_leaf = self.kind[nodes] == LEAF
            if at_leaf.any():
                sel = active[at_leaf]
                nids = nodes[at_leaf]
                lens = self.leaf_len[nids]
                nz = lens > 0
                if nz.any():
                    self._match_only(
                        sel[nz], self.leaf_base[nids[nz]], lens[nz],
                        self.leaf_rules, self.leaf_lo, self.leaf_span,
                        headers32, match,
                    )
                cur[sel] = -2
            internal = ~at_leaf
            if internal.any():
                sel = active[internal]
                nids = nodes[internal]
                if self.has_pushed:
                    plen = self.push_len[nids]
                    pm = plen > 0
                    if pm.any():
                        self._match_only(
                            sel[pm], self.push_base[nids[pm]], plen[pm],
                            self.push_rules, self.push_lo, self.push_span,
                            headers32, match,
                        )
                child, dead = self._advance(sel, nids, headers)
                cur[sel] = np.where(dead, np.int32(-2), child)
            active = active[cur[active] >= 0]
        return match

    # ------------------------------------------------------------------
    def _advance(
        self, sel: np.ndarray, nids: np.ndarray, headers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Child node id per packet plus the dead-path mask.

        One gathered expression per axis slot; padded slots contribute
        stride 0, so mixed-arity nodes advance in the same pass.
        """
        flat = np.zeros(sel.size, dtype=np.int64)
        outside = np.zeros(sel.size, dtype=bool)
        for a in range(self.naxes):
            raw = headers[sel, self.ax_dim[a, nids]]
            stride = self.ax_stride[a, nids]
            if self.pow2:
                # The hardware datapath: mask the position-independent
                # relative bits, shift down to the cut resolution.
                coord = (raw & self.ax_mask[a, nids]) >> self.ax_shift[a, nids]
            else:
                span = self.ax_span[a, nids]
                ncuts = self.ax_ncuts[a, nids]
                if self.grid_mode:
                    v = raw % span
                else:
                    lo = self.ax_lo[a, nids]
                    outside |= (raw < lo) | (raw > self.ax_hi[a, nids])
                    v = np.clip(raw - lo, 0, span - 1)
                coord = np.where(ncuts >= span, v, (v * ncuts) // span)
            flat += coord * stride
        child = self.children[self.child_base[nids] + flat]
        return child, (child == EMPTY_CHILD) | outside

    # ------------------------------------------------------------------
    def _resolve_leaves(
        self, sel: np.ndarray, nids: np.ndarray, headers32: np.ndarray,
        match: np.ndarray, match_pos: np.ndarray, leaf_id: np.ndarray,
        leaf_size: np.ndarray, rules_compared: np.ndarray,
    ) -> None:
        lens = self.leaf_len[nids]
        leaf_id[sel] = nids
        leaf_size[sel] = lens
        nz = lens > 0
        if not nz.any():
            return
        self._match_lists(
            sel[nz], self.leaf_base[nids[nz]], lens[nz], self.leaf_rules,
            self.leaf_lo, self.leaf_span, headers32, match, rules_compared,
            match_pos,
        )

    def _match_lists(
        self, sel: np.ndarray, base: np.ndarray, lens: np.ndarray,
        rules_flat: np.ndarray, lo_tab: np.ndarray, span_tab: np.ndarray,
        headers32: np.ndarray, match: np.ndarray,
        rules_compared: np.ndarray, match_pos: np.ndarray | None = None,
    ) -> None:
        """Segmented first-match over per-packet rule lists (CSR).

        Expands exactly ``lens.sum()`` (packet, rule) pairs — the same
        comparison count the reference charges.  The first two dimensions
        (the highly selective IP prefixes on 5-tuple rulesets) are tested
        over all pairs; the surviving pair set is then compacted and the
        remaining dimensions only touch the survivors, which cuts the
        gather volume by the survivors' fraction.  The first hit per
        packet falls out of one ``np.minimum.reduceat`` over the segment
        layout.  Priority resolution against the running best (pushed
        rules seen higher up the path) matches the reference's
        compare-and-keep-smaller update.
        """
        starts = np.zeros(lens.size, dtype=np.int64)
        np.cumsum(lens[:-1], out=starts[1:])
        total = int(starts[-1] + lens[-1])
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, lens)
        pos = np.repeat(base, lens) + within
        ndim = self.schema.ndim
        lead = min(2, ndim)
        ok = np.ones(total, dtype=bool)
        for d in range(lead):
            v = np.repeat(headers32[sel, d], lens)
            ok &= (v - lo_tab[d, pos]) <= span_tab[d, pos]
        if lead < ndim:
            alive = np.nonzero(ok)[0]
            pair_pkt = np.repeat(
                np.arange(sel.size, dtype=np.int64), lens
            )[alive]
            for d in range(lead, ndim):
                va = headers32[sel, d][pair_pkt]
                pa = pos[alive]
                keep = (va - lo_tab[d, pa]) <= span_tab[d, pa]
                alive = alive[keep]
                pair_pkt = pair_pkt[keep]
            score = np.full(total, _NO_HIT, dtype=np.int64)
            score[alive] = within[alive]
        else:
            score = np.where(ok, within, _NO_HIT)
        first = np.minimum.reduceat(score, starts)
        hit_m = first < _NO_HIT
        first32 = np.where(hit_m, first, -1).astype(np.int32)
        if match_pos is not None:
            match_pos[sel] = first32
        rules_compared[sel] += np.where(hit_m, first + 1, lens).astype(
            np.int32
        )
        hit = sel[hit_m]
        cand = rules_flat[base[hit_m] + first[hit_m]]
        cur_best = match[hit]
        better = (cur_best < 0) | (cand < cur_best)
        match[hit[better]] = cand[better]

    def _match_only(
        self, sel: np.ndarray, base: np.ndarray, lens: np.ndarray,
        rules_flat: np.ndarray, lo_tab: np.ndarray, span_tab: np.ndarray,
        headers32: np.ndarray, match: np.ndarray,
    ) -> None:
        """:meth:`_match_lists` without the statistics side channels.

        Identical pair expansion, lead-dimension prefilter, survivor
        compaction and first-match reduction — but no ``rules_compared``
        accumulation or ``match_pos`` scatter, so the fused hot path
        skips two full-width gathers and scatters per level.  The match
        outcome (including the priority compare-and-keep against pushed
        rules seen higher up the path) is bit-identical.
        """
        starts = np.zeros(lens.size, dtype=np.int64)
        np.cumsum(lens[:-1], out=starts[1:])
        total = int(starts[-1] + lens[-1])
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, lens)
        pos = np.repeat(base, lens) + within
        ndim = self.schema.ndim
        lead = min(2, ndim)
        ok = np.ones(total, dtype=bool)
        for d in range(lead):
            v = np.repeat(headers32[sel, d], lens)
            ok &= (v - lo_tab[d, pos]) <= span_tab[d, pos]
        if lead < ndim:
            alive = np.nonzero(ok)[0]
            pair_pkt = np.repeat(
                np.arange(sel.size, dtype=np.int64), lens
            )[alive]
            for d in range(lead, ndim):
                va = headers32[sel, d][pair_pkt]
                pa = pos[alive]
                keep = (va - lo_tab[d, pa]) <= span_tab[d, pa]
                alive = alive[keep]
                pair_pkt = pair_pkt[keep]
            score = np.full(total, _NO_HIT, dtype=np.int64)
            score[alive] = within[alive]
        else:
            score = np.where(ok, within, _NO_HIT)
        first = np.minimum.reduceat(score, starts)
        hit_m = first < _NO_HIT
        hit = sel[hit_m]
        cand = rules_flat[base[hit_m] + first[hit_m]]
        cur_best = match[hit]
        better = (cur_best < 0) | (cand < cur_best)
        match[hit[better]] = cand[better]
