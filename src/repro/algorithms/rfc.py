"""Recursive Flow Classification (Gupta & McKeown, SIGCOMM 1999).

The paper's throughput claims are anchored on RFC: "the hardware
accelerator can classify up to 546 times more packets ... than the best
performing software algorithm RFC tested in [12]".  To regenerate that
comparison (Tables 6/7) we need a real RFC implementation, so here it is,
built from scratch:

* **Phase 0** splits the 5-tuple into seven chunks (four 16-bit IP
  halves, two 16-bit ports, one 8-bit protocol).  For every chunk a
  direct-indexed table maps the chunk value to an *equivalence class id*;
  two values are equivalent when exactly the same subset of rules can
  still match (identical match bitmaps).
* **Later phases** combine class ids pairwise through cross-product
  tables whose entries are again class ids of the intersected bitmaps,
  until a single table yields the final class whose bitmap's first set
  bit is the matching rule.

Phase-0 tables are built with an endpoint sweep (O(n log n + segments)
per chunk, never 2^16 × n work); bitmaps are packed ``uint8`` arrays so
intersection is a byte-wise AND.

RFC trades enormous memory for a fixed small number of table lookups per
packet — which is exactly why it is the fastest software algorithm on the
StrongARM and why its memory does not fit large rulesets (the known RFC
scaling wall; :class:`~repro.core.errors.CapacityError` reports it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import CapacityError
from ..core.packet import PacketTrace
from ..core.ruleset import RuleSet
from .opcount import NULL_COUNTER, OpCounter

#: Chunk layout: (dimension index, bit shift, chunk width in bits).
CHUNKS: tuple[tuple[int, int, int], ...] = (
    (0, 16, 16),  # src IP high
    (0, 0, 16),   # src IP low
    (1, 16, 16),  # dst IP high
    (1, 0, 16),   # dst IP low
    (2, 0, 16),   # src port
    (3, 0, 16),   # dst port
    (4, 0, 8),    # protocol
)

#: Reduction tree: each phase lists tuples of input table indices.
#: Phase-0 tables are indices 0..6; later tables are appended in order.
REDUCTION_TREE: tuple[tuple[tuple[int, ...], ...], ...] = (
    ((0, 1), (2, 3), (4, 6), (5,)),   # phase 1: sip, dip, sport+proto, dport
    ((7, 8), (9, 10)),                # phase 2: (sip,dip), (sport+proto,dport)
    ((11, 12),),                      # phase 3: final
)

#: Guard against the RFC memory explosion (entries across all tables).
DEFAULT_MAX_TABLE_ENTRIES = 64_000_000


@dataclass
class _Table:
    """One RFC table: entries map an index to an equivalence class id."""

    entries: np.ndarray  # uint32 class ids
    n_classes: int
    class_bitmaps: np.ndarray  # (n_classes, bitmap_bytes) uint8


class RFCClassifier:
    """A built RFC structure supporting single and batch lookups."""

    def __init__(
        self,
        ruleset: RuleSet,
        max_table_entries: int = DEFAULT_MAX_TABLE_ENTRIES,
        ops: OpCounter | None = None,
    ) -> None:
        from ..core.rules import FIVE_TUPLE

        if ruleset.schema is not FIVE_TUPLE:
            raise CapacityError("RFC implementation targets the 5-tuple schema")
        self.ruleset = ruleset
        self.ops = ops if ops is not None else NULL_COUNTER
        self.max_table_entries = max_table_entries
        self._nbytes = (len(ruleset) + 7) // 8
        self.tables: list[_Table] = []
        self._final_match: np.ndarray | None = None
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for dim, shift, width in CHUNKS:
            self.tables.append(self._build_phase0(dim, shift, width))
        for phase in REDUCTION_TREE:
            new_tables = [self._combine(srcs) for srcs in phase]
            self.tables.extend(new_tables)
        final = self.tables[-1]
        # Map final classes to first-matching rule ids.
        match = np.full(final.n_classes, -1, dtype=np.int64)
        for c in range(final.n_classes):
            match[c] = _first_set_bit(final.class_bitmaps[c], len(self.ruleset))
        self._final_match = match

    def _build_phase0(self, dim: int, shift: int, width: int) -> _Table:
        """Endpoint-sweep construction of one chunk table."""
        arrays = self.ruleset.arrays
        n = arrays.n
        size = 1 << width
        mask = size - 1
        # Rule intervals projected onto the chunk.  For the high chunk the
        # interval is [lo >> shift, hi >> shift]; for the low chunk a rule
        # whose high parts differ spans the full chunk (ranges produced by
        # prefixes/port ranges are contiguous in the full value, so the
        # low-chunk projection is exact when the high chunk is a single
        # value and full otherwise).
        lo_full = arrays.lo[dim].astype(np.int64)
        hi_full = arrays.hi[dim].astype(np.int64)
        lo_chunk = (lo_full >> shift) & mask
        hi_chunk = (hi_full >> shift) & mask
        if shift:
            spans_high = (lo_full >> (shift + width)) != (hi_full >> (shift + width))
        else:
            spans_high = (lo_full >> width) != (hi_full >> width)
        lo_c = np.where(spans_high, 0, lo_chunk)
        hi_c = np.where(spans_high, mask, hi_chunk)
        self.ops.add("alu", 8 * n)

        # Sweep: bitmap changes only at interval endpoints.
        points = np.unique(np.concatenate([[0], lo_c, hi_c + 1]))
        points = points[points < size]
        entries = np.zeros(size, dtype=np.uint32)
        bitmaps: dict[bytes, int] = {}
        bitmap_list: list[np.ndarray] = []
        cur = np.zeros(n, dtype=bool)
        segment_starts = points
        segment_ends = np.append(points[1:], size)
        for start, end in zip(segment_starts, segment_ends):
            cur = (lo_c <= start) & (start <= hi_c)
            packed = np.packbits(cur)
            key = packed.tobytes()
            cid = bitmaps.get(key)
            if cid is None:
                cid = len(bitmap_list)
                bitmaps[key] = cid
                bitmap_list.append(packed)
            entries[start:end] = cid
            self.ops.add("alu", 2 * n)
            self.ops.add("mem_write", end - start)
        return _Table(
            entries=entries,
            n_classes=len(bitmap_list),
            class_bitmaps=np.stack(bitmap_list) if bitmap_list else
            np.zeros((1, self._nbytes), dtype=np.uint8),
        )

    def _combine(self, srcs: tuple[int, ...]) -> _Table:
        if len(srcs) == 1:
            return self.tables[srcs[0]]
        a, b = (self.tables[s] for s in srcs)
        n_entries = a.n_classes * b.n_classes
        total = sum(t.entries.size for t in self.tables) + n_entries
        if total > self.max_table_entries:
            raise CapacityError(
                f"RFC cross-product table would bring total entries to "
                f"{total:,} (> {self.max_table_entries:,}); this is the "
                f"classic RFC memory explosion"
            )
        # Intersect bitmaps for every (class_a, class_b) pair.  The AND is
        # vectorised one a-row at a time; deduplication uses a dict keyed
        # by the raw bitmap bytes (orders of magnitude faster than
        # np.unique(axis=0) row sorting for the table sizes RFC produces).
        entries = np.empty(n_entries, dtype=np.uint32)
        classes: dict[bytes, int] = {}
        bitmap_list: list[np.ndarray] = []
        cb = b.n_classes
        for i in range(a.n_classes):
            inter = a.class_bitmaps[i][None, :] & b.class_bitmaps
            for j in range(cb):
                key = inter[j].tobytes()
                cid = classes.get(key)
                if cid is None:
                    cid = len(bitmap_list)
                    classes[key] = cid
                    bitmap_list.append(inter[j].copy())
                entries[i * cb + j] = cid
        self.ops.add("alu", n_entries * (self._nbytes or 1))
        self.ops.add("mem_write", n_entries)
        return _Table(
            entries=entries,
            n_classes=len(bitmap_list),
            class_bitmaps=np.stack(bitmap_list),
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _chunk_values(self, header) -> list[int]:
        vals = []
        for dim, shift, width in CHUNKS:
            vals.append((int(header[dim]) >> shift) & ((1 << width) - 1))
        return vals

    def classify(self, header, ops: OpCounter | None = None) -> int:
        """Single-packet lookup: one memory access per table walked in
        construction order (7 chunk tables, then each combine table)."""
        counter = ops if ops is not None else NULL_COUNTER
        class_of: dict[int, int] = {}
        chunk_vals = self._chunk_values(header)
        for i in range(7):
            class_of[i] = int(self.tables[i].entries[chunk_vals[i]])
            counter.add("mem_read", 1)
            counter.add("alu", 2)
        idx = 7
        for phase in REDUCTION_TREE:
            for srcs in phase:
                if len(srcs) == 1:
                    class_of[idx] = class_of[srcs[0]]
                else:
                    a, b = srcs
                    tbl = self.tables[idx]
                    cb = self.tables[b].n_classes
                    class_of[idx] = int(
                        tbl.entries[class_of[a] * cb + class_of[b]]
                    )
                    counter.add("mem_read", 1)
                    counter.add("alu", 3)
                idx += 1
        assert self._final_match is not None
        return int(self._final_match[class_of[idx - 1]])

    def classify_batch(self, headers: np.ndarray) -> np.ndarray:
        """Vectorised batch lookup (fancy indexing through every table)."""
        class_of: dict[int, np.ndarray] = {}
        for i, (dim, shift, width) in enumerate(CHUNKS):
            vals = (headers[:, dim].astype(np.int64) >> shift) & ((1 << width) - 1)
            class_of[i] = self.tables[i].entries[vals].astype(np.int64)
        idx = 7
        for phase in REDUCTION_TREE:
            for srcs in phase:
                if len(srcs) == 1:
                    class_of[idx] = class_of[srcs[0]]
                else:
                    a, b = srcs
                    cb = self.tables[b].n_classes
                    flat = class_of[a] * cb + class_of[b]
                    class_of[idx] = self.tables[idx].entries[flat].astype(np.int64)
                idx += 1
        assert self._final_match is not None
        return self._final_match[class_of[idx - 1]]

    def classify_trace(self, trace: PacketTrace) -> np.ndarray:
        return self.classify_batch(trace.headers)

    # ------------------------------------------------------------------
    # Cost model inputs
    # ------------------------------------------------------------------
    def memory_accesses_per_lookup(self) -> int:
        """Table reads per packet: 7 chunk tables + one per combine."""
        combines = sum(
            1 for phase in REDUCTION_TREE for srcs in phase if len(srcs) > 1
        )
        return 7 + combines

    def memory_bytes(self) -> int:
        """Total table storage, 2 bytes per entry (16-bit class ids) plus
        4 bytes per final-class match entry."""
        entries = sum(t.entries.size for t in self.tables)
        final = self._final_match.size if self._final_match is not None else 0
        return 2 * entries + 4 * final


def _first_set_bit(packed: np.ndarray, n_rules: int) -> int:
    """Index of the first set bit in a packbits() bitmap, or -1."""
    nz = np.nonzero(packed)[0]
    if not nz.size:
        return -1
    byte = int(nz[0])
    bits = int(packed[byte])
    for k in range(8):
        if bits & (0x80 >> k):
            idx = byte * 8 + k
            return idx if idx < n_rules else -1
    return -1


def build_rfc(
    ruleset: RuleSet,
    max_table_entries: int = DEFAULT_MAX_TABLE_ENTRIES,
    ops: OpCounter | None = None,
) -> RFCClassifier:
    """Build an RFC classifier for ``ruleset``."""
    return RFCClassifier(ruleset, max_table_entries, ops)
