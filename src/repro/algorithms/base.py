"""Decision-tree data model shared by HiCuts / HyperCuts and the hardware.

Trees are stored as a flat node table (:class:`DecisionTree.nodes`, index 0
is the root) with children referenced by integer node id.  Child merging
(Section 2: "merging child nodes which have associated with them the same
set of rules") makes the structure a DAG: the same node id may appear in
several child slots.  Empty children are the sentinel ``EMPTY_CHILD``.

Two kinds of trees flow through the library:

* *software trees* (original HiCuts/HyperCuts) — node regions are
  arbitrary integer boxes, child indexing requires division;
* *grid trees* (the paper's modified, hardware-oriented algorithms) —
  node regions are power-of-two aligned boxes on the 8-MSB grid, child
  indexing is mask/shift/add, and every internal node has at most 256
  children so it fits one 4800-bit memory word.

Both kinds share this data model; ``DecisionTree.grid_mode`` records which
invariants hold (and tests assert them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..core.errors import BuildError
from ..core.geometry import child_index
from ..core.packet import PacketTrace
from ..core.rules import FieldSchema
from ..core.ruleset import RuleSet
from .opcount import NULL_COUNTER, OpCounter

#: Child-slot sentinel: no rules fall in this sub-region.
EMPTY_CHILD = -1

INTERNAL = 0
LEAF = 1


@dataclass
class Node:
    """One decision-tree node.

    ``region`` is the full-precision box; ``grid_region`` (grid trees only)
    the 8-MSB-grid box.  For internal nodes ``cut_dims``/``cut_counts``
    describe the cut grid and ``children`` holds ``prod(cut_counts)`` node
    ids in row-major order (first cut dim = slowest varying).  For leaves
    ``rule_ids`` holds the stored rules in priority order.  ``pushed``
    holds rules moved up by HyperCuts' push-common-subsets heuristic.
    """

    kind: int
    region: tuple[tuple[int, int], ...]
    grid_region: tuple[tuple[int, int], ...] | None = None
    cut_dims: tuple[int, ...] = ()
    cut_counts: tuple[int, ...] = ()
    children: np.ndarray | None = None  # int32 node ids / EMPTY_CHILD
    rule_ids: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    pushed: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.kind == LEAF

    @property
    def n_children(self) -> int:
        return 0 if self.children is None else len(self.children)

    def child_strides(self) -> tuple[int, ...]:
        """Row-major strides matching ``cut_counts``."""
        strides = []
        acc = 1
        for c in reversed(self.cut_counts):
            strides.append(acc)
            acc *= c
        return tuple(reversed(strides))


@dataclass
class LookupResult:
    """Outcome of a single software-semantics lookup."""

    rule_id: int  # matched rule (ruleset index) or -1
    internal_nodes: int  # internal nodes traversed, root included
    leaf_size: int  # rules stored in the final leaf (0 if path died)
    match_pos: int  # index of match within the leaf list, -1 if none
    rules_compared: int  # linear-search comparisons performed (incl. pushed)


class DecisionTree:
    """A built HiCuts/HyperCuts search structure plus its statistics."""

    def __init__(
        self,
        ruleset: RuleSet,
        nodes: list[Node],
        grid_mode: bool,
        params: dict,
        build_ops: OpCounter | None = None,
    ) -> None:
        if not nodes:
            raise BuildError("tree has no nodes")
        self.ruleset = ruleset
        self.schema: FieldSchema = ruleset.schema
        self.nodes = nodes
        self.grid_mode = grid_mode
        self.params = dict(params)
        self.build_ops = build_ops
        self._flat = None  # lazily compiled FlatTree kernel
        self._flat_dirty: set[int] = set()  # node ids awaiting a patch
        #: Serving-path counters: full kernel compiles vs row-splice
        #: patches.  The update-serving tests pin the patch path with
        #: these, so a silent fallback to recompiling fails loudly.
        self.flat_compiles = 0
        self.flat_patches = 0

    # ------------------------------------------------------------------
    # Basic structure queries
    # ------------------------------------------------------------------
    @property
    def root(self) -> Node:
        return self.nodes[0]

    def __len__(self) -> int:
        return len(self.nodes)

    def internal_ids(self) -> list[int]:
        return [i for i, n in enumerate(self.nodes) if not n.is_leaf]

    def leaf_ids(self) -> list[int]:
        return [i for i, n in enumerate(self.nodes) if n.is_leaf]

    def iter_nodes(self) -> Iterator[tuple[int, Node]]:
        return iter(enumerate(self.nodes))

    # ------------------------------------------------------------------
    # Software-semantics lookup (the oracle-checked reference traversal)
    # ------------------------------------------------------------------
    def lookup(
        self, header: Sequence[int], ops: OpCounter | None = None
    ) -> LookupResult:
        """Traverse the tree for one header, first-match semantics.

        Counts the work a software implementation performs: one node-header
        read plus one child-pointer read per internal node, and one rule
        read + compare per linear-search step.
        """
        counter = ops if ops is not None else NULL_COUNTER
        arrays = self.ruleset.arrays
        best = -1
        internal = 0
        compared = 0
        node = self.root
        while True:
            if node.is_leaf:
                pos = -1
                for j, rid in enumerate(node.rule_ids):
                    counter.add("mem_read", 5)  # five field interval reads
                    counter.add("alu", 10)
                    compared += 1
                    r = int(rid)
                    if all(
                        arrays.lo[d, r] <= header[d] <= arrays.hi[d, r]
                        for d in range(self.schema.ndim)
                    ):
                        pos = j
                        if best < 0 or r < best:
                            best = r
                        break
                return LookupResult(best, internal, len(node.rule_ids), pos, compared)
            # Internal node.  Costs are charged per node (not per cut
            # axis) so that the analytic trace aggregation in
            # :func:`repro.energy.software_lookup_ops` is exact.
            internal += 1
            counter.add("mem_read", 2)  # node header + child pointer
            counter.add("branch", 1)
            counter.add("alu", 3)
            if self.grid_mode:
                counter.add("alu", 3)  # mask/shift/add index
            else:
                counter.add("div", 1)  # software child index divides
            # HyperCuts pushed-rule check happens while traversing.
            for rid in node.pushed:
                counter.add("mem_read", 5)
                counter.add("alu", 10)
                compared += 1
                r = int(rid)
                if all(
                    arrays.lo[d, r] <= header[d] <= arrays.hi[d, r]
                    for d in range(self.schema.ndim)
                ):
                    if best < 0 or r < best:
                        best = r
                    break  # pushed list is priority sorted
            flat = 0
            dead = False
            for dim, ncuts, stride in zip(
                node.cut_dims, node.cut_counts, node.child_strides()
            ):
                lo, hi = node.region[dim]
                v = int(header[dim])
                if self.grid_mode:
                    # Mirror the hardware datapath: extract the cut bits
                    # relative to the node's aligned power-of-two box.
                    # This is position-independent, exactly like the
                    # mask/shift unit, so congruence-merged nodes decode
                    # correctly for every merged sibling.
                    span = hi - lo + 1
                    coord = ((v % span) * ncuts) // span
                else:
                    if not lo <= v <= hi:
                        # Region compaction shrank this node to its
                        # rules' bounding box; a packet outside it
                        # matches nothing in this subtree.
                        dead = True
                        break
                    coord = child_index(v, lo, hi, ncuts)
                flat += coord * stride
            if dead:
                return LookupResult(best, internal, 0, -1, compared)
            child = int(node.children[flat])
            if child == EMPTY_CHILD:
                return LookupResult(best, internal, 0, -1, compared)
            node = self.nodes[child]

    def classify(self, header: Sequence[int]) -> int:
        """Convenience: matched rule id only."""
        return self.lookup(header).rule_id

    def classify_batch(self, headers: np.ndarray) -> np.ndarray:
        """Engine-protocol batch lookup: matched rule ids only."""
        return self.batch_lookup(PacketTrace(headers, self.schema)).match

    def classify_trace(self, trace: PacketTrace) -> np.ndarray:
        return self.batch_lookup(trace).match

    # ------------------------------------------------------------------
    # Vectorised batch traversal
    # ------------------------------------------------------------------
    @property
    def flat(self) -> "FlatTree":
        """The compiled flat-array kernel (built once, kept current).

        In-place structural mutations report their touched node ids via
        :meth:`mark_dirty`; the next access *patches* the compiled
        buffers (a row splice, bit-identical to a fresh compile) instead
        of recompiling the whole kernel on the serving thread.
        :meth:`invalidate_cache` remains the big hammer that forces a
        full recompile.
        """
        if self._flat is not None and self._flat_dirty:
            if self._flat.patch(self._flat_dirty):
                self.flat_patches += 1
            else:
                self._flat = None
            self._flat_dirty.clear()
        if self._flat is None:
            from .flat_tree import FlatTree

            self._flat = FlatTree(self)
            self.flat_compiles += 1
            self._flat_dirty.clear()
        return self._flat

    def mark_dirty(self, node_ids) -> None:
        """Record mutated node ids for incremental kernel patching.

        With no compiled kernel yet there is nothing to patch — the
        first :attr:`flat` access compiles fresh anyway.
        """
        if self._flat is not None:
            self._flat_dirty.update(int(i) for i in node_ids)

    def invalidate_cache(self) -> None:
        """Drop the compiled kernel after a structural mutation."""
        self._flat = None
        self._flat_dirty.clear()

    def batch_lookup(self, trace: PacketTrace) -> "BatchLookup":
        """Classify a whole trace, returning per-packet path statistics.

        Delegates to the compiled :class:`~repro.algorithms.flat_tree.
        FlatTree` kernel, which advances all active packets one level per
        iteration over pure structure-of-arrays buffers and is verified
        bit-for-bit against :meth:`batch_lookup_reference`.
        """
        return self.flat.batch_lookup(trace)

    def batch_lookup_reference(self, trace: PacketTrace) -> "BatchLookup":
        """The object-walking reference traversal (conformance oracle).

        Packets are advanced level-synchronously: at each step the active
        packets are grouped by current node (``np.unique``), each group's
        child coordinates are computed with one vectorised expression per
        cut dimension, and leaf groups are resolved with a vectorised
        first-match over the leaf's rule list.  No per-packet Python work,
        but the per-node grouping loop makes it several times slower than
        the compiled kernel on large traces.
        """
        headers = trace.headers
        n = headers.shape[0]
        arrays = self.ruleset.arrays
        match = np.full(n, -1, dtype=np.int64)
        internal_nodes = np.zeros(n, dtype=np.int32)
        match_pos = np.full(n, -1, dtype=np.int32)
        leaf_id = np.full(n, -1, dtype=np.int32)
        leaf_size = np.zeros(n, dtype=np.int32)
        rules_compared = np.zeros(n, dtype=np.int32)

        cur = np.zeros(n, dtype=np.int32)  # current node id per packet
        active = np.arange(n, dtype=np.int64)
        guard = 0
        while active.size:
            guard += 1
            if guard > 10_000:
                raise BuildError("batch traversal did not terminate")
            cur_nodes = cur[active]
            for nid in np.unique(cur_nodes):
                node = self.nodes[int(nid)]
                sel = active[cur_nodes == nid]
                if node.is_leaf:
                    self._resolve_leaf(
                        node, int(nid), sel, headers, arrays, match, match_pos,
                        leaf_id, leaf_size, rules_compared,
                    )
                    cur[sel] = -2  # done
                    continue
                internal_nodes[sel] += 1
                if node.pushed.size:
                    self._match_pushed(node, sel, headers, arrays, match,
                                       rules_compared)
                flat = np.zeros(sel.size, dtype=np.int64)
                outside = np.zeros(sel.size, dtype=bool)
                for dim, ncuts, stride in zip(
                    node.cut_dims, node.cut_counts, node.child_strides()
                ):
                    lo, hi = node.region[dim]
                    span = hi - lo + 1
                    raw = headers[sel, dim].astype(np.int64)
                    if self.grid_mode:
                        # Position-independent relative bits, as the
                        # mask/shift datapath computes them (sound for
                        # congruence-merged siblings).
                        v = raw % span
                    else:
                        # Packets outside a compacted region match
                        # nothing in this subtree.
                        outside |= (raw < lo) | (raw > hi)
                        v = np.clip(raw - lo, 0, span - 1)
                    if ncuts >= span:
                        coord = v
                    else:
                        coord = (v * ncuts) // span
                    flat += coord * stride
                nxt = np.asarray(node.children[flat])
                dead = (nxt == EMPTY_CHILD) | outside
                if dead.any():
                    cur[sel[dead]] = -2
                    leaf_size[sel[dead]] = 0
                cur[sel[~dead]] = nxt[~dead]
            alive = cur[active] >= 0
            active = active[alive]
        return BatchLookup(
            match=match,
            internal_nodes=internal_nodes,
            leaf_id=leaf_id,
            leaf_size=leaf_size,
            match_pos=match_pos,
            rules_compared=rules_compared,
        )

    def _resolve_leaf(
        self, node: Node, nid: int, sel: np.ndarray, headers: np.ndarray,
        arrays, match: np.ndarray, match_pos: np.ndarray, leaf_id: np.ndarray,
        leaf_size: np.ndarray, rules_compared: np.ndarray,
    ) -> None:
        leaf_id[sel] = nid
        leaf_size[sel] = node.rule_ids.size
        if node.rule_ids.size == 0:
            return
        rids = node.rule_ids
        # (n_sel, n_rules) boolean match matrix, vectorised over both axes.
        ok = np.ones((sel.size, rids.size), dtype=bool)
        for d in range(self.schema.ndim):
            v = headers[sel, d][:, None]
            ok &= (arrays.lo[d, rids][None, :] <= v) & (v <= arrays.hi[d, rids][None, :])
        any_match = ok.any(axis=1)
        first = np.where(any_match, ok.argmax(axis=1), -1)
        match_pos[sel] = first
        # Linear search stops at the first hit; count compares accordingly.
        rules_compared[sel] += np.where(any_match, first + 1, rids.size)
        hit = sel[any_match]
        cand = rids[first[any_match]]
        cur_best = match[hit]
        better = (cur_best < 0) | (cand < cur_best)
        match[hit[better]] = cand[better]

    def _match_pushed(
        self, node: Node, sel: np.ndarray, headers: np.ndarray, arrays,
        match: np.ndarray, rules_compared: np.ndarray,
    ) -> None:
        rids = node.pushed
        ok = np.ones((sel.size, rids.size), dtype=bool)
        for d in range(self.schema.ndim):
            v = headers[sel, d][:, None]
            ok &= (arrays.lo[d, rids][None, :] <= v) & (v <= arrays.hi[d, rids][None, :])
        any_match = ok.any(axis=1)
        first = np.where(any_match, ok.argmax(axis=1), -1)
        rules_compared[sel] += np.where(any_match, first + 1, rids.size)
        hit = sel[any_match]
        cand = rids[first[any_match]]
        cur_best = match[hit]
        better = (cur_best < 0) | (cand < cur_best)
        match[hit[better]] = cand[better]

    # ------------------------------------------------------------------
    # Structure statistics (Tables 2/4/8 inputs)
    # ------------------------------------------------------------------
    def stats(self) -> "TreeStats":
        n_internal = n_leaf = 0
        leaf_refs = 0
        max_leaf = 0
        for node in self.nodes:
            if node.is_leaf:
                n_leaf += 1
                leaf_refs += int(node.rule_ids.size)
                max_leaf = max(max_leaf, int(node.rule_ids.size))
            else:
                n_internal += 1
        depth, wc_leaf, wc_sw = self._worst_case_paths()
        return TreeStats(
            n_nodes=len(self.nodes),
            n_internal=n_internal,
            n_leaves=n_leaf,
            total_leaf_rule_refs=leaf_refs,
            max_leaf_rules=max_leaf,
            max_depth=depth,
            worst_path_leaf_rules=wc_leaf,
            worst_case_sw_accesses=wc_sw,
        )

    def _worst_case_paths(self) -> tuple[int, int, int]:
        """(max internal depth, leaf size on the worst path, worst-case
        software memory accesses per DESIGN.md §6 conventions).

        Memoised DFS over the DAG; the software access count charges 2
        reads per internal node and (1 + rules) per leaf plus pushed-rule
        reads, the grid/hardware analysis lives in :mod:`repro.hw`.
        """
        memo: dict[int, tuple[int, int, int]] = {}

        def visit(nid: int) -> tuple[int, int, int]:
            if nid in memo:
                return memo[nid]
            node = self.nodes[nid]
            if node.is_leaf:
                res = (0, int(node.rule_ids.size), 1 + int(node.rule_ids.size))
                memo[nid] = res
                return res
            best = (0, 0, 0)
            for child in set(int(c) for c in node.children):
                if child == EMPTY_CHILD:
                    continue
                d, lf, acc = visit(child)
                cand = (d + 1, lf, acc + 2 + int(node.pushed.size))
                if (cand[2], cand[0]) > (best[2], best[0]):
                    best = cand
            memo[nid] = best
            return best

        depth, leaf_rules, accesses = visit(0)
        return depth, leaf_rules, accesses

    def software_memory_bytes(self) -> int:
        """Model of the *software* search-structure size (Table 2 left).

        Conventions (DESIGN.md §6): an internal node costs a 16-byte header
        plus 4 bytes per child pointer; a leaf costs an 8-byte header plus
        4 bytes per rule pointer (software stores pointers, not rules —
        that is precisely the indirection the paper's modification
        removes); pushed rules cost a pointer each; plus the ruleset
        itself at 20 bytes (160 bits) per rule.
        """
        total = len(self.ruleset) * 20
        for node in self.nodes:
            if node.is_leaf:
                total += 8 + 4 * int(node.rule_ids.size)
            else:
                total += 16 + 4 * node.n_children + 4 * int(node.pushed.size)
        return total


@dataclass(frozen=True)
class TreeStats:
    """Aggregate structure statistics."""

    n_nodes: int
    n_internal: int
    n_leaves: int
    total_leaf_rule_refs: int
    max_leaf_rules: int
    max_depth: int
    worst_path_leaf_rules: int
    worst_case_sw_accesses: int


@dataclass
class BatchLookup:
    """Per-packet results of :meth:`DecisionTree.batch_lookup`.

    All arrays are length ``n_packets``.  ``internal_nodes`` counts every
    internal node on the path *including the root* — the hardware cycle
    model subtracts the register-resident root itself.
    """

    match: np.ndarray
    internal_nodes: np.ndarray
    leaf_id: np.ndarray
    leaf_size: np.ndarray
    match_pos: np.ndarray
    rules_compared: np.ndarray

    @property
    def n_packets(self) -> int:
        return len(self.match)
