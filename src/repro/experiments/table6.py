"""Table 6 — average normalised energy to classify a packet (Joules).

Software rows: counted lookup operations over the trace → SA-1100 cycles
→ time × normalised power (eq 8).  Hardware rows: mean occupancy from the
trace run × normalised active power / frequency, for both the 65 nm ASIC
and the Virtex-5 (the FPGA number includes memory power, as in the
paper).

Headline shape: the accelerator saves three-to-four orders of magnitude
per packet versus the software algorithms on the StrongARM (the paper
quotes "up to 7,773 times" vs HiCuts).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy import Sa1100Model, asic_model, fpga_model, software_lookup_ops
from ..energy.metrics import fmt_sci, gain
from .common import Pipeline, render_table, shape_check
from .paper_values import ACL1_SIZES, TABLE6_JOULES


@dataclass
class Table6Row:
    size: int
    sw_hicuts_j: float
    sw_hypercuts_j: float
    asic_hicuts_j: float
    asic_hypercuts_j: float
    fpga_hicuts_j: float
    fpga_hypercuts_j: float


def run(pipeline: Pipeline | None = None) -> list[Table6Row]:
    pipe = pipeline or Pipeline()
    sa = Sa1100Model()
    asic = asic_model()
    fpga = fpga_model()
    rows = []
    for size in pipe.acl1_sizes():
        wl = pipe.workload("acl1", size)
        n = wl.trace.n_packets

        def sw_energy(variant) -> float:
            ops = software_lookup_ops(variant.tree, variant.batch)
            return sa.lookup_cost(ops, n).energy_norm_j

        rows.append(
            Table6Row(
                size=size,
                sw_hicuts_j=sw_energy(wl.sw["hicuts"]),
                sw_hypercuts_j=sw_energy(wl.sw["hypercuts"]),
                asic_hicuts_j=asic.evaluate(wl.hw["hicuts"].run).energy_per_packet_norm_j,
                asic_hypercuts_j=asic.evaluate(wl.hw["hypercuts"].run).energy_per_packet_norm_j,
                fpga_hicuts_j=fpga.evaluate(wl.hw["hicuts"].run).energy_per_packet_norm_j,
                fpga_hypercuts_j=fpga.evaluate(wl.hw["hypercuts"].run).energy_per_packet_norm_j,
            )
        )
    return rows


def report(pipeline: Pipeline | None = None) -> str:
    rows = run(pipeline)
    paper = {
        size: {k: v[i] for k, v in TABLE6_JOULES.items()}
        for i, size in enumerate(ACL1_SIZES)
    }
    body = []
    for r in rows:
        p = paper.get(r.size, {})
        body.append(
            [
                r.size,
                fmt_sci(r.sw_hicuts_j), fmt_sci(p.get("sw_hicuts", 0)),
                fmt_sci(r.asic_hicuts_j), fmt_sci(p.get("asic_hicuts", 0)),
                fmt_sci(r.fpga_hicuts_j), fmt_sci(p.get("fpga_hicuts", 0)),
                fmt_sci(r.sw_hypercuts_j), fmt_sci(p.get("sw_hypercuts", 0)),
                fmt_sci(r.asic_hypercuts_j), fmt_sci(p.get("asic_hypercuts", 0)),
            ]
        )
    table = render_table(
        "Table 6: average normalised energy per packet (J), spfac=4, speed=1",
        ["rules", "swHC", "(paper)", "asicHC", "(paper)", "fpgaHC", "(paper)",
         "swHyC", "(paper)", "asicHyC", "(paper)"],
        body,
    )
    worst = max(gain(r.sw_hicuts_j, r.asic_hicuts_j) for r in rows)
    checks = [
        shape_check(
            f"ASIC saves orders of magnitude vs software HiCuts "
            f"(max {worst:,.0f}x; paper up to 7,773x)",
            worst > 500,
        ),
        shape_check(
            "FPGA energy/packet sits between ASIC and software",
            all(r.asic_hicuts_j < r.fpga_hicuts_j < r.sw_hicuts_j for r in rows),
        ),
    ]
    return table + "\n" + "\n".join(checks)


if __name__ == "__main__":  # pragma: no cover
    print(report())
