"""Table 2 — memory needed for the search structure and ruleset (bytes).

Software columns: the modelled in-memory footprint of the original
HiCuts/HyperCuts structures (node headers + child pointers + rule
pointers + the ruleset; conventions in DESIGN.md §6).  Hardware columns:
used 4800-bit words × 600 bytes, exactly the paper's metric.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy.metrics import fmt_int
from .common import Pipeline, render_table
from .paper_values import ACL1_SIZES, TABLE2_BYTES


@dataclass
class Table2Row:
    size: int
    sw_hicuts: int
    sw_hypercuts: int
    hw_hicuts: int
    hw_hypercuts: int


def run(pipeline: Pipeline | None = None) -> list[Table2Row]:
    pipe = pipeline or Pipeline()
    rows = []
    for size in pipe.acl1_sizes():
        wl = pipe.workload("acl1", size)
        rows.append(
            Table2Row(
                size=size,
                sw_hicuts=wl.sw["hicuts"].tree.software_memory_bytes(),
                sw_hypercuts=wl.sw["hypercuts"].tree.software_memory_bytes(),
                hw_hicuts=wl.hw["hicuts"].image.bytes_used,
                hw_hypercuts=wl.hw["hypercuts"].image.bytes_used,
            )
        )
    return rows


def report(pipeline: Pipeline | None = None) -> str:
    rows = run(pipeline)
    paper = {
        size: {k: v[i] for k, v in TABLE2_BYTES.items()}
        for i, size in enumerate(ACL1_SIZES)
    }
    body = []
    for r in rows:
        p = paper.get(r.size, {})
        body.append(
            [
                r.size,
                fmt_int(r.sw_hicuts),
                fmt_int(p.get("sw_hicuts", 0)),
                fmt_int(r.sw_hypercuts),
                fmt_int(p.get("sw_hypercuts", 0)),
                fmt_int(r.hw_hicuts),
                fmt_int(p.get("hw_hicuts", 0)),
                fmt_int(r.hw_hypercuts),
                fmt_int(p.get("hw_hypercuts", 0)),
            ]
        )
    return render_table(
        "Table 2: search structure + ruleset memory (bytes), spfac=4, speed=1",
        ["rules", "swHC", "(paper)", "swHyC", "(paper)",
         "hwHC", "(paper)", "hwHyC", "(paper)"],
        body,
    )


if __name__ == "__main__":  # pragma: no cover
    print(report())
