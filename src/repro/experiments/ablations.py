"""Ablations of the paper's design choices (DESIGN.md X1-X3).

* **X1 speed 0 vs 1** — eq (5) vs eq (7): contiguous leaf packing saves
  words but costs cycles whenever a leaf straddles a word boundary.
* **X2 cut floor/cap** — the Section 3 modification itself: starting the
  doubling ladder at 32 and capping at 256 vs the original 2/unbounded,
  measured in build operations (energy) and structure quality.
* **X3 binth / spfac sensitivity** — the paper's speed-vs-memory dials.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms import OpCounter, build_hicuts
from ..classbench import generate_ruleset, generate_trace
from ..energy import Sa1100Model
from ..hw import Accelerator, build_memory_image
from .common import MEASUREMENT_CAPACITY_WORDS, Pipeline, render_table, shape_check


@dataclass
class SpeedRow:
    speed: int
    bytes_used: int
    mean_occupancy: float
    worst_cycles: int


def speed_ablation(
    family: str = "acl1", size: int = 2191, seed: int = 7,
    trace_packets: int = 20000,
) -> list[SpeedRow]:
    """X1: the same tree laid out with speed=0 and speed=1."""
    rs = generate_ruleset(family, size, seed=seed)
    trace = generate_trace(rs, trace_packets, seed=seed + 1)
    tree = build_hicuts(rs, binth=30, spfac=4, hw_mode=True)
    rows = []
    for speed in (0, 1):
        image = build_memory_image(
            tree, speed=speed, capacity_words=MEASUREMENT_CAPACITY_WORDS
        )
        run = Accelerator(image).run_trace(trace)
        rows.append(
            SpeedRow(
                speed=speed,
                bytes_used=image.bytes_used,
                mean_occupancy=run.mean_occupancy(),
                worst_cycles=image.worst_case_cycles(),
            )
        )
    return rows


@dataclass
class CutRow:
    label: str
    start: int
    cap: int
    build_energy_j: float
    bytes_used: int
    worst_cycles: int


def cut_ladder_ablation(
    family: str = "acl1", size: int = 2191, seed: int = 7
) -> list[CutRow]:
    """X2: the 32..256 ladder vs the original 2..unbounded, in hw mode."""
    rs = generate_ruleset(family, size, seed=seed)
    model = Sa1100Model()
    rows = []
    for label, start, cap in (
        ("paper (32..256)", 32, 256),
        ("original (2..256)", 2, 256),
        ("wide (2..4096... grid max 256)", 2, 256 * 1),
        ("floor only (32..32)", 32, 32),
    ):
        ops = OpCounter()
        tree = build_hicuts(
            rs, binth=30, spfac=4, hw_mode=True,
            start_cuts=start, max_cuts=cap, ops=ops,
        )
        image = build_memory_image(
            tree, speed=1, capacity_words=MEASUREMENT_CAPACITY_WORDS
        )
        rows.append(
            CutRow(
                label=label,
                start=start,
                cap=cap,
                build_energy_j=model.build_energy_j(ops),
                bytes_used=image.bytes_used,
                worst_cycles=image.worst_case_cycles(),
            )
        )
    return rows


@dataclass
class ParamRow:
    binth: int
    spfac: float
    bytes_used: int
    mean_occupancy: float
    worst_cycles: int


def binth_spfac_ablation(
    family: str = "acl1", size: int = 2191, seed: int = 7,
    trace_packets: int = 20000,
) -> list[ParamRow]:
    """X3: the speed/memory dials the paper exposes."""
    rs = generate_ruleset(family, size, seed=seed)
    trace = generate_trace(rs, trace_packets, seed=seed + 1)
    rows = []
    for binth in (8, 16, 30, 60):
        for spfac in (1, 2, 4):
            tree = build_hicuts(rs, binth=binth, spfac=spfac, hw_mode=True)
            image = build_memory_image(
                tree, speed=1, capacity_words=MEASUREMENT_CAPACITY_WORDS
            )
            run = Accelerator(image).run_trace(trace)
            rows.append(
                ParamRow(
                    binth=binth,
                    spfac=spfac,
                    bytes_used=image.bytes_used,
                    mean_occupancy=run.mean_occupancy(),
                    worst_cycles=image.worst_case_cycles(),
                )
            )
    return rows


@dataclass
class HeuristicRow:
    heuristic: str
    bytes_used: int
    mean_occupancy: float
    worst_cycles: int
    build_energy_j: float


def dim_heuristic_ablation(
    family: str = "acl1", size: int = 2191, seed: int = 7,
    trace_packets: int = 20000,
) -> list[HeuristicRow]:
    """X4: HiCuts dimension-choice heuristics (Gupta & McKeown list
    several; the paper uses min-max-rules)."""
    from ..algorithms.hicuts import DIM_HEURISTICS

    rs = generate_ruleset(family, size, seed=seed)
    trace = generate_trace(rs, trace_packets, seed=seed + 1)
    model = Sa1100Model()
    rows = []
    for heuristic in DIM_HEURISTICS:
        ops = OpCounter()
        tree = build_hicuts(
            rs, binth=30, spfac=4, hw_mode=True, dim_heuristic=heuristic,
            ops=ops,
        )
        image = build_memory_image(
            tree, speed=1, capacity_words=MEASUREMENT_CAPACITY_WORDS
        )
        run = Accelerator(image).run_trace(trace)
        rows.append(
            HeuristicRow(
                heuristic=heuristic,
                bytes_used=image.bytes_used,
                mean_occupancy=run.mean_occupancy(),
                worst_cycles=image.worst_case_cycles(),
                build_energy_j=model.build_energy_j(ops),
            )
        )
    return rows


def report(pipeline: Pipeline | None = None) -> str:
    quick = bool(pipeline and pipeline.quick)
    size = 1000 if quick else 2191
    packets = 5000 if quick else 20000

    s_rows = speed_ablation(size=size, trace_packets=packets)
    s_table = render_table(
        "X1: speed parameter (eq 5 vs eq 7)",
        ["speed", "bytes", "mean occupancy", "worst cycles"],
        [[r.speed, r.bytes_used, f"{r.mean_occupancy:.3f}", r.worst_cycles]
         for r in s_rows],
    )
    c_rows = cut_ladder_ablation(size=size)
    c_table = render_table(
        "X2: cut ladder (Section 3 modification)",
        ["config", "build J", "bytes", "worst cycles"],
        [[r.label, f"{r.build_energy_j:.3E}", r.bytes_used, r.worst_cycles]
         for r in c_rows],
    )
    p_rows = binth_spfac_ablation(size=size, trace_packets=packets)
    p_table = render_table(
        "X3: binth / spfac sensitivity (HiCuts hw, speed=1)",
        ["binth", "spfac", "bytes", "mean occupancy", "worst cycles"],
        [[r.binth, r.spfac, r.bytes_used, f"{r.mean_occupancy:.3f}",
          r.worst_cycles] for r in p_rows],
    )
    h_rows = dim_heuristic_ablation(size=size, trace_packets=packets)
    h_table = render_table(
        "X4: HiCuts dimension-choice heuristics (hw mode)",
        ["heuristic", "bytes", "mean occupancy", "worst cycles", "build J"],
        [[r.heuristic, r.bytes_used, f"{r.mean_occupancy:.3f}",
          r.worst_cycles, f"{r.build_energy_j:.3E}"] for r in h_rows],
    )
    checks = [
        shape_check(
            "speed=0 never uses more memory than speed=1",
            s_rows[0].bytes_used <= s_rows[1].bytes_used,
        ),
        shape_check(
            "speed=1 mean occupancy <= speed=0 (eq 7 <= eq 5)",
            s_rows[1].mean_occupancy <= s_rows[0].mean_occupancy + 1e-9,
        ),
        shape_check(
            "32-cut floor builds with less energy than the 2-cut ladder",
            c_rows[0].build_energy_j < c_rows[1].build_energy_j,
        ),
    ]
    return "\n\n".join([s_table, c_table, p_table, h_table, "\n".join(checks)])


if __name__ == "__main__":  # pragma: no cover
    print(report())
