"""Section 5.3 — power comparison against TCAM/SRAM search engines.

Reproduces the paper's three comparisons:

1. FPGA accelerator (1.8 W @ 77 MHz, 614,400 B) vs the Cypress Ayama
   10128 NSE (2.9 W @ 77 MHz, 576,000 B);
2. ASIC accelerator @ 133 MHz (11.65 mW + companion SRAM) vs the Ayama
   10512 (19.14 W @ 133 MHz, 2.304 MB);
3. ASIC @ 226 MHz (19.79 mW + CY7C1370DV25 SRAM at 250 MHz) showing
   higher-than-TCAM lookup rates at a fraction of the power.

Plus the TCAM storage-efficiency measurement: range rules expanded into
ternary slots (paper cites 16-53 %, average 34 %, from [14]).
"""

from __future__ import annotations

from ..baselines import TcamClassifier
from ..classbench import generate_ruleset
from ..energy import (
    AYAMA_10128,
    AYAMA_10512,
    CY7C1370DV25,
    CY7C1381D,
    TcamModel,
    VIRTEX5,
)
from ..energy.technology import ASIC_AT_133MHZ_MW, ASIC_AT_226MHZ_MW
from .common import Pipeline, render_table, shape_check


def report(pipeline: Pipeline | None = None) -> str:
    tcam = TcamModel()
    rows = [
        ["FPGA accelerator @77MHz (614,400B)", f"{VIRTEX5.power_norm_w:.2f} W",
         "77 Mpps"],
        [f"{AYAMA_10128.name} @77MHz (576,000B)", f"{AYAMA_10128.power_w:.2f} W",
         "77 Mpps"],
        ["ASIC accelerator @133MHz", f"{ASIC_AT_133MHZ_MW / 1e3:.5f} W", "133 Mpps"],
        [f"+ {CY7C1381D.name} SRAM @133MHz", f"{CY7C1381D.power_w:.3f} W", ""],
        [f"{AYAMA_10512.name} @133MHz (2.304MB)", f"{AYAMA_10512.power_w:.2f} W",
         "133 Mpps"],
        ["ASIC accelerator @226MHz", f"{ASIC_AT_226MHZ_MW / 1e3:.5f} W", "226 Mpps"],
        [f"+ {CY7C1370DV25.name} SRAM @250MHz", f"{CY7C1370DV25.power_w:.3f} W", ""],
    ]
    table = render_table(
        "Section 5.3: accelerator vs TCAM/SRAM power",
        ["configuration", "power", "lookup rate"],
        rows,
    )

    fit_a = tcam.power_w(AYAMA_10128.size_bytes, AYAMA_10128.freq_hz)
    fit_b = tcam.power_w(AYAMA_10512.size_bytes, AYAMA_10512.freq_hz)

    # TCAM storage efficiency on a generated acl1 set.
    rs = generate_ruleset("acl1", 1000, seed=11)
    stats = TcamClassifier(rs).stats()

    accel_133_w = ASIC_AT_133MHZ_MW / 1e3 + CY7C1381D.power_w
    accel_226_w = ASIC_AT_226MHZ_MW / 1e3 + CY7C1370DV25.power_w
    checks = [
        shape_check(
            f"TCAM power model reproduces both Ayama datasheet points "
            f"({fit_a:.2f} W / {fit_b:.2f} W)",
            abs(fit_a - AYAMA_10128.power_w) < 0.01
            and abs(fit_b - AYAMA_10512.power_w) < 0.01,
        ),
        shape_check(
            f"FPGA accelerator beats the Ayama 10128 at equal clock "
            f"({VIRTEX5.power_norm_w:.2f} W vs {AYAMA_10128.power_w:.2f} W)",
            VIRTEX5.power_norm_w < AYAMA_10128.power_w,
        ),
        shape_check(
            f"ASIC+SRAM @133MHz ({accel_133_w:.3f} W) ≪ Ayama 10512 "
            f"({AYAMA_10512.power_w:.2f} W)",
            accel_133_w < AYAMA_10512.power_w / 10,
        ),
        shape_check(
            f"ASIC @226MHz outruns the fastest TCAM (226 vs 133 Mpps, "
            f"{accel_226_w:.3f} W)",
            226e6 > AYAMA_10512.lookups_per_second,
        ),
        shape_check(
            f"TCAM storage efficiency {stats.storage_efficiency:.0%} falls in "
            f"the published 16-53% band (avg 34%)",
            0.10 <= stats.storage_efficiency <= 0.75,
        ),
    ]
    return table + "\n" + "\n".join(checks)


if __name__ == "__main__":  # pragma: no cover
    print(report())
