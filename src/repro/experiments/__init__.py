"""Experiment harness: one module per paper table/figure (DESIGN.md §3).

Each module exposes ``run(pipeline) -> rows`` (structured results) and
``report(pipeline) -> str`` (paper-vs-measured text table plus shape
checks).  ``run_all`` regenerates everything.
"""

from .common import (
    ACL1_SIZES,
    BINTH_HARDWARE,
    BINTH_SOFTWARE,
    PAPER_SPEED,
    PAPER_SPFAC,
    TABLE4_SIZES,
    Pipeline,
    Workload,
    render_table,
    shape_check,
)

__all__ = [
    "ACL1_SIZES",
    "BINTH_HARDWARE",
    "BINTH_SOFTWARE",
    "PAPER_SPEED",
    "PAPER_SPFAC",
    "TABLE4_SIZES",
    "Pipeline",
    "Workload",
    "render_table",
    "shape_check",
]
