"""Table 8 — worst-case number of memory accesses.

Software: static worst path through the original trees under the access
conventions of DESIGN.md §6 (2 reads per internal node, 1 + one read per
rule at the leaf).  Hardware: the memory-image worst case (internal
fetches after the register-resident root + worst full-leaf scan + the
root-index cycle, which the paper counts since "this result also
represents the worst case number of clock cycles").

The guarantee the paper highlights: the hardware bound is a single-digit
number that certifies minimum bandwidth under worst-case traffic, while
software bounds are an order of magnitude larger and grow faster.
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import Pipeline, render_table, shape_check
from .paper_values import ACL1_SIZES, TABLE8_ACCESSES


@dataclass
class Table8Row:
    size: int
    sw_hicuts: int
    sw_hypercuts: int
    hw_hicuts: int
    hw_hypercuts: int


def run(pipeline: Pipeline | None = None) -> list[Table8Row]:
    pipe = pipeline or Pipeline()
    rows = []
    for size in pipe.acl1_sizes():
        wl = pipe.workload("acl1", size)
        rows.append(
            Table8Row(
                size=size,
                sw_hicuts=wl.sw["hicuts"].tree.stats().worst_case_sw_accesses,
                sw_hypercuts=wl.sw["hypercuts"].tree.stats().worst_case_sw_accesses,
                hw_hicuts=wl.hw["hicuts"].image.worst_case_cycles(),
                hw_hypercuts=wl.hw["hypercuts"].image.worst_case_cycles(),
            )
        )
    return rows


def report(pipeline: Pipeline | None = None) -> str:
    rows = run(pipeline)
    paper = {
        size: {k: v[i] for k, v in TABLE8_ACCESSES.items()}
        for i, size in enumerate(ACL1_SIZES)
    }
    body = []
    for r in rows:
        p = paper.get(r.size, {})
        body.append(
            [
                r.size,
                r.sw_hicuts, p.get("sw_hicuts", "-"),
                r.sw_hypercuts, p.get("sw_hypercuts", "-"),
                r.hw_hicuts, p.get("hw_hicuts", "-"),
                r.hw_hypercuts, p.get("hw_hypercuts", "-"),
            ]
        )
    table = render_table(
        "Table 8: worst-case memory accesses, spfac=4, speed=1",
        ["rules", "swHC", "(paper)", "swHyC", "(paper)",
         "hwHC", "(paper)", "hwHyC", "(paper)"],
        body,
    )
    checks = [
        shape_check(
            "hardware worst case stays single-digit",
            all(r.hw_hicuts <= 9 and r.hw_hypercuts <= 9 for r in rows),
        ),
        shape_check(
            "software worst case exceeds hardware at every size",
            all(
                r.sw_hicuts > r.hw_hicuts and r.sw_hypercuts > r.hw_hypercuts
                for r in rows
            ),
        ),
    ]
    return table + "\n" + "\n".join(checks)


if __name__ == "__main__":  # pragma: no cover
    print(report())
