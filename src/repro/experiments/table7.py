"""Table 7 — total packets classified in one second.

Hardware rows: ``f / mean_occupancy`` from the trace run (226 MHz ASIC,
77 MHz FPGA) — when every packet resolves in one fetch (small acl1 sets)
the accelerator classifies one packet per cycle, i.e. 226/77 Mpps
exactly, reproducing the paper's first rows.  Software rows: SA-1100
op-model throughput.  Also computes the paper's headline gains vs the
software HiCuts (4,269x) and RFC (546x) baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.rfc import build_rfc
from ..core.errors import CapacityError
from ..energy import Sa1100Model, rfc_lookup_ops, software_lookup_ops
from ..energy.metrics import fmt_int, gain
from .common import Pipeline, render_table, shape_check
from .paper_values import ACL1_SIZES, TABLE7_PPS


@dataclass
class Table7Row:
    size: int
    sw_hicuts_pps: float
    sw_hypercuts_pps: float
    rfc_pps: float
    asic_hicuts_pps: float
    asic_hypercuts_pps: float
    fpga_hicuts_pps: float
    fpga_hypercuts_pps: float


def run(pipeline: Pipeline | None = None) -> list[Table7Row]:
    pipe = pipeline or Pipeline()
    sa = Sa1100Model()
    rows = []
    for size in pipe.acl1_sizes():
        wl = pipe.workload("acl1", size)
        n = wl.trace.n_packets

        def sw_pps(variant) -> float:
            ops = software_lookup_ops(variant.tree, variant.batch)
            return sa.throughput_pps(ops, n)

        try:
            rfc = build_rfc(wl.ruleset)
            rfc_pps = sa.throughput_pps(rfc_lookup_ops(rfc, n), n)
        except CapacityError:
            rfc_pps = float("nan")

        rows.append(
            Table7Row(
                size=size,
                sw_hicuts_pps=sw_pps(wl.sw["hicuts"]),
                sw_hypercuts_pps=sw_pps(wl.sw["hypercuts"]),
                rfc_pps=rfc_pps,
                asic_hicuts_pps=wl.hw["hicuts"].run.throughput_pps(226e6),
                asic_hypercuts_pps=wl.hw["hypercuts"].run.throughput_pps(226e6),
                fpga_hicuts_pps=wl.hw["hicuts"].run.throughput_pps(77e6),
                fpga_hypercuts_pps=wl.hw["hypercuts"].run.throughput_pps(77e6),
            )
        )
    return rows


def report(pipeline: Pipeline | None = None) -> str:
    rows = run(pipeline)
    paper = {
        size: {k: v[i] for k, v in TABLE7_PPS.items()}
        for i, size in enumerate(ACL1_SIZES)
    }
    body = []
    for r in rows:
        p = paper.get(r.size, {})
        body.append(
            [
                r.size,
                fmt_int(r.sw_hicuts_pps), fmt_int(p.get("sw_hicuts", 0)),
                fmt_int(r.rfc_pps) if r.rfc_pps == r.rfc_pps else "n/a",
                fmt_int(r.asic_hicuts_pps), fmt_int(p.get("asic_hicuts", 0)),
                fmt_int(r.fpga_hicuts_pps), fmt_int(p.get("fpga_hicuts", 0)),
            ]
        )
    table = render_table(
        "Table 7: packets classified per second, spfac=4, speed=1",
        ["rules", "swHC", "(paper)", "RFC", "asicHC", "(paper)",
         "fpgaHC", "(paper)"],
        body,
    )
    gains_hicuts = [gain(r.asic_hicuts_pps, r.sw_hicuts_pps) for r in rows]
    gains_rfc = [
        gain(r.asic_hicuts_pps, r.rfc_pps) for r in rows if r.rfc_pps == r.rfc_pps
    ]
    checks = [
        shape_check(
            f"ASIC beats software HiCuts by orders of magnitude "
            f"(max {max(gains_hicuts):,.0f}x; paper up to 4,269x)",
            max(gains_hicuts) > 300,
        ),
        shape_check(
            f"ASIC beats RFC, the fastest software algorithm "
            f"(max {max(gains_rfc):,.0f}x; paper up to 546x)"
            if gains_rfc else "RFC comparison unavailable",
            bool(gains_rfc) and max(gains_rfc) > 50,
        ),
        shape_check(
            "small rulesets hit exactly 1 packet/cycle (226 Mpps ASIC)",
            abs(rows[0].asic_hicuts_pps - 226e6) < 1e6,
        ),
        shape_check(
            "RFC is the fastest software classifier",
            all(
                r.rfc_pps > max(r.sw_hicuts_pps, r.sw_hypercuts_pps)
                for r in rows if r.rfc_pps == r.rfc_pps
            ),
        ),
    ]
    return table + "\n" + "\n".join(checks)


if __name__ == "__main__":  # pragma: no cover
    print(report())
