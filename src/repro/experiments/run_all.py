"""Regenerate every table and figure in one run.

Usage::

    python -m repro.experiments.run_all            # full grids
    python -m repro.experiments.run_all --quick    # CI-sized grids
    python -m repro.experiments.run_all -o EXPERIMENTS_RUN.md

One :class:`~repro.experiments.common.Pipeline` is shared so each
workload is generated/built exactly once across tables.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    ablations,
    claims,
    figures,
    section53,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)
from .common import Pipeline

SECTIONS = (
    ("Figures 1-3 and 5", figures.report),
    ("Table 2", table2.report),
    ("Table 3", table3.report),
    ("Table 4", table4.report),
    ("Table 5", table5.report),
    ("Table 6", table6.report),
    ("Table 7", table7.report),
    ("Table 8", table8.report),
    ("Section 5.3", section53.report),
    ("Ablations", ablations.report),
    ("Headline claims", claims.report),
)


def run_all(quick: bool = False, seed: int = 7) -> str:
    pipe = Pipeline(seed=seed, quick=quick)
    parts = []
    for name, fn in SECTIONS:
        t0 = time.time()
        body = fn(pipe)
        parts.append(f"## {name}  (took {time.time() - t0:.1f}s)\n\n```\n{body}\n```")
    return "\n\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized grids")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("-o", "--output", default=None, help="write markdown here")
    args = parser.parse_args(argv)
    out = run_all(quick=args.quick, seed=args.seed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write("# Regenerated experiments\n\n" + out + "\n")
        print(f"wrote {args.output}")
    else:
        print(out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
