"""Figures 1-3 (the Table 1 example) and Figure 5 (the FSM execution).

Figure 1: HiCuts cuts the Table 1 ruleset's root into 4 on field 0 and
one child into 2 on field 4 (binth 3).  Figure 2 is the geometric view of
those cuts.  Figure 3: HyperCuts performs a single 2x2 cut on fields 0
and 4.  The builders reproduce the exact shapes with spfac=2 (the paper's
illustration omits spfac; 2 is the value under which eq (1)/(2) produce
the drawn cuts — DESIGN.md §6).

Figure 5's FSM is rendered as an execution trace of the cycle-accurate
simulator on a small workload.
"""

from __future__ import annotations


from ..algorithms import DecisionTree, build_hicuts, build_hypercuts
from ..classbench import generate_ruleset, generate_trace
from ..core.rules import DEMO_SCHEMA, make_demo_ruleset
from ..core.ruleset import RuleSet
from ..hw import build_memory_image, figure5_trace
from .common import shape_check

#: Parameters of the paper's illustration (Figures 1-3).
DEMO_BINTH = 3
DEMO_SPFAC = 2


def demo_ruleset() -> RuleSet:
    """Table 1, verbatim."""
    return RuleSet(make_demo_ruleset(), DEMO_SCHEMA, "table1")


def figure1_tree() -> DecisionTree:
    """The HiCuts decision tree of Figure 1."""
    return build_hicuts(
        demo_ruleset(), binth=DEMO_BINTH, spfac=DEMO_SPFAC,
        redundancy_elimination=False,
    )


def figure3_tree() -> DecisionTree:
    """The HyperCuts decision tree of Figure 3 (heuristics off, as the
    illustration cuts the full region)."""
    return build_hypercuts(
        demo_ruleset(), binth=DEMO_BINTH, spfac=DEMO_SPFAC,
        redundancy_elimination=False, region_compaction=False,
        push_common=False,
    )


def render_tree(tree: DecisionTree, title: str) -> str:
    """ASCII rendering of a decision tree (ellipse = internal node with
    its cut spec, rectangle = leaf with its rules, as in the figures)."""
    lines = [title]

    def walk(nid: int, prefix: str) -> None:
        node = tree.nodes[nid]
        if node.is_leaf:
            rules = ", ".join(f"R{int(r)}" for r in node.rule_ids)
            lines.append(f"{prefix}[{rules}]")
            return
        cuts = " x ".join(
            f"{c} cuts on Field {d}" for d, c in zip(node.cut_dims, node.cut_counts)
        )
        lines.append(f"{prefix}({cuts})")
        seen: set[int] = set()
        for child in node.children:
            c = int(child)
            if c < 0 or c in seen:
                continue
            seen.add(c)
            walk(c, prefix + "  ")

    walk(0, "")
    return "\n".join(lines)


def figure2_grid(tree: DecisionTree, field_x: int = 0, field_y: int = 4) -> str:
    """ASCII version of Figure 2: the (field0, field4) plane with rule
    extents and the cut lines of the root node."""
    rs = tree.ruleset
    width = 64
    rows = [f"Figure 2: cuts on the Field {field_x} / Field {field_y} plane"]
    root = tree.root
    cut_positions = []
    for d, c in zip(root.cut_dims, root.cut_counts):
        if d == field_x:
            span = 256 // c
            cut_positions = [k * span for k in range(1, c)]
    axis = [" "] * width
    for cut in cut_positions:
        axis[min(cut * width // 256, width - 1)] = "|"
    rows.append("cuts: " + "".join(axis))
    for rule in rs.rules:
        lo, hi = rule.ranges[field_x]
        a = lo * width // 256
        b = max(hi * width // 256, a)
        line = [" "] * width
        for i in range(a, min(b + 1, width)):
            line[i] = "="
        rows.append(f"R{rule.priority:<3d}: " + "".join(line))
    return "\n".join(rows)


def figure1_matches_paper(tree: DecisionTree | None = None) -> list[str]:
    """Assertions that the built tree has the published Figure 1 shape."""
    t = tree or figure1_tree()
    root = t.root
    checks = [
        shape_check("root cut 4 ways on Field 0",
                    root.cut_dims == (0,) and root.cut_counts == (4,)),
    ]
    # Exactly one child is internal; it cuts Field 4 in 2.
    kids = [t.nodes[int(c)] for c in set(map(int, root.children)) if int(c) >= 0]
    internals = [k for k in kids if not k.is_leaf]
    checks.append(shape_check("exactly one child exceeds binth", len(internals) == 1))
    if internals:
        sub = internals[0]
        checks.append(
            shape_check("that child is cut 2 ways on Field 4",
                        sub.cut_dims == (4,) and sub.cut_counts == (2,))
        )
        grandkids = [t.nodes[int(c)] for c in set(map(int, sub.children)) if int(c) >= 0]
        checks.append(
            shape_check(
                "both grandchildren hold exactly binth rules",
                all(g.is_leaf and g.rule_ids.size == DEMO_BINTH for g in grandkids),
            )
        )
    checks.append(
        shape_check(
            "every leaf holds at most binth rules",
            all(n.rule_ids.size <= DEMO_BINTH for n in t.nodes if n.is_leaf),
        )
    )
    return checks


def figure3_matches_paper(tree: DecisionTree | None = None) -> list[str]:
    """Assertions that the built tree has the published Figure 3 shape."""
    t = tree or figure3_tree()
    root = t.root
    leaf_sets = sorted(
        tuple(int(r) for r in t.nodes[int(c)].rule_ids)
        for c in set(map(int, root.children)) if int(c) >= 0
    )
    return [
        shape_check("root cut 2x2 on Fields 0 and 4",
                    root.cut_dims == (0, 4) and root.cut_counts == (2, 2)),
        shape_check("all four children are leaves",
                    all(t.nodes[int(c)].is_leaf for c in root.children)),
        shape_check(
            "leaf contents match Figure 3",
            leaf_sets == [(0, 2, 5), (0, 4, 6), (1, 3), (7, 8, 9)],
        ),
    ]


def figure5_report(n_packets: int = 6) -> str:
    """The Figure 5 flow as an execution trace of the FSM."""
    rs = generate_ruleset("acl1", 120, seed=3)
    tree = build_hicuts(rs, binth=30, spfac=4, hw_mode=True)
    image = build_memory_image(tree, speed=1)
    trace = generate_trace(rs, n_packets, seed=4)
    events = figure5_trace(image, trace)
    lines = ["Figure 5: FSM execution trace (cycle-accurate simulator)"]
    for e in events:
        lines.append(f"  cycle {e.cycle:>4d}  {e.state:<10s} {e.detail}")
    return "\n".join(lines)


def report(pipeline=None) -> str:
    t1 = figure1_tree()
    t3 = figure3_tree()
    parts = [
        render_tree(t1, "Figure 1: HiCuts decision tree (binth 3)"),
        "",
        "\n".join(figure1_matches_paper(t1)),
        "",
        figure2_grid(t1),
        "",
        render_tree(t3, "Figure 3: HyperCuts decision tree (binth 3)"),
        "",
        "\n".join(figure3_matches_paper(t3)),
        "",
        figure5_report(),
    ]
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print(report())
