"""Shared experiment pipeline for regenerating the paper's tables.

Tables 2/3/6/7/8 all consume the same artefacts per acl1 ruleset size:
the four search structures (original and modified HiCuts/HyperCuts), the
hardware memory images, a packet trace and the trace-level runs.  The
:class:`Pipeline` builds each artefact once and caches it so every table
module stays a thin projection.

``quick=True`` shrinks trace lengths and the Table 4 size grid so the
whole suite runs in CI time; the full configuration reproduces the
paper's grids (see EXPERIMENTS.md for the recorded outputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


from ..algorithms import (
    DecisionTree,
    OpCounter,
    build_hicuts,
    build_hypercuts,
)
from ..algorithms.base import BatchLookup
from ..classbench import generate_ruleset, generate_trace
from ..core.packet import PacketTrace
from ..core.ruleset import RuleSet
from ..engine.backends import AcceleratorClassifier, DecisionTreeClassifier
from ..serve import Engine, EngineConfig
from ..hw import (
    AcceleratorRun,
    LayoutMeasurement,
    MemoryImage,
    measure_layout,
)

#: The paper's parameter headline for every table: spfac=4, speed=1.
PAPER_SPFAC = 4
PAPER_SPEED = 1

#: binth conventions (DESIGN.md §6): the paper leaves binth unstated; we
#: fix 16 for the original software algorithms (HiCuts' customary value)
#: and 30 for the hardware structures (a leaf fills one memory word).
BINTH_SOFTWARE = 16
BINTH_HARDWARE = 30

#: acl1 sizes of Tables 2/3/6/7/8.
ACL1_SIZES = (60, 150, 500, 1000, 1600, 2191)

#: Table 4 grids per family.
TABLE4_SIZES = {
    "acl1": (300, 1200, 2500, 5000, 10000, 15000, 20000, 24920),
    "fw1": (300, 1200, 2500, 5000, 10000, 15000, 20000, 23087),
    "ipc1": (300, 1200, 2500, 5000, 10000, 15000, 20000, 24274),
}
TABLE4_SIZES_QUICK = {
    "acl1": (300, 2500, 10000),
    "fw1": (300, 2500, 10000),
    "ipc1": (300, 2500, 10000),
}

#: Ceiling for *encoded* images: the 12-bit word-address field tops out at
#: 4096 words.  Structures beyond this are measured with
#: :func:`repro.hw.measure_layout` (Table 4's oversized fw1 rows).
MEASUREMENT_CAPACITY_WORDS = 1 << 12


@dataclass
class Variant:
    """One built classifier variant and its artefacts."""

    name: str  # "hicuts" | "hypercuts"
    hw: bool
    tree: DecisionTree
    build_ops: OpCounter
    image: MemoryImage | None = None  # hw variants only
    batch: BatchLookup | None = None
    run: AcceleratorRun | None = None  # hw variants only


@dataclass
class Workload:
    """A ruleset, its trace, and the four algorithm variants."""

    family: str
    size: int
    ruleset: RuleSet
    trace: PacketTrace
    sw: dict[str, Variant] = field(default_factory=dict)
    hw: dict[str, Variant] = field(default_factory=dict)


class Pipeline:
    """Builds and caches every artefact the table experiments need."""

    def __init__(
        self,
        seed: int = 7,
        trace_packets: int = 100_000,
        quick: bool = False,
        speed: int = PAPER_SPEED,
        spfac: float = PAPER_SPFAC,
    ) -> None:
        self.seed = seed
        self.quick = quick
        self.trace_packets = 20_000 if quick else trace_packets
        self.speed = speed
        self.spfac = spfac
        self._workloads: dict[tuple[str, int], Workload] = {}

    # ------------------------------------------------------------------
    def acl1_sizes(self) -> tuple[int, ...]:
        return ACL1_SIZES if not self.quick else ACL1_SIZES[::2]

    def table4_sizes(self, family: str) -> tuple[int, ...]:
        grid = TABLE4_SIZES_QUICK if self.quick else TABLE4_SIZES
        return grid[family]

    # ------------------------------------------------------------------
    def workload(
        self, family: str, size: int, with_software: bool = True
    ) -> Workload:
        """Ruleset + trace + built variants, cached per (family, size)."""
        key = (family, size)
        wl = self._workloads.get(key)
        if wl is None:
            ruleset = generate_ruleset(family, size, seed=self.seed)
            trace = generate_trace(
                ruleset, self.trace_packets, seed=self.seed + 1
            )
            wl = Workload(family=family, size=size, ruleset=ruleset, trace=trace)
            self._workloads[key] = wl
        if with_software and not wl.sw:
            wl.sw = self._build_software(wl)
        if not wl.hw:
            wl.hw = self._build_hardware(wl)
        return wl

    def layout_measurements(
        self, family: str, size: int
    ) -> dict[str, LayoutMeasurement]:
        """Placement-only structure measurements (Table 4's path; no word
        encoding, no capacity limit, no trace runs)."""
        key = ("layout", family, size)
        cached = self._workloads.get(key)  # type: ignore[arg-type]
        if cached is not None:
            return cached  # type: ignore[return-value]
        ruleset = generate_ruleset(family, size, seed=self.seed)
        out: dict[str, LayoutMeasurement] = {}
        for name, fn in (("hicuts", build_hicuts), ("hypercuts", build_hypercuts)):
            tree = fn(
                ruleset, binth=BINTH_HARDWARE, spfac=self.spfac, hw_mode=True
            )
            out[name] = measure_layout(tree, speed=self.speed)
        self._workloads[key] = out  # type: ignore[assignment]
        return out

    # ------------------------------------------------------------------
    def _build_software(self, wl: Workload) -> dict[str, Variant]:
        """The original software algorithms, built declaratively: the
        ``software=True`` config routes tree names onto the plain
        decision-tree backend instead of the accelerator."""
        out = {}
        for name in ("hicuts", "hypercuts"):
            ops = OpCounter()
            config = EngineConfig(
                backend=name, binth=BINTH_SOFTWARE, spfac=self.spfac,
                software=True,
            )
            clf: DecisionTreeClassifier = Engine.build_classifier(
                config, wl.ruleset, ops=ops,
            )
            variant = Variant(name=name, hw=False, tree=clf.tree, build_ops=ops)
            variant.batch = clf.tree.batch_lookup(wl.trace)
            out[name] = variant
        return out

    def _build_hardware(self, wl: Workload) -> dict[str, Variant]:
        """The accelerator variants: the default (non-software) config
        maps a tree name onto the hardware backend, exactly like the
        CLI's ``classify --algorithm hicuts``."""
        out = {}
        for name in ("hicuts", "hypercuts"):
            ops = OpCounter()
            config = EngineConfig(
                backend=name, binth=BINTH_HARDWARE, spfac=self.spfac,
                speed=self.speed,
            )
            clf: AcceleratorClassifier = Engine.build_classifier(
                config, wl.ruleset,
                capacity_words=MEASUREMENT_CAPACITY_WORDS, ops=ops,
            )
            variant = Variant(name=name, hw=True, tree=clf.tree, build_ops=ops)
            variant.image = clf.image
            variant.run = clf.run_trace(wl.trace)
            variant.batch = None  # the run carries everything hw tables need
            out[name] = variant
        return out


# ---------------------------------------------------------------------------
# Table rendering
# ---------------------------------------------------------------------------
def render_table(
    title: str, headers: list[str], rows: Iterable[Iterable[object]]
) -> str:
    """Plain-text table in the style of the paper's layout."""
    srows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    lines = [title, "-" * len(title)]
    lines.append(sep.join(h.rjust(w) for h, w in zip(headers, widths)))
    for row in srows:
        lines.append(sep.join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def shape_check(label: str, condition: bool) -> str:
    """One-line pass/fail marker for DESIGN.md's shape assertions."""
    return f"[{'PASS' if condition else 'FAIL'}] {label}"
