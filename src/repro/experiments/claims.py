"""The paper's headline claims, verified end-to-end.

The abstract and conclusions make seven concrete claims; this module
measures each on regenerated workloads and reports pass/fail.  It is the
"did we actually reproduce the paper?" summary that EXPERIMENTS.md keys
off, and doubles as an integration test target.

1. "tested on large rulesets containing up to 25,000 rules";
2. "classifying up to 77 Million packets per second (Mpps) on a
   Virtex5SX95T FPGA";
3. "and 226 Mpps using 65nm ASIC technology";
4. ASIC "can reach OC-768 throughput" (125 Mpps worst case);
5. "up to 7,773 times less energy compared with the unmodified
   algorithms running on a StrongARM SA-1100" — verified as ≥ 3 orders
   of magnitude on our workloads;
6. "throughput gains of up to 4,269 times ... compared with software
   algorithms" — verified as ≥ 2.5 orders of magnitude;
7. "less power consumption than TCAM solutions" at matched rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms import build_hicuts
from ..classbench import generate_ruleset
from ..energy import (
    AYAMA_10128,
    AYAMA_10512,
    OC768,
    Sa1100Model,
    VIRTEX5,
    asic_model,
    software_lookup_ops,
    sustains_line_rate,
)
from ..energy.technology import ASIC_AT_133MHZ_MW
from ..hw import measure_layout
from .common import Pipeline, render_table


@dataclass
class Claim:
    claim: str
    measured: str
    holds: bool


def verify_claims(pipeline: Pipeline | None = None) -> list[Claim]:
    pipe = pipeline or Pipeline()
    claims: list[Claim] = []

    # 1. 25k-rule capability.
    big = generate_ruleset("acl1", 24920 if not pipe.quick else 10000,
                           seed=pipe.seed)
    tree = build_hicuts(big, binth=30, spfac=4, hw_mode=True)
    meas = measure_layout(tree, speed=1)
    claims.append(
        Claim(
            f"handles rulesets up to {len(big):,} rules",
            f"built {meas.words_used} words, worst case "
            f"{meas.worst_case_cycles} cycles",
            meas.worst_case_cycles <= 12,
        )
    )

    # 2/3/4. Throughput headlines on a small acl set (the 77/226 Mpps
    # figures are the 1-cycle-per-packet operating point).
    wl = pipe.workload("acl1", 60)
    run = wl.hw["hicuts"].run
    fpga_pps = run.throughput_pps(VIRTEX5.freq_hz)
    asic_pps = run.throughput_pps(226e6)
    claims.append(
        Claim("up to 77 Mpps on the Virtex5SX95T",
              f"{fpga_pps / 1e6:.1f} Mpps", abs(fpga_pps - 77e6) < 1e6)
    )
    claims.append(
        Claim("up to 226 Mpps as a 65nm ASIC",
              f"{asic_pps / 1e6:.1f} Mpps", abs(asic_pps - 226e6) < 1e6)
    )
    claims.append(
        Claim("ASIC reaches OC-768 (125 Mpps worst-case)",
              f"{asic_pps / 1e6:.1f} Mpps vs {OC768.worst_case_pps / 1e6:.0f}",
              sustains_line_rate(asic_pps, OC768))
    )

    # 5/6. Energy and throughput gains vs software on the StrongARM.
    sa = Sa1100Model()
    asic = asic_model()
    best_energy_gain = 0.0
    best_tput_gain = 0.0
    for size in pipe.acl1_sizes():
        wl = pipe.workload("acl1", size)
        n = wl.trace.n_packets
        ops = software_lookup_ops(wl.sw["hicuts"].tree, wl.sw["hicuts"].batch)
        sw_cost = sa.lookup_cost(ops, n)
        hw_cost = asic.evaluate(wl.hw["hicuts"].run)
        best_energy_gain = max(
            best_energy_gain,
            sw_cost.energy_norm_j / hw_cost.energy_per_packet_norm_j,
        )
        best_tput_gain = max(
            best_tput_gain,
            hw_cost.throughput_pps * sw_cost.seconds,
        )
    claims.append(
        Claim("energy saving vs software HiCuts (paper: up to 7,773x)",
              f"{best_energy_gain:,.0f}x", best_energy_gain >= 1000)
    )
    claims.append(
        Claim("throughput gain vs software HiCuts (paper: up to 4,269x)",
              f"{best_tput_gain:,.0f}x", best_tput_gain >= 300)
    )

    # 7. Beats TCAM power at matched rates.
    claims.append(
        Claim(
            "FPGA (1.81 W) below Ayama 10128 (2.9 W) at 77 MHz",
            f"{VIRTEX5.power_norm_w:.2f} W vs {AYAMA_10128.power_w:.2f} W",
            VIRTEX5.power_norm_w < AYAMA_10128.power_w,
        )
    )
    claims.append(
        Claim(
            "ASIC @133MHz (11.65 mW) vs Ayama 10512 (19.14 W)",
            f"{ASIC_AT_133MHZ_MW:.2f} mW vs {AYAMA_10512.power_w:.2f} W",
            ASIC_AT_133MHZ_MW / 1e3 < AYAMA_10512.power_w,
        )
    )
    return claims


def report(pipeline: Pipeline | None = None) -> str:
    claims = verify_claims(pipeline)
    table = render_table(
        "Headline claims (abstract + Section 6)",
        ["claim", "measured", "holds"],
        [[c.claim, c.measured, "yes" if c.holds else "NO"] for c in claims],
    )
    verdict = (
        "all claims reproduced"
        if all(c.holds for c in claims)
        else "SOME CLAIMS FAILED"
    )
    return table + f"\n=> {verdict}"


if __name__ == "__main__":  # pragma: no cover
    print(report())
