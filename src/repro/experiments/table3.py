"""Table 3 — energy used to build the search structure (Joules).

The build runs on the control-plane processor (the StrongARM in [12]'s
methodology), so the metric is raw SA-1100 energy: counted build
operations → cycles → seconds × device power.  The paper's headline from
this table: the modified HiCuts uses 11.84× less energy than the original
at 2191 rules (the 32-cut floor skips most of the doubling ladder, and
no per-node divisions are needed).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy import Sa1100Model
from ..energy.metrics import fmt_sci, gain
from .common import Pipeline, render_table, shape_check
from .paper_values import ACL1_SIZES, TABLE3_JOULES


@dataclass
class Table3Row:
    size: int
    sw_hicuts_j: float
    sw_hypercuts_j: float
    hw_hicuts_j: float
    hw_hypercuts_j: float


def run(pipeline: Pipeline | None = None) -> list[Table3Row]:
    pipe = pipeline or Pipeline()
    model = Sa1100Model()
    rows = []
    for size in pipe.acl1_sizes():
        wl = pipe.workload("acl1", size)
        rows.append(
            Table3Row(
                size=size,
                sw_hicuts_j=model.build_energy_j(wl.sw["hicuts"].build_ops),
                sw_hypercuts_j=model.build_energy_j(wl.sw["hypercuts"].build_ops),
                hw_hicuts_j=model.build_energy_j(wl.hw["hicuts"].build_ops),
                hw_hypercuts_j=model.build_energy_j(wl.hw["hypercuts"].build_ops),
            )
        )
    return rows


def report(pipeline: Pipeline | None = None) -> str:
    rows = run(pipeline)
    paper = {
        size: {k: v[i] for k, v in TABLE3_JOULES.items()}
        for i, size in enumerate(ACL1_SIZES)
    }
    body = []
    for r in rows:
        p = paper.get(r.size, {})
        body.append(
            [
                r.size,
                fmt_sci(r.sw_hicuts_j), fmt_sci(p.get("sw_hicuts", 0)),
                fmt_sci(r.sw_hypercuts_j), fmt_sci(p.get("sw_hypercuts", 0)),
                fmt_sci(r.hw_hicuts_j), fmt_sci(p.get("hw_hicuts", 0)),
                fmt_sci(r.hw_hypercuts_j), fmt_sci(p.get("hw_hypercuts", 0)),
            ]
        )
    table = render_table(
        "Table 3: energy to build the search structure (J), spfac=4, speed=1",
        ["rules", "swHC", "(paper)", "swHyC", "(paper)",
         "hwHC", "(paper)", "hwHyC", "(paper)"],
        body,
    )
    last = rows[-1]
    saving = gain(last.sw_hicuts_j, last.hw_hicuts_j)
    checks = [
        shape_check(
            f"modified HiCuts cheaper to build at {last.size} rules "
            f"(saving {saving:.2f}x; paper 11.84x)",
            saving > 1.0,
        ),
        shape_check(
            "build energy grows with ruleset size (HiCuts sw)",
            all(a.sw_hicuts_j <= b.sw_hicuts_j for a, b in zip(rows, rows[1:])),
        ),
    ]
    return table + "\n" + "\n".join(checks)


if __name__ == "__main__":  # pragma: no cover
    print(report())
