"""Table 4 — memory and worst-case cycles for acl1/fw1/ipc1 at scale.

For every ClassBench family and size the modified algorithms are built,
laid out, and measured: memory = used words × 600 bytes, worst-case
cycles = the static path analysis (internal fetches after the register-
resident root + worst leaf scan + the root-index cycle).

The paper's shapes this table must reproduce:

* acl1/ipc1 memory grows roughly linearly and stays within ~0.6 MB at
  25k rules; fw1 explodes beyond ~10k rules (wildcard replication);
* at ≥20k fw1 rules HyperCuts consumes *more* than HiCuts (8.2 MB vs
  3.3 MB in the paper);
* worst-case cycles stay in the 2-8 band everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy.metrics import fmt_int
from .common import Pipeline, render_table, shape_check
from .paper_values import TABLE4


@dataclass
class Table4Row:
    family: str
    size: int
    hicuts_bytes: int
    hicuts_cycles: int
    hypercuts_bytes: int
    hypercuts_cycles: int


def run(
    pipeline: Pipeline | None = None, families: tuple[str, ...] = ("acl1", "fw1", "ipc1")
) -> list[Table4Row]:
    pipe = pipeline or Pipeline()
    rows = []
    for family in families:
        for size in pipe.table4_sizes(family):
            meas = pipe.layout_measurements(family, size)
            hc, hyc = meas["hicuts"], meas["hypercuts"]
            rows.append(
                Table4Row(
                    family=family,
                    size=size,
                    hicuts_bytes=hc.bytes_used,
                    hicuts_cycles=hc.worst_case_cycles,
                    hypercuts_bytes=hyc.bytes_used,
                    hypercuts_cycles=hyc.worst_case_cycles,
                )
            )
    return rows


def report(pipeline: Pipeline | None = None) -> str:
    rows = run(pipeline)
    paper_lookup = {}
    for family, data in TABLE4.items():
        for i, size in enumerate(data["sizes"]):
            paper_lookup[(family, size)] = (
                data["hicuts_bytes"][i],
                data["hicuts_cycles"][i],
                data["hypercuts_bytes"][i],
                data["hypercuts_cycles"][i],
            )
    body = []
    for r in rows:
        p = paper_lookup.get((r.family, r.size), ("-", "-", "-", "-"))
        body.append(
            [
                f"{r.family}-{r.size}",
                fmt_int(r.hicuts_bytes), p[0] if p[0] == "-" else fmt_int(p[0]),
                r.hicuts_cycles, p[1],
                fmt_int(r.hypercuts_bytes), p[2] if p[2] == "-" else fmt_int(p[2]),
                r.hypercuts_cycles, p[3],
            ]
        )
    table = render_table(
        "Table 4: memory (bytes) and worst-case cycles, spfac=4, speed=1",
        ["ruleset", "HC bytes", "(paper)", "HC cyc", "(p)",
         "HyC bytes", "(paper)", "HyC cyc", "(p)"],
        body,
    )

    by_family = {}
    for r in rows:
        by_family.setdefault(r.family, []).append(r)
    checks = []
    if "acl1" in by_family and "fw1" in by_family:
        acl_big = by_family["acl1"][-1]
        fw_big = by_family["fw1"][-1]
        checks.append(
            shape_check(
                f"fw1 memory ≫ acl1 memory at ~{fw_big.size} rules "
                f"({fw_big.hicuts_bytes / max(acl_big.hicuts_bytes, 1):.1f}x)",
                fw_big.hicuts_bytes > 2 * acl_big.hicuts_bytes,
            )
        )
        if fw_big.size >= 20000:
            checks.append(
                shape_check(
                    "fw1 at 20k+: HyperCuts memory exceeds HiCuts "
                    "(paper: 8.2MB vs 3.3MB)",
                    fw_big.hypercuts_bytes > fw_big.hicuts_bytes,
                )
            )
    checks.append(
        shape_check(
            "worst-case cycles stay in a single-digit band",
            all(r.hicuts_cycles <= 12 and r.hypercuts_cycles <= 12 for r in rows),
        )
    )
    return table + "\n" + "\n".join(checks)


if __name__ == "__main__":  # pragma: no cover
    print(report())
