"""The paper's published table values, embedded for side-by-side reporting.

Every experiment prints paper-vs-measured columns; EXPERIMENTS.md records
the comparison.  Values transcribed from Kennedy, Wang & Liu (IPDPS 2008)
Tables 2-8.  Keys follow ``<impl>_<algo>``: ``sw`` = original software
algorithm on the StrongARM, ``hw`` = modified algorithm on the
accelerator; where a table splits hardware results by device the keys are
``asic``/``fpga``.
"""

from __future__ import annotations

#: Ruleset sizes of the acl1 tables (2, 3, 6, 7, 8).
ACL1_SIZES = (60, 150, 500, 1000, 1600, 2191)

#: Table 2: memory for search structure + ruleset (bytes), spfac=4, speed=1.
TABLE2_BYTES = {
    "sw_hicuts": (2200, 6200, 28776, 43020, 79444, 110704),
    "sw_hypercuts": (1745, 5382, 13372, 25592, 43298, 56161),
    "hw_hicuts": (3000, 6000, 24000, 35400, 69600, 97200),
    "hw_hypercuts": (3000, 5400, 15600, 28800, 46800, 61800),
}

#: Table 3: energy to build the search structure (Joules).
TABLE3_JOULES = {
    "sw_hicuts": (1.32e-2, 7.44e-2, 7.61e-1, 2.47e0, 7.46e0, 3.79e1),
    "sw_hypercuts": (9.58e-3, 1.00e-1, 2.44e-1, 6.66e-1, 1.65e0, 2.17e0),
    "hw_hicuts": (9.94e-3, 3.94e-2, 2.89e-1, 1.00e0, 2.05e0, 3.20e0),
    "hw_hypercuts": (4.65e-2, 8.81e-2, 4.20e-1, 7.30e-1, 1.34e0, 1.84e0),
}

#: Table 4: per family, sizes / memory bytes / worst-case cycles.
TABLE4 = {
    "acl1": {
        "sizes": (300, 1200, 2500, 5000, 10000, 15000, 20000, 24920),
        "hicuts_bytes": (7800, 30600, 63600, 127200, 254400, 384000, 471600, 589200),
        "hicuts_cycles": (2, 2, 2, 4, 4, 4, 4, 5),
        "hypercuts_bytes": (7800, 30600, 63600, 127200, 254400, 384000, 468600, 589200),
        "hypercuts_cycles": (2, 2, 2, 4, 4, 4, 5, 5),
    },
    "fw1": {
        "sizes": (300, 1200, 2500, 5000, 10000, 15000, 20000, 23087),
        "hicuts_bytes": (7200, 28200, 59400, 142200, 1086600, 1244400, 1931400, 3311400),
        "hicuts_cycles": (2, 2, 2, 3, 3, 4, 6, 8),
        "hypercuts_bytes": (7200, 28200, 59400, 142200, 657600, 1226400, 2964600, 8256000),
        "hypercuts_cycles": (2, 2, 2, 3, 4, 4, 6, 6),
    },
    "ipc1": {
        "sizes": (300, 1200, 2500, 5000, 10000, 15000, 20000, 24274),
        "hicuts_bytes": (7200, 27000, 64800, 144000, 292800, 379800, 491400, 585000),
        "hicuts_cycles": (2, 2, 3, 3, 3, 4, 5, 5),
        "hypercuts_bytes": (7200, 28200, 61800, 144000, 292800, 379800, 491400, 585000),
        "hypercuts_cycles": (2, 2, 3, 3, 3, 4, 5, 5),
    },
}

#: Table 5: device comparison (see repro.energy.technology for the specs).
TABLE5 = {
    "Virtex5SX95T": {"process_nm": 65, "voltage_v": 1.0, "freq_mhz": 77,
                     "power_mw": 1811.0, "slices": 3280, "block_rams": 134},
    "ASIC": {"process_nm": 65, "voltage_v": 1.08, "freq_mhz": 226,
             "power_mw": 18.32, "area_gates": 51488},
    "SA-1100": {"process_nm": 180, "voltage_v": 1.8, "freq_mhz": 200,
                "power_mw": 42.45, "area_gates": 17600998},
}

#: Table 6: average normalised energy per packet (Joules).
TABLE6_JOULES = {
    "sw_hicuts": (4.60e-7, 5.69e-7, 6.72e-7, 8.62e-7, 1.09e-6, 1.09e-6),
    "sw_hypercuts": (7.82e-7, 1.09e-6, 1.28e-6, 1.85e-6, 1.40e-6, 1.94e-6),
    "asic_hicuts": (7.58e-11, 7.32e-11, 1.00e-10, 1.24e-10, 1.81e-10, 2.07e-10),
    "asic_hypercuts": (7.90e-11, 7.55e-11, 1.21e-10, 1.19e-10, 1.42e-10, 1.46e-10),
    "fpga_hicuts": (2.39e-8, 2.43e-8, 3.21e-8, 3.94e-8, 4.89e-8, 5.22e-8),
    "fpga_hypercuts": (2.38e-8, 2.41e-8, 3.09e-8, 3.45e-8, 3.86e-8, 3.87e-8),
}

#: Table 7: packets classified per second.
TABLE7_PPS = {
    "sw_hicuts": (88125, 71181, 60245, 47544, 37760, 37399),
    "sw_hypercuts": (51794, 37323, 31721, 22249, 29201, 21168),
    "asic_hicuts": (226000000, 221919129, 164389580, 135333231, 105444530, 99498019),
    "asic_hypercuts": (226000000, 226000000, 171530362, 155475310, 161201374, 136131129),
    "fpga_hicuts": (77000000, 75609614, 56008839, 46109109, 35925791, 33899767),
    "fpga_hypercuts": (77000000, 77000000, 58441760, 52971676, 46663555, 46380959),
}

#: Table 8: worst-case memory accesses.
TABLE8_ACCESSES = {
    "sw_hicuts": (17, 27, 29, 46, 58, 58),
    "sw_hypercuts": (22, 38, 52, 103, 70, 114),
    "hw_hicuts": (2, 3, 3, 4, 5, 5),
    "hw_hypercuts": (2, 2, 3, 4, 4, 4),
}

#: Headline claims (Sections 5.2/5.3 and the abstract).
CLAIMS = {
    "max_throughput_gain_vs_hicuts": 4269,
    "max_throughput_gain_vs_rfc": 546,
    "max_energy_saving_vs_hicuts": 7773,
    "build_energy_saving_hicuts_2191": 11.84,
    "fpga_mpps": 77,
    "asic_mpps": 226,
    "fpga_power_w": 1.8,
    "ayama_10128_power_w": 2.9,
    "asic_power_133mhz_mw": 11.65,
    "asic_power_226mhz_mw": 19.79,
}
