"""Table 5 — device comparison (operating points and eq (8) consistency).

This table is mostly constants (the devices the paper characterised);
what we *measure* is the internal consistency of the normalisation: the
raw powers recovered by inverting eq (8) must re-normalise to the paper's
asterisked values, and the accelerator's resource proxies (memory words,
block RAMs) come from a real built image.
"""

from __future__ import annotations

from ..energy import ASIC65, SA1100, VIRTEX5, normalize_power
from ..hw import N_MEMORY_BLOCKS
from .common import Pipeline, render_table, shape_check


def report(pipeline: Pipeline | None = None) -> str:
    pipe = pipeline or Pipeline()
    body = []
    for dev in (VIRTEX5, ASIC65, SA1100):
        renorm = normalize_power(dev.power_raw_w, dev.process_nm, dev.voltage_v)
        body.append(
            [
                dev.name,
                int(dev.process_nm),
                dev.voltage_v,
                f"{dev.freq_hz / 1e6:.0f}",
                f"{dev.power_norm_w * 1e3:.2f}",
                f"{dev.power_raw_w * 1e3:.2f}",
                f"{renorm * 1e3:.2f}",
            ]
        )
    table = render_table(
        "Table 5: device comparison (power normalised to 65nm / 1V, eq 8)",
        ["device", "nm", "V", "MHz", "P*norm mW", "P raw mW", "renorm mW"],
        body,
    )
    wl = pipe.workload("acl1", 500, with_software=False)
    img = wl.hw["hicuts"].image
    extras = [
        f"accelerator memory: {img.words_used} words x 4800 bits over "
        f"{N_MEMORY_BLOCKS} block RAMs (design point: 1024 words / 614,400 B)",
        shape_check(
            "eq (8) round-trips every device",
            all(abs(float(r[4]) - float(r[6])) < 0.01 for r in body),
        ),
    ]
    return table + "\n" + "\n".join(extras)


if __name__ == "__main__":  # pragma: no cover
    print(report())
