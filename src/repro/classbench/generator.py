"""Synthetic ruleset generator (ClassBench ``db_generator`` equivalent).

Given a :class:`~repro.classbench.seeds.SeedModel` and a target size, draw
unique 5-tuple rules whose marginal statistics follow the family model.
Determinism: every public entry point takes an integer ``seed`` and uses an
isolated :class:`numpy.random.Generator`, so experiments are reproducible
bit-for-bit.

The generator deliberately produces *structured* address space: prefixes
extend a small pool of shared bases, so that subsets of rules share high
order bits the way real filter sets do.  This is what gives the decision
trees their discriminating power on the 8-MSB hardware grid and reproduces
the paper's shallow acl1/ipc1 trees versus replication-heavy fw1 trees.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ConfigError
from ..core.geometry import prefix_to_range
from ..core.rules import FIVE_TUPLE, Rule
from ..core.ruleset import RuleSet
from .seeds import (
    PORT_AR,
    PORT_EM,
    PORT_HI,
    PORT_LO,
    PORT_WC,
    WELL_KNOWN_PORTS,
    PrefixModel,
    SeedModel,
    get_seed,
)


class _PrefixSampler:
    """Draws prefixes with shared-base structure for one IP dimension."""

    def __init__(
        self, model: PrefixModel, rng: np.random.Generator, n_rules: int
    ) -> None:
        self.model = model
        self.rng = rng
        # Pool of shared /16 bases: top halves of the address space that
        # many rules will refine.  Drawn once per generator run.  The pool
        # grows with the target size the way a ClassBench seed trie does —
        # large real filter sets spread over many more subnets than small
        # ones, which is what keeps big acl trees shallow (paper Table 4).
        n_bases = max(model.n_bases, n_rules // 24)
        self.bases = rng.integers(0, 1 << 16, size=n_bases, dtype=np.uint32)
        self.lengths = np.array(model.lengths(), dtype=np.int64)
        w = np.array(model.weights(), dtype=np.float64)
        self.probs = w / w.sum()

    def draw(self) -> tuple[int, int]:
        """Return (value, prefix_len)."""
        plen = int(self.rng.choice(self.lengths, p=self.probs))
        if plen == 0:
            return 0, 0
        if self.rng.random() < self.model.p_fresh:
            base = int(self.rng.integers(0, 1 << 16))
        else:
            base = int(self.bases[self.rng.integers(0, len(self.bases))])
        if plen <= 16:
            value = (base >> (16 - plen)) << (32 - plen)
        else:
            low_bits = int(self.rng.integers(0, 1 << (plen - 16)))
            value = (base << 16) | (low_bits << (32 - plen))
        return value & 0xFFFFFFFF, plen


def _draw_port(
    klass: str, rng: np.random.Generator, em_ports: np.ndarray, em_probs: np.ndarray
) -> tuple[int, int]:
    if klass == PORT_WC:
        return 0, 65535
    if klass == PORT_HI:
        return 1024, 65535
    if klass == PORT_LO:
        return 0, 1023
    if klass == PORT_EM:
        p = int(rng.choice(em_ports, p=em_probs))
        return p, p
    if klass == PORT_AR:
        # Arbitrary range: log-uniform width, mostly inside the registered
        # port space; mirrors the AR ranges seen in the published seeds.
        width = int(np.exp(rng.uniform(np.log(2), np.log(2000))))
        lo = int(rng.integers(0, 65536 - width))
        return lo, lo + width - 1
    raise ConfigError(f"unknown port class {klass!r}")


def generate_ruleset(
    family: str | SeedModel,
    n_rules: int,
    seed: int = 0,
    name: str | None = None,
    add_default_rule: bool = False,
) -> RuleSet:
    """Generate a unique-rule 5-tuple ruleset of (close to) ``n_rules``.

    Parameters
    ----------
    family:
        ``"acl1" | "fw1" | "ipc1"`` or a custom :class:`SeedModel`.
    n_rules:
        Target number of unique rules.  Oversampling plus de-duplication
        guarantees the exact count except for pathologically small spaces.
    seed:
        RNG seed; same (family, n_rules, seed) -> identical ruleset.
    add_default_rule:
        Append a lowest-priority match-everything rule, as deployed ACLs
        have.  Off by default because the paper's filter sets do not count
        one.
    """
    model = get_seed(family) if isinstance(family, str) else family
    if n_rules < 1:
        raise ConfigError("n_rules must be >= 1")
    rng = np.random.default_rng(seed)
    src_sampler = _PrefixSampler(model.src_prefix, rng, n_rules)
    dst_sampler = _PrefixSampler(model.dst_prefix, rng, n_rules)

    em_ports = np.array([p for p, _ in WELL_KNOWN_PORTS], dtype=np.int64)
    em_w = np.array([w for _, w in WELL_KNOWN_PORTS], dtype=np.float64)
    em_probs = em_w / em_w.sum()

    sp_classes = model.src_port.classes()
    sp_probs = np.array(model.src_port.weights(), dtype=np.float64)
    sp_probs /= sp_probs.sum()
    dp_classes = model.dst_port.classes()
    dp_probs = np.array(model.dst_port.weights(), dtype=np.float64)
    dp_probs /= dp_probs.sum()

    protos = list(model.proto_weights)
    proto_w = np.array([model.proto_weights[p] for p in protos], dtype=np.float64)
    proto_probs = proto_w / proto_w.sum()

    seen: set[tuple] = set()
    rules: list[Rule] = []
    attempts = 0
    max_attempts = 60 * n_rules + 1000
    while len(rules) < n_rules and attempts < max_attempts:
        attempts += 1
        if rng.random() < model.p_smoker:
            # Replication-heavy firewall shape: wildcard source IP and
            # source port.  The destination stays at least moderately
            # specified (real firewall wildcards point *out*, not both
            # ways), otherwise a handful of rules replicate into every
            # leaf of the tree.
            sip = (0, 0)
            dip = dst_sampler.draw()
            if dip[1] < 16:
                dip = (dip[0], 16)
            sport = (0, 65535)
            dport = (0, 65535) if rng.random() < 0.3 else _draw_port(
                PORT_EM, rng, em_ports, em_probs
            )
        else:
            sip = src_sampler.draw()
            dip = dst_sampler.draw()
            sp_class = str(rng.choice(sp_classes, p=sp_probs))
            dp_class = str(rng.choice(dp_classes, p=dp_probs))
            # Specificity correlation: wildcard IPs tend to wildcard ports.
            if sip[1] == 0 and rng.random() < model.p_port_follows_ip:
                sp_class = PORT_WC
            sport = _draw_port(sp_class, rng, em_ports, em_probs)
            dport = _draw_port(dp_class, rng, em_ports, em_probs)
        proto_choice = protos[int(rng.choice(len(protos), p=proto_probs))]
        proto = (0, 255) if proto_choice is None else (proto_choice, proto_choice)

        key = (sip, dip, sport, dport, proto)
        if key in seen:
            continue
        seen.add(key)
        rules.append(
            Rule(
                ranges=(
                    prefix_to_range(sip[0], sip[1], 32),
                    prefix_to_range(dip[0], dip[1], 32),
                    sport,
                    dport,
                    proto,
                ),
                priority=len(rules),
                action=len(rules),
            )
        )

    # Real filter sets are ordered specific -> general (the broad deny/
    # accept rules sit at the bottom); without this ordering an early
    # wildcard rule would shadow — and redundancy elimination would
    # legitimately delete — most of the set.  Sort by hypercube log-volume
    # (stable, so equal-volume rules keep their draw order).
    def log_volume(rule: Rule) -> float:
        vol = 0.0
        for lo, hi in rule.ranges:
            vol += float(np.log2(hi - lo + 1))
        return vol

    rules.sort(key=log_volume)
    rules = [
        Rule(ranges=r.ranges, priority=i, action=i) for i, r in enumerate(rules)
    ]
    if add_default_rule:
        rules.append(
            Rule(
                ranges=FIVE_TUPLE.universe(),
                priority=len(rules),
                action=len(rules),
            )
        )
    label = name or f"{model.name}_{n_rules}_s{seed}"
    return RuleSet(rules, FIVE_TUPLE, label)


def paper_acl1_sizes() -> list[int]:
    """Ruleset sizes of the paper's Tables 2/3/6/7/8 (acl1 family)."""
    return [60, 150, 500, 1000, 1600, 2191]


def paper_table4_sizes(family: str) -> list[int]:
    """Ruleset sizes of the paper's Table 4, per family."""
    sizes = {
        "acl1": [300, 1200, 2500, 5000, 10000, 15000, 20000, 24920],
        "fw1": [300, 1200, 2500, 5000, 10000, 15000, 20000, 23087],
        "ipc1": [300, 1200, 2500, 5000, 10000, 15000, 20000, 24274],
    }
    return sizes[family]
