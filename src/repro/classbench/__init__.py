"""ClassBench-style synthetic workloads (rulesets + traces).

The paper's evaluation rests on ClassBench filter sets (acl1/fw1/ipc1) and
their companion packet traces; this subpackage regenerates statistically
similar workloads from embedded seed models.  See DESIGN.md §1
(substitution 2) for why this preserves the evaluation's shape.
"""

from .generator import generate_ruleset, paper_acl1_sizes, paper_table4_sizes
from .seeds import ACL1, FAMILIES, FW1, IPC1, SeedModel, get_seed
from .trace import generate_trace, generate_zipf_trace, trace_locality
from .updates import churn_schedule, generate_update_stream

__all__ = [
    "churn_schedule",
    "generate_ruleset",
    "generate_update_stream",
    "paper_acl1_sizes",
    "paper_table4_sizes",
    "ACL1",
    "FAMILIES",
    "FW1",
    "IPC1",
    "SeedModel",
    "get_seed",
    "generate_trace",
    "generate_zipf_trace",
    "trace_locality",
]
