"""Packet-trace generator (ClassBench ``trace_generator`` equivalent).

The paper's throughput/energy tables are driven by the packet traces that
ship with the WUSTL acl1 filter sets.  Those traces were produced by the
ClassBench trace generator: headers are sampled from the filter set itself
(so most packets match some rule) and each sampled header is repeated a
Pareto-distributed number of times to model flow burstiness / temporal
locality.

We reproduce that process:

1. pick a rule uniformly at random,
2. sample a header uniformly inside the rule's hypercube (with a
   configurable bias toward the rule's low corner, which ClassBench uses to
   keep headers near prefix boundaries),
3. emit the header ``ceil(X)`` times with ``X ~ Pareto(shape=a, scale=b)``,
4. optionally inject uniform random "background" headers that may match
   nothing.

Everything is vectorised; generating a million-packet trace takes tens of
milliseconds.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ConfigError
from ..core.packet import PacketTrace
from ..core.ruleset import RuleSet


def _headers_for_rules(
    ruleset: RuleSet,
    rng: np.random.Generator,
    rule_ids: np.ndarray,
    corner_bias: float,
) -> np.ndarray:
    """One header per entry of ``rule_ids``, uniform inside the rule's
    hypercube with ``corner_bias`` stickiness to the low corner (the
    ClassBench header model shared by all trace generators)."""
    arrays = ruleset.arrays
    nd = ruleset.schema.ndim
    n = len(rule_ids)
    hdr = np.empty((n, nd), dtype=np.uint32)
    stick = rng.random((n, nd)) < corner_bias
    for d in range(nd):
        lo = arrays.lo[d, rule_ids].astype(np.uint64)
        hi = arrays.hi[d, rule_ids].astype(np.uint64)
        span = hi - lo + 1
        offs = (rng.random(n) * span.astype(np.float64)).astype(np.uint64)
        offs = np.minimum(offs, span - 1)
        vals = lo + np.where(stick[:, d], np.uint64(0), offs)
        hdr[:, d] = vals.astype(np.uint32)
    return hdr


def generate_trace(
    ruleset: RuleSet,
    n_packets: int,
    seed: int = 0,
    pareto_shape: float = 1.0,
    pareto_scale: float = 1.0,
    corner_bias: float = 0.5,
    background_fraction: float = 0.0,
) -> PacketTrace:
    """Generate a classification trace for ``ruleset``.

    Parameters
    ----------
    n_packets:
        Exact number of headers in the returned trace.
    pareto_shape, pareto_scale:
        Burst-length distribution; ClassBench's defaults (a=1, b=1) give a
        heavy-tailed mix of singletons and long bursts.
    corner_bias:
        Probability that a sampled field value sticks to the rule's low
        corner rather than being uniform inside its interval.
    background_fraction:
        Fraction of uniformly random headers mixed in (these can miss all
        rules, exercising the no-match path).
    """
    if n_packets < 1:
        raise ConfigError("n_packets must be >= 1")
    if not 0.0 <= background_fraction <= 1.0:
        raise ConfigError("background_fraction must be in [0, 1]")
    if len(ruleset) == 0:
        raise ConfigError("cannot generate a trace for an empty ruleset")

    rng = np.random.default_rng(seed)
    nd = ruleset.schema.ndim

    # Draw bursts until we have enough headers.  Expected burst length for
    # Pareto(1,1) (rounded up) is small, so 2x oversampling suffices; loop
    # as a safety net.
    headers_parts: list[np.ndarray] = []
    total = 0
    while total < n_packets:
        n_bursts = max(64, int((n_packets - total) * 0.8) + 16)
        rule_ids = rng.integers(0, ruleset.arrays.n, size=n_bursts)
        burst = np.ceil(
            pareto_scale * (1.0 + rng.pareto(pareto_shape, size=n_bursts))
        ).astype(np.int64)
        burst = np.clip(burst, 1, 64)

        # Sample one header per burst inside the chosen rule's hypercube.
        hdr = _headers_for_rules(ruleset, rng, rule_ids, corner_bias)

        headers_parts.append(np.repeat(hdr, burst, axis=0))
        total += int(burst.sum())

    headers = np.concatenate(headers_parts, axis=0)[:n_packets]

    if background_fraction > 0.0:
        n_bg = int(round(n_packets * background_fraction))
        if n_bg:
            bg = np.empty((n_bg, nd), dtype=np.uint32)
            for d in range(nd):
                bg[:, d] = rng.integers(
                    0, ruleset.schema.max_value(d) + 1, size=n_bg, dtype=np.uint32
                )
            pos = rng.choice(n_packets, size=n_bg, replace=False)
            headers[pos] = bg

    return PacketTrace(headers, ruleset.schema)


def generate_zipf_trace(
    ruleset: RuleSet,
    n_packets: int,
    n_flows: int = 1024,
    skew: float = 1.0,
    seed: int = 0,
    corner_bias: float = 0.5,
) -> PacketTrace:
    """Generate a Zipf-skewed flow-popularity trace for ``ruleset``.

    The flow-cache measurement workload: a pool of ``n_flows`` flows is
    sampled from the ruleset (one header per flow, the ClassBench header
    model), then each packet independently picks flow rank ``r`` with
    probability proportional to ``r ** -skew``.  ``skew=0`` degenerates
    to uniform flow popularity; ``skew=1.0`` is the classic Internet-mix
    Zipf the caching literature measures against.  Fully seeded, so the
    same arguments always reproduce the same trace.

    Unlike :func:`generate_trace`'s Pareto bursts (temporal locality,
    repeats are adjacent), a Zipf trace's locality is in the *popularity
    distribution*: hot flows recur throughout the trace, which is what a
    flow cache — not a one-entry last-packet register — exploits.
    """
    if n_packets < 1:
        raise ConfigError("n_packets must be >= 1")
    if n_flows < 1:
        raise ConfigError("n_flows must be >= 1")
    if skew < 0.0:
        raise ConfigError("skew must be >= 0")
    if len(ruleset) == 0:
        raise ConfigError("cannot generate a trace for an empty ruleset")

    rng = np.random.default_rng(seed)
    rule_ids = rng.integers(0, ruleset.arrays.n, size=n_flows)
    flow_headers = _headers_for_rules(ruleset, rng, rule_ids, corner_bias)
    ranks = np.arange(1, n_flows + 1, dtype=np.float64)
    popularity = ranks**-skew
    popularity /= popularity.sum()
    flows = rng.choice(n_flows, size=n_packets, p=popularity)
    return PacketTrace(flow_headers[flows], ruleset.schema)


def trace_locality(trace: PacketTrace) -> float:
    """Fraction of packets identical to their predecessor.

    A cheap proxy for the temporal locality the Pareto bursts create;
    used by tests to check the generator actually produces bursts.
    """
    if trace.n_packets < 2:
        return 0.0
    same = np.all(trace.headers[1:] == trace.headers[:-1], axis=1)
    return float(same.mean())
