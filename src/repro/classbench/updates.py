"""Update-trace generation (the ClassBench of rule churn).

ClassBench synthesises rulesets and packet traces; an update-serving
evaluation additionally needs a *rule churn* workload — a seeded stream
of inserts and removes scheduled along a packet trace.  This module
generates one the same way the trace generator works: new rules are
derived from the ruleset itself (a random existing rule, narrowed
per-dimension), so inserts land in populated regions of the space and
actually perturb the search structure, and removals pick uniformly
among the rules still live *under the generated stream itself* (the
generator tracks stable ids exactly like the classifiers do, so a
remove always names a live id at its point in the stream).

Narrowing keeps every field prefix-shaped or exact: a prefix field
deepens to a random sub-prefix, anything else collapses to a random
exact value inside the source interval.  That keeps generated rules
valid for every backend in the registry — including tuple-space search,
whose tuple derivation assumes prefix-shaped IP fields — and for the
ClassBench file format.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ConfigError
from ..core.geometry import range_is_prefix
from ..core.rules import Rule
from ..core.ruleset import RuleSet
from ..core.updates import RuleUpdate, ScheduledUpdate, insert_op, remove_op


def _derive_rule(
    src: Rule, schema, rng: np.random.Generator, keep_prob: float = 0.4
) -> Rule:
    """A new rule inside ``src``'s hypercube, prefix/exact per field."""
    ranges = []
    for d, (lo, hi) in enumerate(src.ranges):
        span = hi - lo + 1
        if span == 1 or rng.random() < keep_prob:
            ranges.append((lo, hi))
            continue
        width = schema.widths[d]
        if range_is_prefix(lo, hi, width):
            # Deepen the prefix by 1..4 bits (clamped to the field).
            src_plen = width - (span.bit_length() - 1)
            plen = min(width, src_plen + int(rng.integers(1, 5)))
            block = 1 << (width - plen)
            n_blocks = span // block
            new_lo = lo + int(rng.integers(n_blocks)) * block
            ranges.append((new_lo, new_lo + block - 1))
        else:
            # Arbitrary ranges (ports) collapse to a random exact value.
            v = lo + int(rng.integers(span))
            ranges.append((v, v))
    rule = Rule(ranges=tuple(ranges), priority=src.priority, action=src.action)
    rule.validate(schema)
    return rule


def generate_update_stream(
    ruleset: RuleSet,
    n_updates: int,
    n_packets: int,
    insert_fraction: float = 0.5,
    batch_size: int = 8,
    seed: int = 0,
) -> list[ScheduledUpdate]:
    """Generate a seeded insert/remove stream scheduled along a trace.

    Parameters
    ----------
    n_updates:
        Total update operations in the stream.
    n_packets:
        Length of the packet trace the stream rides along; batches are
        scheduled at evenly spaced offsets strictly inside ``(0,
        n_packets)`` so the pipeline observes every epoch.
    insert_fraction:
        Probability an operation is an insert (removals otherwise; a
        stream that runs out of live rules falls back to inserting).
    batch_size:
        Operations per :class:`~repro.core.updates.ScheduledUpdate`
        batch (the control-plane's re-sync granularity).
    """
    if n_updates < 1:
        raise ConfigError("n_updates must be >= 1")
    if n_packets < 1:
        raise ConfigError("n_packets must be >= 1")
    if not 0.0 <= insert_fraction <= 1.0:
        raise ConfigError("insert_fraction must be in [0, 1]")
    if batch_size < 1:
        raise ConfigError("batch_size must be >= 1")
    if len(ruleset) == 0:
        raise ConfigError("cannot generate updates for an empty ruleset")

    rng = np.random.default_rng(seed)
    live = list(range(len(ruleset)))
    next_id = len(ruleset)
    ops: list[RuleUpdate] = []
    for _ in range(n_updates):
        if rng.random() < insert_fraction or not live:
            src = ruleset.rules[int(rng.integers(len(ruleset)))]
            ops.append(insert_op(_derive_rule(src, ruleset.schema, rng)))
            live.append(next_id)
            next_id += 1
        else:
            ops.append(remove_op(live.pop(int(rng.integers(len(live))))))

    batches = [
        tuple(ops[i : i + batch_size])
        for i in range(0, len(ops), batch_size)
    ]
    offsets = np.linspace(0, n_packets, num=len(batches) + 2)[1:-1]
    # Clamp into [1, n_packets-1] so no batch lands at offset 0 (which
    # would hide the pre-update epoch) or past the trace (degenerate
    # traces shorter than the batch count excepted).
    hi = max(1, n_packets - 1)
    return [
        ScheduledUpdate(at_packet=min(max(1, int(round(at))), hi),
                        batch=batch)
        for at, batch in zip(offsets, batches)
    ]


def churn_schedule(
    ruleset: RuleSet,
    rate_per_kpkt: int,
    n_packets: int,
    insert_fraction: float = 0.5,
    batch_size: int = 8,
    seed: int = 0,
) -> list[ScheduledUpdate]:
    """Rate-based churn plumbing for sweep grids.

    The sweep axes express churn as a *rate* — update operations per
    1000 served packets — so cells with different trace lengths stay
    comparable.  This converts the rate into a concrete
    :func:`generate_update_stream` (at least one full batch, so a
    nonzero rate always exercises the update path); a zero rate returns
    an empty schedule.
    """
    if rate_per_kpkt < 0:
        raise ConfigError(
            f"rate_per_kpkt must be >= 0, got {rate_per_kpkt}"
        )
    if rate_per_kpkt == 0:
        return []
    n_updates = max(batch_size, int(round(rate_per_kpkt * n_packets / 1000)))
    return generate_update_stream(
        ruleset,
        n_updates,
        n_packets,
        insert_fraction=insert_fraction,
        batch_size=batch_size,
        seed=seed,
    )
