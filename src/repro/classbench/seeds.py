"""Seed models for the ClassBench-style synthetic ruleset generator.

The paper evaluates on filter sets derived from the ClassBench seed
families ``acl1`` (access control list), ``fw1`` (firewall) and ``ipc1``
(IP chain); the original seed files and the WUSTL trace archive are no
longer distributed, so — per the substitution policy in DESIGN.md — we
embed *parameter models* of the three families that capture the structural
signatures the paper's results depend on:

* **acl1** — almost every rule fully specifies the destination (long dst
  prefixes), sources are a mix of specified prefixes and wildcards,
  destination ports are dominated by exact well-known services, protocol
  almost always exact (TCP/UDP).  Consequence: decision trees cut well on
  dst IP and stay shallow; memory grows ~linearly (paper Table 4, acl1).
* **fw1** — many wildcarded source fields and port wildcards plus a tail
  of very short prefixes.  Wildcard rules overlap every cut child, so they
  replicate across the tree; this is exactly why the paper's Table 4 shows
  fw1 memory exploding (3.3 MB for HiCuts / 8.2 MB for HyperCuts at 23 k
  rules, vs ~0.6 MB for acl1 at similar sizes).
* **ipc1** — intermediate: moderately specified sources and destinations,
  a broader protocol mix, some wildcards.

Each family is a :class:`SeedModel`: categorical distributions over prefix
lengths (with nesting/sharing behaviour driven by a pool of shared network
bases), port "classes" following the ClassBench taxonomy (WC wildcard, HI
ephemeral [1024:65535], LO well-known [0:1023], AR arbitrary range, EM
exact match) and a protocol distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

# Port class identifiers (ClassBench taxonomy).
PORT_WC = "WC"  # wildcard        [0, 65535]
PORT_HI = "HI"  # ephemeral       [1024, 65535]
PORT_LO = "LO"  # well known      [0, 1023]
PORT_AR = "AR"  # arbitrary range
PORT_EM = "EM"  # exact match

#: Well-known service ports used for EM draws (weights roughly follow the
#: frequency tables published with ClassBench).
WELL_KNOWN_PORTS: tuple[tuple[int, float], ...] = (
    (80, 0.22),
    (443, 0.13),
    (53, 0.12),
    (25, 0.08),
    (21, 0.07),
    (23, 0.05),
    (110, 0.05),
    (123, 0.04),
    (135, 0.04),
    (139, 0.04),
    (161, 0.03),
    (389, 0.03),
    (445, 0.03),
    (1433, 0.03),
    (3306, 0.02),
    (8080, 0.02),
)

#: IANA protocol numbers used in draws: TCP, UDP, ICMP, GRE, ESP, AH, OSPF.
PROTO_TCP, PROTO_UDP, PROTO_ICMP = 6, 17, 1
PROTO_GRE, PROTO_ESP, PROTO_AH, PROTO_OSPF = 47, 50, 51, 89


@dataclass(frozen=True)
class PrefixModel:
    """Distribution of prefix lengths for one IP dimension.

    ``length_weights`` maps prefix length -> relative weight.  ``n_bases``
    controls address-space sharing: values are drawn by extending one of
    ``n_bases`` shared /16 network bases, so rules cluster into subnets the
    way real filter sets do (this is what makes cutting effective).
    ``p_fresh`` is the probability of drawing an entirely fresh base
    instead of reusing the pool.
    """

    length_weights: dict[int, float]
    n_bases: int = 24
    p_fresh: float = 0.05

    def lengths(self) -> list[int]:
        return sorted(self.length_weights)

    def weights(self) -> list[float]:
        return [self.length_weights[k] for k in sorted(self.length_weights)]


@dataclass(frozen=True)
class PortModel:
    """Distribution over ClassBench port classes for one port dimension."""

    class_weights: dict[str, float]

    def classes(self) -> list[str]:
        return sorted(self.class_weights)

    def weights(self) -> list[float]:
        return [self.class_weights[k] for k in sorted(self.class_weights)]


@dataclass(frozen=True)
class SeedModel:
    """Complete parameter model for one ClassBench family."""

    name: str
    src_prefix: PrefixModel
    dst_prefix: PrefixModel
    src_port: PortModel
    dst_port: PortModel
    #: (proto_number | None for wildcard) -> weight
    proto_weights: dict[int | None, float]
    #: Probability that a rule is a "smoker": wildcard source AND ports,
    #: i.e. the replication-heavy shape that dominates firewall sets.
    p_smoker: float = 0.0
    #: Correlation between src/dst specificity: probability that a rule
    #: with a wildcard source also wildcards the source port.
    p_port_follows_ip: float = 0.6


ACL1 = SeedModel(
    name="acl1",
    src_prefix=PrefixModel(
        length_weights={
            0: 0.07,
            8: 0.02,
            16: 0.05,
            21: 0.04,
            24: 0.18,
            26: 0.06,
            27: 0.07,
            28: 0.10,
            30: 0.11,
            32: 0.30,
        },
        n_bases=16,
        p_fresh=0.04,
    ),
    dst_prefix=PrefixModel(
        length_weights={
            16: 0.02,
            21: 0.03,
            24: 0.14,
            26: 0.05,
            27: 0.08,
            28: 0.13,
            30: 0.13,
            32: 0.42,
        },
        n_bases=12,
        p_fresh=0.03,
    ),
    src_port=PortModel({PORT_WC: 0.82, PORT_HI: 0.08, PORT_LO: 0.02, PORT_AR: 0.03, PORT_EM: 0.05}),
    dst_port=PortModel({PORT_WC: 0.12, PORT_HI: 0.08, PORT_LO: 0.05, PORT_AR: 0.14, PORT_EM: 0.61}),
    proto_weights={PROTO_TCP: 0.70, PROTO_UDP: 0.22, PROTO_ICMP: 0.05, None: 0.02, PROTO_GRE: 0.01},
    p_smoker=0.01,
)

FW1 = SeedModel(
    name="fw1",
    src_prefix=PrefixModel(
        length_weights={
            0: 0.08,
            8: 0.01,
            12: 0.01,
            16: 0.10,
            20: 0.06,
            24: 0.24,
            28: 0.08,
            30: 0.10,
            32: 0.32,
        },
        n_bases=10,
        p_fresh=0.05,
    ),
    dst_prefix=PrefixModel(
        length_weights={
            0: 0.01,
            16: 0.12,
            20: 0.07,
            24: 0.26,
            27: 0.06,
            30: 0.14,
            32: 0.34,
        },
        n_bases=10,
        p_fresh=0.05,
    ),
    src_port=PortModel({PORT_WC: 0.72, PORT_HI: 0.16, PORT_LO: 0.02, PORT_AR: 0.04, PORT_EM: 0.06}),
    dst_port=PortModel({PORT_WC: 0.20, PORT_HI: 0.12, PORT_LO: 0.04, PORT_AR: 0.10, PORT_EM: 0.54}),
    proto_weights={PROTO_TCP: 0.58, PROTO_UDP: 0.22, PROTO_ICMP: 0.07, None: 0.05, PROTO_GRE: 0.05, PROTO_ESP: 0.03},
    p_smoker=0.015,
)

IPC1 = SeedModel(
    name="ipc1",
    src_prefix=PrefixModel(
        length_weights={
            0: 0.06,
            8: 0.01,
            16: 0.12,
            21: 0.05,
            24: 0.24,
            27: 0.08,
            30: 0.11,
            32: 0.33,
        },
        n_bases=14,
        p_fresh=0.05,
    ),
    dst_prefix=PrefixModel(
        length_weights={
            0: 0.01,
            16: 0.08,
            21: 0.05,
            24: 0.22,
            27: 0.09,
            30: 0.14,
            32: 0.41,
        },
        n_bases=12,
        p_fresh=0.04,
    ),
    src_port=PortModel({PORT_WC: 0.78, PORT_HI: 0.09, PORT_LO: 0.03, PORT_AR: 0.04, PORT_EM: 0.06}),
    dst_port=PortModel({PORT_WC: 0.13, PORT_HI: 0.10, PORT_LO: 0.05, PORT_AR: 0.12, PORT_EM: 0.60}),
    proto_weights={PROTO_TCP: 0.63, PROTO_UDP: 0.24, PROTO_ICMP: 0.06, None: 0.02, PROTO_OSPF: 0.03, PROTO_AH: 0.02},
    p_smoker=0.008,
)

#: Registry used by the CLI/experiments: family name -> seed model.
FAMILIES: dict[str, SeedModel] = {"acl1": ACL1, "fw1": FW1, "ipc1": IPC1}


def get_seed(name: str) -> SeedModel:
    """Look up a family model by name (raises KeyError with the options)."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown seed family {name!r}; available: {sorted(FAMILIES)}"
        ) from None
