"""Functional TCAM classifier with range-to-prefix expansion.

A TCAM stores ternary (0/1/don't-care) entries and returns the first
matching entry in O(1).  Arbitrary port ranges cannot be expressed as a
single ternary entry, so each rule expands into the cross product of the
minimal prefix covers of its two port ranges — the storage blow-up behind
the 16-53 % efficiency the paper quotes from Spitznagel et al. [14].

This model provides (a) a correctness-checked classifier (expansion
preserves first-match semantics exactly) and (b) the slot counts that the
Section 5.3 power comparison converts into TCAM die size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import CapacityError
from ..core.geometry import range_to_prefix_cover
from ..core.packet import PacketTrace
from ..core.ruleset import RuleSet
from ..energy.tcam import TCAM_ENTRY_BYTES


@dataclass(frozen=True)
class TcamStats:
    """Storage accounting for an expanded ruleset."""

    n_rules: int
    n_slots: int
    expansion_factor: float
    storage_efficiency: float  # rules / slots, the paper's [14] metric
    size_bytes: int  # slots x 18 bytes (144-bit entries)


class TcamClassifier:
    """First-match ternary CAM over prefix-expanded 5-tuple rules."""

    def __init__(self, ruleset: RuleSet, max_slots: int = 4_000_000) -> None:
        from ..core.rules import FIVE_TUPLE

        if ruleset.schema is not FIVE_TUPLE:
            raise CapacityError("TCAM model targets the 5-tuple schema")
        self.ruleset = ruleset
        slots_lo: list[list[int]] = []
        slots_hi: list[list[int]] = []
        slot_rule: list[int] = []
        for r, rule in enumerate(ruleset.rules):
            sip, dip, sport, dport, proto = rule.ranges
            sport_cover = range_to_prefix_cover(sport[0], sport[1], 16)
            dport_cover = range_to_prefix_cover(dport[0], dport[1], 16)
            for sp_val, sp_len in sport_cover:
                sp_hi = sp_val | ((1 << (16 - sp_len)) - 1)
                for dp_val, dp_len in dport_cover:
                    dp_hi = dp_val | ((1 << (16 - dp_len)) - 1)
                    slots_lo.append([sip[0], dip[0], sp_val, dp_val, proto[0]])
                    slots_hi.append([sip[1], dip[1], sp_hi, dp_hi, proto[1]])
                    slot_rule.append(r)
                    if len(slot_rule) > max_slots:
                        raise CapacityError(
                            f"range expansion exceeds {max_slots:,} TCAM slots"
                        )
        self._lo = np.asarray(slots_lo, dtype=np.int64)
        self._hi = np.asarray(slots_hi, dtype=np.int64)
        self._rule = np.asarray(slot_rule, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def n_slots(self) -> int:
        return len(self._rule)

    def stats(self) -> TcamStats:
        n_rules = len(self.ruleset)
        n_slots = self.n_slots
        return TcamStats(
            n_rules=n_rules,
            n_slots=n_slots,
            expansion_factor=n_slots / n_rules if n_rules else 0.0,
            storage_efficiency=n_rules / n_slots if n_slots else 0.0,
            size_bytes=n_slots * TCAM_ENTRY_BYTES,
        )

    # ------------------------------------------------------------------
    def classify(self, header) -> int:
        """First matching slot's rule id (all slots compared in parallel
        in a real TCAM; priority encoder picks the lowest index)."""
        h = np.asarray([int(v) for v in header], dtype=np.int64)
        ok = np.all((self._lo <= h) & (h <= self._hi), axis=1)
        idx = np.nonzero(ok)[0]
        return int(self._rule[idx[0]]) if idx.size else -1

    def classify_batch(self, headers: np.ndarray) -> np.ndarray:
        n_packets = headers.shape[0]
        out = np.full(n_packets, -1, dtype=np.int64)
        # Chunked to bound the (packets x slots) boolean matrix.
        chunk = max(1, 2_000_000 // max(self.n_slots, 1))
        H = headers.astype(np.int64)
        for start in range(0, n_packets, chunk):
            h = H[start : start + chunk]
            ok = np.ones((h.shape[0], self.n_slots), dtype=bool)
            for d in range(5):
                ok &= (self._lo[None, :, d] <= h[:, d, None]) & (
                    h[:, d, None] <= self._hi[None, :, d]
                )
            any_hit = ok.any(axis=1)
            first = ok.argmax(axis=1)
            out[start : start + chunk] = np.where(
                any_hit, self._rule[first], -1
            )
        return out

    def classify_trace(self, trace: PacketTrace) -> np.ndarray:
        return self.classify_batch(trace.headers)

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Expanded-slot storage (144-bit entries), the Section 5.3 size."""
        return self.stats().size_bytes

    def memory_accesses_per_lookup(self) -> int:
        """All slots are compared in one parallel CAM access."""
        return 1
