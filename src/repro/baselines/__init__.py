"""Hardware baselines the paper compares against (TCAM)."""

from .tcam_classifier import TcamClassifier, TcamStats

__all__ = ["TcamClassifier", "TcamStats"]
