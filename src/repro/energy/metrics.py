"""Line rates, throughput helpers and table formatting utilities.

The paper frames throughput against SONET line rates with worst-case
40-byte packets arriving back to back:

* OC-48   ≈ 2.488 Gb/s  ->  7.81 Mpps
* OC-192  ≈ 9.953 Gb/s  -> 31.25 Mpps (the paper's "31.25 Mpps")
* OC-768  ≈ 39.81 Gb/s  -> 125 Mpps  (the paper's "125 Mpps")
"""

from __future__ import annotations

from dataclasses import dataclass

#: Worst-case packet size used for line-rate math (bytes).
MIN_PACKET_BYTES = 40


@dataclass(frozen=True)
class LineRate:
    name: str
    gbps: float

    @property
    def worst_case_pps(self) -> float:
        return self.pps_at(MIN_PACKET_BYTES)

    def pps_at(self, packet_bytes: int = MIN_PACKET_BYTES) -> float:
        """Back-to-back packets/second this rate carries at a wire
        packet size (the paper's worst case is 40-byte packets; larger
        packets relax the classification rate proportionally)."""
        if packet_bytes < 1:
            raise ValueError(f"packet_bytes must be >= 1, got {packet_bytes}")
        return self.gbps * 1e9 / (packet_bytes * 8)


OC48 = LineRate("OC-48", 2.488)
OC192 = LineRate("OC-192", 10.0)  # paper uses the round 31.25 Mpps figure
OC768 = LineRate("OC-768", 40.0)  # paper uses the round 125 Mpps figure

LINE_RATES = (OC48, OC192, OC768)


def sustains_line_rate(throughput_pps: float, rate: LineRate) -> bool:
    """True when a classifier keeps up with worst-case minimum packets."""
    return throughput_pps >= rate.worst_case_pps


def line_rate_feasibility(
    throughput_pps: float,
    packet_bytes: int = MIN_PACKET_BYTES,
    rates: tuple[LineRate, ...] = LINE_RATES,
) -> dict[str, dict]:
    """Per-line-rate feasibility of a measured classification rate.

    For each rate: the packets/second the wire delivers back to back at
    ``packet_bytes``, whether ``throughput_pps`` sustains it, and the
    headroom ratio (>= 1.0 means the rate is held).  This is the sweep
    grid's "energy/packet vs LINE_RATES" axis — the same feasibility
    framing as the paper's Tables, applied per grid cell.
    """
    out: dict[str, dict] = {}
    for rate in rates:
        required = rate.pps_at(packet_bytes)
        out[rate.name] = {
            "required_pps": round(required),
            "sustained": bool(throughput_pps >= required),
            "headroom": round(throughput_pps / required, 4),
        }
    return out


def gain(a: float, b: float) -> float:
    """How many times larger ``a`` is than ``b`` (paper's "x times" style)."""
    return a / b if b else float("inf")


def fmt_sci(x: float) -> str:
    """Format like the paper's tables (e.g. ``2.07E-10``)."""
    return f"{x:.2E}"


def fmt_int(x: float) -> str:
    """Thousands-separated integer formatting (e.g. ``226,000,000``)."""
    return f"{int(round(x)):,}"
