"""TCAM and SRAM device models (Section 5.3's comparison points).

The paper argues the accelerator beats state-of-the-art TCAM search
engines on power:

* Cypress Ayama 10000 family NSEs consume "between 4.86-19.14 W depending
  on the TCAM size"; the **Ayama 10128** draws 2.9 W at 77 MHz with
  576,000 bytes, the **Ayama 10512** 19.14 W at 133 MHz with 2.304 MB
  (133 Mpps peak);
* the companion SRAM chips: **CY7C1381D** (2.304 MB) 693 mW @ 133 MHz /
  3.3 V, **CY7C1370DV25** (2.304 MB) 875 mW @ 250 MHz / 2.5 V;
* the accelerator consumes 11.65 mW @ 133 MHz and 19.79 mW @ 226 MHz.

:class:`TcamModel` interpolates the Ayama operating points with the
standard affine-in-size, linear-in-frequency CAM power law
``P = (p0 + p1 * bytes) * f`` fitted through the two datasheet points
(DESIGN.md §4); tests pin the fit to reproduce both points exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

#: TCAM slot width used by the paper's search engines (bits per entry).
TCAM_ENTRY_BITS = 144
TCAM_ENTRY_BYTES = TCAM_ENTRY_BITS // 8  # 18


@dataclass(frozen=True)
class TcamOperatingPoint:
    name: str
    size_bytes: int
    freq_hz: float
    power_w: float
    lookups_per_second: float


AYAMA_10128 = TcamOperatingPoint(
    name="Cypress Ayama 10128",
    size_bytes=576_000,
    freq_hz=77e6,
    power_w=2.9,
    lookups_per_second=77e6,
)

AYAMA_10512 = TcamOperatingPoint(
    name="Cypress Ayama 10512",
    size_bytes=2_304_000,
    freq_hz=133e6,
    power_w=19.14,
    lookups_per_second=133e6,
)


@dataclass(frozen=True)
class SramChip:
    name: str
    size_bytes: int
    freq_hz: float
    power_w: float
    voltage_v: float


CY7C1381D = SramChip(
    name="CY7C1381D", size_bytes=2_304_000, freq_hz=133e6, power_w=0.693,
    voltage_v=3.3,
)

CY7C1370DV25 = SramChip(
    name="CY7C1370DV25", size_bytes=2_304_000, freq_hz=250e6, power_w=0.875,
    voltage_v=2.5,
)


class TcamModel:
    """Affine-in-size, linear-in-frequency TCAM power model.

    ``P(bytes, f) = (p0 + p1 * bytes) * f`` fitted through the Ayama
    10128 and 10512 datasheet points.
    """

    def __init__(
        self,
        point_a: TcamOperatingPoint = AYAMA_10128,
        point_b: TcamOperatingPoint = AYAMA_10512,
    ) -> None:
        ka = point_a.power_w / point_a.freq_hz
        kb = point_b.power_w / point_b.freq_hz
        self.p1 = (kb - ka) / (point_b.size_bytes - point_a.size_bytes)
        self.p0 = ka - self.p1 * point_a.size_bytes
        self.point_a = point_a
        self.point_b = point_b

    def power_w(self, size_bytes: float, freq_hz: float) -> float:
        """Power of a TCAM of ``size_bytes`` clocked at ``freq_hz``."""
        if size_bytes < 0 or freq_hz <= 0:
            raise ValueError("size and frequency must be positive")
        return (self.p0 + self.p1 * size_bytes) * freq_hz

    def energy_per_lookup_j(self, size_bytes: float, freq_hz: float) -> float:
        """One lookup per cycle (the O(1) TCAM property)."""
        return self.power_w(size_bytes, freq_hz) / freq_hz

    def throughput_pps(self, freq_hz: float) -> float:
        """TCAMs classify one packet per clock (plus pipelining)."""
        return freq_hz


#: Transistor-count comparison the paper cites: a TCAM bit needs 10-12
#: transistors, an SRAM bit 4-6.
TCAM_TRANSISTORS_PER_BIT = (10, 12)
SRAM_TRANSISTORS_PER_BIT = (4, 6)

#: Storage-efficiency band for range rules in TCAMs reported by
#: Spitznagel, Taylor & Turner ([14]): 16-53 %, average 34 %.
TCAM_STORAGE_EFFICIENCY_RANGE = (0.16, 0.53)
TCAM_STORAGE_EFFICIENCY_AVG = 0.34
