"""Analytic op aggregation for software lookups over whole traces.

Charging per-packet :meth:`DecisionTree.lookup` costs over a 100k-packet
trace in Python would dominate the harness runtime, so the experiment
pipeline aggregates the *same* cost formula from the vectorised
:class:`~repro.algorithms.base.BatchLookup` statistics:

* per internal node visited: 2 ``mem_read`` + 1 ``branch`` + 3 ``alu``
  + (1 ``div`` for the original algorithms | 3 ``alu`` for grid trees);
* per rule compared during linear search (leaf or pushed list):
  5 ``mem_read`` + 10 ``alu``.

A test verifies this equals the sum of per-packet ``lookup(ops=...)``
counters exactly.
"""

from __future__ import annotations

from ..algorithms.base import BatchLookup, DecisionTree
from ..algorithms.opcount import OpCounter
from ..algorithms.rfc import RFCClassifier
from ..algorithms.linear import LinearSearchClassifier


def software_lookup_ops(tree: DecisionTree, batch: BatchLookup) -> OpCounter:
    """Total SA-1100 ops a software implementation spends on the trace."""
    ops = OpCounter()
    internal = int(batch.internal_nodes.sum())
    compared = int(batch.rules_compared.sum())
    ops.add("mem_read", 2 * internal + 5 * compared)
    ops.add("branch", internal)
    if tree.grid_mode:
        ops.add("alu", 6 * internal + 10 * compared)
    else:
        ops.add("alu", 3 * internal + 10 * compared)
        ops.add("div", internal)
    return ops


def rfc_lookup_ops(rfc: RFCClassifier, n_packets: int) -> OpCounter:
    """RFC's fixed per-packet cost: one dependent read per table plus the
    index arithmetic (matches :meth:`RFCClassifier.classify` charges)."""
    ops = OpCounter()
    accesses = rfc.memory_accesses_per_lookup()
    ops.add("mem_read", accesses * n_packets)
    # 2 alu per chunk extraction (7 chunks) + 3 per combine.
    combines = accesses - 7
    ops.add("alu", (2 * 7 + 3 * combines) * n_packets)
    return ops


def linear_lookup_ops(
    linear: LinearSearchClassifier, n_packets: int, avg_scanned: float
) -> OpCounter:
    """Linear search: 5 reads + 10 alu + 1 branch per rule scanned."""
    ops = OpCounter()
    total = int(round(avg_scanned * n_packets))
    ops.add("mem_read", 5 * total)
    ops.add("alu", 10 * total)
    ops.add("branch", total)
    return ops
