"""StrongARM SA-1100 software-execution energy model (Sim-Panalyzer stand-in).

Converts :class:`~repro.algorithms.opcount.OpCounter` tallies into cycles,
seconds and Joules on the paper's Table 5 StrongARM operating point.  Used
for:

* Table 3 — energy to *build* the search structure (raw, un-normalised
  device energy: the build runs once on the control-plane processor);
* Tables 6/7 — per-packet lookup energy (normalised per eq (8)) and
  software throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.opcount import OpCounter
from .calibration import SA1100_CYCLES_PER_OP
from .technology import SA1100, DeviceSpec


@dataclass
class SoftwareCost:
    """Cycles/time/energy of a software execution on the SA-1100."""

    cycles: float
    seconds: float
    energy_raw_j: float  # at the device's native 180 nm / 1.8 V point
    energy_norm_j: float  # normalised to 65 nm / 1.0 V (eq 8)


class Sa1100Model:
    """Operation-level cost model for software running on the SA-1100."""

    def __init__(
        self,
        device: DeviceSpec = SA1100,
        cycles_per_op: dict[str, float] | None = None,
    ) -> None:
        self.device = device
        self.cycles_per_op = dict(cycles_per_op or SA1100_CYCLES_PER_OP)

    # ------------------------------------------------------------------
    def cycles(self, ops: OpCounter) -> float:
        """Total SA-1100 cycles for the counted operations."""
        total = 0.0
        for category, count in ops.counts.items():
            total += count * self.cycles_per_op.get(category, 1.0)
        return total

    def cost(self, ops: OpCounter) -> SoftwareCost:
        cycles = self.cycles(ops)
        seconds = cycles / self.device.freq_hz
        return SoftwareCost(
            cycles=cycles,
            seconds=seconds,
            energy_raw_j=self.device.power_raw_w * seconds,
            energy_norm_j=self.device.power_norm_w * seconds,
        )

    # ------------------------------------------------------------------
    def build_energy_j(self, ops: OpCounter) -> float:
        """Table 3 metric: raw Joules to build a search structure."""
        return self.cost(ops).energy_raw_j

    def lookup_cost(self, ops: OpCounter, n_packets: int) -> SoftwareCost:
        """Average per-packet cost given ops accumulated over a trace."""
        if n_packets < 1:
            raise ValueError("n_packets must be >= 1")
        total = self.cost(ops)
        return SoftwareCost(
            cycles=total.cycles / n_packets,
            seconds=total.seconds / n_packets,
            energy_raw_j=total.energy_raw_j / n_packets,
            energy_norm_j=total.energy_norm_j / n_packets,
        )

    def throughput_pps(self, ops: OpCounter, n_packets: int) -> float:
        """Table 7 metric: packets/second the SA-1100 sustains."""
        per_packet = self.lookup_cost(ops, n_packets)
        return 1.0 / per_packet.seconds if per_packet.seconds else 0.0
