"""Control-plane energy model for rule updates.

Section 4 of the paper puts ruleset maintenance on the control plane:
it mutates its copy of the search structure and re-syncs the
accelerator's memory through the shared write interface.  The choice it
motivates — HiCuts/HyperCuts over RFC *because* they admit incremental
updates — is an energy argument as much as a latency one: the
alternative to an incremental update is rebuilding the structure from
scratch and rewriting the whole memory image.

:class:`UpdateCostModel` prices both paths with the machinery the rest
of the library already uses:

* control-plane compute — :class:`~repro.algorithms.opcount.OpCounter`
  tallies (the incremental updater and the builders both bill into one)
  costed on the SA-1100 operating point via
  :class:`~repro.energy.sa1100.Sa1100Model`, exactly like the paper's
  Table 3 build-energy numbers;
* device re-sync — memory words rewritten through the accelerator's
  write port, at the companion SRAM's per-access energy
  (:data:`~repro.energy.flowcache.SRAM_ACCESS_ENERGY_J`).

``break_even_updates`` answers the deployment question directly: how
many incremental updates can the control plane apply before it has
spent a from-scratch rebuild's energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algorithms.opcount import OpCounter
from .flowcache import SRAM_ACCESS_ENERGY_J
from .sa1100 import Sa1100Model


def _as_counter(ops) -> OpCounter:
    """Accept an :class:`OpCounter` or a plain counts dict."""
    if isinstance(ops, OpCounter):
        return ops
    counter = OpCounter()
    for category, count in dict(ops).items():
        counter.add(category, count)
    return counter


def ops_delta(after, before) -> OpCounter:
    """The operations billed between two counter snapshots."""
    after, before = _as_counter(after), _as_counter(before)
    delta = OpCounter()
    for category, count in after.counts.items():
        delta.add(category, count - before.counts.get(category, 0))
    return delta


@dataclass
class UpdateCostModel:
    """Energy prices for the two control-plane maintenance strategies."""

    model: Sa1100Model = field(default_factory=Sa1100Model)
    #: Joules per memory word rewritten into the device (re-sync).
    sync_energy_per_word_j: float = SRAM_ACCESS_ENERGY_J

    # -- compute ------------------------------------------------------
    def control_plane_energy_j(self, ops) -> float:
        """Raw Joules of control-plane compute for the counted ops."""
        return self.model.build_energy_j(_as_counter(ops))

    # -- device re-sync ------------------------------------------------
    def resync_energy_j(self, words_written: int) -> float:
        """Joules to rewrite ``words_written`` device memory words."""
        return words_written * self.sync_energy_per_word_j

    # -- the comparison the paper's Section 4 implies ------------------
    def update_energy_j(self, update_ops, words_written: int = 0) -> float:
        """One incremental update (compute + partial re-sync)."""
        return (
            self.control_plane_energy_j(update_ops)
            + self.resync_energy_j(words_written)
        )

    def rebuild_energy_j(self, build_ops, image_words: int = 0) -> float:
        """A from-scratch rebuild (full build + full image rewrite)."""
        return (
            self.control_plane_energy_j(build_ops)
            + self.resync_energy_j(image_words)
        )

    def break_even_updates(
        self,
        update_ops,
        build_ops,
        words_per_update: int = 0,
        image_words: int = 0,
    ) -> float:
        """Incremental updates affordable per full-rebuild energy budget.

        ``update_ops`` is the cost of *one* representative update (or an
        average); values above 1 mean the incremental path wins.
        """
        per_update = self.update_energy_j(update_ops, words_per_update)
        if per_update <= 0:
            return float("inf")
        return self.rebuild_energy_j(build_ops, image_words) / per_update
