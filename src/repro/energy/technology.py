"""Process-technology normalisation and the paper's device table.

Since the accelerator (65 nm) and the StrongARM SA-1100 (180 nm) are
implemented in different technologies, the paper normalises power to a
common 65 nm / 1.0 V point using eq (8)::

    P' = P * S^2 * U

with ``S`` the process scaling factor (target / source feature size) and
``U`` the voltage scaling factor ``(V_target / V_source)^2`` (dynamic
power is quadratic in supply voltage).  Table 5's asterisked numbers are
these normalised values; we embed the same operating points and derive
the raw powers back from them (DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper's normalisation target.
TARGET_PROCESS_NM = 65.0
TARGET_VOLTAGE_V = 1.0


def scaling_factor(process_nm: float, target_nm: float = TARGET_PROCESS_NM) -> float:
    """``S`` of eq (8): linear feature-size ratio."""
    if process_nm <= 0:
        raise ValueError("process size must be positive")
    return target_nm / process_nm


def voltage_factor(voltage_v: float, target_v: float = TARGET_VOLTAGE_V) -> float:
    """``U`` of eq (8): quadratic supply-voltage ratio."""
    if voltage_v <= 0:
        raise ValueError("voltage must be positive")
    return (target_v / voltage_v) ** 2


def normalize_power(
    power_w: float,
    process_nm: float,
    voltage_v: float,
    target_nm: float = TARGET_PROCESS_NM,
    target_v: float = TARGET_VOLTAGE_V,
) -> float:
    """eq (8): ``P' = P * S^2 * U``."""
    s = scaling_factor(process_nm, target_nm)
    u = voltage_factor(voltage_v, target_v)
    return power_w * s * s * u


def denormalize_power(
    power_norm_w: float,
    process_nm: float,
    voltage_v: float,
    target_nm: float = TARGET_PROCESS_NM,
    target_v: float = TARGET_VOLTAGE_V,
) -> float:
    """Inverse of :func:`normalize_power` (recover the raw device power)."""
    s = scaling_factor(process_nm, target_nm)
    u = voltage_factor(voltage_v, target_v)
    return power_norm_w / (s * s * u)


@dataclass(frozen=True)
class DeviceSpec:
    """One column of the paper's Table 5."""

    name: str
    process_nm: float
    voltage_v: float
    freq_hz: float
    #: Datapath power at the stated frequency, *normalised* to 65 nm/1 V
    #: (the asterisked Table 5 numbers; the FPGA value includes memory and
    #: is already at 65 nm/1 V so raw == normalised).
    power_norm_w: float
    area_gates: int | None = None
    slices: int | None = None
    block_rams: int | None = None

    @property
    def power_raw_w(self) -> float:
        """Raw power in the device's native technology."""
        return denormalize_power(self.power_norm_w, self.process_nm, self.voltage_v)

    @property
    def energy_per_cycle_j(self) -> float:
        """Normalised energy per clock cycle."""
        return self.power_norm_w / self.freq_hz

    def cycles_to_energy(self, cycles: float) -> float:
        """Normalised energy for ``cycles`` clock cycles."""
        return self.energy_per_cycle_j * cycles

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.freq_hz


#: Table 5, FPGA column: Virtex5SX95T, power includes datapath + memory.
VIRTEX5 = DeviceSpec(
    name="Virtex5SX95T",
    process_nm=65.0,
    voltage_v=1.0,
    freq_hz=77e6,
    power_norm_w=1.811,
    slices=3280,
    block_rams=134,
)

#: Table 5, ASIC column: TSMC 65 nm, datapath only.
ASIC65 = DeviceSpec(
    name="ASIC-65nm",
    process_nm=65.0,
    voltage_v=1.08,
    freq_hz=226e6,
    power_norm_w=18.32e-3,
    area_gates=51_488,
)

#: Table 5, StrongARM column: SA-1100 @ 200 MHz, datapath only.
SA1100 = DeviceSpec(
    name="StrongARM SA-1100",
    process_nm=180.0,
    voltage_v=1.8,
    freq_hz=200e6,
    power_norm_w=42.45e-3,
    area_gates=17_600_998,
)

#: Section 5.3 operating points for the ASIC at TCAM-comparison clocks.
ASIC_AT_133MHZ_MW = 11.65
ASIC_AT_226MHZ_MW = 19.79

DEVICES = {d.name: d for d in (VIRTEX5, ASIC65, SA1100)}
