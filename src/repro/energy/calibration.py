"""Calibration constants for the operation-level SA-1100 energy model.

The paper obtains software numbers by running the algorithms on a
StrongARM SA-1100 under Sim-Panalyzer (instruction-level power
simulation).  Our substitution (DESIGN.md §4) counts architectural events
(:mod:`repro.algorithms.opcount`) and converts them to SA-1100 cycles with
the weights below, then to energy through the Table 5 power rail.

The weights are *documented knobs*, fixed once and used for every
experiment — they are not fitted per-table:

* ``mem_read``/``mem_write`` = 40 cycles: the SA-1100 runs at 200 MHz
  against slow external SRAM/DRAM; a miss costs tens of cycles.  This
  single number reproduces the ~0.5 Mpps ceiling [12] reports for RFC
  (11 dependent table reads/packet -> ~450 cycles -> ~0.45 Mpps).
* ``div`` = 20 cycles: ARM v4 has no divide unit; software division costs
  tens of cycles (this is why the paper strips region compaction, which
  divides per node, from the hardware algorithm).
* ``alloc`` = 60 cycles: allocator bookkeeping per created node.
* ``alu`` = 1, ``mul`` = 3, ``branch`` = 2: standard scalar costs.
"""

from __future__ import annotations

#: SA-1100 cycles charged per counted operation.
SA1100_CYCLES_PER_OP: dict[str, float] = {
    "alu": 1.0,
    "mul": 3.0,
    "div": 20.0,
    "mem_read": 40.0,
    "mem_write": 40.0,
    "alloc": 60.0,
    "branch": 2.0,
}

#: Fraction of a device's reported power drawn while actively classifying;
#: post-layout VCD analysis reports averages slightly below the synthesis
#: peak (visible in the paper's Table 6: ASIC energy/packet is ~0.94x
#: peak-power x cycle-time at 1.0 cycles/packet).
ACTIVE_POWER_FRACTION = 0.94

#: Trace length used by the table experiments (packets per ruleset).
DEFAULT_TRACE_PACKETS = 100_000
