"""Hit/miss energy split for the flow-cache front-end.

The flow cache changes the per-lookup cost structure the paper's energy
argument is built on: a cache hit costs one set-wide SRAM probe, a miss
costs the probe *plus* the wrapped backend's lookup (its worst-case
memory accesses) plus the fill write.  :class:`CacheEnergyModel` folds a
measured hit rate into effective memory accesses per packet and energy
per packet, so hit-rate-vs-energy sweeps (the paper's Table-style
comparisons, on skewed traces) fall out of one dataclass.

The per-access energy constant is derived from the CY7C1381D — the
companion SRAM part the paper's Section 5.3 TCAM comparison cites —
as ``P / f`` (one access per cycle at the datasheet operating point).
It is a modelled constant, not a measurement; the *ratios* (effective
accesses, effective-lookup speedup) are device-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

from .tcam import CY7C1381D

#: Modelled energy of one SRAM access: the CY7C1381D's datasheet power
#: over its frequency (~5.2 nJ/access at 133 MHz / 693 mW).
SRAM_ACCESS_ENERGY_J = CY7C1381D.power_w / CY7C1381D.freq_hz


def _check_hit_rate(hit_rate: float) -> float:
    if not 0.0 <= hit_rate <= 1.0:
        raise ValueError(f"hit_rate must be in [0, 1], got {hit_rate}")
    return hit_rate


@dataclass(frozen=True)
class CacheEnergyModel:
    """Per-lookup cost split between the cache-hit and backend-miss paths.

    ``backend_accesses`` is the wrapped backend's memory accesses per
    (missed) lookup — its ``memory_accesses_per_lookup()`` worst case by
    default, via :meth:`for_classifier`.  ``probe_accesses`` charges the
    set-wide cache read every lookup pays; ``fill_accesses`` the write a
    miss pays to install its result.
    """

    backend_accesses: float
    probe_accesses: float = 1.0
    fill_accesses: float = 1.0
    energy_per_access_j: float = SRAM_ACCESS_ENERGY_J

    @classmethod
    def for_classifier(cls, classifier, **overrides) -> "CacheEnergyModel":
        """Build the model for a (possibly cache-wrapped) classifier."""
        inner = getattr(classifier, "classifier", classifier)
        return cls(
            backend_accesses=float(inner.memory_accesses_per_lookup()),
            **overrides,
        )

    # ------------------------------------------------------------------
    @property
    def hit_accesses(self) -> float:
        """Memory accesses on the cache-hit path (probe only)."""
        return self.probe_accesses

    @property
    def miss_accesses(self) -> float:
        """Memory accesses on the miss path (probe + backend + fill)."""
        return self.probe_accesses + self.backend_accesses + self.fill_accesses

    def effective_accesses_per_lookup(self, hit_rate: float) -> float:
        """Hit-rate-weighted memory accesses per packet."""
        h = _check_hit_rate(hit_rate)
        return h * self.hit_accesses + (1.0 - h) * self.miss_accesses

    def effective_lookup_speedup(self, hit_rate: float) -> float:
        """How many times fewer accesses a lookup costs than the bare
        backend's worst case at this hit rate (>1 once the cache wins)."""
        return self.backend_accesses / self.effective_accesses_per_lookup(
            hit_rate
        )

    def energy_per_packet_j(self, hit_rate: float) -> float:
        """Modelled Joules per packet at ``hit_rate``."""
        return (
            self.effective_accesses_per_lookup(hit_rate)
            * self.energy_per_access_j
        )

    def uncached_energy_per_packet_j(self) -> float:
        """The bare backend's modelled Joules per packet (no cache)."""
        return self.backend_accesses * self.energy_per_access_j
