"""ASIC and FPGA power/energy models for the accelerator.

The paper measures post-place-and-route power with annotated switching
activity (Synopsys PrimePower for the 65 nm ASIC, Xilinx XPower for the
Virtex-5).  Our stand-in (DESIGN.md §4) charges energy per *active cycle*
— every cycle the accelerator holds its memory port it burns
``ACTIVE_POWER_FRACTION`` of the device's reported power; idle cycles
burn the static remainder.  With back-to-back traffic (the paper's
tables) the accelerator never idles, so

    E/packet = P_active * mean_occupancy / f

which lands within a few percent of Table 6's values when occupancy is
1.0 (their 60-rule rows).
"""

from __future__ import annotations

from dataclasses import dataclass


from ..hw.accelerator import AcceleratorRun
from .calibration import ACTIVE_POWER_FRACTION
from .technology import ASIC65, VIRTEX5, DeviceSpec


@dataclass
class AcceleratorCost:
    """Energy/throughput summary of a trace run on a device."""

    device: str
    freq_hz: float
    mean_occupancy: float
    throughput_pps: float
    energy_per_packet_norm_j: float
    avg_power_norm_w: float
    worst_latency_cycles: int


class AcceleratorPowerModel:
    """Activity-based power model for the hardware accelerator."""

    def __init__(
        self,
        device: DeviceSpec,
        active_fraction: float = ACTIVE_POWER_FRACTION,
        static_fraction: float = 0.06,
    ) -> None:
        if not 0 < active_fraction <= 1:
            raise ValueError("active_fraction must be in (0, 1]")
        self.device = device
        self.active_fraction = active_fraction
        self.static_fraction = static_fraction

    # ------------------------------------------------------------------
    @property
    def active_power_norm_w(self) -> float:
        return self.device.power_norm_w * self.active_fraction

    @property
    def static_power_norm_w(self) -> float:
        return self.device.power_norm_w * self.static_fraction

    def energy_per_packet_j(self, mean_occupancy: float) -> float:
        """Normalised Joules per packet under back-to-back traffic."""
        return self.active_power_norm_w * mean_occupancy / self.device.freq_hz

    def power_at_load_w(self, utilisation: float) -> float:
        """Average power at a given port-utilisation fraction in [0, 1]."""
        util = min(max(utilisation, 0.0), 1.0)
        return (
            self.static_power_norm_w
            + (self.active_power_norm_w - self.static_power_norm_w) * util
        )

    # ------------------------------------------------------------------
    def evaluate(self, run: AcceleratorRun, freq_hz: float | None = None) -> AcceleratorCost:
        """Summarise a trace run on this device (Tables 6/7 inputs)."""
        f = freq_hz if freq_hz is not None else self.device.freq_hz
        mo = run.mean_occupancy()
        return AcceleratorCost(
            device=self.device.name,
            freq_hz=f,
            mean_occupancy=mo,
            throughput_pps=f / mo if mo else 0.0,
            energy_per_packet_norm_j=self.active_power_norm_w * mo / f,
            avg_power_norm_w=self.active_power_norm_w,
            worst_latency_cycles=run.worst_latency(),
        )


def asic_model() -> AcceleratorPowerModel:
    """The paper's 65 nm ASIC implementation (226 MHz, 51,488 gates)."""
    return AcceleratorPowerModel(ASIC65)


def fpga_model() -> AcceleratorPowerModel:
    """The paper's Virtex5SX95T implementation (77 MHz, datapath + BRAM)."""
    return AcceleratorPowerModel(VIRTEX5)
