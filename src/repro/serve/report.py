"""`EngineReport` — one telemetry schema for every serving path.

Before this layer, a caller had to stitch serving telemetry together
from three places: :class:`~repro.engine.pipeline.PipelineResult`
(matches, shards, wall clock), per-chunk
:class:`~repro.engine.pipeline.ChunkStats` (cache counters, epochs), and
the :mod:`repro.energy` models (device throughput, J/packet).
``EngineReport`` consolidates all of it into one flat record with a
JSON-safe ``to_dict()``, built either from a single pipeline run
(:meth:`from_result`) or by merging the per-segment results of a
streamed session (:meth:`merge`).

Update-apply latency lands here as percentiles: ``update_latency_p50 /
p95 / p99`` (milliseconds per applied
:class:`~repro.core.updates.ScheduledUpdate` batch), computed from the
pipeline's parent-side per-batch timings.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..engine.pipeline import (
    ChunkStats,
    PipelineResult,
    aggregate_shard_cache_stats,
)
from ..engine.supervision import FaultReport

#: The paper's device operating points used for report-side evaluation.
_DEVICE_FREQ_HZ = {"asic": 226e6, "fpga": 77e6}


def latency_percentiles(
    latencies_s: tuple[float, ...] | list[float],
) -> dict[str, float] | None:
    """p50/p95/p99 of per-batch apply latencies, in milliseconds."""
    if not latencies_s:
        return None
    ms = np.asarray(latencies_s, dtype=np.float64) * 1e3
    p50, p95, p99 = np.percentile(ms, [50, 95, 99])
    return {
        "p50_ms": float(p50),
        "p95_ms": float(p95),
        "p99_ms": float(p99),
        "max_ms": float(ms.max()),
        "batches": int(ms.size),
    }


@dataclass
class EngineReport:
    """Aggregate serving telemetry of one :class:`~repro.serve.Engine`
    run (single-shot or streamed).

    ``match`` is the trace-order first-match array — bit-identical to
    the wrapped classifier's ``classify_trace`` whatever the pipeline
    shape.  Everything else is flat scalars so ``to_dict()`` can land in
    a JSON artifact unmodified.
    """

    backend: str
    n_packets: int
    matched: int
    elapsed_s: float
    n_shards: int
    chunk_size: int
    n_chunks: int
    #: Number of streamed segments merged into this report (1 for a
    #: single-shot ``classify``).
    n_segments: int = 1
    match: np.ndarray | None = field(default=None, repr=False)
    chunks: list[ChunkStats] = field(default_factory=list, repr=False)
    occupancy: np.ndarray | None = field(default=None, repr=False)

    # -- flow cache ------------------------------------------------------
    cache_hits: int | None = None
    cache_misses: int | None = None
    cache_evictions: int | None = None

    # -- live updates ----------------------------------------------------
    update_batches: int = 0
    update_ops: int = 0
    update_skipped: int = 0
    final_epoch: int | None = None
    update_latencies_s: tuple[float, ...] = ()

    # -- fault tolerance -------------------------------------------------
    #: Supervisor observations (retries, replays, degradations,
    #: quarantined packets, crash counts, recovery latencies).  ``None``
    #: on unsupervised runs; zero-counted on supervised fault-free ones.
    fault: FaultReport | None = None

    # -- energy/device model --------------------------------------------
    energy_model: str = "none"
    device_throughput_pps: float | None = None
    energy_per_packet_j: float | None = None

    # -- multi-tenant ----------------------------------------------------
    #: Per-tenant :class:`~repro.serve.tenancy.TenantReport` slices when
    #: this report aggregates a :class:`MultiTenantEngine` session;
    #: ``None`` on single-tenant runs.
    tenants: list | None = field(default=None, repr=False)

    # -- line-card stage graph -------------------------------------------
    #: Per-stage :class:`~repro.stages.StageReport` telemetry when this
    #: report was produced by a :class:`~repro.stages.StageGraph` run;
    #: ``None`` on bare engine runs.
    stages: list | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @property
    def matched_fraction(self) -> float:
        return self.matched / self.n_packets if self.n_packets else 0.0

    @property
    def throughput_pps(self) -> float:
        """Simulation wall-clock packets/second through the engine."""
        return self.n_packets / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def cache_lookups(self) -> int | None:
        if self.cache_hits is None or self.cache_misses is None:
            return None
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float | None:
        lookups = self.cache_lookups
        if lookups is None:
            return None
        return self.cache_hits / lookups if lookups else 0.0

    def shard_cache_stats(self) -> list[dict] | None:
        """Per-shard flow-cache accounting (chunks, hits, misses,
        evictions, hit rate), folded from the per-chunk counters.  For
        a merged stream the shard ids are per-segment worker *slots*
        (slot 0 of every segment folds together).  ``None`` on bare
        backends."""
        if self.cache_hits is None:
            return None
        return aggregate_shard_cache_stats(self.chunks)

    @property
    def first_epoch(self) -> int | None:
        for chunk in self.chunks:
            if chunk.epoch is not None:
                return chunk.epoch
        return None

    def mean_occupancy(self) -> float | None:
        if self.occupancy is None or not self.occupancy.size:
            return None
        return float(self.occupancy.mean())

    @property
    def update_latency(self) -> dict[str, float] | None:
        """p50/p95/p99/max apply-time per update batch (ms), or None."""
        return latency_percentiles(self.update_latencies_s)

    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        result: PipelineResult,
        energy_model: str = "none",
    ) -> "EngineReport":
        """Lift one pipeline run into the unified schema."""
        report = cls(
            backend=result.backend,
            n_packets=result.n_packets,
            matched=result.matched,
            elapsed_s=result.elapsed_s,
            n_shards=result.n_shards,
            chunk_size=result.chunk_size,
            n_chunks=len(result.chunks),
            match=result.match,
            chunks=list(result.chunks),
            occupancy=result.occupancy,
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            cache_evictions=result.cache_evictions,
            update_batches=result.update_batches,
            update_ops=result.update_ops,
            update_skipped=result.update_skipped,
            final_epoch=result.final_epoch,
            update_latencies_s=result.update_latencies_s,
            fault=result.fault,
            energy_model=energy_model,
        )
        report._evaluate_energy()
        return report

    @classmethod
    def merge(
        cls,
        results: list[PipelineResult],
        elapsed_s: float,
        energy_model: str = "none",
    ) -> "EngineReport":
        """Fuse the per-segment results of a streamed session.

        ``elapsed_s`` is the end-to-end wall clock of the stream (which
        overlaps ingestion with classification, so it is *not* the sum
        of the per-segment times).  Matches/occupancy concatenate in
        stream order; cache and update counters sum; the final epoch is
        the last segment's.  Zero-packet results (empty segments, the
        tail-update chunk) carry no cache/occupancy telemetry and are
        excluded from those aggregations — they must not erase the
        stream's counters.
        """
        if not results:
            return cls(
                backend="classifier", n_packets=0, matched=0,
                elapsed_s=elapsed_s, n_shards=0, chunk_size=0, n_chunks=0,
                n_segments=0,
                match=np.empty(0, dtype=np.int64),
                energy_model=energy_model,
            )
        match = np.concatenate([r.match for r in results])
        packet_results = [r for r in results if r.n_packets]
        occs = [r.occupancy for r in packet_results]
        occupancy = (
            np.concatenate(occs)
            if occs and all(o is not None for o in occs)
            else None
        )
        caches = [
            (r.cache_hits, r.cache_misses, r.cache_evictions)
            for r in packet_results
        ]
        has_cache = bool(caches) and all(c[0] is not None for c in caches)
        latencies: list[float] = []
        for r in results:
            latencies.extend(r.update_latencies_s)
        final_epoch = None
        for r in results:
            if r.final_epoch is not None:
                final_epoch = r.final_epoch
        # Segment-local chunk stats are rebased onto stream coordinates:
        # indices run over the merged stream and starts are absolute
        # packet offsets, matching the merged ``match`` array.
        chunks = []
        offset = 0
        for r in results:
            for c in r.chunks:
                chunks.append(dataclasses.replace(
                    c, index=len(chunks), start=offset + c.start,
                ))
            offset += r.n_packets
        report = cls(
            backend=results[0].backend,
            n_packets=int(match.size),
            matched=int((match >= 0).sum()),
            elapsed_s=elapsed_s,
            n_shards=max(r.n_shards for r in results),
            chunk_size=results[0].chunk_size,
            n_chunks=len(chunks),
            n_segments=len(results),
            match=match,
            chunks=chunks,
            occupancy=occupancy,
            cache_hits=sum(c[0] for c in caches) if has_cache else None,
            cache_misses=sum(c[1] for c in caches) if has_cache else None,
            cache_evictions=(
                sum(c[2] for c in caches) if has_cache else None
            ),
            update_batches=sum(r.update_batches for r in results),
            update_ops=sum(r.update_ops for r in results),
            update_skipped=sum(r.update_skipped for r in results),
            final_epoch=final_epoch,
            update_latencies_s=tuple(latencies),
            fault=FaultReport.merged(r.fault for r in results),
            energy_model=energy_model,
        )
        report._evaluate_energy()
        return report

    def _evaluate_energy(self) -> None:
        """Fill the device-model fields from occupancy, when selected."""
        freq = _DEVICE_FREQ_HZ.get(self.energy_model)
        mo = self.mean_occupancy()
        if freq is None or not mo:
            return
        from ..energy import asic_model, fpga_model

        model = asic_model() if self.energy_model == "asic" else fpga_model()
        self.device_throughput_pps = freq / mo
        self.energy_per_packet_j = model.energy_per_packet_j(mo)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Flat JSON-safe telemetry (arrays and chunk lists excluded)."""
        out = {
            "backend": self.backend,
            "n_packets": self.n_packets,
            "matched": self.matched,
            "matched_fraction": self.matched_fraction,
            "elapsed_s": self.elapsed_s,
            "throughput_pps": self.throughput_pps,
            "n_shards": self.n_shards,
            "chunk_size": self.chunk_size,
            "n_chunks": self.n_chunks,
            "n_segments": self.n_segments,
            "energy_model": self.energy_model,
        }
        if self.cache_hits is not None:
            out.update(
                cache_hits=self.cache_hits,
                cache_misses=self.cache_misses,
                cache_evictions=self.cache_evictions,
                cache_hit_rate=self.cache_hit_rate,
            )
        if self.update_batches or self.final_epoch is not None:
            out.update(
                update_batches=self.update_batches,
                update_ops=self.update_ops,
                update_skipped=self.update_skipped,
                final_epoch=self.final_epoch,
            )
            pct = self.update_latency
            if pct is not None:
                out["update_latency"] = pct
        if self.fault is not None and self.fault.any():
            out["fault"] = self.fault.to_dict()
        mo = self.mean_occupancy()
        if mo is not None:
            out["mean_occupancy"] = mo
        if self.device_throughput_pps is not None:
            out["device_throughput_pps"] = self.device_throughput_pps
            out["energy_per_packet_j"] = self.energy_per_packet_j
        if self.tenants is not None:
            out["tenants"] = [t.to_dict() for t in self.tenants]
        if self.stages is not None:
            out["stages"] = [s.to_dict() for s in self.stages]
        return out
