"""`AsyncEngine` — the serving session for event-loop embedders.

The blocking :class:`~repro.serve.Engine` already overlaps ingestion
with classification on its own background threads; what an ``asyncio``
application needs is a facade that never blocks the event loop while
driving it.  ``AsyncEngine`` is exactly that — a thin bridge, not a
second serving path::

    from repro.serve import AsyncEngine

    async with AsyncEngine.open(config, ruleset) as engine:
        report = await engine.classify(trace)
        async for chunk in engine.stream(segments):
            await publish(chunk.match)

Every call delegates to the wrapped blocking engine on a worker thread
(``asyncio.to_thread``); :meth:`stream` pulls one chunk per thread hop,
so backpressure and prefetch semantics are the underlying session's own
(``prefetch`` / ``ring_slots`` pass straight through), results are
bit-identical by construction, and breaking out of the ``async for``
closes the blocking iterator — the same prompt thread teardown the
synchronous early-exit contract guarantees.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Iterable

from ..core.packet import PacketTrace
from ..core.ruleset import RuleSet
from .config import EngineConfig
from .report import EngineReport
from .session import ChunkResult, Engine


class AsyncEngine:
    """Event-loop adapter over a blocking :class:`Engine` session.

    Construct with an existing engine or through :meth:`open`; usable
    as an async context manager.  The wrapped engine stays available as
    :attr:`engine` for synchronous call sites sharing the session.
    """

    def __init__(self, engine: Engine) -> None:
        self._engine = engine

    @classmethod
    def open(
        cls, config: EngineConfig, ruleset: RuleSet, **backend_params
    ) -> "AsyncEngine":
        """Build the configured classifier and wrap the session.

        Construction is synchronous (it happens before any event loop
        work is in flight); serving calls are what must not block.
        """
        return cls(Engine.open(config, ruleset, **backend_params))

    # ------------------------------------------------------------------
    @property
    def engine(self) -> Engine:
        return self._engine

    @property
    def config(self) -> EngineConfig:
        return self._engine.config

    @property
    def classifier(self):
        return self._engine.classifier

    # ------------------------------------------------------------------
    async def classify(
        self, trace: PacketTrace, updates=None, faults=None
    ) -> EngineReport:
        """`Engine.classify`, off the event loop."""
        return await asyncio.to_thread(
            self._engine.classify, trace, updates, faults
        )

    async def classify_stream(
        self, segments, updates=None, **stream_kwargs
    ) -> EngineReport:
        """`Engine.classify_stream`, off the event loop."""
        return await asyncio.to_thread(
            lambda: self._engine.classify_stream(
                segments, updates, **stream_kwargs
            )
        )

    async def stream(
        self,
        segments: Iterable[PacketTrace] | PacketTrace,
        updates=None,
        **stream_kwargs,
    ) -> AsyncIterator[ChunkResult]:
        """``async for chunk in engine.stream(...)``.

        One chunk is pulled per worker-thread hop, so the event loop
        stays responsive while the blocking session's own threads keep
        ingestion overlapped with classification underneath.  Closing
        the async iterator early (``break``, ``aclose``) closes the
        blocking iterator, which tears the session threads down.
        """
        it = self._engine.stream(segments, updates, **stream_kwargs)
        sentinel = object()
        try:
            while True:
                chunk = await asyncio.to_thread(next, it, sentinel)
                if chunk is sentinel:
                    return
                yield chunk
        finally:
            await asyncio.to_thread(it.close)

    async def close(self) -> None:
        await asyncio.to_thread(self._engine.close)

    async def __aenter__(self) -> "AsyncEngine":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
