"""Declarative serving API: :class:`EngineConfig` + :class:`Engine`.

The public entry point to the serving stack::

    from repro.serve import Engine, EngineConfig

    config = EngineConfig(backend="hypercuts", shards=4, persistent=True,
                          cache_entries=4096)
    with Engine.open(config, ruleset) as engine:
        report = engine.classify(trace)          # EngineReport
        for chunk in engine.stream(segments):    # streamed ingestion
            consume(chunk.match)

:class:`~repro.engine.pipeline.ClassificationPipeline` remains available
as the internal executor underneath (``engine.pipeline``); new code
should configure serving through this module.  See ``docs/engine.md``.
"""

from ..engine.faults import FaultPlan, FaultSpec
from ..engine.supervision import (
    DEGRADATION_LADDER,
    FAULT_POLICIES,
    FaultReport,
    SupervisionPolicy,
)
from .config import ENERGY_MODELS, EngineConfig
from .ingest import (
    DEFAULT_SEGMENT_PACKETS,
    ON_MALFORMED,
    QuarantineLog,
    iter_trace_file,
    iter_trace_segments,
)
from .aio import AsyncEngine
from .report import EngineReport, latency_percentiles
from .session import ChunkResult, Engine
from .tenancy import MultiTenantEngine, TenantReport, TenantSpec

__all__ = [
    "ENERGY_MODELS",
    "EngineConfig",
    "DEFAULT_SEGMENT_PACKETS",
    "ON_MALFORMED",
    "QuarantineLog",
    "iter_trace_file",
    "iter_trace_segments",
    "EngineReport",
    "latency_percentiles",
    "ChunkResult",
    "Engine",
    "AsyncEngine",
    "MultiTenantEngine",
    "TenantSpec",
    "TenantReport",
    "FaultPlan",
    "FaultSpec",
    "FaultReport",
    "SupervisionPolicy",
    "FAULT_POLICIES",
    "DEGRADATION_LADDER",
]
