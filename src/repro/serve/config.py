"""`EngineConfig` — the one declarative description of a serving engine.

Before this layer, the serving stack was configured three different
ways: ``ClassificationPipeline.__init__`` took a pile of keyword knobs,
the CLI re-plumbed each knob by hand through ``argparse``, and
``experiments/common.py`` built variants a third way.  ``EngineConfig``
replaces all of that with a single frozen dataclass that

* names the backend and its build parameters (``binth``/``spfac``/
  ``speed``/``software``),
* shapes the pipeline (``shards``/``chunk_size``/``persistent``),
* sizes the flow cache (``cache_entries``/``cache_ways``/
  ``cache_max_age``),
* selects the update policy (``updatable``) and the device energy model
  (``energy_model``),
* sets the fault posture (``fault_policy``/``max_retries``/
  ``chunk_timeout_s``/``on_malformed``) — see
  :mod:`repro.engine.supervision`,

and round-trips losslessly through every representation the repo uses:

``to_dict``/``from_dict``
    plain-JSON dictionaries (configs in files, bench metadata);
``to_args``/``from_args``
    the CLI flag namespace (``--algorithm``/``--shards``/...), so
    ``EngineConfig.from_args(parse(cfg.to_args()))  == cfg`` exactly —
    the round-trip the config test suite pins bit-for-bit.

Validation happens at construction: every invalid combination raises
:class:`~repro.core.errors.ConfigError` naming the offending field, so
a config is either constructible or loudly rejected — never latently
wrong inside a forked worker.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..core.errors import ConfigError
from ..engine.pipeline import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_MIN_CHUNK_PACKETS,
    SHARD_MODES,
)
from ..engine.registry import backend_spec
from ..engine.supervision import FAULT_POLICIES
from .ingest import ON_MALFORMED

#: Device energy models ``EngineReport`` can evaluate a run against.
ENERGY_MODELS = ("asic", "fpga", "none")


@dataclass(frozen=True)
class EngineConfig:
    """Declarative, validated, immutable serving-engine description.

    ``backend`` accepts any registered name or alias and is canonicalised
    at construction (``"tss"`` becomes ``"tuple_space"``), so two configs
    naming the same engine compare equal.
    """

    # -- backend + search-structure build parameters --------------------
    backend: str = "hypercuts"
    binth: int = 30
    spfac: float = 4.0
    speed: int = 1
    #: Serve decision trees with the original software traversal instead
    #: of routing them onto the hardware-accelerator model.
    software: bool = False

    # -- pipeline shape --------------------------------------------------
    shards: int = 1
    chunk_size: int = DEFAULT_CHUNK_SIZE
    persistent: bool = False
    #: Worker tier: ``"auto"`` forks only when the clamped worker count
    #: can win, ``"processes"`` always forks when ``shards > 1``,
    #: ``"threads"`` runs shard-affine in-process workers.  The engine
    #: defaults to ``"auto"`` (``ClassificationPipeline`` constructed
    #: directly keeps the historical ``"processes"`` default).
    shard_mode: str = "auto"
    #: Coalesce dispatches on update-free runs until each carries at
    #: least this many packets (0 disables).  ``chunk_size`` stays the
    #: epoch grid and the reporting granularity for update streams.
    min_chunk_packets: int = DEFAULT_MIN_CHUNK_PACKETS

    # -- flow-cache geometry ---------------------------------------------
    cache_entries: int = 0
    cache_ways: int = 4
    #: TTL in cache lookups; entries expire this many lookups after the
    #: fill.  0 disables aging.
    cache_max_age: int = 0

    # -- update policy ---------------------------------------------------
    #: Build the backend through the update-serving surface
    #: (`repro.engine.updates`): tree backends route to the incremental
    #: classifier, everything else serves updates by rebuild adaptation.
    updatable: bool = False

    # -- fault handling --------------------------------------------------
    #: What a serving fault (worker crash, chunk deadline overrun, arena
    #: fence trip, injected fault) does: ``"fail"`` raises a typed
    #: :class:`~repro.core.errors.ServingFaultError`, ``"retry"``
    #: replays the dispatch (bounded, backed off) on the same tier,
    #: ``"degrade"`` retries and then walks the worker-tier ladder
    #: (persistent -> processes -> threads -> inline).
    fault_policy: str = "fail"
    #: Dispatch retries per tier before failing (or degrading).
    max_retries: int = 2
    #: Per-chunk dispatch deadline in seconds; 0 disables the deadline
    #: (crash detection stays on).
    chunk_timeout_s: float = 0.0
    #: Malformed trace-line policy for file ingestion: ``"raise"``
    #: aborts on the first bad line, ``"quarantine"`` dead-letters bad
    #: lines (bounded, counted) and serves the rest.
    on_malformed: str = "raise"

    # -- telemetry -------------------------------------------------------
    energy_model: str = "asic"

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        spec = backend_spec(self.backend)  # raises ConfigError for unknowns
        object.__setattr__(self, "backend", spec.name)
        if self.binth < 1:
            raise ConfigError(f"binth must be >= 1, got {self.binth}")
        if self.spfac <= 0:
            raise ConfigError(f"spfac must be > 0, got {self.spfac}")
        if self.speed not in (0, 1):
            raise ConfigError(f"speed must be 0 or 1, got {self.speed}")
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.chunk_size < 1:
            raise ConfigError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.shard_mode not in SHARD_MODES:
            raise ConfigError(
                f"unknown shard_mode {self.shard_mode!r}; "
                f"expected one of {', '.join(SHARD_MODES)}"
            )
        if self.min_chunk_packets < 0:
            raise ConfigError(
                f"min_chunk_packets must be >= 0, "
                f"got {self.min_chunk_packets}"
            )
        if self.cache_entries < 0:
            raise ConfigError(
                f"cache_entries must be >= 0, got {self.cache_entries}"
            )
        if self.cache_entries:
            if self.cache_ways < 1:
                raise ConfigError(
                    f"cache_ways must be >= 1, got {self.cache_ways}"
                )
            if self.cache_entries % self.cache_ways:
                raise ConfigError(
                    f"cache_entries ({self.cache_entries}) must be a "
                    f"multiple of cache_ways ({self.cache_ways})"
                )
        if self.cache_max_age < 0:
            raise ConfigError(
                f"cache_max_age must be >= 0 (0 = no aging), "
                f"got {self.cache_max_age}"
            )
        if self.fault_policy not in FAULT_POLICIES:
            raise ConfigError(
                f"unknown fault_policy {self.fault_policy!r}; "
                f"expected one of {', '.join(FAULT_POLICIES)}"
            )
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.chunk_timeout_s < 0:
            raise ConfigError(
                f"chunk_timeout_s must be >= 0 (0 = no deadline), "
                f"got {self.chunk_timeout_s}"
            )
        if self.on_malformed not in ON_MALFORMED:
            raise ConfigError(
                f"unknown on_malformed {self.on_malformed!r}; "
                f"expected one of {', '.join(ON_MALFORMED)}"
            )
        if self.energy_model not in ENERGY_MODELS:
            raise ConfigError(
                f"unknown energy_model {self.energy_model!r}; "
                f"expected one of {', '.join(ENERGY_MODELS)}"
            )

    # -- dict round-trip -------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON representation (the exact ``from_dict`` inverse)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EngineConfig":
        """Construct from a plain dict, rejecting unknown keys loudly."""
        if not isinstance(data, dict):
            raise ConfigError(
                f"EngineConfig.from_dict expects a dict, "
                f"got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown EngineConfig field(s): {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        return cls(**data)

    # -- CLI round-trip --------------------------------------------------
    def to_args(self) -> list[str]:
        """The CLI flag list describing this config, fully explicit.

        ``parse_args(cfg.to_args())`` fed back through :meth:`from_args`
        reconstructs ``cfg`` bit-for-bit (the config test suite pins
        this), so a config can be logged, replayed, or handed to a
        subprocess as its exact command line.
        """
        args = [
            "--algorithm", self.backend,
            "--binth", str(self.binth),
            "--spfac", repr(self.spfac),
            "--speed", str(self.speed),
            "--shards", str(self.shards),
            "--chunk-size", str(self.chunk_size),
            "--shard-mode", self.shard_mode,
            "--min-chunk-packets", str(self.min_chunk_packets),
            "--cache-entries", str(self.cache_entries),
            "--cache-ways", str(self.cache_ways),
            "--cache-max-age", str(self.cache_max_age),
            "--fault-policy", self.fault_policy,
            "--max-retries", str(self.max_retries),
            "--chunk-timeout", repr(self.chunk_timeout_s),
            "--on-malformed", self.on_malformed,
            "--energy-model", self.energy_model,
        ]
        if self.software:
            args.append("--software")
        if self.persistent:
            args.append("--persistent")
        if self.updatable:
            args.append("--updatable")
        return args

    @classmethod
    def from_args(cls, args) -> "EngineConfig":
        """Construct from an ``argparse`` namespace (or anything with the
        CLI attribute names).  Attributes a subcommand does not define
        fall back to the config defaults, so one mapping serves
        ``classify`` and ``bench`` alike."""
        def get(name, default):
            value = getattr(args, name, None)
            return default if value is None else value

        defaults = cls()
        return cls(
            backend=get("algorithm", defaults.backend),
            binth=int(get("binth", defaults.binth)),
            spfac=float(get("spfac", defaults.spfac)),
            speed=int(get("speed", defaults.speed)),
            software=bool(get("software", defaults.software)),
            shards=int(get("shards", defaults.shards)),
            chunk_size=int(get("chunk_size", defaults.chunk_size)),
            persistent=bool(get("persistent", defaults.persistent)),
            shard_mode=str(get("shard_mode", defaults.shard_mode)),
            min_chunk_packets=int(
                get("min_chunk_packets", defaults.min_chunk_packets)
            ),
            cache_entries=int(get("cache_entries", defaults.cache_entries)),
            cache_ways=int(get("cache_ways", defaults.cache_ways)),
            cache_max_age=int(
                get("cache_max_age", defaults.cache_max_age)
            ),
            updatable=bool(get("updatable", False))
            or bool(get("updates", 0)),
            fault_policy=str(get("fault_policy", defaults.fault_policy)),
            max_retries=int(get("max_retries", defaults.max_retries)),
            chunk_timeout_s=float(
                get("chunk_timeout", defaults.chunk_timeout_s)
            ),
            on_malformed=str(get("on_malformed", defaults.on_malformed)),
            energy_model=str(get("energy_model", defaults.energy_model)),
        )
