"""Multi-tenant serving: one process, many rulesets, fair admission.

The ROADMAP's "millions of users" shape is not one giant ruleset — it
is one serving process multiplexing many small tenant rulesets, each
with its own flow cache and update epoch, under bursty interleaved
traffic.  :class:`MultiTenantEngine` is that layer::

    from repro.serve import MultiTenantEngine, TenantSpec

    engine = MultiTenantEngine.open([
        (TenantSpec("acme", config, weight=2.0), acme_rules),
        (TenantSpec("blue", config), blue_rules),
    ])
    report = engine.serve({"acme": acme_trace, "blue": blue_trace})
    for tenant in report.tenants:
        print(tenant.name, tenant.slo)

Design points, each pinned by ``tests/test_tenancy.py``:

**Isolation by construction.**  Every tenant owns a full
:class:`~repro.serve.Engine` — its own classifier, its own
:class:`~repro.engine.flowcache.FlowCache`, its own update epoch.  A
tenant's epoch bump (rule update) can therefore never invalidate
another tenant's cache entries, and per-tenant results are bit-identical
to running that tenant alone: the scheduler only decides *when* a
segment runs, never *how*.

**One shared persistent pool.**  Fork pools are the expensive shared
resource (workers, shared-memory arenas).  The engine holds a single
pool lease: at most one tenant's persistent fork pool is alive at any
moment, handed over (previous holder torn down) when the scheduler
switches to another pool-tier tenant.  N tenants never multiply the
process's worker footprint.

**Weighted-fair admission.**  Interleaving is deficit round-robin over
the tenants' segment streams: each scheduling round credits every
tenant ``weight * quantum`` packets and serves whole segments while the
credit lasts, so a weight-2 tenant is admitted twice the packets of a
weight-1 tenant over any window, independent of segment sizes.

**Fault containment.**  A tenant whose pipeline ultimately fails (its
own retry/degrade policy exhausted — crash, hang past its deadline,
arena fault) is marked faulted and dropped from admission; every other
tenant keeps serving and their outputs stay byte-for-byte what an
isolated run produces.

Per-tenant accounting lands in :class:`TenantReport` (p50/p95/p99 of
per-segment service latency — the SLO numbers — plus the tenant's
merged :class:`~repro.serve.EngineReport`), rolled into the aggregate
``EngineReport`` that :meth:`MultiTenantEngine.serve` returns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..core.errors import ConfigError
from ..core.packet import PacketTrace
from ..core.ruleset import RuleSet
from ..core.updates import ScheduledUpdate
from ..engine.faults import FaultPlan
from ..engine.pipeline import ClassificationPipeline
from ..engine.supervision import FaultReport
from .config import EngineConfig
from .ingest import DEFAULT_SEGMENT_PACKETS, iter_trace_segments
from .report import EngineReport, latency_percentiles
from .session import ChunkResult, Engine


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's identity, serving shape, and admission weight.

    ``config`` is the tenant's own :class:`EngineConfig` — backends,
    cache geometry, update/fault policy all vary per tenant.  ``weight``
    scales the tenant's share of the admission scheduler (2.0 = twice
    the packets of a weight-1.0 tenant over any scheduling window).
    """

    name: str
    config: EngineConfig = field(default_factory=EngineConfig)
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigError(
                f"tenant name must be a non-empty string, got {self.name!r}"
            )
        if isinstance(self.config, dict):
            object.__setattr__(
                self, "config", EngineConfig.from_dict(self.config)
            )
        if not isinstance(self.config, EngineConfig):
            raise ConfigError(
                f"tenant {self.name!r} config must be an EngineConfig "
                f"(or dict), got {type(self.config).__name__}"
            )
        if not self.weight > 0:
            raise ConfigError(
                f"tenant {self.name!r} weight must be > 0, "
                f"got {self.weight}"
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "weight": self.weight,
            "config": self.config.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSpec":
        if not isinstance(data, dict):
            raise ConfigError(
                f"TenantSpec.from_dict expects a dict, "
                f"got {type(data).__name__}"
            )
        known = {"name", "weight", "config"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown TenantSpec field(s): {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        return cls(
            name=data.get("name", ""),
            config=EngineConfig.from_dict(data.get("config", {})),
            weight=float(data.get("weight", 1.0)),
        )


@dataclass
class TenantReport:
    """One tenant's slice of a multi-tenant serving session.

    ``latencies_s`` holds the per-segment *service* latencies (queueing
    excluded — the time the tenant's pipeline actually ran), and
    :attr:`slo` summarises them as the p50/p95/p99 every admission
    contract is written against.  ``report`` is the tenant's own merged
    :class:`EngineReport` — matches, cache counters, update epochs —
    exactly as an isolated run would have produced it.
    """

    name: str
    weight: float
    busy_s: float = 0.0
    latencies_s: tuple[float, ...] = ()
    report: EngineReport | None = field(default=None, repr=False)
    #: ``None`` while healthy; a one-line description of the terminal
    #: fault that removed the tenant from admission otherwise.
    fault: str | None = None

    @property
    def n_packets(self) -> int:
        return self.report.n_packets if self.report is not None else 0

    @property
    def n_segments(self) -> int:
        return self.report.n_segments if self.report is not None else 0

    @property
    def throughput_pps(self) -> float:
        """Packets/second over the tenant's busy time (service only)."""
        return self.n_packets / self.busy_s if self.busy_s > 0 else 0.0

    @property
    def slo(self) -> dict[str, float] | None:
        """p50/p95/p99/max per-segment service latency (milliseconds)."""
        return latency_percentiles(self.latencies_s)

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "weight": self.weight,
            "n_packets": self.n_packets,
            "n_segments": self.n_segments,
            "busy_s": self.busy_s,
            "throughput_pps": self.throughput_pps,
        }
        pct = self.slo
        if pct is not None:
            out["slo"] = pct
        if self.fault is not None:
            out["fault"] = self.fault
        if self.report is not None:
            out["report"] = self.report.to_dict()
        return out


class _PoolLease:
    """The single-persistent-pool invariant, as an object.

    Tenant pipelines that plan to fork a persistent pool must ``admit``
    through the lease before running; admitting a different tenant
    tears the previous holder's pool down first, so whatever N tenants
    are configured, at most one fork pool (workers + shared-memory
    arena) exists at any moment.
    """

    def __init__(self) -> None:
        self._holder: tuple[str, ClassificationPipeline] | None = None

    @property
    def holder(self) -> str | None:
        return self._holder[0] if self._holder is not None else None

    def admit(self, name: str, pipeline: ClassificationPipeline) -> None:
        if not (pipeline.persistent and pipeline.fork_planned()):
            return
        if self._holder is not None and self._holder[0] != name:
            self._holder[1].close()
        self._holder = (name, pipeline)

    def release(self, name: str) -> None:
        if self._holder is not None and self._holder[0] == name:
            self._holder[1].close()
            self._holder = None

    def close(self) -> None:
        if self._holder is not None:
            self._holder[1].close()
            self._holder = None


class _TenantState:
    """Scheduler-side bookkeeping for one tenant in one session."""

    def __init__(
        self,
        spec: TenantSpec,
        engine: Engine,
        source: Iterator,
        entries: list[ScheduledUpdate],
        plan: FaultPlan | None,
    ) -> None:
        self.spec = spec
        self.engine = engine
        self.source = source
        self.entries = entries
        self.plan = plan
        self.head: PacketTrace | None = None
        self.offset = 0
        self.index = 0
        self.upd_i = 0
        self.deficit = 0.0
        self.busy_s = 0.0
        self.latencies: list[float] = []
        self.results: list = []
        self.fault: str | None = None
        self.done = False

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def weight(self) -> float:
        return self.spec.weight

    def peek(self) -> PacketTrace | None:
        """The next segment (as a trace), without consuming it."""
        if self.head is None:
            try:
                self.head = self.engine._as_trace(next(self.source))
            except StopIteration:
                return None
        return self.head

    def pop(self) -> PacketTrace:
        segment = self.head
        self.head = None
        return segment


class MultiTenantEngine:
    """N tenant serving sessions behind one admission scheduler.

    Construct through :meth:`open` with ``(spec, ruleset)`` pairs —
    ``spec`` may be a :class:`TenantSpec`, a plain dict, or just a name
    (default config, weight 1.0).  Usable as a context manager;
    :meth:`close` tears down every tenant engine and the pool lease.
    """

    def __init__(
        self,
        tenants: Iterable[tuple[TenantSpec | dict | str, RuleSet]],
    ) -> None:
        self._tenants: dict[str, tuple[TenantSpec, Engine]] = {}
        for spec, ruleset in tenants:
            if isinstance(spec, str):
                spec = TenantSpec(spec)
            elif isinstance(spec, dict):
                spec = TenantSpec.from_dict(spec)
            if spec.name in self._tenants:
                raise ConfigError(f"duplicate tenant name {spec.name!r}")
            self._tenants[spec.name] = (
                spec, Engine.open(spec.config, ruleset)
            )
        if not self._tenants:
            raise ConfigError("MultiTenantEngine needs at least one tenant")
        self._lease = _PoolLease()
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls, tenants: Iterable[tuple[TenantSpec | dict | str, RuleSet]]
    ) -> "MultiTenantEngine":
        return cls(tenants)

    @property
    def names(self) -> tuple[str, ...]:
        """Tenant names, in registration order."""
        return tuple(self._tenants)

    def spec(self, name: str) -> TenantSpec:
        return self._tenant(name)[0]

    def engine(self, name: str) -> Engine:
        """The named tenant's private :class:`Engine` (its classifier,
        cache and epoch live here — nothing is shared across names)."""
        return self._tenant(name)[1]

    @property
    def pool_holder(self) -> str | None:
        """Which tenant currently holds the shared persistent pool."""
        return self._lease.holder

    def _tenant(self, name: str) -> tuple[TenantSpec, Engine]:
        try:
            return self._tenants[name]
        except KeyError:
            raise ConfigError(
                f"unknown tenant {name!r}; registered: "
                f"{', '.join(self._tenants)}"
            ) from None

    def close(self) -> None:
        self._lease.close()
        for _spec, engine in self._tenants.values():
            engine.close()
        self._closed = True

    def __enter__(self) -> "MultiTenantEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the admission scheduler ----------------------------------------
    def stream(
        self,
        workloads: Mapping[str, Iterable[PacketTrace] | PacketTrace],
        *,
        updates: Mapping[str, Iterable] | None = None,
        faults: Mapping[str, object] | None = None,
        segment_packets: int = DEFAULT_SEGMENT_PACKETS,
        quantum: int | None = None,
    ) -> Iterator[tuple[str, ChunkResult]]:
        """Serve every workload through weighted-fair admission, lazily.

        ``workloads`` maps tenant names to segment streams (a single
        :class:`PacketTrace` is sliced into ``segment_packets`` views);
        ``updates``/``faults`` map tenant names to per-tenant update
        schedules / fault plans, with the same semantics as
        :meth:`Engine.stream`.  Yields ``(tenant_name, ChunkResult)``
        in admission order; ``quantum`` is the scheduler's per-round
        packet credit (default: ``segment_packets``).
        """
        states = self._states(workloads, updates, faults, segment_packets)
        q = segment_packets if quantum is None else quantum
        return self._admit(states, q)

    def serve(
        self,
        workloads: Mapping[str, Iterable[PacketTrace] | PacketTrace],
        *,
        updates: Mapping[str, Iterable] | None = None,
        faults: Mapping[str, object] | None = None,
        segment_packets: int = DEFAULT_SEGMENT_PACKETS,
        quantum: int | None = None,
    ) -> EngineReport:
        """Drain a whole :meth:`stream` session into one aggregate
        :class:`EngineReport` whose ``tenants`` field carries the
        per-tenant :class:`TenantReport` slices."""
        states = self._states(workloads, updates, faults, segment_packets)
        started = time.perf_counter()
        q = segment_packets if quantum is None else quantum
        for _name, _chunk in self._admit(states, q):
            pass
        elapsed = time.perf_counter() - started
        reports = [self._tenant_report(st) for st in states]
        return self._aggregate(reports, elapsed)

    # ------------------------------------------------------------------
    def _states(
        self, workloads, updates, faults, segment_packets
    ) -> list[_TenantState]:
        if not workloads:
            raise ConfigError("multi-tenant serve needs >= 1 workload")
        unknown = sorted(set(workloads) - set(self._tenants))
        if unknown:
            raise ConfigError(
                f"workload(s) for unknown tenant(s): {', '.join(unknown)}; "
                f"registered: {', '.join(self._tenants)}"
            )
        updates = updates or {}
        faults = faults or {}
        states = []
        for name, (spec, engine) in self._tenants.items():
            if name not in workloads:
                continue
            segments = workloads[name]
            if isinstance(segments, PacketTrace):
                segments = iter_trace_segments(segments, segment_packets)
            states.append(_TenantState(
                spec, engine, iter(segments),
                engine._normalise_stream_updates(updates.get(name)),
                FaultPlan.coerce(faults.get(name)),
            ))
        return states

    def _admit(
        self, states: list[_TenantState], quantum: int
    ) -> Iterator[tuple[str, ChunkResult]]:
        """Deficit round-robin: each round credits ``weight * quantum``
        packets per tenant and serves whole segments while the credit
        lasts.  Faulted tenants leave the rotation; everyone else's
        serving is unaffected."""
        if quantum < 1:
            raise ConfigError(f"quantum must be >= 1, got {quantum}")
        pending = [st for st in states if not st.done]
        while pending:
            for st in pending:
                st.deficit += st.weight * quantum
                while not st.done:
                    segment = st.peek()
                    if segment is None:
                        chunk = self._flush_tail(st)
                        st.done = True
                        st.deficit = 0.0
                        if chunk is not None:
                            yield st.name, chunk
                        break
                    # A segment larger than one credit still costs one
                    # whole segment — max(1, ...) keeps empty segments
                    # from spinning the rotation for free.
                    cost = max(1, segment.n_packets)
                    if st.deficit < cost:
                        break
                    st.pop()
                    chunk = self._serve_segment(st, segment)
                    st.deficit -= cost
                    if chunk is not None:
                        yield st.name, chunk
            pending = [st for st in pending if not st.done]

    def _serve_segment(
        self, st: _TenantState, trace: PacketTrace
    ) -> ChunkResult | None:
        n = trace.n_packets
        local: list[ScheduledUpdate] = []
        while (
            st.upd_i < len(st.entries)
            and st.entries[st.upd_i].at_packet < st.offset + n
        ):
            entry = st.entries[st.upd_i]
            local.append(ScheduledUpdate(
                max(0, entry.at_packet - st.offset), entry.batch
            ))
            st.upd_i += 1
        self._lease.admit(st.name, st.engine.pipeline)
        started = time.perf_counter()
        try:
            result = st.engine.pipeline.run(
                trace, updates=local or None,
                faults=st.plan.for_segment(st.index)
                if st.plan is not None else None,
            )
        except Exception as exc:  # contained: one tenant, not the session
            self._quarantine_tenant(st, exc)
            return None
        latency = time.perf_counter() - started
        st.busy_s += latency
        st.latencies.append(latency)
        st.results.append(result)
        chunk = ChunkResult(
            index=st.index, start=st.offset, n_packets=n,
            matched=result.matched, elapsed_s=result.elapsed_s,
            epoch=result.final_epoch, match=result.match, result=result,
        )
        st.offset += n
        st.index += 1
        return chunk

    def _flush_tail(self, st: _TenantState) -> ChunkResult | None:
        """Apply updates scheduled past the tenant's stream end, as a
        final zero-packet chunk (same contract as ``Engine.stream``)."""
        tail = [
            ScheduledUpdate(0, e.batch) for e in st.entries[st.upd_i:]
        ]
        st.upd_i = len(st.entries)
        if not tail:
            return None
        self._lease.admit(st.name, st.engine.pipeline)
        try:
            result = st.engine.pipeline.run(
                st.engine._empty_trace(), updates=tail
            )
        except Exception as exc:
            self._quarantine_tenant(st, exc)
            return None
        st.results.append(result)
        chunk = ChunkResult(
            index=st.index, start=st.offset, n_packets=0, matched=0,
            elapsed_s=result.elapsed_s, epoch=result.final_epoch,
            match=result.match, result=result,
        )
        st.index += 1
        return chunk

    def _quarantine_tenant(
        self, st: _TenantState, exc: BaseException
    ) -> None:
        st.fault = f"{type(exc).__name__}: {exc}"
        st.done = True
        st.deficit = 0.0
        # A faulted persistent tier may leave a poisoned pool behind;
        # drop the lease so the next tenant forks fresh.
        self._lease.release(st.name)

    # ------------------------------------------------------------------
    def _tenant_report(self, st: _TenantState) -> TenantReport:
        report = EngineReport.merge(
            st.results, elapsed_s=st.busy_s,
            energy_model=st.engine.config.energy_model,
        )
        return TenantReport(
            name=st.name,
            weight=st.weight,
            busy_s=st.busy_s,
            latencies_s=tuple(st.latencies),
            report=report,
            fault=st.fault,
        )

    def _aggregate(
        self, tenants: list[TenantReport], elapsed_s: float
    ) -> EngineReport:
        reports = [t.report for t in tenants if t.report is not None]
        # Cache counters aggregate only when every tenant serves through
        # a flow cache — a mixed fleet has no meaningful fleet hit rate.
        caches = [
            (r.cache_hits, r.cache_misses, r.cache_evictions)
            for r in reports
        ]
        has_cache = bool(caches) and all(c[0] is not None for c in caches)
        latencies: list[float] = []
        for r in reports:
            latencies.extend(r.update_latencies_s)
        aggregate = EngineReport(
            backend="multi-tenant",
            n_packets=sum(r.n_packets for r in reports),
            matched=sum(r.matched for r in reports),
            elapsed_s=elapsed_s,
            n_shards=max((r.n_shards for r in reports), default=0),
            chunk_size=max((r.chunk_size for r in reports), default=0),
            n_chunks=sum(r.n_chunks for r in reports),
            n_segments=sum(r.n_segments for r in reports),
            cache_hits=sum(c[0] for c in caches) if has_cache else None,
            cache_misses=sum(c[1] for c in caches) if has_cache else None,
            cache_evictions=(
                sum(c[2] for c in caches) if has_cache else None
            ),
            update_batches=sum(r.update_batches for r in reports),
            update_ops=sum(r.update_ops for r in reports),
            update_skipped=sum(r.update_skipped for r in reports),
            update_latencies_s=tuple(latencies),
            fault=FaultReport.merged(r.fault for r in reports),
            energy_model="none",
            tenants=tenants,
        )
        return aggregate
