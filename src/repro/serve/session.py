"""`Engine` — the serving-session facade over the classification stack.

One object owns what used to be four call sites' worth of plumbing:
backend construction through the registry (including the tree-to-
accelerator routing and the update-serving adaptation), flow-cache
wrapping, pipeline construction, and persistent-pool lifecycle::

    from repro.serve import Engine, EngineConfig

    config = EngineConfig(backend="hypercuts", shards=4, persistent=True,
                          cache_entries=4096)
    with Engine.open(config, ruleset) as engine:
        report = engine.classify(trace)            # one-shot
        for chunk in engine.stream(segments):      # streamed session
            consume(chunk.match)

Two serving paths, one result:

``classify(trace, updates=...)``
    one pipeline run, returning a unified :class:`EngineReport`.
``stream(segments, updates=...)``
    a long-lived serving session over any iterable of trace segments
    (in-memory views, a file reader, a traffic generator).  A
    background **ingestion thread** pulls segments from the iterable
    into a bounded prefetch queue and a **serving thread** classifies
    them on the (persistent) pipeline, publishing
    :class:`ChunkResult`\\ s into a bounded **result ring** the caller
    iterates.  Ingestion (trace generation, file parsing) therefore
    overlaps classification; the bounded queues give backpressure, so
    streamed memory stays ``O(segments in flight)``.

Exactness: streamed matches are bit-identical to ``classify`` on the
concatenated trace at every backend/shard/pool/cache combination.  With
live updates the identity additionally requires segment lengths that
are multiples of ``chunk_size`` (otherwise each segment end introduces
an extra epoch boundary — same guarantee as changing ``chunk_size``);
the stream conformance suite pins both.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from ..core.errors import ConfigError, IngestError
from ..core.packet import PacketTrace
from ..core.ruleset import RuleSet
from ..core.updates import ScheduledUpdate
from ..engine.faults import FaultPlan, fire_ingest_specs
from ..engine.flowcache import CachedClassifier
from ..engine.pipeline import ClassificationPipeline, PipelineResult
from ..engine.protocol import Classifier
from ..engine.registry import backend_spec, build_backend
from ..engine.supervision import FaultReport, SupervisionPolicy
from ..engine.updates import build_updatable_backend, is_updatable
from .config import EngineConfig
from .ingest import (
    DEFAULT_SEGMENT_PACKETS,
    QuarantineLog,
    iter_trace_segments,
)
from .report import EngineReport

#: Sentinel the ingestion thread publishes after the last segment.
_DONE = object()
#: Sentinel ``_get`` returns when the stream is being torn down.
_STOPPED = object()


@dataclass(frozen=True)
class _StreamError:
    """An exception captured in a worker thread, re-raised at the
    consumer."""

    exc: BaseException


@dataclass
class ChunkResult:
    """One streamed segment's classification result.

    ``start`` is the segment's first-packet offset in the logical
    stream; ``epoch`` is the classifier's ruleset version after the
    segment (``None`` for non-updatable backends).  ``result`` keeps
    the underlying :class:`PipelineResult` for per-chunk statistics.
    """

    index: int
    start: int
    n_packets: int
    matched: int
    elapsed_s: float
    epoch: int | None
    match: np.ndarray = field(repr=False, default=None)
    result: PipelineResult = field(repr=False, default=None)

    @property
    def matched_fraction(self) -> float:
        return self.matched / self.n_packets if self.n_packets else 0.0

    @property
    def throughput_pps(self) -> float:
        return self.n_packets / self.elapsed_s if self.elapsed_s > 0 else 0.0


class Engine:
    """A serving session: one built classifier behind one pipeline.

    Construct through :meth:`open` (usable directly as a context
    manager); :meth:`close` tears down the persistent worker pool.
    ``backend_params`` are forwarded to the backend factory for the few
    call sites that need more than the declarative surface (the
    experiment harness's ``ops`` counters and ``capacity_words``).
    """

    def __init__(
        self,
        config: EngineConfig,
        ruleset: RuleSet,
        *,
        classifier: Classifier | None = None,
        **backend_params,
    ) -> None:
        if isinstance(config, dict):
            config = EngineConfig.from_dict(config)
        if not isinstance(config, EngineConfig):
            raise ConfigError(
                f"Engine expects an EngineConfig (or dict), "
                f"got {type(config).__name__}"
            )
        self.config = config
        self.ruleset = ruleset
        self.classifier = (
            classifier
            if classifier is not None
            else self.build_classifier(config, ruleset, **backend_params)
        )
        self._pipeline = ClassificationPipeline(
            self.classifier,
            chunk_size=config.chunk_size,
            shards=config.shards,
            persistent=config.persistent,
            shard_mode=config.shard_mode,
            min_chunk_packets=config.min_chunk_packets,
            policy=SupervisionPolicy(
                fault_policy=config.fault_policy,
                max_retries=config.max_retries,
                chunk_timeout_s=config.chunk_timeout_s,
            ),
        )
        #: Dead-letter buffer for malformed trace lines — live (and
        #: meant to be handed to ``iter_trace_file``) when the config
        #: asks for quarantine, ``None`` under ``on_malformed="raise"``.
        self.quarantine: QuarantineLog | None = (
            QuarantineLog() if config.on_malformed == "quarantine" else None
        )
        #: Stream-level fault accounting (ingest retries, quarantined
        #: lines) of the most recent :meth:`stream` session; ``None``
        #: before the first stream or when it saw nothing.
        self.last_stream_fault: FaultReport | None = None
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls, config: EngineConfig, ruleset: RuleSet, **backend_params
    ) -> "Engine":
        """Build the configured classifier and open a serving session."""
        return cls(config, ruleset, **backend_params)

    @staticmethod
    def build_classifier(
        config: EngineConfig, ruleset: RuleSet, **backend_params
    ) -> Classifier:
        """Construct the classifier ``config`` describes (no session).

        Routing rules (the policy previously duplicated across the CLI
        and the experiment harness):

        * ``updatable=True`` builds through the update-serving surface —
          decision-tree backends route to the incremental classifier,
          everything else serves updates by rebuild adaptation;
        * tree backends otherwise route onto the hardware accelerator
          unless ``software=True`` asks for the original traversal;
        * ``cache_entries > 0`` wraps the result in a
          :class:`~repro.engine.flowcache.CachedClassifier`.
        """
        if isinstance(config, dict):
            config = EngineConfig.from_dict(config)
        spec = backend_spec(config.backend)
        shared = dict(
            binth=config.binth, spfac=config.spfac, speed=config.speed,
        )
        shared.update(backend_params)
        if config.updatable:
            if spec.builds_tree or spec.name == "incremental":
                clf = build_updatable_backend(
                    "incremental", ruleset,
                    algorithm=spec.name if spec.builds_tree else "hicuts",
                    binth=config.binth, spfac=config.spfac,
                    hw_mode=not config.software,
                    **backend_params,
                )
            else:
                clf = build_updatable_backend(
                    spec.name, ruleset,
                    hw_mode=not config.software, **shared,
                )
        elif spec.builds_tree and not config.software:
            clf = build_backend(
                "accelerator", ruleset, algorithm=spec.name, **shared
            )
        else:
            clf = build_backend(
                spec.name, ruleset,
                hw_mode=not config.software, **shared,
            )
        if config.cache_entries:
            clf = CachedClassifier(
                clf,
                entries=config.cache_entries,
                ways=config.cache_ways,
                max_age=config.cache_max_age,
            )
        return clf

    # -- lifecycle -------------------------------------------------------
    @property
    def pipeline(self) -> ClassificationPipeline:
        """The internal executor (pool lifecycle belongs to the engine)."""
        return self._pipeline

    @property
    def pool_engaged(self) -> bool:
        """Whether a persistent worker pool is currently alive."""
        return self._pipeline._pool is not None

    def close(self) -> None:
        """Tear down the worker pool; the session stays reusable (the
        next run re-forks)."""
        self._pipeline.close()
        self._closed = True

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- one-shot serving ------------------------------------------------
    def classify(
        self, trace: PacketTrace, updates=None, faults=None
    ) -> EngineReport:
        """Run one trace (optionally with a live update stream) and
        return the unified telemetry report; ``report.match`` is the
        trace-order first-match array.  ``faults`` injects a
        deterministic :class:`~repro.engine.faults.FaultPlan`; recovery
        follows the config's ``fault_policy`` and lands in
        ``report.fault``."""
        result = self._pipeline.run(trace, updates=updates, faults=faults)
        return EngineReport.from_result(
            result, energy_model=self.config.energy_model
        )

    # -- streamed serving ------------------------------------------------
    def stream(
        self,
        segments: Iterable[PacketTrace] | PacketTrace,
        updates=None,
        *,
        prefetch: int = 2,
        ring_slots: int = 4,
        segment_packets: int = DEFAULT_SEGMENT_PACKETS,
        faults=None,
    ) -> Iterator[ChunkResult]:
        """Serve a segment stream, overlapping ingestion with
        classification.

        ``segments`` is any iterable of :class:`PacketTrace` segments
        (or raw ``(n, ndim)`` header arrays); passing a single
        ``PacketTrace`` slices it into ``segment_packets`` views.
        ``updates`` is a global :class:`ScheduledUpdate` schedule whose
        ``at_packet`` offsets count from the start of the *stream*.

        Returns a lazy iterator of :class:`ChunkResult`; nothing starts
        until the first ``next()``.  ``prefetch`` bounds the ingestion
        queue, ``ring_slots`` the result ring — together they cap how
        far ingestion may run ahead of the consumer.

        Sharding is per segment: a segment no longer than ``chunk_size``
        is one chunk and serves single-process, so with ``shards > 1``
        use segments of at least a few chunks (the CLI warns about
        ``--stream`` values that cannot engage the shards).

        ``faults`` injects a :class:`~repro.engine.faults.FaultPlan`
        into the session: ``ingest`` specs fire in the ingestion thread
        (retried per the fault policy — the source iterator is not
        advanced past an injected failure), everything else is routed
        to the pipeline run of its target segment.  Stream-level
        accounting is published on :attr:`last_stream_fault` when the
        session ends.
        """
        if isinstance(segments, PacketTrace):
            segments = iter_trace_segments(segments, segment_packets)
        if prefetch < 1:
            raise ConfigError(f"prefetch must be >= 1, got {prefetch}")
        if ring_slots < 1:
            raise ConfigError(f"ring_slots must be >= 1, got {ring_slots}")
        entries = self._normalise_stream_updates(updates)
        plan = FaultPlan.coerce(faults)
        return self._stream(segments, entries, prefetch, ring_slots, plan)

    def classify_stream(
        self,
        segments: Iterable[PacketTrace] | PacketTrace,
        updates=None,
        **stream_kwargs,
    ) -> EngineReport:
        """Consume a whole :meth:`stream` session into one merged
        :class:`EngineReport` (end-to-end wall clock, concatenated
        matches)."""
        started = time.perf_counter()
        results = [
            chunk.result
            for chunk in self.stream(segments, updates, **stream_kwargs)
        ]
        elapsed = time.perf_counter() - started
        report = EngineReport.merge(
            results, elapsed_s=elapsed,
            energy_model=self.config.energy_model,
        )
        if self.last_stream_fault is not None:
            # Stream-level accounting (ingest retries, quarantined
            # lines) lives outside any one pipeline result; fold it in.
            if report.fault is None:
                report.fault = FaultReport()
            report.fault.merge(self.last_stream_fault)
        return report

    # ------------------------------------------------------------------
    def _normalise_stream_updates(
        self, updates
    ) -> list[ScheduledUpdate]:
        if not updates:
            return []
        if not is_updatable(self.classifier):
            raise ConfigError(
                f"backend {getattr(self.classifier, 'backend_name', '?')!r} "
                "does not serve rule updates; open the engine with "
                "EngineConfig(updatable=True)"
            )
        items: list[ScheduledUpdate] = []
        for upd in updates:
            if isinstance(upd, ScheduledUpdate):
                items.append(upd)
            else:
                at, batch = upd
                items.append(ScheduledUpdate(int(at), tuple(batch)))
        return sorted(items, key=lambda u: u.at_packet)  # stable

    def _as_trace(self, segment) -> PacketTrace:
        if isinstance(segment, PacketTrace):
            return segment
        return PacketTrace(
            np.asarray(segment, dtype=np.uint32), self.ruleset.schema
        )

    def _empty_trace(self) -> PacketTrace:
        return PacketTrace(
            np.empty((0, self.ruleset.schema.ndim), dtype=np.uint32),
            self.ruleset.schema,
        )

    def _stream(
        self,
        segments: Iterable,
        entries: list[ScheduledUpdate],
        prefetch: int,
        ring_slots: int,
        plan: FaultPlan | None = None,
    ) -> Iterator[ChunkResult]:
        """Generator body of :meth:`stream` (threads start lazily on the
        first ``next()``; early ``close()`` of the iterator tears the
        session's threads down without leaking)."""
        policy = self._pipeline.policy or SupervisionPolicy()
        supervisor = self._pipeline._supervisor
        stream_fault = FaultReport()
        quarantined_before = self.quarantine.count if self.quarantine else 0
        sharded = self._pipeline.fork_planned()
        borrowed_pool = False
        if sharded:
            # Fork the worker pool before any thread exists: forking a
            # multi-threaded process risks inheriting held locks.  A
            # transient (non-persistent) config is served through a
            # stream-lifetime persistent pool for the same reason — one
            # pre-threads fork instead of one fork per segment — and
            # restored afterwards.
            if not self._pipeline.persistent:
                self._pipeline.persistent = True
                borrowed_pool = True
            try:
                self._pipeline._ensure_pool(self.ruleset.schema.ndim)
            except BaseException:
                if borrowed_pool:
                    self._pipeline.close()
                    self._pipeline.persistent = False
                raise
        ingest_q: queue.Queue = queue.Queue(maxsize=prefetch)
        ring: queue.Queue = queue.Queue(maxsize=ring_slots)
        stop = threading.Event()

        def _put(q: queue.Queue, item) -> bool:
            """Bounded put that aborts when the stream is closing."""
            while not stop.is_set():
                try:
                    q.put(item, timeout=0.05)
                    return True
                except queue.Full:
                    continue
            return False

        def _get(q: queue.Queue):
            while not stop.is_set():
                try:
                    return q.get(timeout=0.05)
                except queue.Empty:
                    continue
            return _STOPPED

        def _drain(q: queue.Queue) -> None:
            """Discard everything queued so a producer blocked on a
            full queue can publish its pending item and observe the
            stop flag instead of waiting out its poll interval with the
            sentinel undrained."""
            while True:
                try:
                    q.get_nowait()
                except queue.Empty:
                    return

        def _ingest() -> None:
            # Injected ingest faults fire *before* the source is pulled,
            # so a retry re-pulls cleanly — the iterator never loses a
            # segment to an injected failure.  A real source error is
            # relayed (a dead generator cannot be retried).
            it = iter(segments)
            index = 0
            try:
                while True:
                    attempt = 0
                    while True:
                        try:
                            if plan is not None:
                                specs = plan.ingest_faults(index, attempt)
                                if specs:
                                    fire_ingest_specs(specs, index)
                            segment = next(it)
                            break
                        except StopIteration:
                            _put(ingest_q, _DONE)
                            return
                        except IngestError:
                            if (
                                policy.fault_policy == "fail"
                                or attempt >= policy.max_retries
                            ):
                                raise
                            stream_fault.ingest_retries += 1
                            time.sleep(
                                supervisor.backoff_s(attempt)
                                if supervisor is not None else 0.05
                            )
                            attempt += 1
                    if not _put(ingest_q, segment):
                        return
                    index += 1
            except BaseException as exc:  # noqa: BLE001 - relayed
                _put(ingest_q, _StreamError(exc))

        def _serve() -> None:
            offset = 0
            index = 0
            upd_i = 0
            try:
                while True:
                    item = _get(ingest_q)
                    if item is _STOPPED:
                        return
                    if isinstance(item, _StreamError):
                        _put(ring, item)
                        # The ingestion thread may still be blocked
                        # publishing into a full prefetch queue (its
                        # _DONE sentinel will never be consumed now);
                        # free a slot so it unblocks promptly.
                        _drain(ingest_q)
                        return
                    if item is _DONE:
                        # Updates scheduled past the stream's end apply
                        # after the last segment — through the pipeline
                        # (so persistent-pool workers catch up too) and
                        # surfaced as a final zero-packet chunk so the
                        # consumer sees the epoch advance.
                        tail = [
                            ScheduledUpdate(0, e.batch)
                            for e in entries[upd_i:]
                        ]
                        if tail:
                            result = self._pipeline.run(
                                self._empty_trace(), updates=tail
                            )
                            _put(ring, ChunkResult(
                                index=index, start=offset, n_packets=0,
                                matched=0, elapsed_s=result.elapsed_s,
                                epoch=result.final_epoch,
                                match=result.match, result=result,
                            ))
                        _put(ring, _DONE)
                        return
                    trace = self._as_trace(item)
                    n = trace.n_packets
                    local: list[ScheduledUpdate] = []
                    while (
                        upd_i < len(entries)
                        and entries[upd_i].at_packet < offset + n
                    ):
                        entry = entries[upd_i]
                        local.append(ScheduledUpdate(
                            max(0, entry.at_packet - offset), entry.batch
                        ))
                        upd_i += 1
                    result = self._pipeline.run(
                        trace, updates=local or None,
                        faults=plan.for_segment(index)
                        if plan is not None else None,
                    )
                    chunk = ChunkResult(
                        index=index,
                        start=offset,
                        n_packets=n,
                        matched=result.matched,
                        elapsed_s=result.elapsed_s,
                        epoch=result.final_epoch,
                        match=result.match,
                        result=result,
                    )
                    if not _put(ring, chunk):
                        return
                    offset += n
                    index += 1
            except BaseException as exc:  # noqa: BLE001 - relayed
                _put(ring, _StreamError(exc))

        ingest_t = threading.Thread(
            target=_ingest, name="repro-serve-ingest", daemon=True
        )
        serve_t = threading.Thread(
            target=_serve, name="repro-serve-classify", daemon=True
        )
        try:
            # Starts live inside the try: if the second start raises,
            # the finally still stops and joins the first thread
            # instead of leaving it running against a dead generator.
            ingest_t.start()
            serve_t.start()
            while True:
                try:
                    item = ring.get(timeout=0.1)
                except queue.Empty:
                    if not serve_t.is_alive():
                        # The serving thread may have published its last
                        # items (and exited) between our timeout and the
                        # liveness check: drain what it left before
                        # concluding the stream, or a final chunk / a
                        # relayed error would be lost.
                        while True:
                            try:
                                item = ring.get_nowait()
                            except queue.Empty:
                                return
                            if item is _DONE:
                                return
                            if isinstance(item, _StreamError):
                                raise item.exc
                            yield item
                    continue
                if item is _DONE:
                    return
                if isinstance(item, _StreamError):
                    raise item.exc
                yield item
        finally:
            stop.set()
            # Unwedge producers parked on full queues (the consumer-
            # abandons-mid-stream case: the serving thread blocked
            # publishing into the ring, the ingestion thread into the
            # prefetch queue, sentinels never drained) so teardown does
            # not ride on their 50ms stop polls.  The serving thread is
            # the only one touching the pipeline; wait for it
            # unconditionally (it blocks only in bounded queue polls or
            # one finite pipeline.run) so a later classify() never
            # races an abandoned run.  The ingestion thread may be
            # parked inside the caller's iterable; once stopped it can
            # only touch its own queue, so a timed-out join is safe.
            _drain(ring)
            if serve_t.ident is not None:
                serve_t.join()
            _drain(ingest_q)
            if ingest_t.ident is not None:
                ingest_t.join(timeout=2.0)
            if self.quarantine is not None:
                stream_fault.quarantined += (
                    self.quarantine.count - quarantined_before
                )
            self.last_stream_fault = (
                stream_fault if stream_fault.any() else None
            )
            if borrowed_pool:
                self._pipeline.close()
                self._pipeline.persistent = False
