"""Segment sources for streamed serving.

:meth:`Engine.stream <repro.serve.session.Engine.stream>` consumes any
iterable of trace segments; this module supplies the two canonical
sources:

* :func:`iter_trace_segments` — slice an in-memory
  :class:`~repro.core.packet.PacketTrace` into zero-copy views (the
  conformance harness's source, and the natural adapter for a generator
  that synthesises traffic segment by segment);
* :func:`iter_trace_file` — stream a ClassBench-format trace file in
  fixed-size segments with a **vectorised parser** (one
  :func:`numpy.loadtxt` call per segment instead of a Python loop per
  line, ~10x the packets/second of :meth:`PacketTrace.load`).  Driven
  from the ingestion thread of a streamed session, file parsing overlaps
  classification — the load-then-run dead time the ROADMAP's async-
  ingestion item wanted removed.

Both are plain generators: nothing is read or parsed until the consumer
(or the ingestion thread) pulls the next segment, which is what bounds
streamed memory at ``O(segment)`` instead of ``O(trace)``.
"""

from __future__ import annotations

import itertools
from typing import Iterator

import numpy as np

from ..core.errors import ConfigError, PacketFormatError
from ..core.packet import PacketTrace
from ..core.rules import FIVE_TUPLE, FieldSchema

#: Default packets per streamed segment: a few pipeline chunks' worth,
#: large enough to amortise per-run pipeline overhead, small enough to
#: keep the ingestion/classification pipeline full.
DEFAULT_SEGMENT_PACKETS = 65536


def _check_segment_size(segment_packets: int) -> None:
    if segment_packets < 1:
        raise ConfigError(
            f"segment_packets must be >= 1, got {segment_packets}"
        )


def iter_trace_segments(
    trace: PacketTrace, segment_packets: int = DEFAULT_SEGMENT_PACKETS
) -> Iterator[PacketTrace]:
    """Yield ``trace`` as consecutive zero-copy segment views."""
    _check_segment_size(segment_packets)
    n = trace.n_packets
    for start in range(0, n, segment_packets):
        yield PacketTrace(
            trace.headers[start:start + segment_packets], trace.schema
        )


def iter_trace_file(
    path: str,
    schema: FieldSchema = FIVE_TUPLE,
    segment_packets: int = DEFAULT_SEGMENT_PACKETS,
) -> Iterator[PacketTrace]:
    """Stream a ClassBench trace file as parsed segments.

    Each segment is parsed with one vectorised :func:`numpy.loadtxt`
    call over ``segment_packets`` lines (comments and blank lines are
    skipped, trailing columns beyond the schema — ClassBench's expected-
    match id — are ignored).  Malformed lines raise
    :class:`~repro.core.errors.PacketFormatError` like the classic
    loader does.
    """
    _check_segment_size(segment_packets)
    ndim = schema.ndim
    with open(path, "r", encoding="ascii") as fh:
        while True:
            lines = list(itertools.islice(fh, segment_packets))
            if not lines:
                return
            try:
                block = np.loadtxt(
                    lines, dtype=np.int64, usecols=range(ndim), ndmin=2,
                    comments="#",
                )
            except ValueError as exc:
                raise PacketFormatError(
                    f"{path}: malformed trace segment: {exc}"
                ) from None
            if not block.size:
                continue  # a segment of only comments/blank lines
            if (block < 0).any():
                raise PacketFormatError(
                    f"{path}: negative header field in trace segment"
                )
            yield PacketTrace(block.astype(np.uint32), schema)
