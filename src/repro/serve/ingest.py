"""Segment sources for streamed serving.

:meth:`Engine.stream <repro.serve.session.Engine.stream>` consumes any
iterable of trace segments; this module supplies the two canonical
sources:

* :func:`iter_trace_segments` — slice an in-memory
  :class:`~repro.core.packet.PacketTrace` into zero-copy views (the
  conformance harness's source, and the natural adapter for a generator
  that synthesises traffic segment by segment);
* :func:`iter_trace_file` — stream a ClassBench-format trace file in
  fixed-size segments with a **vectorised parser** (one
  :func:`numpy.loadtxt` call per segment instead of a Python loop per
  line, ~10x the packets/second of :meth:`PacketTrace.load`).  Driven
  from the ingestion thread of a streamed session, file parsing overlaps
  classification — the load-then-run dead time the ROADMAP's async-
  ingestion item wanted removed.

Both are plain generators: nothing is read or parsed until the consumer
(or the ingestion thread) pulls the next segment, which is what bounds
streamed memory at ``O(segment)`` instead of ``O(trace)``.

**Malformed input.**  ``iter_trace_file(on_malformed="quarantine")``
dead-letters bad lines into a bounded :class:`QuarantineLog` instead of
aborting the stream: the segment's vectorised parse is retried line by
line, well-formed rows are kept in order, and each rejected line is
recorded with its absolute line number and reason (the buffer is
bounded; overflow only counts).  The default ``"raise"`` keeps the
historical contract — one bad line raises
:class:`~repro.core.errors.PacketFormatError`.
"""

from __future__ import annotations

import itertools
from typing import Iterator

import numpy as np

from ..core.errors import ConfigError, PacketFormatError
from ..core.packet import PacketTrace
from ..core.rules import FIVE_TUPLE, FieldSchema

#: Default packets per streamed segment: a few pipeline chunks' worth,
#: large enough to amortise per-run pipeline overhead, small enough to
#: keep the ingestion/classification pipeline full.
DEFAULT_SEGMENT_PACKETS = 65536

#: The malformed-line policies ``iter_trace_file`` (and
#: ``EngineConfig.on_malformed``) accept.
ON_MALFORMED = ("raise", "quarantine")

#: Dead-letter buffer bound: a quarantine log keeps at most this many
#: rejected lines verbatim; everything beyond is counted only.
DEFAULT_QUARANTINE_ENTRIES = 256


class QuarantineLog:
    """Bounded dead-letter buffer for malformed trace lines.

    ``count`` is the total number of lines quarantined; ``entries``
    retains the first ``max_entries`` of them as ``(lineno, text,
    reason)`` triples (absolute 1-based line numbers); ``dropped`` is
    how many overflowed the buffer and were counted only.
    """

    def __init__(self, max_entries: int = DEFAULT_QUARANTINE_ENTRIES) -> None:
        if max_entries < 0:
            raise ConfigError(
                f"max_entries must be >= 0, got {max_entries}"
            )
        self.max_entries = max_entries
        self.entries: list[tuple[int, str, str]] = []
        self.count = 0

    def record(self, lineno: int, text: str, reason: str) -> None:
        self.count += 1
        if len(self.entries) < self.max_entries:
            self.entries.append((lineno, text, reason))

    @property
    def dropped(self) -> int:
        return self.count - len(self.entries)

    def __bool__(self) -> bool:
        return self.count > 0

    def clear(self) -> None:
        self.entries.clear()
        self.count = 0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "dropped": self.dropped,
            "entries": [
                {"line": lineno, "text": text, "reason": reason}
                for lineno, text, reason in self.entries
            ],
        }


def _check_segment_size(segment_packets: int) -> None:
    if segment_packets < 1:
        raise ConfigError(
            f"segment_packets must be >= 1, got {segment_packets}"
        )


def iter_trace_segments(
    trace: PacketTrace, segment_packets: int = DEFAULT_SEGMENT_PACKETS
) -> Iterator[PacketTrace]:
    """Yield ``trace`` as consecutive zero-copy segment views."""
    _check_segment_size(segment_packets)
    n = trace.n_packets
    for start in range(0, n, segment_packets):
        yield PacketTrace(
            trace.headers[start:start + segment_packets], trace.schema
        )


def _salvage_lines(
    lines: list[str], first_lineno: int, ndim: int, quarantine: QuarantineLog
) -> list[list[int]]:
    """Line-by-line fallback parse of a segment the vectorised parser
    rejected (or that contained out-of-range values): well-formed rows
    are kept in order, every rejected line is dead-lettered with its
    absolute line number and reason."""
    rows: list[list[int]] = []
    for offset, line in enumerate(lines):
        text = line.split("#", 1)[0].strip()
        if not text:
            continue
        parts = text.split()
        reason = None
        row: list[int] = []
        if len(parts) < ndim:
            reason = f"expected >= {ndim} columns, got {len(parts)}"
        else:
            try:
                row = [int(p) for p in parts[:ndim]]
            except ValueError:
                reason = "non-numeric header field"
            else:
                if any(v < 0 for v in row):
                    reason = "negative header field"
                elif any(v > 0xFFFFFFFF for v in row):
                    reason = "header field out of 32-bit range"
        if reason is None:
            rows.append(row)
        else:
            quarantine.record(
                first_lineno + offset, line.rstrip("\n"), reason
            )
    return rows


def iter_trace_file(
    path: str,
    schema: FieldSchema = FIVE_TUPLE,
    segment_packets: int = DEFAULT_SEGMENT_PACKETS,
    *,
    on_malformed: str = "raise",
    quarantine: QuarantineLog | None = None,
) -> Iterator[PacketTrace]:
    """Stream a ClassBench trace file as parsed segments.

    Each segment is parsed with one vectorised :func:`numpy.loadtxt`
    call over ``segment_packets`` lines (comments and blank lines are
    skipped, trailing columns beyond the schema — ClassBench's expected-
    match id — are ignored).  With the default ``on_malformed="raise"``
    a malformed line raises :class:`~repro.core.errors.
    PacketFormatError` like the classic loader; with ``"quarantine"``
    the offending segment is re-parsed line by line, good rows are
    served in order and bad lines are dead-lettered into ``quarantine``
    (a fresh bounded :class:`QuarantineLog` when not supplied — pass
    your own to read the counts back).
    """
    _check_segment_size(segment_packets)
    if on_malformed not in ON_MALFORMED:
        raise ConfigError(
            f"unknown on_malformed {on_malformed!r}; "
            f"expected one of {', '.join(ON_MALFORMED)}"
        )
    if quarantine is None:
        quarantine = QuarantineLog()
    ndim = schema.ndim
    with open(path, "r", encoding="ascii") as fh:
        lineno = 0
        while True:
            lines = list(itertools.islice(fh, segment_packets))
            if not lines:
                return
            first_lineno = lineno + 1
            lineno += len(lines)
            salvage = False
            try:
                block = np.loadtxt(
                    lines, dtype=np.int64, usecols=range(ndim), ndmin=2,
                    comments="#",
                )
            except ValueError as exc:
                if on_malformed == "raise":
                    raise PacketFormatError(
                        f"{path}: malformed trace segment: {exc}"
                    ) from None
                salvage = True
            else:
                if block.size and (block < 0).any():
                    if on_malformed == "raise":
                        raise PacketFormatError(
                            f"{path}: negative header field in trace segment"
                        )
                    salvage = True
            if salvage:
                rows = _salvage_lines(lines, first_lineno, ndim, quarantine)
                block = np.array(rows, dtype=np.int64).reshape(-1, ndim)
            if not block.size:
                continue  # a segment of only comments/blank/bad lines
            yield PacketTrace(block.astype(np.uint32), schema)
